//! Hostile-input acceptance tests: the fault-injection corpus driven
//! end-to-end through every backend and the isolated parallel batch path.
//!
//! The central property (the PR's acceptance criterion): a batch of 1,000
//! generated documents with ~10% seeded fault-injected members completes
//! through `parallel::filter_batch_bytes` with a per-document error for
//! every broken document, zero panics, and match results on the untouched
//! 90% identical to a sequential run over the clean batch. On top of
//! that, differential robustness: any mutated document that still parses
//! must produce identical match sets through the streaming path
//! (`match_bytes`) and the tree path (`match_document`) of all four
//! backends.

use pxf::prelude::*;
use pxf::xpath::XPathExpr;

/// Workload shared by the tests: NITF-like subscriptions and documents.
fn workload(n_exprs: usize, n_docs: usize) -> (Vec<XPathExpr>, Vec<Vec<u8>>) {
    let regime = Regime::nitf();
    let mut xp = regime.xpath.clone();
    xp.count = n_exprs;
    let exprs = XPathGenerator::new(&regime.dtd, xp).generate();
    let docs = XmlGenerator::new(&regime.dtd, regime.xml.clone())
        .generate_batch(n_docs)
        .into_iter()
        .map(|d| d.to_xml().into_bytes())
        .collect();
    (exprs, docs)
}

/// Every engine/organization/attribute-mode combination in the workspace.
fn all_backends() -> Vec<(String, Box<dyn FilterBackend>)> {
    let mut engines: Vec<(String, Box<dyn FilterBackend>)> = Vec::new();
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        for mode in [AttrMode::Inline, AttrMode::Postponed] {
            engines.push((
                format!("{algo:?}/{mode:?}"),
                Box::new(FilterEngine::new(algo, mode)),
            ));
        }
    }
    engines.push(("yfilter".into(), Box::new(YFilter::new())));
    engines.push(("index-filter".into(), Box::new(IndexFilter::new())));
    engines.push(("xfilter".into(), Box::new(XFilter::new())));
    engines
}

#[test]
fn ten_percent_malformed_batch_completes_with_isolated_errors() {
    let (exprs, clean) = workload(400, 1_000);
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    for e in &exprs {
        engine.add(e).unwrap();
    }
    engine.prepare();

    // Sequential ground truth over the clean batch.
    let baseline = parallel::filter_batch_bytes(&engine, &clean, 1);
    assert!(
        baseline.iter().all(|r| r.is_ok()),
        "generated documents must be well-formed"
    );

    // Damage ~10% of the batch with the seeded injector.
    let mut dirty = clean.clone();
    let mutated = FaultInjector::new(0xBAD5EED).corrupt_fraction(&mut dirty, 0.10);
    assert!(
        mutated.len() >= 50 && mutated.len() <= 150,
        "expected ~10% mutated, got {}",
        mutated.len()
    );

    for threads in [1, 4, 8] {
        let results = parallel::filter_batch_bytes(&engine, &dirty, threads);
        assert_eq!(results.len(), dirty.len());
        let report = BatchReport::from_results(&results);
        assert_eq!(report.total, 1_000);
        assert_eq!(report.panics, 0, "threads={threads}: a worker panicked");
        for (i, result) in results.iter().enumerate() {
            if mutated.contains(&i) {
                // A mutated document either fails with a positioned error
                // or — when the damage left it well-formed — matches.
                if let Err(DocError::Parse(e)) = result {
                    assert!(e.pos <= dirty[i].len(), "doc {i}: bad error offset");
                }
            } else {
                // The untouched 90% must match exactly as in the clean run.
                assert_eq!(
                    result, &baseline[i],
                    "threads={threads}: clean doc {i} diverged from the sequential run"
                );
            }
        }
        // Every parse failure is a mutated document.
        let failed: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_err())
            .map(|(i, _)| i)
            .collect();
        assert!(
            failed.iter().all(|i| mutated.contains(i)),
            "threads={threads}: a clean document failed"
        );
        assert!(!failed.is_empty(), "mutations should break some documents");
        assert_eq!(report.parse_errors, failed.len());
    }
}

#[test]
fn surviving_mutants_match_identically_on_streaming_and_tree_paths() {
    let (exprs, clean) = workload(150, 120);
    let mut injector = FaultInjector::new(0xD1FF);

    // Build the fault corpus: every mutation kind applied to every doc;
    // keep the mutants that still parse (plus the originals).
    let mut corpus: Vec<Vec<u8>> = Vec::new();
    for doc in &clean {
        corpus.push(doc.clone());
        for kind in Mutation::ALL {
            let mutant = injector.mutate_with(doc, kind);
            if Document::parse(&mutant).is_ok() {
                corpus.push(mutant);
            }
        }
    }
    assert!(
        corpus.len() > clean.len(),
        "some mutants should survive parsing"
    );

    for (name, mut backend) in all_backends() {
        for e in &exprs {
            backend.add(e).unwrap();
        }
        backend.prepare();
        for (i, bytes) in corpus.iter().enumerate() {
            let doc = Document::parse(bytes).expect("corpus is parseable");
            let tree = backend.match_document(&doc);
            let streamed = backend
                .match_bytes(bytes)
                .unwrap_or_else(|e| panic!("{name}: corpus doc {i} failed streaming: {e}"));
            assert_eq!(streamed, tree, "{name}: corpus doc {i} diverged");
        }
    }
}

#[test]
fn parser_limits_reject_identically_across_backends() {
    // A depth bomb must be rejected — with a limit error, not a panic — by
    // every backend's streaming path once strict limits are set.
    let bomb = FaultInjector::new(42).mutate_with(b"<nitf><head/></nitf>", Mutation::DepthBomb);
    for (name, mut backend) in all_backends() {
        backend.add_str("/nitf/head").unwrap();
        backend.prepare();
        backend.set_parser_limits(ParserLimits::strict());
        let err = backend
            .match_bytes(&bomb)
            .err()
            .unwrap_or_else(|| panic!("{name}: accepted a depth bomb under strict limits"));
        assert!(
            matches!(err.kind, XmlErrorKind::DepthLimitExceeded(_)),
            "{name}: wrong rejection: {err}"
        );
    }
}
