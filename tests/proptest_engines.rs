//! Property tests: the paper's Appendix A correctness theorem,
//! operationalized. For arbitrary expressions and documents, the predicate
//! engine (all organizations and attribute modes) and both baselines must
//! agree with the direct XPath semantics of the reference oracle.

use proptest::prelude::*;
use pxf::engine::reference::matches_document;
use pxf::prelude::*;
use pxf::xpath::{AttrFilter, AttrValue, Axis, CmpOp, NodeTest, Step, StepFilter};

const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
const ATTRS: [&str; 3] = ["x", "y", "z"];

fn arb_attr_filter() -> impl Strategy<Value = AttrFilter> {
    (
        // Index ATTRS.len() selects the reserved text() target.
        0..=ATTRS.len(),
        prop_oneof![
            Just(None),
            (
                prop_oneof![
                    Just(CmpOp::Eq),
                    Just(CmpOp::Ne),
                    Just(CmpOp::Lt),
                    Just(CmpOp::Le),
                    Just(CmpOp::Gt),
                    Just(CmpOp::Ge)
                ],
                0i64..4
            )
                .prop_map(|(op, v)| Some((op, AttrValue::Int(v)))),
        ],
    )
        .prop_map(|(name, constraint)| AttrFilter {
            name: if name == ATTRS.len() {
                pxf::xpath::TEXT_FILTER.to_string()
            } else {
                ATTRS[name].to_string()
            },
            constraint,
        })
}

fn arb_step(with_attrs: bool) -> impl Strategy<Value = Step> {
    (
        prop_oneof![Just(Axis::Child), Just(Axis::Descendant)],
        prop_oneof![
            3 => (0..TAGS.len()).prop_map(|i| NodeTest::Tag(TAGS[i].to_string())),
            1 => Just(NodeTest::Wildcard),
        ],
        if with_attrs {
            proptest::collection::vec(arb_attr_filter(), 0..2).boxed()
        } else {
            Just(Vec::new()).boxed()
        },
    )
        .prop_map(|(axis, test, attrs)| {
            // Attribute filters only attach to named steps (engine
            // restriction, documented in EncodeError).
            let filters = if matches!(test, NodeTest::Tag(_)) {
                attrs.into_iter().map(StepFilter::Attribute).collect()
            } else {
                Vec::new()
            };
            Step { axis, test, filters }
        })
}

fn arb_expr(with_attrs: bool) -> impl Strategy<Value = XPathExpr> {
    (
        any::<bool>(),
        proptest::collection::vec(arb_step(with_attrs), 1..6),
    )
        .prop_map(|(absolute, mut steps)| {
            // A relative expression's first step axis is Child by
            // convention (the parser never produces anything else).
            if !absolute {
                steps[0].axis = Axis::Child;
            }
            XPathExpr { absolute, steps }
        })
}

/// A random small document over the same alphabet.
#[derive(Debug, Clone)]
struct Tree {
    tag: usize,
    attrs: Vec<(usize, i64)>,
    /// Character data: None = empty; Some(n) = the number rendered as text
    /// (so integer text() comparisons are exercised).
    text: Option<i64>,
    children: Vec<Tree>,
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = (
        0..TAGS.len(),
        proptest::collection::vec((0..ATTRS.len(), 0i64..4), 0..2),
        proptest::option::of(0i64..4),
    )
        .prop_map(|(tag, attrs, text)| Tree {
            tag,
            attrs,
            text,
            children: Vec::new(),
        });
    leaf.prop_recursive(4, 24, 3, |inner| {
        (
            0..TAGS.len(),
            proptest::collection::vec((0..ATTRS.len(), 0i64..4), 0..2),
            proptest::option::of(0i64..4),
            proptest::collection::vec(inner, 0..3),
        )
            .prop_map(|(tag, attrs, text, children)| Tree {
                tag,
                attrs,
                text,
                children,
            })
    })
}

fn build_doc(tree: &Tree) -> Document {
    fn emit(t: &Tree, b: &mut DocumentBuilder) {
        b.start(TAGS[t.tag]);
        for (i, &(a, v)) in t.attrs.iter().enumerate() {
            // Skip duplicate attribute names.
            if t.attrs[..i].iter().all(|&(a2, _)| a2 != a) {
                b.attr(ATTRS[a], &v.to_string());
            }
        }
        if let Some(n) = t.text {
            b.text(&n.to_string());
        }
        for c in &t.children {
            emit(c, b);
        }
        b.end();
    }
    let mut b = DocumentBuilder::new();
    emit(tree, &mut b);
    b.finish().unwrap()
}

fn check_agreement(exprs: &[XPathExpr], doc: &Document) {
    let expected: Vec<u32> = exprs
        .iter()
        .enumerate()
        .filter(|(_, e)| matches_document(e, doc))
        .map(|(i, _)| i as u32)
        .collect();
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        for mode in [AttrMode::Inline, AttrMode::Postponed] {
            let mut engine = FilterEngine::new(algo, mode);
            for e in exprs {
                engine.add(e).unwrap();
            }
            let got: Vec<u32> = engine.match_document(doc).iter().map(|s| s.0).collect();
            assert_eq!(
                got,
                expected,
                "{algo:?}/{mode:?} disagrees with oracle; exprs={:?} doc={}",
                exprs.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
                doc.to_xml()
            );
        }
    }
    let mut yf = YFilter::new();
    let mut ixf = IndexFilter::new();
    let mut xfl = XFilter::new();
    for e in exprs {
        yf.add(e).unwrap();
        ixf.add(e).unwrap();
        xfl.add(e).unwrap();
    }
    assert_eq!(yf.match_document(doc), expected, "yfilter disagrees");
    assert_eq!(ixf.match_document(doc), expected, "index-filter disagrees");
    assert_eq!(
        xfl.match_document(doc),
        expected,
        "xfilter disagrees; exprs={:?} doc={}",
        exprs.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
        doc.to_xml()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structural expressions only.
    #[test]
    fn engines_match_oracle_structural(
        exprs in proptest::collection::vec(arb_expr(false), 1..12),
        tree in arb_tree(),
    ) {
        let doc = build_doc(&tree);
        check_agreement(&exprs, &doc);
    }

    /// With attribute filters (inline vs postponed vs baselines).
    #[test]
    fn engines_match_oracle_with_attrs(
        exprs in proptest::collection::vec(arb_expr(true), 1..10),
        tree in arb_tree(),
    ) {
        let doc = build_doc(&tree);
        check_agreement(&exprs, &doc);
    }

    /// Parser round-trip through Display.
    #[test]
    fn parser_roundtrip(expr in arb_expr(true)) {
        let rendered = expr.to_string();
        let reparsed = pxf::xpath::parse(&rendered).unwrap();
        prop_assert_eq!(reparsed, expr);
    }

    /// Encoding is deterministic and insertion into the engine never
    /// panics for arbitrary generated expressions.
    #[test]
    fn encoding_total(expr in arb_expr(true)) {
        let mut interner = pxf::xml::Interner::new();
        let a = pxf::engine::encode::encode_single_path(&expr, &mut interner, pxf::engine::AttrMode::Postponed).unwrap();
        let b = pxf::engine::encode::encode_single_path(&expr, &mut interner, pxf::engine::AttrMode::Postponed).unwrap();
        prop_assert_eq!(a.preds, b.preds);
        prop_assert!(!b.slots.is_empty());
    }
}

// Nested path filters: predicate engine vs oracle (baselines reject tree
// patterns). Smaller case count — each case builds several engines.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nested_patterns_match_oracle(
        base in arb_expr(false),
        nested in arb_expr(false),
        at in 0usize..5,
        tree in arb_tree(),
    ) {
        // Attach `nested` (made relative) as a path filter on some step.
        let mut expr = base;
        let idx = at % expr.steps.len();
        let mut inner = nested;
        inner.absolute = false;
        inner.steps[0].axis = Axis::Child;
        expr.steps[idx].filters.push(StepFilter::Path(inner));

        let doc = build_doc(&tree);
        let expected = matches_document(&expr, &doc);
        for algo in [Algorithm::Basic, Algorithm::PrefixCovering, Algorithm::AccessPredicate] {
            let mut engine = FilterEngine::new(algo, AttrMode::Inline);
            let id = engine.add(&expr).unwrap();
            let got = engine.match_document(&doc).contains(&id);
            prop_assert_eq!(
                got, expected,
                "{:?} disagrees on {} over {}", algo, expr.to_string(), doc.to_xml()
            );
        }
    }
}
