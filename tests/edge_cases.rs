//! Edge-case integration tests: pathological documents and expressions.

use pxf::engine::reference::matches_document;
use pxf::prelude::*;

const ALGOS: [Algorithm; 3] = [
    Algorithm::Basic,
    Algorithm::PrefixCovering,
    Algorithm::AccessPredicate,
];

/// Documents deeper than 127 elements exercise the basic-pc-ap fallback
/// (the occurrence bitmask holds 128 occurrence numbers).
#[test]
fn very_deep_documents() {
    let mut builder = DocumentBuilder::new();
    for _ in 0..140 {
        builder.start("a");
    }
    builder.start("leaf");
    builder.end();
    for _ in 0..140 {
        builder.end();
    }
    let doc = builder.finish().unwrap();

    let exprs = [
        "a/a",
        "/a/a//leaf",
        "//leaf",
        "a/leaf",
        "/leaf",
        "a/a/a/a/a//a/leaf",
    ];
    for algo in ALGOS {
        let mut engine = FilterEngine::new(algo, AttrMode::Inline);
        let ids: Vec<SubId> = exprs
            .iter()
            .map(|e| engine.add(&parse(e).unwrap()).unwrap())
            .collect();
        let matched = engine.match_document(&doc);
        for (src, id) in exprs.iter().zip(&ids) {
            assert_eq!(
                matched.contains(id),
                matches_document(&parse(src).unwrap(), &doc),
                "{algo:?}: {src}"
            );
        }
    }
}

/// Very wide documents: thousands of siblings.
#[test]
fn very_wide_documents() {
    let mut builder = DocumentBuilder::new();
    builder.start("root");
    for i in 0..3000 {
        builder.start(if i % 3 == 0 { "x" } else { "y" });
        builder.end();
    }
    builder.start("z");
    builder.start("w");
    builder.end();
    builder.end();
    builder.end();
    let doc = builder.finish().unwrap();
    for algo in ALGOS {
        let mut engine = FilterEngine::new(algo, AttrMode::Inline);
        let x = engine.add_str("/root/x").unwrap();
        let zw = engine.add_str("/root/z/w").unwrap();
        let missing = engine.add_str("/root/q").unwrap();
        let m = engine.match_document(&doc);
        assert!(m.contains(&x));
        assert!(m.contains(&zw));
        assert!(!m.contains(&missing));
    }
}

/// Repeated identical tags along one path stress occurrence numbering.
#[test]
fn repeated_tags_deep() {
    let xml = "<a><a><b><a><b><a/></b></a></b></a></a>";
    let doc = Document::parse(xml.as_bytes()).unwrap();
    let exprs = [
        "a/a/b",
        "a/b/a",
        "b/a/b",
        "a//a//a",
        "a/a/a",
        "/a/a/b/a/b/a",
        "b//b",
        "a/b//b",
        "a/c/*/a//c",
    ];
    for algo in ALGOS {
        let mut engine = FilterEngine::new(algo, AttrMode::Inline);
        let ids: Vec<SubId> = exprs
            .iter()
            .map(|e| engine.add(&parse(e).unwrap()).unwrap())
            .collect();
        let matched = engine.match_document(&doc);
        for (src, id) in exprs.iter().zip(&ids) {
            assert_eq!(
                matched.contains(id),
                matches_document(&parse(src).unwrap(), &doc),
                "{algo:?}: {src}"
            );
        }
    }
}

/// Expressions longer than any document path never match but must not
/// disturb anything else.
#[test]
fn overlong_expressions() {
    let doc = Document::parse(b"<a><b/></a>").unwrap();
    for algo in ALGOS {
        let mut engine = FilterEngine::new(algo, AttrMode::Inline);
        let long = engine.add_str("/a/b/c/d/e/f/g/h/i/j/k/l/m/n/o/p").unwrap();
        let wild = engine.add_str("*/*/*/*/*/*/*/*/*/*").unwrap();
        let short = engine.add_str("/a/b").unwrap();
        let m = engine.match_document(&doc);
        assert_eq!(m, vec![short]);
        let _ = (long, wild);
    }
}

/// Attribute values with XML-special characters round-trip through
/// serialization and match string filters exactly.
#[test]
fn special_characters_in_attributes() {
    let mut builder = DocumentBuilder::new();
    builder.start("item");
    builder.attr("title", r#"<"fish" & chips>"#);
    builder.end();
    let doc = builder.finish().unwrap();
    let reparsed = Document::parse(doc.to_xml().as_bytes()).unwrap();
    assert_eq!(doc, reparsed);

    let mut engine = FilterEngine::default();
    let expr = XPathExpr {
        absolute: true,
        steps: vec![pxf::xpath::Step {
            axis: pxf::xpath::Axis::Child,
            test: pxf::xpath::NodeTest::Tag("item".into()),
            filters: vec![pxf::xpath::StepFilter::Attribute(pxf::xpath::AttrFilter {
                name: "title".into(),
                constraint: Some((
                    pxf::xpath::CmpOp::Eq,
                    pxf::xpath::AttrValue::Str(r#"<"fish" & chips>"#.into()),
                )),
            })],
        }],
    };
    let id = engine.add(&expr).unwrap();
    assert_eq!(engine.match_document(&reparsed), vec![id]);
}

/// Numeric attribute comparisons handle negatives and whitespace.
#[test]
fn numeric_attribute_edge_values() {
    let doc = Document::parse(br#"<a><b x="-5"/><b x=" 7 "/><b x="nope"/></a>"#).unwrap();
    for algo in ALGOS {
        for mode in [AttrMode::Inline, AttrMode::Postponed] {
            let mut engine = FilterEngine::new(algo, mode);
            let neg = engine.add_str("/a/b[@x < 0]").unwrap();
            let seven = engine.add_str("/a/b[@x = 7]").unwrap();
            let none = engine.add_str("/a/b[@x > 100]").unwrap();
            let m = engine.match_document(&doc);
            assert!(m.contains(&neg), "{algo:?}/{mode:?}");
            assert!(
                m.contains(&seven),
                "{algo:?}/{mode:?} (whitespace-trimmed parse)"
            );
            assert!(!m.contains(&none), "{algo:?}/{mode:?}");
        }
    }
}

/// A single-element document against every predicate type.
#[test]
fn minimal_document() {
    let doc = Document::parse(b"<only/>").unwrap();
    for algo in ALGOS {
        let mut engine = FilterEngine::new(algo, AttrMode::Inline);
        let exact = engine.add_str("/only").unwrap();
        let rel = engine.add_str("only").unwrap();
        let star = engine.add_str("/*").unwrap();
        let too_long = engine.add_str("/only/x").unwrap();
        let end = engine.add_str("/only/*").unwrap();
        let m = engine.match_document(&doc);
        assert_eq!(m, vec![exact, rel, star]);
        let _ = (too_long, end);
    }
}
