//! Randomized property tests: the paper's Appendix A correctness theorem,
//! operationalized with the workspace's deterministic PRNG (`pxf-rng`).
//! For arbitrary expressions and documents, the predicate engine (all
//! organizations and attribute modes) and all three baselines must agree
//! with the direct XPath semantics of the reference oracle — and every
//! backend's streaming path (`match_bytes`, tree-free) must produce
//! exactly the match set of its tree-based path. The workloads cover
//! attribute filters in both `AttrMode`s, `text()` filters, and
//! nested-path expressions.

use pxf::engine::reference::matches_document;
use pxf::prelude::*;
use pxf::xpath::{AttrFilter, AttrValue, Axis, CmpOp, NodeTest, Step, StepFilter, TEXT_FILTER};
use pxf_rng::Rng;

const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
const ATTRS: [&str; 3] = ["x", "y", "z"];
const OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

fn arb_attr_filter(rng: &mut Rng) -> AttrFilter {
    // One slot past ATTRS selects the reserved text() target.
    let name = match rng.gen_index(ATTRS.len() + 1) {
        i if i == ATTRS.len() => TEXT_FILTER.to_string(),
        i => ATTRS[i].to_string(),
    };
    let constraint = if rng.gen_bool(0.5) {
        Some((*rng.choose(&OPS), AttrValue::Int(rng.gen_range(0i64..4))))
    } else {
        None
    };
    AttrFilter { name, constraint }
}

fn arb_step(rng: &mut Rng, with_attrs: bool) -> Step {
    let axis = if rng.gen_bool(0.5) {
        Axis::Child
    } else {
        Axis::Descendant
    };
    // Named steps 3:1 over wildcards, as in the original distribution.
    let test = if rng.gen_bool(0.75) {
        NodeTest::Tag(rng.choose(&TAGS).to_string())
    } else {
        NodeTest::Wildcard
    };
    // Attribute filters only attach to named steps (engine restriction,
    // documented in EncodeError).
    let filters = if with_attrs && matches!(test, NodeTest::Tag(_)) {
        (0..rng.gen_index(2))
            .map(|_| StepFilter::Attribute(arb_attr_filter(rng)))
            .collect()
    } else {
        Vec::new()
    };
    Step {
        axis,
        test,
        filters,
    }
}

fn arb_expr(rng: &mut Rng, with_attrs: bool) -> XPathExpr {
    let absolute = rng.gen_bool(0.5);
    let mut steps: Vec<Step> = (0..rng.gen_range(1usize..6))
        .map(|_| arb_step(rng, with_attrs))
        .collect();
    // A relative expression's first step axis is Child by convention (the
    // parser never produces anything else).
    if !absolute {
        steps[0].axis = Axis::Child;
    }
    XPathExpr { absolute, steps }
}

/// A random small document over the same alphabet, built with
/// `DocumentBuilder` (attribute values and character data are small
/// integers so `text()` comparisons are exercised).
fn arb_doc(rng: &mut Rng) -> Document {
    fn emit(rng: &mut Rng, b: &mut DocumentBuilder, depth: usize) {
        b.start(TAGS[rng.gen_index(TAGS.len())]);
        let mut used = [false; ATTRS.len()];
        for _ in 0..rng.gen_index(3) {
            let a = rng.gen_index(ATTRS.len());
            if !used[a] {
                used[a] = true;
                b.attr(ATTRS[a], &rng.gen_range(0i64..4).to_string());
            }
        }
        if rng.gen_bool(0.4) {
            b.text(&rng.gen_range(0i64..4).to_string());
        }
        if depth < 4 {
            for _ in 0..rng.gen_index(3) {
                emit(rng, b, depth + 1);
            }
        }
        b.end();
    }
    let mut b = DocumentBuilder::new();
    emit(rng, &mut b, 0);
    b.finish().unwrap()
}

/// All backends, every organization and attribute mode, behind the trait.
fn all_backends() -> Vec<(String, Box<dyn FilterBackend>)> {
    let mut engines: Vec<(String, Box<dyn FilterBackend>)> = Vec::new();
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        for mode in [AttrMode::Inline, AttrMode::Postponed] {
            engines.push((
                format!("{algo:?}/{mode:?}"),
                Box::new(FilterEngine::new(algo, mode)),
            ));
        }
    }
    engines.push(("yfilter".into(), Box::new(YFilter::new())));
    engines.push(("index-filter".into(), Box::new(IndexFilter::new())));
    engines.push(("xfilter".into(), Box::new(XFilter::new())));
    engines
}

fn check_agreement(exprs: &[XPathExpr], doc: &Document) {
    let bytes = doc.to_xml().into_bytes();
    let expected: Vec<u32> = exprs
        .iter()
        .enumerate()
        .filter(|(_, e)| matches_document(e, doc))
        .map(|(i, _)| i as u32)
        .collect();
    for (name, mut engine) in all_backends() {
        for e in exprs {
            engine.add(e).unwrap();
        }
        engine.prepare();
        let got: Vec<u32> = engine.match_document(doc).iter().map(|s| s.0).collect();
        assert_eq!(
            got,
            expected,
            "{name} disagrees with oracle; exprs={:?} doc={}",
            exprs.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
            doc.to_xml()
        );
        let streamed: Vec<u32> = engine
            .match_bytes(&bytes)
            .unwrap()
            .iter()
            .map(|s| s.0)
            .collect();
        assert_eq!(
            streamed,
            expected,
            "{name} streaming path diverges from tree path; exprs={:?} doc={}",
            exprs.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
            doc.to_xml()
        );
    }
}

/// Structural expressions only.
#[test]
fn engines_match_oracle_structural() {
    let mut rng = Rng::seed_from_u64(0xA11CE);
    for _ in 0..150 {
        let exprs: Vec<XPathExpr> = (0..rng.gen_range(1usize..12))
            .map(|_| arb_expr(&mut rng, false))
            .collect();
        let doc = arb_doc(&mut rng);
        check_agreement(&exprs, &doc);
    }
}

/// With attribute and text() filters (inline vs postponed vs baselines).
#[test]
fn engines_match_oracle_with_attrs() {
    let mut rng = Rng::seed_from_u64(0xB0B);
    for _ in 0..150 {
        let exprs: Vec<XPathExpr> = (0..rng.gen_range(1usize..10))
            .map(|_| arb_expr(&mut rng, true))
            .collect();
        let doc = arb_doc(&mut rng);
        check_agreement(&exprs, &doc);
    }
}

/// Parser round-trip through Display.
#[test]
fn parser_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    for _ in 0..300 {
        let expr = arb_expr(&mut rng, true);
        let rendered = expr.to_string();
        let reparsed = pxf::xpath::parse(&rendered).unwrap();
        assert_eq!(reparsed, expr, "round-trip failed for {rendered}");
    }
}

/// Encoding is deterministic and insertion into the engine never panics
/// for arbitrary generated expressions.
#[test]
fn encoding_total() {
    let mut rng = Rng::seed_from_u64(0xD1CE);
    let mut interner = pxf::xml::Interner::new();
    for _ in 0..300 {
        let expr = arb_expr(&mut rng, true);
        let a = pxf::engine::encode::encode_single_path(
            &expr,
            &mut interner,
            pxf::engine::AttrMode::Postponed,
        )
        .unwrap();
        let b = pxf::engine::encode::encode_single_path(
            &expr,
            &mut interner,
            pxf::engine::AttrMode::Postponed,
        )
        .unwrap();
        assert_eq!(a.preds, b.preds);
        assert!(!b.slots.is_empty());
    }
}

/// Nested path filters: predicate engine vs oracle, on both match paths
/// (baselines reject tree patterns).
#[test]
fn nested_patterns_match_oracle() {
    let mut rng = Rng::seed_from_u64(0xF00D);
    for _ in 0..100 {
        // Attach a relative expression as a path filter on some step.
        let mut expr = arb_expr(&mut rng, false);
        let mut inner = arb_expr(&mut rng, false);
        let idx = rng.gen_index(expr.steps.len());
        inner.absolute = false;
        inner.steps[0].axis = Axis::Child;
        expr.steps[idx].filters.push(StepFilter::Path(inner));

        let doc = arb_doc(&mut rng);
        let bytes = doc.to_xml().into_bytes();
        let expected = matches_document(&expr, &doc);
        for algo in [
            Algorithm::Basic,
            Algorithm::PrefixCovering,
            Algorithm::AccessPredicate,
        ] {
            let mut engine = FilterEngine::new(algo, AttrMode::Inline);
            let id = engine.add(&expr).unwrap();
            let got = engine.match_document(&doc).contains(&id);
            assert_eq!(
                got,
                expected,
                "{:?} disagrees on {} over {}",
                algo,
                expr,
                doc.to_xml()
            );
            let streamed = engine.match_bytes(&bytes).unwrap().contains(&id);
            assert_eq!(
                streamed,
                expected,
                "{:?} streaming path disagrees on {} over {}",
                algo,
                expr,
                doc.to_xml()
            );
        }
    }
}
