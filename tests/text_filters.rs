//! Content (text) filters: `[text() op value]` and the non-empty-content
//! test `[text()]` — completing the paper's intro triple of structure,
//! attribute, and content constraints.

use pxf::engine::reference::matches_document;
use pxf::prelude::*;

const ALGOS: [Algorithm; 3] = [
    Algorithm::Basic,
    Algorithm::PrefixCovering,
    Algorithm::AccessPredicate,
];

fn doc(xml: &str) -> Document {
    Document::parse(xml.as_bytes()).unwrap()
}

fn check(exprs: &[&str], xml: &str) {
    let document = doc(xml);
    for algo in ALGOS {
        for mode in [AttrMode::Inline, AttrMode::Postponed] {
            let mut engine = FilterEngine::new(algo, mode);
            let ids: Vec<SubId> = exprs
                .iter()
                .map(|e| engine.add(&parse(e).unwrap()).unwrap())
                .collect();
            let matched = engine.match_document(&document);
            for (src, id) in exprs.iter().zip(&ids) {
                assert_eq!(
                    matched.contains(id),
                    matches_document(&parse(src).unwrap(), &document),
                    "{algo:?}/{mode:?}: {src} over {xml}"
                );
            }
        }
    }
}

#[test]
fn parser_accepts_text_filters() {
    let e = parse(r#"/a/b[text() = "hello"]"#).unwrap();
    assert_eq!(e.to_string(), r#"/a/b[text() = "hello"]"#);
    let f = e.steps[1].attr_filters().next().unwrap();
    assert_eq!(f.name, pxf::xpath::TEXT_FILTER);

    let e = parse("/a/b[text()]").unwrap();
    assert_eq!(e.to_string(), "/a/b[text()]");
    // No internal whitespace in the token: `text( )` is not the reserved
    // form and does not parse as an element name either.
    assert!(parse("/a/b[text( )]").is_err());
    // A child element actually named "text" still parses as a nested path.
    let e = parse("/a[text]").unwrap();
    assert!(e.has_nested_paths());
}

#[test]
fn string_content_matching() {
    let xml = r#"<library>
        <book><title>Dune</title></book>
        <book><title>Neuromancer</title></book>
        <book><title/></book>
    </library>"#;
    check(
        &[
            r#"//title[text() = "Dune"]"#,
            r#"//title[text() = "Solaris"]"#,
            r#"//book/title[text() != "Dune"]"#,
            "//title[text()]",
            r#"/library/book[title[text() = "Neuromancer"]]"#,
        ],
        xml,
    );
}

#[test]
fn numeric_content_matching() {
    let xml = "<readings><t>17</t><t>42</t><t>-3</t><t>n/a</t></readings>";
    check(
        &[
            "//t[text() = 42]",
            "//t[text() < 0]",
            "//t[text() >= 17]",
            "//t[text() > 100]",
        ],
        xml,
    );
}

#[test]
fn text_and_attribute_filters_combine() {
    let xml = r#"<m><f lang="en">hi</f><f lang="de">hallo</f></m>"#;
    check(
        &[
            r#"/m/f[@lang = "de"][text() = "hallo"]"#,
            r#"/m/f[@lang = "de"][text() = "hi"]"#,
            r#"//f[text() = "hi"]"#,
        ],
        xml,
    );
}

#[test]
fn baselines_support_text_filters() {
    let document = doc(r#"<a><b>x</b><b>y</b></a>"#);
    let exprs = [r#"/a/b[text() = "x"]"#, r#"/a/b[text() = "z"]"#];
    let mut yf = YFilter::new();
    let mut ixf = IndexFilter::new();
    for e in exprs {
        yf.add(&parse(e).unwrap()).unwrap();
        ixf.add(&parse(e).unwrap()).unwrap();
    }
    assert_eq!(yf.match_document(&document), vec![0]);
    assert_eq!(ixf.match_document(&document), vec![0]);
}

#[test]
fn empty_text_is_absent() {
    // `[text()]` is a non-empty-content test.
    check(&["//x[text()]"], "<r><x/></r>");
    check(&["//x[text()]"], "<r><x>  </x></r>"); // whitespace-only is suppressed by the reader
    check(&["//x[text()]"], "<r><x>w</x></r>");
}
