//! Cross-engine agreement: on any generated workload, the three predicate
//! engine organizations, YFilter, Index-Filter, XFilter, and the
//! reference oracle must produce identical match sets — through both
//! entry points of the unified [`FilterBackend`] trait (tree-based
//! `match_document` and streaming `match_bytes`).

use pxf::engine::reference::matches_document;
use pxf::prelude::*;

fn workload(
    regime: &Regime,
    n_exprs: usize,
    n_docs: usize,
    attr_filters: usize,
    seed: u64,
) -> (Vec<XPathExpr>, Vec<Vec<u8>>) {
    let mut xp = regime.xpath.clone();
    xp.count = n_exprs;
    xp.attr_filters = attr_filters;
    xp.seed = seed;
    let exprs = XPathGenerator::new(&regime.dtd, xp).generate();
    let mut xm = regime.xml.clone();
    xm.seed = seed.wrapping_add(1);
    let docs = XmlGenerator::new(&regime.dtd, xm)
        .generate_batch(n_docs)
        .into_iter()
        .map(|d| d.to_xml().into_bytes())
        .collect();
    (exprs, docs)
}

fn ids(v: Vec<SubId>) -> Vec<u32> {
    v.into_iter().map(|s| s.0).collect()
}

fn check_all_engines(regime: &Regime, attr_filters: usize, seed: u64) {
    let (exprs, docs) = workload(regime, 300, 10, attr_filters, seed);
    let mut engines: Vec<(String, Box<dyn FilterBackend>)> = Vec::new();
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        for mode in [AttrMode::Inline, AttrMode::Postponed] {
            engines.push((
                format!("{algo:?}/{mode:?}"),
                Box::new(FilterEngine::new(algo, mode)),
            ));
        }
    }
    engines.push(("yfilter".into(), Box::new(YFilter::new())));
    engines.push(("index-filter".into(), Box::new(IndexFilter::new())));
    engines.push(("xfilter".into(), Box::new(XFilter::new())));
    for (_, engine) in engines.iter_mut() {
        for x in &exprs {
            engine.add(x).unwrap();
        }
        engine.prepare();
    }

    for (di, bytes) in docs.iter().enumerate() {
        let doc = Document::parse(bytes).unwrap();
        // Reference oracle.
        let expected: Vec<u32> = exprs
            .iter()
            .enumerate()
            .filter(|(_, e)| matches_document(e, &doc))
            .map(|(i, _)| i as u32)
            .collect();
        for (name, engine) in engines.iter_mut() {
            let got = ids(engine.match_document(&doc));
            assert_eq!(
                got, expected,
                "{name} disagrees with oracle on {} doc #{di} (seed {seed})",
                regime.name
            );
            let streamed = ids(engine.match_bytes(bytes).unwrap());
            assert_eq!(
                streamed, expected,
                "{name} streaming path disagrees with oracle on {} doc #{di} (seed {seed})",
                regime.name
            );
        }
    }
}

#[test]
fn all_engines_agree_nitf() {
    check_all_engines(&Regime::nitf(), 0, 1);
    check_all_engines(&Regime::nitf(), 0, 2);
}

#[test]
fn all_engines_agree_psd() {
    check_all_engines(&Regime::psd(), 0, 3);
    check_all_engines(&Regime::psd(), 0, 4);
}

#[test]
fn all_engines_agree_with_attribute_filters() {
    check_all_engines(&Regime::nitf(), 1, 5);
    check_all_engines(&Regime::nitf(), 2, 6);
    check_all_engines(&Regime::psd(), 1, 7);
    check_all_engines(&Regime::psd(), 2, 8);
}

#[test]
fn predicate_engine_agrees_on_nested_workloads() {
    // Nested path filters: only the predicate engine and the oracle
    // support them (the baselines reject tree patterns).
    for regime in [Regime::nitf(), Regime::psd()] {
        let mut xp = regime.xpath.clone();
        xp.count = 200;
        xp.nested_prob = 0.5;
        xp.seed = 99;
        let exprs = XPathGenerator::new(&regime.dtd, xp).generate();
        assert!(exprs.iter().any(|e| e.has_nested_paths()));
        let docs = XmlGenerator::new(&regime.dtd, regime.xml.clone()).generate_batch(8);
        for algo in [
            Algorithm::Basic,
            Algorithm::PrefixCovering,
            Algorithm::AccessPredicate,
        ] {
            let mut engine = FilterEngine::new(algo, AttrMode::Inline);
            for e in &exprs {
                engine.add(e).unwrap();
            }
            for (di, doc) in docs.iter().enumerate() {
                let got = ids(engine.match_document(doc));
                let expected: Vec<u32> = exprs
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| matches_document(e, doc))
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(
                    got, expected,
                    "{algo:?} disagrees on nested workload, {} doc #{di}",
                    regime.name
                );
                let streamed = ids(engine.match_bytes(&doc.to_xml().into_bytes()).unwrap());
                assert_eq!(
                    streamed, expected,
                    "{algo:?} streaming path disagrees on nested workload, {} doc #{di}",
                    regime.name
                );
            }
        }
    }
}
