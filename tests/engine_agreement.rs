//! Cross-engine agreement: on any generated workload, the three predicate
//! engine organizations, YFilter, Index-Filter, and the reference oracle
//! must produce identical match sets.

use pxf::engine::reference::matches_document;
use pxf::prelude::*;

fn workload(regime: &Regime, n_exprs: usize, n_docs: usize, attr_filters: usize, seed: u64) -> (Vec<XPathExpr>, Vec<Document>) {
    let mut xp = regime.xpath.clone();
    xp.count = n_exprs;
    xp.attr_filters = attr_filters;
    xp.seed = seed;
    let exprs = XPathGenerator::new(&regime.dtd, xp).generate();
    let mut xm = regime.xml.clone();
    xm.seed = seed.wrapping_add(1);
    let docs = XmlGenerator::new(&regime.dtd, xm).generate_batch(n_docs);
    (exprs, docs)
}

fn ids(v: Vec<SubId>) -> Vec<u32> {
    v.into_iter().map(|s| s.0).collect()
}

type EngineFn = Box<dyn FnMut(&Document) -> Vec<u32>>;

fn check_all_engines(regime: &Regime, attr_filters: usize, seed: u64) {
    let (exprs, docs) = workload(regime, 300, 10, attr_filters, seed);
    let mut engines: Vec<(String, EngineFn)> = Vec::new();
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        for mode in [AttrMode::Inline, AttrMode::Postponed] {
            let mut e = FilterEngine::new(algo, mode);
            for x in &exprs {
                e.add(x).unwrap();
            }
            engines.push((
                format!("{algo:?}/{mode:?}"),
                Box::new(move |d: &Document| ids(e.match_document(d))),
            ));
        }
    }
    let mut yf = YFilter::new();
    let mut ixf = IndexFilter::new();
    let mut xfl = XFilter::new();
    for x in &exprs {
        yf.add(x).unwrap();
        ixf.add(x).unwrap();
        xfl.add(x).unwrap();
    }
    engines.push(("yfilter".into(), Box::new(move |d| yf.match_document(d))));
    engines.push(("index-filter".into(), Box::new(move |d| ixf.match_document(d))));
    engines.push(("xfilter".into(), Box::new(move |d| xfl.match_document(d))));

    for (di, doc) in docs.iter().enumerate() {
        // Reference oracle.
        let expected: Vec<u32> = exprs
            .iter()
            .enumerate()
            .filter(|(_, e)| matches_document(e, doc))
            .map(|(i, _)| i as u32)
            .collect();
        for (name, run) in engines.iter_mut() {
            let got = run(doc);
            assert_eq!(
                got, expected,
                "{name} disagrees with oracle on {} doc #{di} (seed {seed})",
                regime.name
            );
        }
    }
}

#[test]
fn all_engines_agree_nitf() {
    check_all_engines(&Regime::nitf(), 0, 1);
    check_all_engines(&Regime::nitf(), 0, 2);
}

#[test]
fn all_engines_agree_psd() {
    check_all_engines(&Regime::psd(), 0, 3);
    check_all_engines(&Regime::psd(), 0, 4);
}

#[test]
fn all_engines_agree_with_attribute_filters() {
    check_all_engines(&Regime::nitf(), 1, 5);
    check_all_engines(&Regime::nitf(), 2, 6);
    check_all_engines(&Regime::psd(), 1, 7);
    check_all_engines(&Regime::psd(), 2, 8);
}

#[test]
fn predicate_engine_agrees_on_nested_workloads() {
    // Nested path filters: only the predicate engine and the oracle
    // support them (the baselines reject tree patterns).
    for regime in [Regime::nitf(), Regime::psd()] {
        let mut xp = regime.xpath.clone();
        xp.count = 200;
        xp.nested_prob = 0.5;
        xp.seed = 99;
        let exprs = XPathGenerator::new(&regime.dtd, xp).generate();
        assert!(exprs.iter().any(|e| e.has_nested_paths()));
        let docs = XmlGenerator::new(&regime.dtd, regime.xml.clone()).generate_batch(8);
        for algo in [
            Algorithm::Basic,
            Algorithm::PrefixCovering,
            Algorithm::AccessPredicate,
        ] {
            let mut engine = FilterEngine::new(algo, AttrMode::Inline);
            for e in &exprs {
                engine.add(e).unwrap();
            }
            for (di, doc) in docs.iter().enumerate() {
                let got = ids(engine.match_document(doc));
                let expected: Vec<u32> = exprs
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| matches_document(e, doc))
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(
                    got, expected,
                    "{algo:?} disagrees on nested workload, {} doc #{di}",
                    regime.name
                );
            }
        }
    }
}
