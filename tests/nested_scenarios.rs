//! Scenario tests for nested path (tree-pattern) subscriptions through the
//! full engine — the §5 extension exercised the way an application would.

use pxf::engine::reference::matches_document;
use pxf::prelude::*;

fn doc(xml: &str) -> Document {
    Document::parse(xml.as_bytes()).unwrap()
}

fn check(engine_exprs: &[&str], xml: &str) {
    let document = doc(xml);
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        let mut engine = FilterEngine::new(algo, AttrMode::Inline);
        let ids: Vec<SubId> = engine_exprs
            .iter()
            .map(|e| engine.add(&parse(e).unwrap()).unwrap())
            .collect();
        let matched = engine.match_document(&document);
        for (src, id) in engine_exprs.iter().zip(&ids) {
            let expected = matches_document(&parse(src).unwrap(), &document);
            assert_eq!(matched.contains(id), expected, "{algo:?}: {src} over {xml}");
        }
    }
}

#[test]
fn catalog_queries() {
    let xml = r#"
      <catalog>
        <book year="2001"><title/><author><name/></author><price currency="usd"/></book>
        <book year="1987"><title/><price currency="eur"/></book>
        <journal year="2001"><title/><editor/></journal>
      </catalog>"#;
    check(
        &[
            "/catalog/book[author]/title",
            "/catalog/book[author/name]/price",
            "/catalog/book[price[@currency = \"eur\"]]",
            "/catalog/book[price[@currency = \"eur\"]]/author",
            "/catalog/*[title][editor]",
            "//book[title][price]",
            "/catalog/book[@year >= 2000][author]",
            "/catalog/book[@year < 1980]",
        ],
        xml,
    );
}

#[test]
fn branch_node_identity_matters() {
    // Two sections: one has a header, the other has a footer. A query
    // requiring both on the SAME section must not match.
    let split = r#"<page><section><header/></section><section><footer/></section></page>"#;
    let joined = r#"<page><section><header/><footer/></section></page>"#;
    check(
        &["//section[header][footer]", "//section[header]/footer"],
        split,
    );
    check(
        &["//section[header][footer]", "//section[header]/footer"],
        joined,
    );
}

#[test]
fn deeply_nested_filters() {
    let xml = r#"
      <a>
        <b><c><d><e/></d></c></b>
        <b><c><d/></c></b>
      </a>"#;
    check(
        &[
            "/a[b[c[d[e]]]]",
            "/a/b[c/d[e]]",
            "/a/b[c[d]]/c",
            "//b[c[d[e]]]/c/d/e",
            "/a[b[c[d[e]]]][b]",
        ],
        xml,
    );
}

#[test]
fn filters_under_descendant_steps() {
    let xml = r#"
      <root>
        <wrap><item key="1"><meta/><body/></item></wrap>
        <wrap><deep><item key="2"><body/></item></deep></wrap>
      </root>"#;
    check(
        &[
            "//item[meta]/body",
            "//item[meta][@key = 1]",
            "//item[meta][@key = 2]",
            "/root//item[body]",
            "//wrap//item[meta]",
            "/root/wrap/item[meta]",
            "/root/*/*[body]",
        ],
        xml,
    );
}

#[test]
fn wildcard_branch_steps() {
    let xml = r#"<r><x><k/></x><y><k/><l/></y></r>"#;
    check(
        &[
            "/r/*[k]",
            "/r/*[k][l]",
            "/r/*[k]/l",
            "//*[k][l]",
            "/r[*[l]]/x",
        ],
        xml,
    );
}

#[test]
fn paper_figure3_expression_variants() {
    // The paper's running example and perturbations of it.
    let matching = r#"
      <a>
        <w><c><d/><e/></c></w>
        <mid><c><d/><e/></c></mid>
      </a>"#;
    let filter_branch_broken = r#"
      <a>
        <w><c><e/></c></w>
        <mid><c><d/><e/></c></mid>
      </a>"#;
    let main_broken = r#"
      <a>
        <w><c><d/><e/></c></w>
        <mid><c><d/></c></mid>
      </a>"#;
    for xml in [matching, filter_branch_broken, main_broken] {
        check(
            &[
                "/a[*/c[d]/e]//c[d]/e",
                "/a[*/c[d]/e]",
                "//c[d]/e",
                "/a[*/c/e]//c/d",
            ],
            xml,
        );
    }
}

#[test]
fn mixed_single_path_and_tree_subscriptions_share_predicates() {
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    engine.add_str("/a/b/c").unwrap();
    let before = engine.distinct_predicates();
    // The tree pattern's components reuse /a/b/c's predicates entirely
    // (main /a/b, extension /a/b/c).
    engine.add_str("/a/b[c]").unwrap();
    assert_eq!(engine.distinct_predicates(), before);
    let d = doc("<a><b><c/></b></a>");
    assert_eq!(engine.match_document(&d).len(), 2);
}
