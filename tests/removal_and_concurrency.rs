//! Facade-level integration tests for the engine extensions: subscription
//! removal, shared-engine concurrent matching, and parallel batch
//! filtering on generated workloads.

use pxf::engine::parallel;
use pxf::prelude::*;

fn build(regime: &Regime, n: usize) -> (FilterEngine, Vec<XPathExpr>, Vec<Document>) {
    let mut params = regime.xpath.clone();
    params.count = n;
    let exprs = XPathGenerator::new(&regime.dtd, params).generate();
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    for e in &exprs {
        engine.add(e).unwrap();
    }
    let docs = XmlGenerator::new(&regime.dtd, regime.xml.clone()).generate_batch(10);
    (engine, exprs, docs)
}

#[test]
fn removal_equals_rebuilding_without_removed() {
    let regime = Regime::psd();
    let (mut engine, exprs, docs) = build(&regime, 400);
    // Remove every third subscription.
    let removed: Vec<SubId> = (0..exprs.len())
        .step_by(3)
        .map(|i| SubId(i as u32))
        .collect();
    for &s in &removed {
        assert!(engine.remove(s));
    }
    // Fresh engine holding only the survivors (note: ids differ, compare
    // by original index).
    let mut fresh = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    let mut fresh_to_orig: Vec<u32> = Vec::new();
    for (i, e) in exprs.iter().enumerate() {
        if i % 3 != 0 {
            fresh.add(e).unwrap();
            fresh_to_orig.push(i as u32);
        }
    }
    for doc in &docs {
        let after_removal: Vec<u32> = engine.match_document(doc).iter().map(|s| s.0).collect();
        let rebuilt: Vec<u32> = fresh
            .match_document(doc)
            .iter()
            .map(|s| fresh_to_orig[s.0 as usize])
            .collect();
        assert_eq!(after_removal, rebuilt);
    }
}

#[test]
fn concurrent_matchers_agree_with_sequential() {
    let regime = Regime::nitf();
    let (mut engine, _, docs) = build(&regime, 1_000);
    let sequential: Vec<Vec<SubId>> = docs.iter().map(|d| engine.match_document(d)).collect();
    engine.prepare();
    // Many matchers over the shared engine, interleaved.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = &engine;
            let docs = &docs;
            let sequential = &sequential;
            scope.spawn(move || {
                let mut matcher = engine.matcher();
                for (d, expected) in docs.iter().zip(sequential) {
                    assert_eq!(&matcher.match_document(d), expected);
                }
            });
        }
    });
}

#[test]
fn parallel_batch_matches_sequential_on_generated_workloads() {
    for regime in [Regime::nitf(), Regime::psd()] {
        let (mut engine, _, docs) = build(&regime, 800);
        let sequential: Vec<Vec<SubId>> = docs.iter().map(|d| engine.match_document(d)).collect();
        engine.prepare();
        for threads in [1, 3, 8] {
            let batched: Vec<Vec<SubId>> = parallel::filter_batch(&engine, &docs, threads)
                .into_iter()
                .map(|r| r.expect("pre-parsed documents cannot fail"))
                .collect();
            assert_eq!(batched, sequential, "{} threads={threads}", regime.name);
        }
    }
}

#[test]
fn document_stream_feeds_the_engine() {
    use pxf::xml::DocumentStream;
    let regime = Regime::psd();
    let (mut engine, _, docs) = build(&regime, 300);
    // Concatenate the documents into one wire and stream them back.
    let mut wire = Vec::new();
    for d in &docs {
        wire.extend_from_slice(d.to_xml().as_bytes());
        wire.push(b'\n');
    }
    let streamed: Vec<Document> = DocumentStream::new(&wire[..])
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(streamed.len(), docs.len());
    for (original, streamed) in docs.iter().zip(&streamed) {
        assert_eq!(original, streamed);
        assert_eq!(
            engine.match_document(original),
            engine.match_document(streamed)
        );
    }
}

#[test]
fn removal_interacts_with_duplicates_and_covering() {
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    // Three identical subscriptions plus a prefix and an extension.
    let a = engine.add_str("/a/b/c").unwrap();
    let b = engine.add_str("/a/b/c").unwrap();
    let c = engine.add_str("/a/b/c").unwrap();
    let prefix = engine.add_str("/a/b").unwrap();
    let longer = engine.add_str("/a/b/c/d").unwrap();
    let doc = Document::parse(b"<a><b><c><d/></c></b></a>").unwrap();
    assert_eq!(engine.match_document(&doc), vec![a, b, c, prefix, longer]);
    engine.remove(b);
    assert_eq!(engine.match_document(&doc), vec![a, c, prefix, longer]);
    engine.remove(a);
    engine.remove(c);
    assert_eq!(engine.match_document(&doc), vec![prefix, longer]);
    engine.remove(longer);
    assert_eq!(engine.match_document(&doc), vec![prefix]);
}
