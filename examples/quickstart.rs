//! Quickstart: register a handful of XPath subscriptions, filter a couple
//! of documents, and peek at the predicate machinery the engine builds —
//! including the paper's Table 1, reproduced live.
//!
//! Run with: `cargo run --example quickstart`

use pxf::engine::encode::{encode_single_path, AttrMode};
use pxf::predicate::{MatchContext, PredicateIndex, Publication};
use pxf::prelude::*;
use pxf::xml::Interner;

fn main() {
    // ── 1. The filtering engine ────────────────────────────────────────
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);

    let subscriptions = [
        "/library/shelf/book",           // absolute path
        "book/title",                    // relative: matches anywhere
        "/library//book[@year >= 2000]", // descendant + attribute filter
        "/library/*/book/*",             // wildcards
        "//book[author]/title",          // nested path filter (tree pattern)
    ];
    let ids: Vec<SubId> = subscriptions
        .iter()
        .map(|s| engine.add_str(s).expect("valid subscription"))
        .collect();

    let doc = Document::parse(
        br#"<library>
              <shelf>
                <book year="2021"><title/><author/></book>
                <book year="1994"><title/></book>
              </shelf>
            </library>"#,
    )
    .unwrap();

    let matched = engine.match_document(&doc);
    println!(
        "document matched {} of {} subscriptions:",
        matched.len(),
        engine.len()
    );
    for (src, id) in subscriptions.iter().zip(&ids) {
        let mark = if matched.contains(id) { "✓" } else { "✗" };
        println!("  {mark} {src}");
    }

    // ── 2. How expressions are encoded (paper §3.2) ────────────────────
    println!("\npredicate encodings:");
    let mut interner = Interner::new();
    for src in ["/a/b/b", "a/*/*/b/c", "*/a/*/b//c/*/*", "/*/*/*/*"] {
        let expr = pxf::xpath::parse(src).unwrap();
        let enc = encode_single_path(&expr, &mut interner, AttrMode::Postponed).unwrap();
        let rendered: Vec<String> = enc.preds.iter().map(|p| p.to_notation(&interner)).collect();
        println!("  {src:<18} ->  {}", rendered.join(" |-> "));
    }

    // ── 3. Paper Table 1: predicate matching over (a,b,c,a,b,c) ───────
    println!("\nTable 1 — predicate matching over the path (a, b, c, a, b, c):");
    let mut index = PredicateIndex::new();
    let mut rows = Vec::new();
    for src in ["a//b/c", "c//b//a"] {
        let expr = pxf::xpath::parse(src).unwrap();
        let enc = encode_single_path(&expr, &mut interner, AttrMode::Postponed).unwrap();
        for pred in &enc.preds {
            let pid = index.insert(pred.clone());
            rows.push((src, pred.to_notation(&interner), pid));
        }
    }
    let publication = Publication::from_tags(&["a", "b", "c", "a", "b", "c"], &mut interner);
    let mut ctx = MatchContext::new();
    index.evaluate(&publication, None::<&pxf::xml::Document>, &mut ctx);
    for (src, notation, pid) in rows {
        println!("  {src:<9} {notation:<24} {:?}", ctx.get(pid));
    }

    // ── 4. Engine statistics ───────────────────────────────────────────
    let stats = engine.stats();
    println!(
        "\nengine: {} subscriptions share {} distinct predicates",
        engine.len(),
        engine.distinct_predicates()
    );
    println!(
        "last run: {} occurrence determinations, {} access-predicate root probes",
        stats.occurrence_runs, stats.ap_root_probes
    );
}
