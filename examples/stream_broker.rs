//! A streaming filtering broker: documents arrive concatenated on one
//! input stream, workers filter them concurrently against a shared engine
//! — the deployment shape of the paper's selective-information-
//! dissemination scenario (§1), this time end to end: byte stream in,
//! routing decisions out. The reader thread only splits the wire into
//! raw per-document byte slices ([`DocumentStream::next_raw`]); each
//! worker goes bytes → match set in a single parse pass
//! ([`Matcher::match_bytes`]), so no document tree is ever built.
//!
//! Run with: `cargo run --release --example stream_broker`

use pxf::prelude::*;
use pxf::xml::DocumentStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

fn main() {
    let regime = Regime::nitf();

    // Subscription base.
    let mut params = regime.xpath.clone();
    params.count = 20_000;
    let exprs = XPathGenerator::new(&regime.dtd, params).generate();
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    for e in &exprs {
        engine.add(e).unwrap();
    }
    engine.prepare();

    // Simulate the wire: 300 documents concatenated into one byte stream.
    let mut gen = XmlGenerator::new(&regime.dtd, regime.xml.clone());
    let mut wire = Vec::new();
    for _ in 0..300 {
        wire.extend_from_slice(gen.generate().to_xml().as_bytes());
        wire.push(b'\n');
    }
    println!(
        "wire: {:.1} KB, {} subscriptions, {} distinct predicates",
        wire.len() as f64 / 1024.0,
        engine.len(),
        engine.distinct_predicates()
    );

    // One reader thread splits the stream into raw documents; N workers
    // parse + filter in one pass.
    let queue: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());
    let produced = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let docs_routed = AtomicUsize::new(0);
    let matches_total = AtomicUsize::new(0);

    let started = Instant::now();
    std::thread::scope(|scope| {
        let queue = &queue;
        let produced = &produced;
        let done = &done;
        let engine = &engine;
        let docs_routed = &docs_routed;
        let matches_total = &matches_total;

        scope.spawn(move || {
            let mut stream = DocumentStream::new(&wire[..]);
            while let Some(raw) = stream.next_raw() {
                let bytes = raw.expect("well-formed stream");
                queue.lock().unwrap().push(bytes);
                produced.fetch_add(1, Ordering::SeqCst);
            }
            done.store(1, Ordering::SeqCst);
        });

        for _ in 0..4 {
            scope.spawn(move || {
                let mut matcher = engine.matcher();
                loop {
                    let doc = queue.lock().unwrap().pop();
                    match doc {
                        Some(bytes) => {
                            let matched = matcher.match_bytes(&bytes).expect("well-formed stream");
                            docs_routed.fetch_add(1, Ordering::SeqCst);
                            matches_total.fetch_add(matched.len(), Ordering::SeqCst);
                        }
                        None => {
                            if done.load(Ordering::SeqCst) == 1 && queue.lock().unwrap().is_empty()
                            {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let routed = docs_routed.load(Ordering::SeqCst);
    println!(
        "routed {} documents in {:.1} ms ({:.0} docs/s, 4 workers)",
        routed,
        elapsed.as_secs_f64() * 1e3,
        routed as f64 / elapsed.as_secs_f64()
    );
    println!(
        "average fan-out: {:.1} subscriptions/document",
        matches_total.load(Ordering::SeqCst) as f64 / routed as f64
    );
}
