//! A streaming filtering broker: documents arrive concatenated on one
//! input stream, workers filter them concurrently against a shared engine
//! — the deployment shape of the paper's selective-information-
//! dissemination scenario (§1), this time end to end: byte stream in,
//! routing decisions out. The reader thread only splits the wire into
//! raw per-document byte slices ([`DocumentStream::next_raw`]); each
//! worker goes bytes → match set in a single parse pass
//! ([`Matcher::match_bytes`]), so no document tree is ever built.
//!
//! Two contracts this example takes care to honor:
//!
//! * **Bounded FIFO hand-off.** The reader→worker queue is the broker's
//!   [`BoundedQueue`]: strictly first-in-first-out (each worker observes
//!   documents in ingest order) and bounded with blocking backpressure —
//!   a fast reader parks instead of buffering the whole wire, and idle
//!   workers park on a condvar instead of spinning.
//! * **Raw-ingest failure accounting.** `next_raw` hands out bytes
//!   without parsing them, so the stream cannot see downstream parse
//!   failures by itself. Workers report each outcome through a feedback
//!   queue and the reader applies [`DocumentStream::note_success`] /
//!   [`DocumentStream::note_failure`], keeping the consecutive-failure
//!   cap meaningful: sparse malformed documents never fuse a long
//!   stream, while a genuinely desynced wire still would.
//!
//! Run with: `cargo run --release --example stream_broker`

use pxf::broker::{Backpressure, BoundedQueue};
use pxf::prelude::*;
use pxf::xml::DocumentStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

const DOCS: usize = 300;
/// Every Nth document on the wire is malformed (balanced tags, so the
/// boundary scanner hands it out, but the parser rejects it).
const MALFORMED_EVERY: usize = 25;

fn main() {
    let regime = Regime::nitf();

    // Subscription base.
    let mut params = regime.xpath.clone();
    params.count = 20_000;
    let exprs = XPathGenerator::new(&regime.dtd, params).generate();
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    for e in &exprs {
        engine.add(e).unwrap();
    }
    engine.prepare();

    // Simulate the wire: documents concatenated into one byte stream,
    // with sparse malformed ones mixed in.
    let mut gen = XmlGenerator::new(&regime.dtd, regime.xml.clone());
    let mut wire = Vec::new();
    let mut malformed_sent = 0usize;
    for i in 0..DOCS {
        if (i + 1) % MALFORMED_EVERY == 0 {
            wire.extend_from_slice(b"<bad attr=></bad>");
            malformed_sent += 1;
        } else {
            wire.extend_from_slice(gen.generate().to_xml().as_bytes());
        }
        wire.push(b'\n');
    }
    println!(
        "wire: {:.1} KB, {} subscriptions, {} distinct predicates, {} malformed docs",
        wire.len() as f64 / 1024.0,
        engine.len(),
        engine.distinct_predicates(),
        malformed_sent
    );

    // One reader thread splits the stream into raw documents; N workers
    // parse + filter in one pass and report outcomes back.
    let queue: BoundedQueue<(usize, Vec<u8>)> = BoundedQueue::new(64, Backpressure::Block);
    let feedback: BoundedQueue<bool> = BoundedQueue::new(DOCS.max(1), Backpressure::Block);
    let docs_routed = AtomicUsize::new(0);
    let parse_failures = AtomicUsize::new(0);
    let matches_total = AtomicUsize::new(0);

    let started = Instant::now();
    let (produced, recovered, fused) = std::thread::scope(|scope| {
        let queue = &queue;
        let feedback = &feedback;
        let engine = &engine;
        let docs_routed = &docs_routed;
        let parse_failures = &parse_failures;
        let matches_total = &matches_total;

        let reader = scope.spawn(move || {
            let mut stream = DocumentStream::new(&wire[..]);
            let mut produced = 0usize;
            let mut outcomes = Vec::new();
            let mut fused = false;
            loop {
                // Apply worker-reported parse outcomes to the stream's
                // failure cap before pulling more bytes off the wire.
                outcomes.clear();
                feedback.try_drain(usize::MAX, &mut outcomes);
                for ok in outcomes.drain(..) {
                    if ok {
                        stream.note_success();
                    } else {
                        stream.note_failure();
                    }
                }
                match stream.next_raw() {
                    Some(Ok(bytes)) => {
                        queue.push((produced, bytes));
                        produced += 1;
                    }
                    Some(Err(e)) => {
                        // Scanner-level failure; the stream counted it.
                        eprintln!("stream error: {e}");
                        fused |= matches!(e.kind, XmlErrorKind::TooManyFailures(_));
                    }
                    None => break,
                }
            }
            queue.close();
            (produced, stream.recovered(), fused)
        });

        for _ in 0..4 {
            scope.spawn(move || {
                let mut matcher = engine.matcher();
                let mut last_idx = None::<usize>;
                while let Some((idx, bytes)) = queue.pop() {
                    // The queue is FIFO, so each worker sees the wire's
                    // ingest order.
                    assert!(last_idx.is_none_or(|last| idx > last), "FIFO violated");
                    last_idx = Some(idx);
                    match matcher.match_bytes(&bytes) {
                        Ok(matched) => {
                            docs_routed.fetch_add(1, Ordering::SeqCst);
                            matches_total.fetch_add(matched.len(), Ordering::SeqCst);
                            feedback.push(true);
                        }
                        Err(_) => {
                            parse_failures.fetch_add(1, Ordering::SeqCst);
                            feedback.push(false);
                        }
                    }
                }
            });
        }
        reader.join().expect("reader panicked")
    });
    let elapsed = started.elapsed();

    let routed = docs_routed.load(Ordering::SeqCst);
    let failed = parse_failures.load(Ordering::SeqCst);
    assert!(!fused, "sparse malformed docs must not fuse the stream");
    assert_eq!(produced, DOCS, "every balanced doc reaches a worker");
    assert_eq!(failed, malformed_sent);
    assert_eq!(routed, DOCS - malformed_sent);
    println!(
        "routed {} documents ({} rejected at parse, stream unfused, {} failures recovered) \
         in {:.1} ms ({:.0} docs/s, 4 workers)",
        routed,
        failed,
        recovered,
        elapsed.as_secs_f64() * 1e3,
        routed as f64 / elapsed.as_secs_f64()
    );
    println!(
        "average fan-out: {:.1} subscriptions/document",
        matches_total.load(Ordering::SeqCst) as f64 / routed as f64
    );
}
