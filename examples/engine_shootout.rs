//! Engine shootout: runs all six engines (basic, basic-pc, basic-pc-ap,
//! YFilter, Index-Filter, XFilter) over both workload regimes through the
//! unified [`FilterBackend`] trait, verifies that they produce identical
//! match sets on both the tree-based and the streaming path, and prints a
//! compact comparison — a miniature, self-checking version of the paper's
//! Fig. 6.
//!
//! Run with: `cargo run --release --example engine_shootout [n_exprs]`

use pxf::prelude::*;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);

    for regime in [Regime::nitf(), Regime::psd()] {
        let mut xp = regime.xpath.clone();
        xp.count = n;
        let exprs = XPathGenerator::new(&regime.dtd, xp).generate();
        let docs: Vec<Vec<u8>> = XmlGenerator::new(&regime.dtd, regime.xml.clone())
            .generate_batch(30)
            .into_iter()
            .map(|d| d.to_xml().into_bytes())
            .collect();

        println!(
            "── {} regime: {} expressions, {} documents ──",
            regime.name.to_uppercase(),
            exprs.len(),
            docs.len()
        );

        let engines: Vec<(&str, Box<dyn FilterBackend>)> = vec![
            (
                "basic",
                Box::new(FilterEngine::new(Algorithm::Basic, AttrMode::Inline)),
            ),
            (
                "basic-pc",
                Box::new(FilterEngine::new(
                    Algorithm::PrefixCovering,
                    AttrMode::Inline,
                )),
            ),
            (
                "basic-pc-ap",
                Box::new(FilterEngine::new(
                    Algorithm::AccessPredicate,
                    AttrMode::Inline,
                )),
            ),
            ("yfilter", Box::new(YFilter::new())),
            ("index-filter", Box::new(IndexFilter::new())),
            ("xfilter", Box::new(XFilter::new())),
        ];

        let mut reference: Option<Vec<Vec<SubId>>> = None;
        for (name, mut engine) in engines {
            for e in &exprs {
                engine.add(e).unwrap();
            }
            engine.prepare();

            // Streaming path: parse + match in one pass, no document tree.
            let t = Instant::now();
            let mut all: Vec<Vec<SubId>> = Vec::with_capacity(docs.len());
            let mut matches = 0usize;
            for bytes in &docs {
                let m = engine.match_bytes(bytes).unwrap();
                matches += m.len();
                all.push(m);
            }
            let ms = t.elapsed().as_secs_f64() * 1e3 / docs.len() as f64;
            println!(
                "  {name:<14} {ms:>8.2} ms/doc   {:>7.1} matches/doc",
                matches as f64 / docs.len() as f64
            );

            // Tree path must agree with the streaming path, engine by engine.
            for (bytes, streamed) in docs.iter().zip(&all) {
                let doc = Document::parse(bytes).unwrap();
                assert_eq!(
                    &engine.match_document(&doc),
                    streamed,
                    "{name}: streaming and tree paths disagree!"
                );
            }
            match &reference {
                None => reference = Some(all),
                Some(r) => assert_eq!(r, &all, "{name} disagrees with the other engines!"),
            }
        }
        println!("  all engines agree, streaming == tree ✓\n");
    }
}
