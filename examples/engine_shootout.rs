//! Engine shootout: runs all five engines (basic, basic-pc, basic-pc-ap,
//! YFilter, Index-Filter) over both workload regimes, verifies that they
//! produce identical match sets, and prints a compact comparison — a
//! miniature, self-checking version of the paper's Fig. 6.
//!
//! Run with: `cargo run --release --example engine_shootout [n_exprs]`

use pxf::prelude::*;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);

    for regime in [Regime::nitf(), Regime::psd()] {
        let mut xp = regime.xpath.clone();
        xp.count = n;
        let exprs = XPathGenerator::new(&regime.dtd, xp).generate();
        let docs: Vec<Vec<u8>> = XmlGenerator::new(&regime.dtd, regime.xml.clone())
            .generate_batch(30)
            .into_iter()
            .map(|d| d.to_xml().into_bytes())
            .collect();

        println!(
            "── {} regime: {} expressions, {} documents ──",
            regime.name.to_uppercase(),
            exprs.len(),
            docs.len()
        );

        let mut reference: Option<Vec<Vec<u32>>> = None;
        let mut run = |name: &str, f: &mut dyn FnMut(&Document) -> Vec<u32>| {
            let t = Instant::now();
            let mut all: Vec<Vec<u32>> = Vec::with_capacity(docs.len());
            let mut matches = 0usize;
            for bytes in &docs {
                let doc = Document::parse(bytes).unwrap();
                let m = f(&doc);
                matches += m.len();
                all.push(m);
            }
            let ms = t.elapsed().as_secs_f64() * 1e3 / docs.len() as f64;
            println!(
                "  {name:<14} {ms:>8.2} ms/doc   {:>7.1} matches/doc",
                matches as f64 / docs.len() as f64
            );
            match &reference {
                None => reference = Some(all),
                Some(r) => assert_eq!(r, &all, "{name} disagrees with the other engines!"),
            }
        };

        for (name, algo) in [
            ("basic", Algorithm::Basic),
            ("basic-pc", Algorithm::PrefixCovering),
            ("basic-pc-ap", Algorithm::AccessPredicate),
        ] {
            let mut engine = FilterEngine::new(algo, AttrMode::Inline);
            for e in &exprs {
                engine.add(e).unwrap();
            }
            run(name, &mut |d| {
                engine.match_document(d).iter().map(|s| s.0).collect()
            });
        }
        {
            let mut yf = YFilter::new();
            for e in &exprs {
                yf.add(e).unwrap();
            }
            run("yfilter", &mut |d| yf.match_document(d));
        }
        {
            let mut ixf = IndexFilter::new();
            for e in &exprs {
                ixf.add(e).unwrap();
            }
            run("index-filter", &mut |d| ixf.match_document(d));
        }
        println!("  all engines agree ✓\n");
    }
}
