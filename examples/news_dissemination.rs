//! Selective news dissemination — the paper's motivating scenario (§1):
//! a broker holds one XPath subscription per user interest and routes each
//! incoming NITF news item to the users whose filters it matches.
//!
//! The example registers a large generated subscription base plus a few
//! hand-written "user profiles", streams generated news documents through
//! the engine, and prints routing decisions and throughput.
//!
//! Run with: `cargo run --release --example news_dissemination`

use pxf::prelude::*;
use std::time::Instant;

fn main() {
    let regime = Regime::nitf();

    // A population of generated subscriptions (background load)…
    let mut generated = regime.xpath.clone();
    generated.count = 50_000;
    generated.attr_filters = 1;
    let background = XPathGenerator::new(&regime.dtd, generated).generate();

    // …plus named user profiles we want to watch.
    let profiles: &[(&str, &str)] = &[
        (
            "sports-desk",
            "/nitf/head//tobject.subject[@tobject.subject.type = \"sports\"]",
        ),
        (
            "finance-desk",
            "/nitf/head//tobject.subject[@tobject.subject.type = \"finance\"]",
        ),
        ("front-page", "//pubdata[@position.section = \"front\"]"),
        ("urgent", "/nitf/head/docdata/urgency[@ed-urg <= 2]"),
        ("media-team", "/nitf/body//media[@media-type = \"video\"]"),
        ("copyright-watch", "//doc.copyright[@holder = \"Reuters\"]"),
        ("quote-hunter", "//p/q/person"),
    ];

    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    for expr in &background {
        engine.add(expr).unwrap();
    }
    let first_profile = engine.len() as u32;
    for (_, src) in profiles {
        engine.add_str(src).unwrap();
    }
    println!(
        "broker ready: {} subscriptions, {} distinct predicates\n",
        engine.len(),
        engine.distinct_predicates()
    );

    // Stream news items.
    let mut gen = XmlGenerator::new(&regime.dtd, regime.xml.clone());
    let items: Vec<Vec<u8>> = (0..200)
        .map(|_| gen.generate().to_xml().into_bytes())
        .collect();

    let t = Instant::now();
    let mut total_matches = 0usize;
    let mut profile_hits = vec![0usize; profiles.len()];
    for (i, bytes) in items.iter().enumerate() {
        let doc = Document::parse(bytes).unwrap();
        let matched = engine.match_document(&doc);
        total_matches += matched.len();
        let hit_profiles: Vec<&str> = matched
            .iter()
            .filter(|s| s.0 >= first_profile)
            .map(|s| {
                let p = (s.0 - first_profile) as usize;
                profile_hits[p] += 1;
                profiles[p].0
            })
            .collect();
        if i < 5 {
            println!(
                "item {i:>3}: {:>5} subscribers, desks: {}",
                matched.len(),
                if hit_profiles.is_empty() {
                    "-".to_string()
                } else {
                    hit_profiles.join(", ")
                }
            );
        }
    }
    let elapsed = t.elapsed();

    println!("  …\n");
    println!(
        "routed {} items in {:.1} ms ({:.2} ms/item, incl. parsing)",
        items.len(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / items.len() as f64
    );
    println!(
        "average fan-out: {:.0} subscribers/item ({:.1}% of base)",
        total_matches as f64 / items.len() as f64,
        total_matches as f64 / items.len() as f64 / engine.len() as f64 * 100.0
    );
    println!("\ndesk delivery counts over {} items:", items.len());
    for ((name, _), hits) in profiles.iter().zip(&profile_hits) {
        println!("  {name:<16} {hits:>4}");
    }
}
