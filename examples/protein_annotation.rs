//! Protein-database dissemination — the paper's high-match workload (PSD,
//! §6.1) as an application: laboratories subscribe to structural patterns
//! over protein entries (tree patterns with nested path filters included),
//! and a curator pipeline streams database updates through the filter.
//!
//! This example also contrasts the engine with the YFilter and
//! Index-Filter baselines on the same subscriptions, showing the
//! high-match-regime behaviour the paper reports in Fig. 6(b).
//!
//! Run with: `cargo run --release --example protein_annotation`

use pxf::prelude::*;
use std::time::Instant;

fn main() {
    let regime = Regime::psd();

    // Laboratory watchlists: structural interests over protein entries.
    // The last two are tree patterns (nested path filters) — supported by
    // the predicate engine, rejected by the baselines.
    let watchlists: &[(&str, &str)] = &[
        (
            "membrane-lab",
            "/ProteinDatabase/ProteinEntry/protein/superfamily",
        ),
        (
            "citations",
            "//refinfo[@refid < 2000]/citation[@type = \"journal\"]",
        ),
        (
            "active-sites",
            "//feature/feature-type[@type = \"active-site\"]",
        ),
        ("long-seqs", "//summary/length[@value >= 2500]"),
        ("cross-refs", "//xrefs/xref/db"),
        (
            "annotated",
            "//feature[status[@value = \"experimental\"]]/seq-spec",
        ),
        (
            "full-entries",
            "/ProteinDatabase/ProteinEntry[header/accession][sequence]",
        ),
    ];

    let mut generated = regime.xpath.clone();
    generated.count = 5_000;
    let background = XPathGenerator::new(&regime.dtd, generated).generate();

    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    for e in &background {
        engine.add(e).unwrap();
    }
    let first_watch = engine.len() as u32;
    for (_, src) in watchlists {
        engine.add_str(src).unwrap();
    }

    // Baselines get the same single-path subscriptions (they reject the
    // nested tree patterns, as the original systems would).
    let mut yfilter = YFilter::new();
    let mut indexfilter = IndexFilter::new();
    let mut baseline_count = 0;
    for e in &background {
        if !e.has_nested_paths() {
            yfilter.add(e).unwrap();
            indexfilter.add(e).unwrap();
            baseline_count += 1;
        }
    }

    let mut gen = XmlGenerator::new(&regime.dtd, regime.xml.clone());
    let updates: Vec<Vec<u8>> = (0..100)
        .map(|_| gen.generate().to_xml().into_bytes())
        .collect();

    // Run the predicate engine and report watchlist deliveries.
    let mut watch_hits = vec![0usize; watchlists.len()];
    let mut matches = 0usize;
    let t = Instant::now();
    for bytes in &updates {
        let doc = Document::parse(bytes).unwrap();
        for s in engine.match_document(&doc) {
            matches += 1;
            if s.0 >= first_watch {
                watch_hits[(s.0 - first_watch) as usize] += 1;
            }
        }
    }
    let engine_ms = t.elapsed().as_secs_f64() * 1e3 / updates.len() as f64;

    println!(
        "predicate engine: {} subscriptions ({} tree patterns), {:.1}% matched per update, {:.2} ms/update",
        engine.len(),
        watchlists.iter().filter(|(_, s)| pxf::xpath::parse(s).unwrap().has_nested_paths()).count(),
        matches as f64 / updates.len() as f64 / engine.len() as f64 * 100.0,
        engine_ms,
    );
    println!("\nwatchlist deliveries over {} updates:", updates.len());
    for ((name, src), hits) in watchlists.iter().zip(&watch_hits) {
        println!("  {name:<14} {hits:>4}   {src}");
    }

    // Baseline comparison on the single-path subset (the paper's Fig. 6(b)
    // high-match regime: the predicate engine amortizes shared predicates
    // while the NFA touches many states).
    let t = Instant::now();
    for bytes in &updates {
        let doc = Document::parse(bytes).unwrap();
        std::hint::black_box(yfilter.match_document(&doc));
    }
    let yf_ms = t.elapsed().as_secs_f64() * 1e3 / updates.len() as f64;
    let t = Instant::now();
    for bytes in &updates {
        let doc = Document::parse(bytes).unwrap();
        std::hint::black_box(indexfilter.match_document(&doc));
    }
    let ixf_ms = t.elapsed().as_secs_f64() * 1e3 / updates.len() as f64;
    println!("\nbaselines over the {baseline_count} single-path subscriptions:");
    println!("  yfilter      {yf_ms:>7.2} ms/update");
    println!("  index-filter {ixf_ms:>7.2} ms/update");
}
