//! Minimal seeded pseudo-random number generator.
//!
//! The workload generators and the randomized test suites only need a
//! small, fully deterministic source of uniform values — not
//! cryptographic strength, stream cloning, or OS entropy. This crate
//! provides exactly that with zero dependencies, so the workspace builds
//! with no registry access: a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! generator behind a `gen_range`/`gen_bool` surface shaped like the
//! subset of `rand` the repo previously used.
//!
//! Determinism given a seed is part of the contract (workload generation
//! is seed-parameterized and tests assert reproducibility); the concrete
//! output sequence for a seed is *not* — it may change if the algorithm
//! is ever swapped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A small deterministic PRNG (SplitMix64).
///
/// ```
/// use pxf_rng::Rng;
/// let mut rng = Rng::seed_from_u64(42);
/// let a = rng.gen_range(0..10usize);
/// assert!(a < 10);
/// let p = rng.gen_bool(0.5);
/// let _ = p;
/// // Same seed, same sequence.
/// assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal sequences.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: the additive constant is the golden-ratio increment;
        // the finalizer is a bijective avalanche, so even seed 0 is fine.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in a range: `gen_range(0..n)`, `gen_range(a..=b)`,
    /// `gen_range(0.0..x)`. Panics on empty ranges, like `rand`.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform index in `0..n`. Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index on empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Picks a uniform element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_index(items.len())]
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_uniform_int!(i32, i64, u16, u32, u64, usize);

impl UniformRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(124);
        assert_ne!(Rng::seed_from_u64(123).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&f));
            let x = rng.gen_range(0..1usize);
            assert_eq!(x, 0);
            let y = rng.gen_range(7..=7u32);
            assert_eq!(y, 7);
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
