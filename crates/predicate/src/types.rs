//! The predicate language of the paper (§3.2 and §5).
//!
//! An XPath expression is encoded as an *ordered set of predicates*, each an
//! (attribute, operator, value) triple constraining tag positions:
//!
//! * **absolute** — `(p_t, op, v)`: the position of tag `t` in the path,
//! * **relative** — `(d(p_t1, p_t2), op, v)`: the distance between two tags,
//! * **end-of-path** — `(p_t⊣, ≥, v)`: the distance from tag `t` to the end
//!   of the path,
//! * **length-of-expression** — `(length, ≥, v)`: the path length.
//!
//! Attribute-based filters (§5) attach an *attribute predicate*
//! `[attr op value]` to a tag variable, e.g. `(p_t1([x,=,3]), =, 2)`.

use pxf_xml::Symbol;
use pxf_xpath::{AttrValue, CmpOp};
use std::fmt;

/// Identifier of a distinct predicate in a
/// [`PredicateIndex`](crate::PredicateIndex). Identical predicates across
/// expressions share one id — this is the paper's overlap sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

impl PredId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Positional comparison operator. The paper's encoding only ever needs
/// equality and greater-or-equal (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosOp {
    /// `=`
    Eq,
    /// `≥`
    Ge,
}

impl fmt::Display for PosOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PosOp::Eq => "=",
            PosOp::Ge => ">=",
        })
    }
}

/// An attribute predicate `[attr, op, v]` attached to a tag variable
/// (paper §5). `constraint == None` is a bare existence test `[@attr]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrConstraint {
    /// Attribute name. Stored as a string (not a [`Symbol`]) because
    /// evaluation looks attributes up on document elements by name.
    pub name: Box<str>,
    /// The comparison, or `None` for existence.
    pub constraint: Option<(CmpOp, AttrValue)>,
}

impl AttrConstraint {
    /// Evaluates this constraint against a raw attribute value (`None` =
    /// attribute absent on the element).
    pub fn matches(&self, raw: Option<&str>) -> bool {
        match (raw, &self.constraint) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(raw), Some((op, value))) => value
                .compare_raw(raw)
                .map(|ord| op.eval_ord(ord))
                .unwrap_or(false),
        }
    }
}

/// A tag variable, optionally carrying attribute predicates (inline mode,
/// §5). Constraints are kept sorted by attribute symbol so that equal sets
/// hash equally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TagVar {
    /// Interned tag name.
    pub tag: Symbol,
    /// Attribute predicates attached to this tag variable (empty unless the
    /// engine runs in inline attribute mode).
    pub attrs: Box<[AttrConstraint]>,
}

impl TagVar {
    /// A plain tag variable without attribute constraints.
    pub fn plain(tag: Symbol) -> Self {
        TagVar {
            tag,
            attrs: Box::new([]),
        }
    }

    /// A tag variable with attribute constraints (sorted internally).
    pub fn with_attrs(tag: Symbol, mut attrs: Vec<AttrConstraint>) -> Self {
        attrs.sort_by(|a, b| a.name.cmp(&b.name));
        TagVar {
            tag,
            attrs: attrs.into_boxed_slice(),
        }
    }

    /// True if this variable carries attribute constraints.
    pub fn has_attrs(&self) -> bool {
        !self.attrs.is_empty()
    }
}

/// One predicate of the paper's language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `(p_t, op, v)` — absolute position of tag `t`.
    Absolute {
        /// The constrained tag variable.
        tag: TagVar,
        /// `=` for absolute expressions without `//` before the tag, `≥`
        /// otherwise (and for relative expressions).
        op: PosOp,
        /// Position value (1-based).
        value: u32,
    },
    /// `(d(p_t1, p_t2), op, v)` — relative distance from `t1` to `t2`.
    Relative {
        /// The earlier tag variable.
        from: TagVar,
        /// The later tag variable.
        to: TagVar,
        /// `=` when no `//` lies between the tags, `≥` otherwise.
        op: PosOp,
        /// Distance in location steps (≥ 1).
        value: u32,
    },
    /// `(p_t⊣, ≥, v)` — at least `v` steps between tag `t` and the path end.
    EndOfPath {
        /// The constrained tag variable.
        tag: TagVar,
        /// Minimum distance to the end of the path (≥ 1).
        value: u32,
    },
    /// `(length, ≥, v)` — the path is at least `v` steps long.
    Length {
        /// Minimum path length.
        value: u32,
    },
}

impl Predicate {
    /// A plain absolute predicate.
    pub fn absolute(tag: Symbol, op: PosOp, value: u32) -> Self {
        Predicate::Absolute {
            tag: TagVar::plain(tag),
            op,
            value,
        }
    }

    /// A plain relative predicate.
    pub fn relative(from: Symbol, to: Symbol, op: PosOp, value: u32) -> Self {
        Predicate::Relative {
            from: TagVar::plain(from),
            to: TagVar::plain(to),
            op,
            value,
        }
    }

    /// A plain end-of-path predicate.
    pub fn end_of_path(tag: Symbol, value: u32) -> Self {
        Predicate::EndOfPath {
            tag: TagVar::plain(tag),
            value,
        }
    }

    /// A length-of-expression predicate.
    pub fn length(value: u32) -> Self {
        Predicate::Length { value }
    }

    /// True if any tag variable of this predicate carries attribute
    /// constraints.
    pub fn has_attrs(&self) -> bool {
        match self {
            Predicate::Absolute { tag, .. } | Predicate::EndOfPath { tag, .. } => tag.has_attrs(),
            Predicate::Relative { from, to, .. } => from.has_attrs() || to.has_attrs(),
            Predicate::Length { .. } => false,
        }
    }

    /// The *first* tag variable (chaining input): for relative predicates
    /// the `from` tag, otherwise the single tag (none for length).
    pub fn first_tag(&self) -> Option<Symbol> {
        match self {
            Predicate::Absolute { tag, .. } | Predicate::EndOfPath { tag, .. } => Some(tag.tag),
            Predicate::Relative { from, .. } => Some(from.tag),
            Predicate::Length { .. } => None,
        }
    }

    /// The *second* tag variable (chaining output): for relative predicates
    /// the `to` tag, otherwise the single tag (none for length).
    pub fn second_tag(&self) -> Option<Symbol> {
        match self {
            Predicate::Absolute { tag, .. } | Predicate::EndOfPath { tag, .. } => Some(tag.tag),
            Predicate::Relative { to, .. } => Some(to.tag),
            Predicate::Length { .. } => None,
        }
    }

    /// Renders the predicate in the paper's notation, e.g. `(p_a, =, 1)`,
    /// `(d(p_a, p_b), >=, 2)`, `(p_b-|, >=, 2)`, `(length, >=, 3)`.
    pub fn to_notation(&self, interner: &pxf_xml::Interner) -> String {
        fn tagvar(tv: &TagVar, interner: &pxf_xml::Interner) -> String {
            let mut s = format!("p_{}", interner.resolve(tv.tag));
            if tv.has_attrs() {
                s.push('(');
                for (i, c) in tv.attrs.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    match &c.constraint {
                        Some((op, v)) => s.push_str(&format!("[{}, {}, {}]", c.name, op, v)),
                        None => s.push_str(&format!("[{}]", c.name)),
                    }
                }
                s.push(')');
            }
            s
        }
        match self {
            Predicate::Absolute { tag, op, value } => {
                format!("({}, {}, {})", tagvar(tag, interner), op, value)
            }
            Predicate::Relative {
                from,
                to,
                op,
                value,
            } => format!(
                "(d({}, {}), {}, {})",
                tagvar(from, interner),
                tagvar(to, interner),
                op,
                value
            ),
            Predicate::EndOfPath { tag, value } => {
                format!("({}-|, >=, {})", tagvar(tag, interner), value)
            }
            Predicate::Length { value } => format!("(length, >=, {value})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagvar_attr_order_is_canonical() {
        let c1 = AttrConstraint {
            name: "y".into(),
            constraint: None,
        };
        let c2 = AttrConstraint {
            name: "x".into(),
            constraint: Some((CmpOp::Eq, AttrValue::Int(1))),
        };
        let a = TagVar::with_attrs(Symbol(0), vec![c1.clone(), c2.clone()]);
        let b = TagVar::with_attrs(Symbol(0), vec![c2, c1]);
        assert_eq!(a, b);
    }

    #[test]
    fn attr_constraint_eval() {
        let c = AttrConstraint {
            name: "x".into(),
            constraint: Some((CmpOp::Ge, AttrValue::Int(3))),
        };
        assert!(c.matches(Some("6")));
        assert!(!c.matches(Some("2")));
        assert!(!c.matches(None));
        let e = AttrConstraint {
            name: "x".into(),
            constraint: None,
        };
        assert!(e.matches(Some("anything")));
        assert!(!e.matches(None));
    }

    #[test]
    fn chain_tags() {
        let p = Predicate::relative(Symbol(1), Symbol(2), PosOp::Eq, 1);
        assert_eq!(p.first_tag(), Some(Symbol(1)));
        assert_eq!(p.second_tag(), Some(Symbol(2)));
        let a = Predicate::absolute(Symbol(3), PosOp::Eq, 1);
        assert_eq!(a.first_tag(), Some(Symbol(3)));
        assert_eq!(a.second_tag(), Some(Symbol(3)));
        assert_eq!(Predicate::length(3).first_tag(), None);
    }

    #[test]
    fn identical_predicates_are_equal() {
        let a = Predicate::relative(Symbol(1), Symbol(2), PosOp::Eq, 2);
        let b = Predicate::relative(Symbol(1), Symbol(2), PosOp::Eq, 2);
        assert_eq!(a, b);
        let c = Predicate::relative(Symbol(1), Symbol(2), PosOp::Ge, 2);
        assert_ne!(a, c);
    }
}
