//! Value-indexed storage for attribute-constrained predicates.
//!
//! A positional bucket (same tag, positional operator, and value) can hold
//! thousands of predicates differing only in their attribute constants —
//! `[@value = 17]`, `[@value >= 250]`, … . Evaluating them one by one per
//! tuple is linear in the subscription count; this module applies the
//! predicate-indexing idea of Fabret et al. (SIGMOD 2001), which the paper
//! builds on for its access predicates, to the attribute dimension:
//!
//! * equality constraints are hashed by constant (integer or string),
//! * lower bounds (`>=`, `>`) are sorted ascending: for a document value
//!   `v`, exactly a prefix of constants satisfies `c ≤ v`,
//! * upper bounds (`<=`, `<`) are sorted descending, symmetrically,
//! * everything else (`!=`, existence, string ranges) stays in a small
//!   linear overflow list.
//!
//! Entries are grouped by the *first* attribute constraint of their tag
//! variable; on a hit the full tag variable (all constraints, both tag
//! variables for relative predicates) is re-verified.

use crate::types::{AttrConstraint, TagVar};
use pxf_xpath::{AttrValue, CmpOp};
use std::collections::HashMap;

/// A set of attribute-constrained entries sharing one positional bucket,
/// indexed by their first attribute constraint.
#[derive(Debug, Clone)]
pub struct AttrBucket<E> {
    groups: Vec<AttrGroup<E>>,
    /// Entries whose *indexed* tag variable has no constraints cannot
    /// exist (plain predicates live in the plain arrays), but entries whose
    /// first constraint is not indexable land here.
    overflow: Vec<E>,
    len: usize,
}

impl<E> Default for AttrBucket<E> {
    fn default() -> Self {
        AttrBucket {
            groups: Vec::new(),
            overflow: Vec::new(),
            len: 0,
        }
    }
}

/// Sorted range constraints in structure-of-arrays layout: the constant
/// and strictness columns are dense (no entry payload interleaved), so
/// the admissible prefix is found by binary search over the bare `i64`
/// column and emitted in one tight pass — the vectorizable whole-element
/// batch evaluation of the compact-layout work.
#[derive(Debug, Clone)]
struct RangeCols<E> {
    bounds: Vec<i64>,
    strict: Vec<bool>,
    entries: Vec<E>,
}

impl<E> RangeCols<E> {
    fn new() -> Self {
        RangeCols {
            bounds: Vec::new(),
            strict: Vec::new(),
            entries: Vec::new(),
        }
    }

    fn insert_at(&mut self, pos: usize, bound: i64, strict: bool, entry: E) {
        self.bounds.insert(pos, bound);
        self.strict.insert(pos, strict);
        self.entries.insert(pos, entry);
    }

    /// Removes the first entry matching `pred`, keeping the three columns
    /// aligned and the bounds sorted.
    fn remove_where(&mut self, pred: &impl Fn(&E) -> bool) -> bool {
        match self.entries.iter().position(pred) {
            Some(pos) => {
                self.bounds.remove(pos);
                self.strict.remove(pos);
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Visits the entries of the admissible prefix `[0, end)`, skipping
    /// strict bounds equal to `v`.
    fn emit_prefix<'a>(&'a self, end: usize, v: i64, visit: &mut impl FnMut(&'a E)) {
        for i in 0..end {
            if self.strict[i] && self.bounds[i] == v {
                continue;
            }
            visit(&self.entries[i]);
        }
    }
}

#[derive(Debug, Clone)]
struct AttrGroup<E> {
    name: Box<str>,
    int_eq: HashMap<i64, Vec<E>>,
    str_eq: HashMap<Box<str>, Vec<E>>,
    /// Bounds sorted ascending: entry matches iff `v > c` (strict) or
    /// `v ≥ c`.
    lower: RangeCols<E>,
    /// Bounds sorted descending: `v < c` / `v ≤ c`.
    upper: RangeCols<E>,
    /// `!=`, existence tests, string range comparisons.
    other: Vec<E>,
}

impl<E> AttrGroup<E> {
    fn new(name: &str) -> Self {
        AttrGroup {
            name: name.into(),
            int_eq: HashMap::new(),
            str_eq: HashMap::new(),
            lower: RangeCols::new(),
            upper: RangeCols::new(),
            other: Vec::new(),
        }
    }
}

impl<E> AttrBucket<E> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bucket holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry indexed by the first constraint of `key` (the tag
    /// variable carrying the constraints).
    pub fn insert(&mut self, key: &TagVar, entry: E) {
        self.len += 1;
        let Some(first) = key.attrs.first() else {
            self.overflow.push(entry);
            return;
        };
        let gi = match self.groups.iter().position(|g| *g.name == *first.name) {
            Some(i) => i,
            None => {
                self.groups.push(AttrGroup::new(&first.name));
                self.groups.len() - 1
            }
        };
        let group = &mut self.groups[gi];
        match &first.constraint {
            Some((CmpOp::Eq, AttrValue::Int(n))) => group.int_eq.entry(*n).or_default().push(entry),
            Some((CmpOp::Eq, AttrValue::Str(s))) => group
                .str_eq
                .entry(s.as_str().into())
                .or_default()
                .push(entry),
            Some((CmpOp::Ge, AttrValue::Int(n))) => {
                let pos = group.lower.bounds.partition_point(|&c| c < *n);
                group.lower.insert_at(pos, *n, false, entry);
            }
            Some((CmpOp::Gt, AttrValue::Int(n))) => {
                let pos = group.lower.bounds.partition_point(|&c| c < *n);
                group.lower.insert_at(pos, *n, true, entry);
            }
            Some((CmpOp::Le, AttrValue::Int(n))) => {
                let pos = group.upper.bounds.partition_point(|&c| c > *n);
                group.upper.insert_at(pos, *n, false, entry);
            }
            Some((CmpOp::Lt, AttrValue::Int(n))) => {
                let pos = group.upper.bounds.partition_point(|&c| c > *n);
                group.upper.insert_at(pos, *n, true, entry);
            }
            _ => group.other.push(entry),
        }
    }

    /// Removes the first entry matching `pred` from the slot that `insert`
    /// routed `key` to. Returns whether an entry was removed. Swap-removal
    /// inside hash/overflow lists is fine (consumers never rely on entry
    /// order); the sorted range columns shift to stay aligned.
    pub fn remove_entry(&mut self, key: &TagVar, pred: impl Fn(&E) -> bool) -> bool {
        let removed = 'found: {
            let Some(first) = key.attrs.first() else {
                break 'found match self.overflow.iter().position(&pred) {
                    Some(pos) => {
                        self.overflow.swap_remove(pos);
                        true
                    }
                    None => false,
                };
            };
            let Some(group) = self.groups.iter_mut().find(|g| *g.name == *first.name) else {
                break 'found false;
            };
            match &first.constraint {
                Some((CmpOp::Eq, AttrValue::Int(n))) => match group.int_eq.get_mut(n) {
                    Some(list) => match list.iter().position(&pred) {
                        Some(pos) => {
                            list.swap_remove(pos);
                            true
                        }
                        None => false,
                    },
                    None => false,
                },
                Some((CmpOp::Eq, AttrValue::Str(s))) => match group.str_eq.get_mut(s.as_str()) {
                    Some(list) => match list.iter().position(&pred) {
                        Some(pos) => {
                            list.swap_remove(pos);
                            true
                        }
                        None => false,
                    },
                    None => false,
                },
                Some((CmpOp::Ge | CmpOp::Gt, AttrValue::Int(_))) => group.lower.remove_where(&pred),
                Some((CmpOp::Le | CmpOp::Lt, AttrValue::Int(_))) => group.upper.remove_where(&pred),
                _ => match group.other.iter().position(&pred) {
                    Some(pos) => {
                        group.other.swap_remove(pos);
                        true
                    }
                    None => false,
                },
            }
        };
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Iterates every entry (dedup lookups at insert time).
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.overflow.iter().chain(self.groups.iter().flat_map(|g| {
            g.int_eq
                .values()
                .flatten()
                .chain(g.str_eq.values().flatten())
                .chain(g.lower.entries.iter())
                .chain(g.upper.entries.iter())
                .chain(g.other.iter())
        }))
    }

    /// Approximate heap footprint in bytes: the SoA range columns, the
    /// hash maps (counted per occupied slot plus payload vectors), and
    /// the overflow list. An estimate for reporting, not an allocator
    /// audit.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let e = size_of::<E>();
        let mut bytes = self.overflow.capacity() * e;
        for g in &self.groups {
            bytes += g.name.len();
            for list in g.int_eq.values() {
                bytes += size_of::<i64>() + size_of::<Vec<E>>() + list.capacity() * e;
            }
            for (k, list) in &g.str_eq {
                bytes +=
                    k.len() + size_of::<Box<str>>() + size_of::<Vec<E>>() + list.capacity() * e;
            }
            bytes += g.lower.bounds.capacity() * size_of::<i64>()
                + g.lower.strict.capacity()
                + g.lower.entries.capacity() * e;
            bytes += g.upper.bounds.capacity() * size_of::<i64>()
                + g.upper.strict.capacity()
                + g.upper.entries.capacity() * e;
            bytes += g.other.capacity() * e;
        }
        bytes
    }

    /// Visits every entry whose *first* constraint is satisfied by the
    /// attributes reported by `attr_of` (raw string value per name).
    /// Callers re-verify the entry's full constraints before use.
    pub fn for_each_candidate<'a, F, A>(&'a self, mut attr_of: A, mut visit: F)
    where
        F: FnMut(&'a E),
        A: FnMut(&str) -> Option<&'a str>,
    {
        for entry in &self.overflow {
            visit(entry);
        }
        for group in &self.groups {
            let raw = attr_of(&group.name);
            for entry in &group.other {
                visit(entry);
            }
            let Some(raw) = raw else { continue };
            if let Some(list) = group.str_eq.get(raw) {
                for entry in list {
                    visit(entry);
                }
            }
            let Ok(v) = raw.trim().parse::<i64>() else {
                continue;
            };
            if let Some(list) = group.int_eq.get(&v) {
                for entry in list {
                    visit(entry);
                }
            }
            // Ascending bounds: the admissible lower-bound entries are
            // exactly the prefix with `c ≤ v`; symmetric for the
            // descending upper bounds. The prefix end comes from a
            // binary search over the bare bounds column.
            let end = group.lower.bounds.partition_point(|&c| c <= v);
            group.lower.emit_prefix(end, v, &mut visit);
            let end = group.upper.bounds.partition_point(|&c| c >= v);
            group.upper.emit_prefix(end, v, &mut visit);
        }
    }
}

/// Verifies every constraint of a tag variable against an element's
/// attributes (full re-check after an index hit).
pub fn verify_tagvar<'a, A>(tag: &TagVar, mut attr_of: A) -> bool
where
    A: FnMut(&str) -> Option<&'a str>,
{
    tag.attrs
        .iter()
        .all(|c: &AttrConstraint| c.matches(attr_of(&c.name)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxf_xml::Symbol;

    fn tv(constraints: &[(&str, Option<(CmpOp, AttrValue)>)]) -> TagVar {
        TagVar::with_attrs(
            Symbol(0),
            constraints
                .iter()
                .map(|(n, c)| AttrConstraint {
                    name: (*n).into(),
                    constraint: c.clone(),
                })
                .collect(),
        )
    }

    fn candidates(bucket: &AttrBucket<u32>, attrs: &[(&str, &str)]) -> Vec<u32> {
        let mut out = Vec::new();
        bucket.for_each_candidate(
            |name| attrs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v),
            |&e| out.push(e),
        );
        out.sort_unstable();
        out
    }

    #[test]
    fn equality_hashing() {
        let mut b: AttrBucket<u32> = AttrBucket::default();
        for (i, v) in [3i64, 5, 3, 7].iter().enumerate() {
            b.insert(
                &tv(&[("x", Some((CmpOp::Eq, AttrValue::Int(*v))))]),
                i as u32,
            );
        }
        assert_eq!(b.len(), 4);
        assert_eq!(candidates(&b, &[("x", "3")]), vec![0, 2]);
        assert_eq!(candidates(&b, &[("x", "7")]), vec![3]);
        assert_eq!(candidates(&b, &[("x", "9")]), Vec::<u32>::new());
        assert_eq!(candidates(&b, &[("y", "3")]), Vec::<u32>::new());
    }

    #[test]
    fn range_prefix_scans() {
        let mut b: AttrBucket<u32> = AttrBucket::default();
        b.insert(&tv(&[("x", Some((CmpOp::Ge, AttrValue::Int(10))))]), 0);
        b.insert(&tv(&[("x", Some((CmpOp::Gt, AttrValue::Int(10))))]), 1);
        b.insert(&tv(&[("x", Some((CmpOp::Ge, AttrValue::Int(20))))]), 2);
        b.insert(&tv(&[("x", Some((CmpOp::Le, AttrValue::Int(15))))]), 3);
        b.insert(&tv(&[("x", Some((CmpOp::Lt, AttrValue::Int(10))))]), 4);
        assert_eq!(candidates(&b, &[("x", "10")]), vec![0, 3]);
        assert_eq!(candidates(&b, &[("x", "12")]), vec![0, 1, 3]);
        assert_eq!(candidates(&b, &[("x", "25")]), vec![0, 1, 2]);
        assert_eq!(candidates(&b, &[("x", "5")]), vec![3, 4]);
    }

    #[test]
    fn string_and_other_constraints() {
        let mut b: AttrBucket<u32> = AttrBucket::default();
        b.insert(
            &tv(&[("cat", Some((CmpOp::Eq, AttrValue::Str("news".into()))))]),
            0,
        );
        b.insert(
            &tv(&[("cat", Some((CmpOp::Ne, AttrValue::Str("news".into()))))]),
            1,
        );
        b.insert(&tv(&[("cat", None)]), 2); // existence → other
        assert_eq!(candidates(&b, &[("cat", "news")]), vec![0, 1, 2]);
        // "other" entries are always candidates (verified later).
        assert_eq!(candidates(&b, &[("cat", "sports")]), vec![1, 2]);
        assert_eq!(candidates(&b, &[]), vec![1, 2]);
    }

    #[test]
    fn candidates_are_a_superset_of_matches() {
        // Index soundness: every truly matching entry must be visited.
        let mut b: AttrBucket<u32> = AttrBucket::default();
        let mut vars = Vec::new();
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        let mut k = 0;
        for op in ops {
            for c in [-2i64, 0, 3, 7] {
                let var = tv(&[("x", Some((op, AttrValue::Int(c))))]);
                b.insert(&var, k);
                vars.push(var);
                k += 1u32;
            }
        }
        for v in [-3i64, -2, 0, 1, 3, 5, 7, 100] {
            let raw = v.to_string();
            let attrs = [("x", raw.as_str())];
            let cands = candidates(&b, &attrs);
            for (i, var) in vars.iter().enumerate() {
                let matches = verify_tagvar(var, |name| {
                    attrs.iter().find(|(n, _)| *n == name).map(|(_, r)| *r)
                });
                if matches {
                    assert!(cands.contains(&(i as u32)), "entry {i} missing for v={v}");
                }
            }
        }
    }

    #[test]
    fn multi_constraint_indexed_by_first() {
        // Constraints are sorted by name: first = "a".
        let var = tv(&[
            ("b", Some((CmpOp::Eq, AttrValue::Int(1)))),
            ("a", Some((CmpOp::Eq, AttrValue::Int(2)))),
        ]);
        let mut b: AttrBucket<u32> = AttrBucket::default();
        b.insert(&var, 0);
        // Candidate when a=2 (first constraint), even if b is wrong —
        // verification rejects it later.
        assert_eq!(candidates(&b, &[("a", "2"), ("b", "9")]), vec![0]);
        assert_eq!(candidates(&b, &[("a", "3"), ("b", "1")]), Vec::<u32>::new());
        assert!(!verify_tagvar(&var, |n| {
            [("a", "2"), ("b", "9")]
                .iter()
                .find(|(x, _)| *x == n)
                .map(|(_, v)| *v)
        }));
    }
}
