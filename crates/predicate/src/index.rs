//! The predicate index (paper §4.1.2, Fig. 1) and predicate matching.
//!
//! Distinct predicates are managed through staged lookups: the first stage
//! dispatches on predicate type; absolute predicates hash on the tag name
//! into per-operator arrays indexed by the predicate value; relative
//! predicates use a two-stage lookup on (first tag, second tag); end-of-path
//! predicates use one array per tag; length predicates a single array.
//! Inserting a predicate that already exists returns the existing
//! [`PredId`] — overlapping parts of different XPEs are stored and evaluated
//! exactly once.
//!
//! Attribute-constrained predicates (inline mode, §5) cannot be indexed by
//! position value alone (several distinct predicates can share (tag, op, v)
//! but differ in their attribute filters), so they live in per-tag side
//! lists scanned during evaluation.

use crate::attr_index::{verify_tagvar, AttrBucket};
use crate::publication::{PathTuple, Publication};
use crate::types::{PosOp, PredId, Predicate, TagVar};
use pxf_xml::{DocAccess, Symbol};
use std::collections::HashMap;

/// Per-operator arrays of predicate ids, indexed by predicate value.
#[derive(Debug, Default, Clone)]
struct OpArrays {
    eq: Vec<Option<PredId>>,
    ge: Vec<Option<PredId>>,
}

impl OpArrays {
    fn slot(&mut self, op: PosOp, value: u32) -> &mut Option<PredId> {
        let arr = match op {
            PosOp::Eq => &mut self.eq,
            PosOp::Ge => &mut self.ge,
        };
        let idx = value as usize;
        if arr.len() <= idx {
            arr.resize(idx + 1, None);
        }
        &mut arr[idx]
    }
}

/// An attribute-constrained absolute or end-of-path predicate entry. The
/// positional operator and value are implicit in the bucket holding the
/// entry.
#[derive(Debug, Clone)]
struct AttrUnary {
    tag: TagVar,
    pid: PredId,
}

/// An attribute-constrained relative predicate entry (keyed by the `from`
/// tag and, within [`AttrOpLists`], by operator and value).
#[derive(Debug, Clone)]
struct AttrBinary {
    from: TagVar,
    to: TagVar,
    pid: PredId,
}

/// Positional slot for relative attribute predicates: entries indexed by
/// whichever tag variable carries constraints.
#[derive(Debug, Clone, Default)]
struct RelSlot {
    by_from: AttrBucket<AttrBinary>,
    by_to: AttrBucket<AttrBinary>,
}

impl RelSlot {
    fn insert(&mut self, entry: AttrBinary) {
        if entry.from.has_attrs() {
            let key = entry.from.clone();
            self.by_from.insert(&key, entry);
        } else {
            let key = entry.to.clone();
            self.by_to.insert(&key, entry);
        }
    }

    /// Removes the entry with this predicate id, routing by the same key
    /// rule as [`Self::insert`].
    fn remove(&mut self, from: &TagVar, to: &TagVar, pid: PredId) -> bool {
        if from.has_attrs() {
            self.by_from.remove_entry(from, |e| e.pid == pid)
        } else {
            self.by_to.remove_entry(to, |e| e.pid == pid)
        }
    }

    fn find(&self, from: &TagVar, to: &TagVar) -> Option<PredId> {
        self.by_from
            .iter()
            .chain(self.by_to.iter())
            .find(|e| e.from == *from && e.to == *to)
            .map(|e| e.pid)
    }
}

/// Attribute-predicate slots, value-indexed exactly like the plain
/// [`OpArrays`] — so evaluation only ever touches slots whose positional
/// relation already holds.
#[derive(Debug, Clone)]
struct AttrOpLists<S> {
    eq: Vec<S>,
    ge: Vec<S>,
}

impl<S> Default for AttrOpLists<S> {
    fn default() -> Self {
        AttrOpLists {
            eq: Vec::new(),
            ge: Vec::new(),
        }
    }
}

impl<S: Default> AttrOpLists<S> {
    fn slot_mut(&mut self, op: PosOp, value: u32) -> &mut S {
        let arr = match op {
            PosOp::Eq => &mut self.eq,
            PosOp::Ge => &mut self.ge,
        };
        let idx = value as usize;
        if arr.len() <= idx {
            arr.resize_with(idx + 1, S::default);
        }
        &mut arr[idx]
    }

    fn slot(&self, op: PosOp, value: u32) -> Option<&S> {
        let arr = match op {
            PosOp::Eq => &self.eq,
            PosOp::Ge => &self.ge,
        };
        arr.get(value as usize)
    }

    /// Mutable access to an already-allocated slot (no resizing — used by
    /// predicate release, which must not grow the tables).
    fn existing_slot_mut(&mut self, op: PosOp, value: u32) -> Option<&mut S> {
        let arr = match op {
            PosOp::Eq => &mut self.eq,
            PosOp::Ge => &mut self.ge,
        };
        arr.get_mut(value as usize)
    }
}

/// Grow-on-demand dense table indexed by [`Symbol`].
#[derive(Debug, Clone)]
struct SymTable<T>(Vec<T>);

impl<T: Default> SymTable<T> {
    fn new() -> Self {
        SymTable(Vec::new())
    }
    fn get(&self, sym: Symbol) -> Option<&T> {
        self.0.get(sym.index())
    }
    fn get_mut(&mut self, sym: Symbol) -> &mut T {
        let idx = sym.index();
        if self.0.len() <= idx {
            self.0.resize_with(idx + 1, T::default);
        }
        &mut self.0[idx]
    }
}

/// The predicate index: distinct-predicate storage plus the access paths
/// used for matching (paper Fig. 1).
#[derive(Debug, Clone)]
pub struct PredicateIndex {
    /// Absolute predicates: tag → per-operator value arrays.
    absolute: SymTable<OpArrays>,
    /// Relative predicates: first tag → (second tag → value arrays). The
    /// paper's two-stage hash; the first stage is a dense symbol table.
    relative: SymTable<HashMap<Symbol, OpArrays>>,
    /// End-of-path predicates: tag → value array (operator is always ≥).
    end_of_path: SymTable<Vec<Option<PredId>>>,
    /// Length predicates: value array (operator is always ≥).
    length: Vec<Option<PredId>>,
    /// Attribute-constrained predicates, bucketed by tag, positional
    /// operator and value, then indexed by attribute constant (see
    /// [`crate::attr_index`]).
    absolute_attr: SymTable<AttrOpLists<AttrBucket<AttrUnary>>>,
    relative_attr: SymTable<HashMap<Symbol, AttrOpLists<RelSlot>>>,
    end_attr: SymTable<AttrOpLists<AttrBucket<AttrUnary>>>,
    /// Whether any attribute-constrained predicate exists (skips side-list
    /// scans entirely otherwise).
    has_attr_preds: bool,
    /// Tags that appear as the *second* tag of some plain relative
    /// predicate, indexed by [`Symbol::index`]. Incremental evaluation
    /// pairs a newly entered element against every ancestor on the path
    /// stack; this bitmap skips that O(depth) loop for the (common) tags
    /// that no relative predicate ends on.
    rel_to: Vec<bool>,
    /// Same, for attribute-constrained relative predicates.
    rel_attr_to: Vec<bool>,
    /// PredId → predicate.
    preds: Vec<Predicate>,
    /// PredId → number of expression levels referencing the predicate
    /// ([`Self::insert`] bumps, [`Self::release`] decrements; at zero the
    /// dispatch slot is cleared so the predicate stops matching). Ids are
    /// never reused.
    refs: Vec<u32>,
}

impl Default for PredicateIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl PredicateIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        PredicateIndex {
            absolute: SymTable::new(),
            relative: SymTable::new(),
            end_of_path: SymTable::new(),
            length: Vec::new(),
            absolute_attr: SymTable::new(),
            relative_attr: SymTable::new(),
            end_attr: SymTable::new(),
            has_attr_preds: false,
            rel_to: Vec::new(),
            rel_attr_to: Vec::new(),
            preds: Vec::new(),
            refs: Vec::new(),
        }
    }

    /// True if any attribute-constrained (inline-mode) predicate is stored.
    /// Equal tag sequences are then *not* guaranteed to produce equal match
    /// results, which disables per-document path memoization upstream.
    pub fn has_attr_predicates(&self) -> bool {
        self.has_attr_preds
    }

    fn mark_to_tag(bits: &mut Vec<bool>, sym: Symbol) {
        let idx = sym.index();
        if bits.len() <= idx {
            bits.resize(idx + 1, false);
        }
        bits[idx] = true;
    }

    /// Number of distinct predicates stored (the paper's Fig. 10 metric).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True if no predicate has been inserted.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Approximate heap footprint of the index's access paths in bytes:
    /// the dense per-operator value arrays, the relative two-stage hash,
    /// the attribute buckets, and the distinct-predicate store. An
    /// estimate for `index_bytes` reporting, not an allocator audit.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        fn op_arrays(a: &OpArrays) -> usize {
            (a.eq.capacity() + a.ge.capacity()) * size_of::<Option<PredId>>()
        }
        fn unary_lists(lists: &AttrOpLists<AttrBucket<AttrUnary>>) -> usize {
            let inline =
                (lists.eq.capacity() + lists.ge.capacity()) * size_of::<AttrBucket<AttrUnary>>();
            inline
                + lists
                    .eq
                    .iter()
                    .chain(&lists.ge)
                    .map(AttrBucket::approx_bytes)
                    .sum::<usize>()
        }
        let mut bytes = self.preds.capacity() * size_of::<Predicate>();
        bytes += self.refs.capacity() * size_of::<u32>();
        bytes += self.length.capacity() * size_of::<Option<PredId>>();
        bytes += self.rel_to.capacity() + self.rel_attr_to.capacity();
        bytes += self.absolute.0.capacity() * size_of::<OpArrays>();
        bytes += self.absolute.0.iter().map(op_arrays).sum::<usize>();
        for map in &self.relative.0 {
            for arrays in map.values() {
                bytes += size_of::<(Symbol, OpArrays)>() + op_arrays(arrays);
            }
        }
        for arr in &self.end_of_path.0 {
            bytes += arr.capacity() * size_of::<Option<PredId>>();
        }
        bytes += self.absolute_attr.0.iter().map(unary_lists).sum::<usize>();
        bytes += self.end_attr.0.iter().map(unary_lists).sum::<usize>();
        for map in &self.relative_attr.0 {
            for lists in map.values() {
                bytes += size_of::<(Symbol, AttrOpLists<RelSlot>)>()
                    + (lists.eq.capacity() + lists.ge.capacity()) * size_of::<RelSlot>();
                for slot in lists.eq.iter().chain(&lists.ge) {
                    bytes += slot.by_from.approx_bytes() + slot.by_to.approx_bytes();
                }
            }
        }
        bytes
    }

    /// Returns the predicate for an id.
    pub fn predicate(&self, pid: PredId) -> &Predicate {
        &self.preds[pid.index()]
    }

    fn alloc(preds: &mut Vec<Predicate>, refs: &mut Vec<u32>, pred: Predicate) -> PredId {
        let pid = PredId(preds.len() as u32);
        preds.push(pred);
        refs.push(1);
        pid
    }

    /// Bumps the reference count of an already-stored predicate.
    fn bump(refs: &mut [u32], pid: PredId) -> PredId {
        refs[pid.index()] += 1;
        pid
    }

    /// Inserts a predicate, returning its id. If the exact same predicate is
    /// already stored, the existing id is returned (overlap sharing) with
    /// its reference count bumped; every insertion must eventually be
    /// balanced by a [`Self::release`] for removal to reclaim slots.
    pub fn insert(&mut self, pred: Predicate) -> PredId {
        match &pred {
            Predicate::Absolute { tag, op, value } if !tag.has_attrs() => {
                let slot = self.absolute.get_mut(tag.tag).slot(*op, *value);
                match slot {
                    Some(pid) => Self::bump(&mut self.refs, *pid),
                    None => {
                        let pid = Self::alloc(&mut self.preds, &mut self.refs, pred.clone());
                        *slot = Some(pid);
                        pid
                    }
                }
            }
            Predicate::Relative {
                from,
                to,
                op,
                value,
            } if !from.has_attrs() && !to.has_attrs() => {
                Self::mark_to_tag(&mut self.rel_to, to.tag);
                let slot = self
                    .relative
                    .get_mut(from.tag)
                    .entry(to.tag)
                    .or_default()
                    .slot(*op, *value);
                match slot {
                    Some(pid) => Self::bump(&mut self.refs, *pid),
                    None => {
                        let pid = Self::alloc(&mut self.preds, &mut self.refs, pred.clone());
                        *slot = Some(pid);
                        pid
                    }
                }
            }
            Predicate::EndOfPath { tag, value } if !tag.has_attrs() => {
                let arr = self.end_of_path.get_mut(tag.tag);
                let idx = *value as usize;
                if arr.len() <= idx {
                    arr.resize(idx + 1, None);
                }
                match &arr[idx] {
                    Some(pid) => Self::bump(&mut self.refs, *pid),
                    None => {
                        let pid = Self::alloc(&mut self.preds, &mut self.refs, pred.clone());
                        arr[idx] = Some(pid);
                        pid
                    }
                }
            }
            Predicate::Length { value } => {
                let idx = *value as usize;
                if self.length.len() <= idx {
                    self.length.resize(idx + 1, None);
                }
                match &self.length[idx] {
                    Some(pid) => Self::bump(&mut self.refs, *pid),
                    None => {
                        let pid = Self::alloc(&mut self.preds, &mut self.refs, pred.clone());
                        self.length[idx] = Some(pid);
                        pid
                    }
                }
            }
            // Attribute-constrained variants: value-indexed slots holding
            // constant-indexed buckets, with dedup on the full tag
            // variables.
            Predicate::Absolute { tag, op, value } => {
                self.has_attr_preds = true;
                let bucket = self.absolute_attr.get_mut(tag.tag).slot_mut(*op, *value);
                if let Some(e) = bucket.iter().find(|e| e.tag == *tag) {
                    return Self::bump(&mut self.refs, e.pid);
                }
                let pid = Self::alloc(&mut self.preds, &mut self.refs, pred.clone());
                bucket.insert(
                    tag,
                    AttrUnary {
                        tag: tag.clone(),
                        pid,
                    },
                );
                pid
            }
            Predicate::Relative {
                from,
                to,
                op,
                value,
            } => {
                self.has_attr_preds = true;
                Self::mark_to_tag(&mut self.rel_attr_to, to.tag);
                let slot = self
                    .relative_attr
                    .get_mut(from.tag)
                    .entry(to.tag)
                    .or_default()
                    .slot_mut(*op, *value);
                if let Some(pid) = slot.find(from, to) {
                    return Self::bump(&mut self.refs, pid);
                }
                let pid = Self::alloc(&mut self.preds, &mut self.refs, pred.clone());
                slot.insert(AttrBinary {
                    from: from.clone(),
                    to: to.clone(),
                    pid,
                });
                pid
            }
            Predicate::EndOfPath { tag, value } => {
                self.has_attr_preds = true;
                let bucket = self.end_attr.get_mut(tag.tag).slot_mut(PosOp::Ge, *value);
                if let Some(e) = bucket.iter().find(|e| e.tag == *tag) {
                    return Self::bump(&mut self.refs, e.pid);
                }
                let pid = Self::alloc(&mut self.preds, &mut self.refs, pred.clone());
                bucket.insert(
                    tag,
                    AttrUnary {
                        tag: tag.clone(),
                        pid,
                    },
                );
                pid
            }
        }
    }

    /// Releases one reference on a predicate (the inverse of one
    /// [`Self::insert`]). When the count reaches zero the predicate's
    /// dispatch slot is cleared, so it stops matching publications and a
    /// later identical insert allocates a fresh id. The id itself and the
    /// stored [`Predicate`] are never reused or deallocated; the `rel_to`
    /// bitmaps stay set (they are conservative filters, not correctness
    /// state).
    pub fn release(&mut self, pid: PredId) {
        let Some(r) = self.refs.get_mut(pid.index()) else {
            return;
        };
        if *r == 0 {
            return;
        }
        *r -= 1;
        if *r != 0 {
            return;
        }
        let pred = self.preds[pid.index()].clone();
        match &pred {
            Predicate::Absolute { tag, op, value } if !tag.has_attrs() => {
                if let Some(arrays) = self.absolute.0.get_mut(tag.tag.index()) {
                    let arr = match op {
                        PosOp::Eq => &mut arrays.eq,
                        PosOp::Ge => &mut arrays.ge,
                    };
                    if let Some(slot) = arr.get_mut(*value as usize) {
                        if *slot == Some(pid) {
                            *slot = None;
                        }
                    }
                }
            }
            Predicate::Relative {
                from,
                to,
                op,
                value,
            } if !from.has_attrs() && !to.has_attrs() => {
                if let Some(arrays) = self
                    .relative
                    .0
                    .get_mut(from.tag.index())
                    .and_then(|m| m.get_mut(&to.tag))
                {
                    let arr = match op {
                        PosOp::Eq => &mut arrays.eq,
                        PosOp::Ge => &mut arrays.ge,
                    };
                    if let Some(slot) = arr.get_mut(*value as usize) {
                        if *slot == Some(pid) {
                            *slot = None;
                        }
                    }
                }
            }
            Predicate::EndOfPath { tag, value } if !tag.has_attrs() => {
                if let Some(slot) = self
                    .end_of_path
                    .0
                    .get_mut(tag.tag.index())
                    .and_then(|arr| arr.get_mut(*value as usize))
                {
                    if *slot == Some(pid) {
                        *slot = None;
                    }
                }
            }
            Predicate::Length { value } => {
                if let Some(slot) = self.length.get_mut(*value as usize) {
                    if *slot == Some(pid) {
                        *slot = None;
                    }
                }
            }
            Predicate::Absolute { tag, op, value } => {
                if let Some(bucket) = self
                    .absolute_attr
                    .0
                    .get_mut(tag.tag.index())
                    .and_then(|lists| lists.existing_slot_mut(*op, *value))
                {
                    bucket.remove_entry(tag, |e| e.pid == pid);
                }
            }
            Predicate::Relative {
                from,
                to,
                op,
                value,
            } => {
                if let Some(slot) = self
                    .relative_attr
                    .0
                    .get_mut(from.tag.index())
                    .and_then(|m| m.get_mut(&to.tag))
                    .and_then(|lists| lists.existing_slot_mut(*op, *value))
                {
                    slot.remove(from, to, pid);
                }
            }
            Predicate::EndOfPath { tag, value } => {
                if let Some(bucket) = self
                    .end_attr
                    .0
                    .get_mut(tag.tag.index())
                    .and_then(|lists| lists.existing_slot_mut(PosOp::Ge, *value))
                {
                    bucket.remove_entry(tag, |e| e.pid == pid);
                }
            }
        }
    }

    /// Looks up a predicate without inserting.
    pub fn get(&self, pred: &Predicate) -> Option<PredId> {
        match pred {
            Predicate::Absolute { tag, op, value } if !tag.has_attrs() => {
                let arrays = self.absolute.get(tag.tag)?;
                let arr = match op {
                    PosOp::Eq => &arrays.eq,
                    PosOp::Ge => &arrays.ge,
                };
                arr.get(*value as usize).copied().flatten()
            }
            Predicate::Relative {
                from,
                to,
                op,
                value,
            } if !from.has_attrs() && !to.has_attrs() => {
                let arrays = self.relative.get(from.tag)?.get(&to.tag)?;
                let arr = match op {
                    PosOp::Eq => &arrays.eq,
                    PosOp::Ge => &arrays.ge,
                };
                arr.get(*value as usize).copied().flatten()
            }
            Predicate::EndOfPath { tag, value } if !tag.has_attrs() => self
                .end_of_path
                .get(tag.tag)?
                .get(*value as usize)
                .copied()
                .flatten(),
            Predicate::Length { value } => self.length.get(*value as usize).copied().flatten(),
            Predicate::Absolute { tag, op, value } => self
                .absolute_attr
                .get(tag.tag)?
                .slot(*op, *value)?
                .iter()
                .find(|e| e.tag == *tag)
                .map(|e| e.pid),
            Predicate::Relative {
                from,
                to,
                op,
                value,
            } => self
                .relative_attr
                .get(from.tag)?
                .get(&to.tag)?
                .slot(*op, *value)?
                .find(from, to),
            Predicate::EndOfPath { tag, value } => self
                .end_attr
                .get(tag.tag)?
                .slot(PosOp::Ge, *value)?
                .iter()
                .find(|e| e.tag == *tag)
                .map(|e| e.pid),
        }
    }

    /// Evaluates a publication against every predicate in the index
    /// (paper §4.1), recording matches in `ctx`. `doc` is required when
    /// attribute-constrained predicates are present (inline mode).
    pub fn evaluate<D: DocAccess>(
        &self,
        publication: &Publication,
        doc: Option<&D>,
        ctx: &mut MatchContext,
    ) {
        ctx.begin(self.preds.len());
        let len = publication.length;

        // Length-of-expression predicates: (length, ≥, v) matches iff v ≤ n.
        let max_l = (self.length.len().saturating_sub(1) as u16).min(len);
        for v in 1..=max_l {
            if let Some(pid) = self.length[v as usize] {
                ctx.push(pid, (0, 0));
            }
        }

        for tuple in &publication.tuples {
            // Absolute predicates: (p_t, =, v) matches iff pos == v;
            // (p_t, ≥, v) matches iff pos ≥ v, i.e. every array slot 1..=pos.
            if let Some(arrays) = self.absolute.get(tuple.tag) {
                if let Some(Some(pid)) = arrays.eq.get(tuple.pos as usize) {
                    ctx.push(*pid, (tuple.occ, tuple.occ));
                }
                let max = (arrays.ge.len().saturating_sub(1) as u16).min(tuple.pos);
                for v in 1..=max {
                    if let Some(pid) = arrays.ge[v as usize] {
                        ctx.push(pid, (tuple.occ, tuple.occ));
                    }
                }
            }
            // End-of-path predicates: (p_t⊣, ≥, v) matches iff n − pos ≥ v.
            if let Some(arr) = self.end_of_path.get(tuple.tag) {
                let rem = len - tuple.pos;
                let max = (arr.len().saturating_sub(1) as u16).min(rem);
                for v in 1..=max {
                    if let Some(pid) = arr[v as usize] {
                        ctx.push(pid, (tuple.occ, tuple.occ));
                    }
                }
            }
        }

        // Relative predicates: correlate ordered pairs of tuples
        // (paper §4.1.2: "the index position is identified by the difference
        // of the positions of the second-level and first-level tags").
        let tuples = &publication.tuples;
        for i in 0..tuples.len() {
            let from = &tuples[i];
            let Some(map) = self.relative.get(from.tag) else {
                continue;
            };
            if map.is_empty() {
                continue;
            }
            for to in &tuples[i + 1..] {
                let Some(arrays) = map.get(&to.tag) else {
                    continue;
                };
                let diff = to.pos - from.pos;
                if let Some(Some(pid)) = arrays.eq.get(diff as usize) {
                    ctx.push(*pid, (from.occ, to.occ));
                }
                let max = (arrays.ge.len().saturating_sub(1) as u16).min(diff);
                for v in 1..=max {
                    if let Some(pid) = arrays.ge[v as usize] {
                        ctx.push(pid, (from.occ, to.occ));
                    }
                }
            }
        }

        if self.has_attr_preds {
            let doc = doc.expect(
                "PredicateIndex::evaluate: a Document is required when \
                 attribute-constrained predicates are present",
            );
            self.evaluate_attr_preds(publication, doc, ctx);
        }
    }

    /// Evaluates the attribute-constrained side lists (inline mode, §5): a
    /// predicate matches iff both the positional relation and every attached
    /// attribute filter hold.
    fn evaluate_attr_preds<D: DocAccess>(
        &self,
        publication: &Publication,
        doc: &D,
        ctx: &mut MatchContext,
    ) {
        let len = publication.length;
        for tuple in &publication.tuples {
            if let Some(lists) = self.absolute_attr.get(tuple.tag) {
                self.scan_unary(lists, tuple.pos, tuple.node, tuple.occ, doc, ctx);
            }
            if let Some(lists) = self.end_attr.get(tuple.tag) {
                self.scan_unary(lists, len - tuple.pos, tuple.node, tuple.occ, doc, ctx);
            }
        }
        let tuples = &publication.tuples;
        for i in 0..tuples.len() {
            let from = &tuples[i];
            let Some(map) = self.relative_attr.get(from.tag) else {
                continue;
            };
            if map.is_empty() {
                continue;
            }
            for to in &tuples[i + 1..] {
                let Some(lists) = map.get(&to.tag) else {
                    continue;
                };
                self.scan_binary(lists, from, to, doc, ctx);
            }
        }
    }

    /// Scans one unary attribute-predicate slot family (absolute or
    /// end-of-path side list) for a single tuple whose positional value is
    /// `value`, pushing matches as `(occ, occ)` pairs.
    fn scan_unary<D: DocAccess>(
        &self,
        lists: &AttrOpLists<AttrBucket<AttrUnary>>,
        value: u16,
        node: pxf_xml::NodeId,
        occ: u16,
        doc: &D,
        ctx: &mut MatchContext,
    ) {
        let element = doc.element(node);
        let on_candidate = |e: &AttrUnary, ctx: &mut MatchContext| {
            if verify_tagvar(&e.tag, |name| element.value_of(name)) {
                ctx.push(e.pid, (occ, occ));
            }
        };
        if let Some(bucket) = lists.slot(PosOp::Eq, value as u32) {
            bucket.for_each_candidate(|name| element.value_of(name), |e| on_candidate(e, ctx));
        }
        let max = (lists.ge.len().saturating_sub(1) as u16).min(value);
        for v in 1..=max {
            lists.ge[v as usize]
                .for_each_candidate(|name| element.value_of(name), |e| on_candidate(e, ctx));
        }
    }

    /// Scans the attribute-constrained relative slots for one ordered tuple
    /// pair, pushing matches as `(from.occ, to.occ)` pairs.
    fn scan_binary<D: DocAccess>(
        &self,
        lists: &AttrOpLists<RelSlot>,
        from: &PathTuple,
        to: &PathTuple,
        doc: &D,
        ctx: &mut MatchContext,
    ) {
        let from_element = doc.element(from.node);
        let to_element = doc.element(to.node);
        let on_candidate = |e: &AttrBinary, ctx: &mut MatchContext| {
            if verify_tagvar(&e.from, |name| from_element.value_of(name))
                && verify_tagvar(&e.to, |name| to_element.value_of(name))
            {
                ctx.push(e.pid, (from.occ, to.occ));
            }
        };
        let scan_slot = |slot: &RelSlot, ctx: &mut MatchContext| {
            slot.by_from
                .for_each_candidate(|name| from_element.value_of(name), |e| on_candidate(e, ctx));
            slot.by_to
                .for_each_candidate(|name| to_element.value_of(name), |e| on_candidate(e, ctx));
        };
        let diff = (to.pos - from.pos) as u32;
        if let Some(slot) = lists.slot(PosOp::Eq, diff) {
            scan_slot(slot, ctx);
        }
        let max = (lists.ge.len().saturating_sub(1) as u32).min(diff);
        for v in 1..=max {
            scan_slot(&lists.ge[v as usize], ctx);
        }
    }

    /// Incremental stage-1, element *enter*: evaluates only the
    /// contributions of the last tuple of `publication` (the element just
    /// pushed onto the path stack) — its absolute-predicate slots, its
    /// relative-predicate pairs against every ancestor tuple, and its
    /// attribute side lists. Length and end-of-path predicates depend on
    /// the final path length and are deferred to [`Self::eval_leaf`].
    ///
    /// Calling this once per [`Publication::push_path_element`] (with
    /// rollback of the pushed pairs on leave) accumulates, at any stack
    /// state, exactly the pairs [`Self::evaluate`] minus `eval_leaf` would
    /// produce for the current root-to-element path — relative pairs arrive
    /// in to-major instead of from-major order, which occurrence
    /// determination is insensitive to.
    pub fn eval_enter<D: DocAccess>(
        &self,
        publication: &Publication,
        doc: Option<&D>,
        ctx: &mut MatchContext,
    ) {
        let Some(tuple) = publication.tuples.last().copied() else {
            return;
        };
        if let Some(arrays) = self.absolute.get(tuple.tag) {
            if let Some(Some(pid)) = arrays.eq.get(tuple.pos as usize) {
                ctx.push(*pid, (tuple.occ, tuple.occ));
            }
            let max = (arrays.ge.len().saturating_sub(1) as u16).min(tuple.pos);
            for v in 1..=max {
                if let Some(pid) = arrays.ge[v as usize] {
                    ctx.push(pid, (tuple.occ, tuple.occ));
                }
            }
        }
        let ancestors = &publication.tuples[..publication.tuples.len() - 1];
        if self.rel_to.get(tuple.tag.index()).copied().unwrap_or(false) {
            for from in ancestors {
                let Some(arrays) = self.relative.get(from.tag).and_then(|m| m.get(&tuple.tag))
                else {
                    continue;
                };
                let diff = tuple.pos - from.pos;
                if let Some(Some(pid)) = arrays.eq.get(diff as usize) {
                    ctx.push(*pid, (from.occ, tuple.occ));
                }
                let max = (arrays.ge.len().saturating_sub(1) as u16).min(diff);
                for v in 1..=max {
                    if let Some(pid) = arrays.ge[v as usize] {
                        ctx.push(pid, (from.occ, tuple.occ));
                    }
                }
            }
        }
        if self.has_attr_preds {
            let doc = doc.expect(
                "PredicateIndex::eval_enter: a document is required when \
                 attribute-constrained predicates are present",
            );
            if let Some(lists) = self.absolute_attr.get(tuple.tag) {
                self.scan_unary(lists, tuple.pos, tuple.node, tuple.occ, doc, ctx);
            }
            if self
                .rel_attr_to
                .get(tuple.tag.index())
                .copied()
                .unwrap_or(false)
            {
                for from in ancestors {
                    let Some(lists) = self
                        .relative_attr
                        .get(from.tag)
                        .and_then(|m| m.get(&tuple.tag))
                    else {
                        continue;
                    };
                    self.scan_binary(lists, from, &tuple, doc, ctx);
                }
            }
        }
    }

    /// Incremental stage-1, *leaf* step: evaluates the predicates that
    /// depend on the final path length `n` — length-of-expression and
    /// end-of-path (plain and attribute-constrained) — for the current
    /// path-stack publication. Push a [`MatchContext`] mark first and pop
    /// it after stage 2 so these per-leaf pairs roll back before the
    /// traversal continues.
    pub fn eval_leaf<D: DocAccess>(
        &self,
        publication: &Publication,
        doc: Option<&D>,
        ctx: &mut MatchContext,
    ) {
        let len = publication.length;
        let max_l = (self.length.len().saturating_sub(1) as u16).min(len);
        for v in 1..=max_l {
            if let Some(pid) = self.length[v as usize] {
                ctx.push(pid, (0, 0));
            }
        }
        for tuple in &publication.tuples {
            if let Some(arr) = self.end_of_path.get(tuple.tag) {
                let rem = len - tuple.pos;
                let max = (arr.len().saturating_sub(1) as u16).min(rem);
                for v in 1..=max {
                    if let Some(pid) = arr[v as usize] {
                        ctx.push(pid, (tuple.occ, tuple.occ));
                    }
                }
            }
        }
        if self.has_attr_preds {
            let doc = doc.expect(
                "PredicateIndex::eval_leaf: a document is required when \
                 attribute-constrained predicates are present",
            );
            for tuple in &publication.tuples {
                if let Some(lists) = self.end_attr.get(tuple.tag) {
                    self.scan_unary(lists, len - tuple.pos, tuple.node, tuple.occ, doc, ctx);
                }
            }
        }
    }
}

/// Checks every attribute constraint of a tag variable against a document
/// element.
fn tagvar_attrs_match<D: DocAccess>(tag: &TagVar, node: pxf_xml::NodeId, doc: &D) -> bool {
    if tag.attrs.is_empty() {
        return true;
    }
    let element = doc.element(node);
    tag.attrs
        .iter()
        .all(|c| c.matches(element.value_of(&c.name)))
}

/// Per-publication predicate matching results: for each matched predicate,
/// the list of matching occurrence-number pairs (paper Table 1).
///
/// The context is reused across publications via an epoch counter — no
/// clearing or reallocation between documents. Epoch 0 is reserved as a
/// never-current sentinel: [`Self::begin`] skips it on wrap (hard-clearing
/// all stamps so a 2³²-stale list can never read as current), and
/// [`Self::pop_to_mark`] uses it to invalidate rolled-back lists.
///
/// For incremental stage-1 evaluation the context doubles as an undo
/// stack: every [`Self::push`] is journaled, and [`Self::push_mark`] /
/// [`Self::pop_to_mark`] snapshot and restore the exact set of recorded
/// pairs — so one element's contributions can be rolled back when the
/// document traversal leaves it.
#[derive(Debug, Default)]
pub struct MatchContext {
    epoch: u32,
    lists: Vec<MatchList>,
    touched: Vec<PredId>,
    /// Journal of every `push` since `begin`, one entry per pair pushed.
    undo: Vec<PredId>,
}

#[derive(Debug, Default, Clone)]
struct MatchList {
    epoch: u32,
    pairs: Vec<(u16, u16)>,
}

/// A rollback point in a [`MatchContext`] (see [`MatchContext::push_mark`]).
#[derive(Debug, Clone, Copy)]
pub struct CtxMark {
    undo: usize,
    touched: usize,
}

impl MatchContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new publication evaluation (invalidates previous results).
    pub fn begin(&mut self, npreds: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stamps from 2³² evaluations ago would otherwise
            // collide with re-used epoch values. Hard-clear every list and
            // restart at 1, keeping 0 as the never-current sentinel.
            for list in &mut self.lists {
                list.epoch = 0;
                list.pairs.clear();
            }
            self.epoch = 1;
        }
        if self.lists.len() < npreds {
            self.lists.resize_with(npreds, MatchList::default);
        }
        self.touched.clear();
        self.undo.clear();
    }

    /// Records a matching occurrence pair for a predicate.
    #[inline]
    pub fn push(&mut self, pid: PredId, pair: (u16, u16)) {
        let list = &mut self.lists[pid.index()];
        if list.epoch != self.epoch {
            list.epoch = self.epoch;
            list.pairs.clear();
            self.touched.push(pid);
        }
        list.pairs.push(pair);
        self.undo.push(pid);
    }

    /// Returns a mark capturing the current contents; a later
    /// [`Self::pop_to_mark`] restores exactly this state. Marks nest like a
    /// stack (pop in reverse order of push) and are invalidated by
    /// [`Self::begin`].
    #[inline]
    pub fn push_mark(&self) -> CtxMark {
        CtxMark {
            undo: self.undo.len(),
            touched: self.touched.len(),
        }
    }

    /// Rolls back every pair pushed since `mark` was taken. Predicates
    /// first touched after the mark read as unmatched again (their list
    /// epochs drop to the reserved sentinel 0); predicates touched before
    /// it keep exactly their pre-mark pairs.
    pub fn pop_to_mark(&mut self, mark: CtxMark) {
        for i in mark.undo..self.undo.len() {
            let pid = self.undo[i];
            self.lists[pid.index()].pairs.pop();
        }
        self.undo.truncate(mark.undo);
        for &pid in &self.touched[mark.touched..] {
            let list = &mut self.lists[pid.index()];
            debug_assert!(list.pairs.is_empty(), "undo log out of sync");
            list.epoch = 0;
        }
        self.touched.truncate(mark.touched);
    }

    /// The matching occurrence pairs for a predicate in the current
    /// publication (empty slice if the predicate did not match).
    #[inline]
    pub fn get(&self, pid: PredId) -> &[(u16, u16)] {
        match self.lists.get(pid.index()) {
            Some(list) if list.epoch == self.epoch => &list.pairs,
            _ => &[],
        }
    }

    /// True if the predicate matched the current publication.
    #[inline]
    pub fn is_matched(&self, pid: PredId) -> bool {
        !self.get(pid).is_empty()
    }

    /// All predicates matched by the current publication.
    pub fn matched(&self) -> &[PredId] {
        &self.touched
    }

    /// The predicates first satisfied inside the mark window opened by
    /// `mark` — i.e. those whose lists became non-empty after
    /// [`Self::push_mark`] returned `mark` (predicates already matched at
    /// the mark are excluded; they keep their earlier `touched` slot).
    ///
    /// Because [`Self::pop_to_mark`] truncates `touched` back to the mark
    /// and pushes only ever append, the invariant holds that `matched()`
    /// (and any `matched_since` suffix of it) lists exactly the
    /// predicates with non-empty pair lists right now. Stage 2 uses this
    /// to drive posting-list candidate generation from satisfied
    /// predicates instead of scanning registered expressions.
    #[inline]
    pub fn matched_since(&self, mark: CtxMark) -> &[PredId] {
        &self.touched[mark.touched.min(self.touched.len())..]
    }
}

/// Evaluates a single predicate directly against a publication, without
/// the index — the paper's evaluation rules (§4.1.1) executed by scanning
/// the tuples. Used as a test oracle for the index and as the
/// no-predicate-sharing ablation baseline (each expression evaluating its
/// own predicates).
pub fn eval_direct<D: DocAccess>(
    pred: &Predicate,
    publication: &Publication,
    doc: Option<&D>,
    out: &mut Vec<(u16, u16)>,
) {
    out.clear();
    let attrs_ok = |tag: &TagVar, node: pxf_xml::NodeId| -> bool {
        match doc {
            _ if tag.attrs.is_empty() => true,
            Some(doc) => tagvar_attrs_match(tag, node, doc),
            None => false,
        }
    };
    match pred {
        Predicate::Absolute { tag, op, value } => {
            for t in &publication.tuples {
                if t.tag != tag.tag {
                    continue;
                }
                let pos_ok = match op {
                    PosOp::Eq => t.pos as u32 == *value,
                    PosOp::Ge => t.pos as u32 >= *value,
                };
                if pos_ok && attrs_ok(tag, t.node) {
                    out.push((t.occ, t.occ));
                }
            }
        }
        Predicate::Relative {
            from,
            to,
            op,
            value,
        } => {
            let tuples = &publication.tuples;
            for i in 0..tuples.len() {
                if tuples[i].tag != from.tag {
                    continue;
                }
                for j in i + 1..tuples.len() {
                    if tuples[j].tag != to.tag {
                        continue;
                    }
                    let diff = (tuples[j].pos - tuples[i].pos) as u32;
                    let pos_ok = match op {
                        PosOp::Eq => diff == *value,
                        PosOp::Ge => diff >= *value,
                    };
                    if pos_ok && attrs_ok(from, tuples[i].node) && attrs_ok(to, tuples[j].node) {
                        out.push((tuples[i].occ, tuples[j].occ));
                    }
                }
            }
        }
        Predicate::EndOfPath { tag, value } => {
            for t in &publication.tuples {
                if t.tag == tag.tag
                    && (publication.length - t.pos) as u32 >= *value
                    && attrs_ok(tag, t.node)
                {
                    out.push((t.occ, t.occ));
                }
            }
        }
        Predicate::Length { value } => {
            if publication.length as u32 >= *value {
                out.push((0, 0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxf_xml::Interner;

    #[test]
    fn marks_roll_back_to_exact_prior_state() {
        let mut ctx = MatchContext::new();
        ctx.begin(3);
        let (p0, p1, p2) = (PredId(0), PredId(1), PredId(2));
        ctx.push(p0, (1, 1));
        ctx.push(p1, (1, 2));
        let outer = ctx.push_mark();
        ctx.push(p0, (2, 2)); // existing pred gains a pair
        ctx.push(p2, (3, 3)); // new pred first touched after the mark
        let inner = ctx.push_mark();
        ctx.push(p2, (4, 4));
        assert_eq!(ctx.get(p0), &[(1, 1), (2, 2)]);
        assert_eq!(ctx.get(p2), &[(3, 3), (4, 4)]);

        ctx.pop_to_mark(inner);
        assert_eq!(ctx.get(p2), &[(3, 3)]);
        ctx.pop_to_mark(outer);
        assert_eq!(ctx.get(p0), &[(1, 1)]);
        assert_eq!(ctx.get(p1), &[(1, 2)]);
        assert!(ctx.get(p2).is_empty());
        assert!(!ctx.is_matched(p2));
        assert_eq!(ctx.matched(), &[p0, p1]);

        // A rolled-back pred can be pushed again and re-enters `touched`.
        ctx.push(p2, (5, 5));
        assert_eq!(ctx.get(p2), &[(5, 5)]);
        assert_eq!(ctx.matched(), &[p0, p1, p2]);
    }

    #[test]
    fn epoch_wrap_hard_clears_stale_stamps() {
        let mut ctx = MatchContext::new();
        ctx.begin(1); // epoch 1
        ctx.push(PredId(0), (7, 7));
        assert!(ctx.is_matched(PredId(0)));
        // Fast-forward to the wrap point: the next begin would re-issue
        // epoch values already stamped on the list above.
        ctx.epoch = u32::MAX;
        ctx.begin(1);
        assert_eq!(ctx.epoch, 1, "wrap skips the reserved sentinel 0");
        assert!(
            !ctx.is_matched(PredId(0)),
            "stamp from 2^32 evaluations ago must not read as current"
        );
        ctx.begin(1);
        assert!(!ctx.is_matched(PredId(0)));
    }

    #[test]
    fn incremental_enter_leaf_equals_batch_evaluate() {
        // Drive push_path_element/eval_enter down the path (a, b, a, c) and
        // compare the accumulated context against a one-shot evaluate().
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let c = interner.intern("c");
        let mut index = PredicateIndex::new();
        let pids = vec![
            index.insert(Predicate::absolute(a, PosOp::Eq, 1)),
            index.insert(Predicate::absolute(a, PosOp::Ge, 2)),
            index.insert(Predicate::relative(a, b, PosOp::Ge, 1)),
            index.insert(Predicate::relative(a, c, PosOp::Eq, 1)),
            index.insert(Predicate::relative(b, a, PosOp::Eq, 1)),
            index.insert(Predicate::end_of_path(b, 1)),
            index.insert(Predicate::end_of_path(c, 1)),
            index.insert(Predicate::length(3)),
            index.insert(Predicate::length(5)),
        ];

        let tags = [a, b, a, c];
        let mut publication = Publication::new();
        publication.begin_incremental();
        let mut inc = MatchContext::new();
        inc.begin(index.len());
        for (i, &t) in tags.iter().enumerate() {
            publication.push_path_element(t, i as pxf_xml::NodeId);
            index.eval_enter(&publication, None::<&pxf_xml::Document>, &mut inc);
        }
        index.eval_leaf(&publication, None::<&pxf_xml::Document>, &mut inc);

        let batch_pub = Publication::from_tags(&["a", "b", "a", "c"], &mut interner);
        let mut batch = MatchContext::new();
        index.evaluate(&batch_pub, None::<&pxf_xml::Document>, &mut batch);

        for pid in pids {
            let mut got: Vec<_> = inc.get(pid).to_vec();
            let mut want: Vec<_> = batch.get(pid).to_vec();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "pid {pid:?}");
        }
        let mut got: Vec<_> = inc.matched().to_vec();
        let mut want: Vec<_> = batch.matched().to_vec();
        got.sort_unstable_by_key(|p| p.index());
        want.sort_unstable_by_key(|p| p.index());
        assert_eq!(got, want);
    }

    #[test]
    fn rel_to_bitmap_tracks_second_tags() {
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let mut index = PredicateIndex::new();
        index.insert(Predicate::relative(a, b, PosOp::Ge, 1));
        assert!(index.rel_to[b.index()]);
        assert!(!index.rel_to.get(a.index()).copied().unwrap_or(false));
        assert!(index.rel_attr_to.is_empty());
    }
}
