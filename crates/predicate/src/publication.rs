//! Publication encoding of XML document paths (paper §3.3).
//!
//! Each root-to-leaf document path `e = (t1, …, tn)` becomes a set of
//! (attribute, value) pairs: a `(length, n)` tuple plus one `(tag, position)`
//! tuple per element, with each tag annotated by its *occurrence number* —
//! how many times that tag name has already appeared in the path (Example 1
//! of the paper).

use pxf_xml::{DocAccess, Interner, NodeId, Symbol};

/// One `(tag, position)` tuple of a publication, with its occurrence number
/// and the originating document node (for attribute lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathTuple {
    /// Interned tag name.
    pub tag: Symbol,
    /// 1-based position in the document path.
    pub pos: u16,
    /// 1-based occurrence number of this tag name within the path.
    pub occ: u16,
    /// The element this tuple came from.
    pub node: NodeId,
}

/// The publication for one document path: its length plus one tuple per
/// element. The struct is designed for reuse across paths — see
/// [`Publication::encode`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Publication {
    /// Path length (the `(length, n)` tuple).
    pub length: u16,
    /// `(tag, position)` tuples in path order.
    pub tuples: Vec<PathTuple>,
    /// Scratch for occurrence counting, keyed by tag symbol.
    occ_scratch: Vec<(Symbol, u16)>,
}

impl Publication {
    /// Creates an empty publication (fill with [`Self::encode`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a document path (root-to-leaf node ids) into this
    /// publication, reusing buffers. Tags are interned on the fly — per the
    /// paper this happens during document parsing and "does not require
    /// additional processing, except for collecting the occurrence numbers".
    pub fn encode<D: DocAccess>(&mut self, doc: &D, path: &[NodeId], interner: &mut Interner) {
        self.length = path.len() as u16;
        self.tuples.clear();
        self.occ_scratch.clear();
        for (i, &node) in path.iter().enumerate() {
            let tag = interner.intern(doc.tag(node));
            self.push_tuple(tag, (i + 1) as u16, node);
        }
    }

    /// Read-only variant of [`Self::encode`]: tags never seen by the
    /// interner map to [`Symbol::UNKNOWN`]. Such tags cannot match any
    /// stored predicate (no predicate mentions them), so matching results
    /// are identical — this is what allows concurrent matching against a
    /// shared, immutable engine.
    pub fn encode_readonly<D: DocAccess>(&mut self, doc: &D, path: &[NodeId], interner: &Interner) {
        self.length = path.len() as u16;
        self.tuples.clear();
        self.occ_scratch.clear();
        for (i, &node) in path.iter().enumerate() {
            let tag = interner
                .get(doc.tag(node))
                .unwrap_or(pxf_xml::Symbol::UNKNOWN);
            self.push_tuple(tag, (i + 1) as u16, node);
        }
    }

    /// Resets the publication for incremental path-stack encoding of a new
    /// document (see [`Self::push_path_element`]).
    pub fn begin_incremental(&mut self) {
        self.length = 0;
        self.tuples.clear();
        self.occ_scratch.clear();
    }

    /// Pushes one element onto the path stack: afterwards the publication
    /// is exactly [`Self::encode`] of the current root-to-element path.
    /// Occurrence numbers are maintained incrementally — one counter probe
    /// per push instead of a full re-count per path.
    pub fn push_path_element(&mut self, tag: Symbol, node: NodeId) {
        let pos = (self.tuples.len() + 1) as u16;
        self.push_tuple(tag, pos, node);
        self.length = pos;
    }

    /// Pops the most recent element, undoing [`Self::push_path_element`].
    /// A counter reaching zero stays recorded so a re-push of the same tag
    /// restores it to one.
    pub fn pop_path_element(&mut self) {
        let t = self.tuples.pop().expect("pop from empty path stack");
        let slot = self
            .occ_scratch
            .iter_mut()
            .find(|(s, _)| *s == t.tag)
            .expect("occurrence scratch in sync with tuples");
        slot.1 -= 1;
        self.length = self.tuples.len() as u16;
    }

    fn push_tuple(&mut self, tag: pxf_xml::Symbol, pos: u16, node: NodeId) {
        let occ = match self.occ_scratch.iter_mut().find(|(t, _)| *t == tag) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                self.occ_scratch.push((tag, 1));
                1
            }
        };
        self.tuples.push(PathTuple {
            tag,
            pos,
            occ,
            node,
        });
    }

    /// Convenience constructor for a single path.
    pub fn from_path<D: DocAccess>(doc: &D, path: &[NodeId], interner: &mut Interner) -> Self {
        let mut p = Publication::new();
        p.encode(doc, path, interner);
        p
    }

    /// Builds a publication directly from a tag-name sequence (tests and the
    /// reference matcher).
    pub fn from_tags(tags: &[&str], interner: &mut Interner) -> Self {
        let mut p = Publication::new();
        p.length = tags.len() as u16;
        for (i, t) in tags.iter().enumerate() {
            let tag = interner.intern(t);
            let occ = match p.occ_scratch.iter_mut().find(|(s, _)| *s == tag) {
                Some((_, n)) => {
                    *n += 1;
                    *n
                }
                None => {
                    p.occ_scratch.push((tag, 1));
                    1
                }
            };
            p.tuples.push(PathTuple {
                tag,
                pos: (i + 1) as u16,
                occ,
                node: 0,
            });
        }
        p
    }

    /// Finds the tuple for a given tag occurrence.
    pub fn find_occurrence(&self, tag: Symbol, occ: u16) -> Option<&PathTuple> {
        self.tuples.iter().find(|t| t.tag == tag && t.occ == occ)
    }

    /// The position (1-based) of a given tag occurrence.
    pub fn position_of(&self, tag: Symbol, occ: u16) -> Option<u16> {
        self.find_occurrence(tag, occ).map(|t| t.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxf_xml::Document;

    /// Paper Example 1: e = (a, b, c, a, b, c) annotated with occurrence
    /// numbers (a¹ b¹ c¹ a² b² c²).
    #[test]
    fn example1_occurrence_annotation() {
        let mut interner = Interner::new();
        let p = Publication::from_tags(&["a", "b", "c", "a", "b", "c"], &mut interner);
        assert_eq!(p.length, 6);
        let a = interner.get("a").unwrap();
        let b = interner.get("b").unwrap();
        let c = interner.get("c").unwrap();
        let expected = [
            (a, 1u16, 1u16),
            (b, 2, 1),
            (c, 3, 1),
            (a, 4, 2),
            (b, 5, 2),
            (c, 6, 2),
        ];
        for (tuple, (tag, pos, occ)) in p.tuples.iter().zip(expected) {
            assert_eq!((tuple.tag, tuple.pos, tuple.occ), (tag, pos, occ));
        }
        assert_eq!(p.position_of(a, 2), Some(4));
        assert_eq!(p.position_of(c, 2), Some(6));
        assert_eq!(p.position_of(c, 3), None);
    }

    #[test]
    fn encode_from_document() {
        let doc = Document::parse(b"<a><b><a/></b></a>").unwrap();
        let mut interner = Interner::new();
        let paths = doc.leaf_paths();
        let p = Publication::from_path(&doc, &paths[0], &mut interner);
        assert_eq!(p.length, 3);
        let a = interner.get("a").unwrap();
        assert_eq!(p.tuples[0].tag, a);
        assert_eq!(p.tuples[2].tag, a);
        assert_eq!(p.tuples[0].occ, 1);
        assert_eq!(p.tuples[2].occ, 2);
        assert_eq!(p.tuples[2].node, 2);
    }

    #[test]
    fn path_stack_push_pop_tracks_encode() {
        // Walking a tree with push/pop must leave the publication equal to
        // a fresh encode of each root-to-element path, occurrences included.
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let mut p = Publication::new();
        p.begin_incremental();
        p.push_path_element(a, 0);
        p.push_path_element(a, 1);
        assert_eq!(p.length, 2);
        assert_eq!(p.tuples[1].occ, 2);
        p.pop_path_element();
        p.push_path_element(b, 2);
        p.push_path_element(a, 3);
        let fresh = Publication::from_tags(&["a", "b", "a"], &mut interner);
        assert_eq!(p.length, fresh.length);
        for (got, want) in p.tuples.iter().zip(&fresh.tuples) {
            assert_eq!((got.tag, got.pos, got.occ), (want.tag, want.pos, want.occ));
        }
        // Drain fully, then reuse: counters must restart at one.
        p.pop_path_element();
        p.pop_path_element();
        p.pop_path_element();
        assert_eq!(p.length, 0);
        p.push_path_element(a, 7);
        assert_eq!(p.tuples[0].occ, 1);
        assert_eq!(p.tuples[0].node, 7);
    }

    #[test]
    fn begin_incremental_resets_after_encode() {
        let mut interner = Interner::new();
        let mut p = Publication::from_tags(&["x", "x"], &mut interner);
        p.begin_incremental();
        assert_eq!(p.length, 0);
        assert!(p.tuples.is_empty());
        let x = interner.get("x").unwrap();
        p.push_path_element(x, 0);
        assert_eq!(p.tuples[0].occ, 1);
    }

    #[test]
    fn reuse_clears_state() {
        let mut interner = Interner::new();
        let doc = Document::parse(b"<x><y/></x>").unwrap();
        let mut p = Publication::from_tags(&["a", "a"], &mut interner);
        assert_eq!(p.tuples[1].occ, 2);
        let paths = doc.leaf_paths();
        p.encode(&doc, &paths[0], &mut interner);
        assert_eq!(p.length, 2);
        assert_eq!(p.tuples.len(), 2);
        assert!(p.tuples.iter().all(|t| t.occ == 1));
    }
}
