//! Predicate language, predicate index, and predicate matching for
//! predicate-based XPath filtering (paper §3–§4.1).
//!
//! This crate implements the first stage of the paper's two-stage matching
//! algorithm: XPath expressions are encoded (by `pxf-core`) as ordered sets
//! of [`Predicate`]s held in a [`PredicateIndex`]; XML document paths are
//! encoded as [`Publication`]s; [`PredicateIndex::evaluate`] computes, for
//! every distinct predicate, the set of matching occurrence-number pairs
//! (paper Table 1) into a reusable [`MatchContext`].
//!
//! # Example: paper Table 1
//!
//! The document path `(a, b, c, a, b, c)` against the predicates of
//! `a//b/c`:
//!
//! ```
//! use pxf_predicate::{MatchContext, PosOp, Predicate, PredicateIndex, Publication};
//! use pxf_xml::Interner;
//!
//! let mut interner = Interner::new();
//! let (a, b, c) = (interner.intern("a"), interner.intern("b"), interner.intern("c"));
//! let mut index = PredicateIndex::new();
//! let p1 = index.insert(Predicate::relative(a, b, PosOp::Ge, 1)); // (d(p_a,p_b), ≥, 1)
//! let p2 = index.insert(Predicate::relative(b, c, PosOp::Eq, 1)); // (d(p_b,p_c), =, 1)
//!
//! let publication = Publication::from_tags(&["a", "b", "c", "a", "b", "c"], &mut interner);
//! let mut ctx = MatchContext::new();
//! index.evaluate(&publication, None::<&pxf_xml::Document>, &mut ctx);
//!
//! assert_eq!(ctx.get(p1), &[(1, 1), (1, 2), (2, 2)]);
//! assert_eq!(ctx.get(p2), &[(1, 1), (2, 2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr_index;
mod index;
mod publication;
mod types;

pub use index::{eval_direct, CtxMark, MatchContext, PredicateIndex};
pub use publication::{PathTuple, Publication};
pub use types::{AttrConstraint, PosOp, PredId, Predicate, TagVar};

#[cfg(test)]
mod tests {
    use super::*;
    use pxf_xml::{Document, Interner, Symbol};
    use pxf_xpath::{AttrValue, CmpOp};

    fn syms(interner: &mut Interner) -> (Symbol, Symbol, Symbol) {
        (
            interner.intern("a"),
            interner.intern("b"),
            interner.intern("c"),
        )
    }

    /// Paper Table 1, complete: both expressions' predicates over
    /// (a, b, c, a, b, c).
    #[test]
    fn table1_predicate_matching() {
        let mut interner = Interner::new();
        let (a, b, c) = syms(&mut interner);
        let mut index = PredicateIndex::new();
        // a//b/c  →  (d(p_a,p_b), ≥, 1) ↦ (d(p_b,p_c), =, 1)
        let ab_ge = index.insert(Predicate::relative(a, b, PosOp::Ge, 1));
        let bc_eq = index.insert(Predicate::relative(b, c, PosOp::Eq, 1));
        // c//b//a →  (d(p_c,p_b), ≥, 1) ↦ (d(p_b,p_a), ≥, 1)
        let cb_ge = index.insert(Predicate::relative(c, b, PosOp::Ge, 1));
        let ba_ge = index.insert(Predicate::relative(b, a, PosOp::Ge, 1));

        let publication = Publication::from_tags(&["a", "b", "c", "a", "b", "c"], &mut interner);
        let mut ctx = MatchContext::new();
        index.evaluate(&publication, None::<&pxf_xml::Document>, &mut ctx);

        // Table 1 rows (occurrence-number pairs).
        assert_eq!(ctx.get(ab_ge), &[(1, 1), (1, 2), (2, 2)]);
        assert_eq!(ctx.get(bc_eq), &[(1, 1), (2, 2)]);
        assert_eq!(ctx.get(cb_ge), &[(1, 2)]);
        assert_eq!(ctx.get(ba_ge), &[(1, 2)]);
    }

    #[test]
    fn insert_is_deduplicating() {
        let mut interner = Interner::new();
        let (a, b, _) = syms(&mut interner);
        let mut index = PredicateIndex::new();
        let p1 = index.insert(Predicate::relative(a, b, PosOp::Eq, 1));
        let p2 = index.insert(Predicate::relative(a, b, PosOp::Eq, 1));
        assert_eq!(p1, p2);
        assert_eq!(index.len(), 1);
        let p3 = index.insert(Predicate::relative(a, b, PosOp::Eq, 2));
        assert_ne!(p1, p3);
        let p4 = index.insert(Predicate::relative(a, b, PosOp::Ge, 1));
        assert_ne!(p1, p4);
        assert_eq!(index.len(), 3);
    }

    #[test]
    fn get_finds_inserted() {
        let mut interner = Interner::new();
        let (a, _, _) = syms(&mut interner);
        let mut index = PredicateIndex::new();
        let pred = Predicate::absolute(a, PosOp::Eq, 2);
        assert_eq!(index.get(&pred), None);
        let pid = index.insert(pred.clone());
        assert_eq!(index.get(&pred), Some(pid));
        assert_eq!(index.predicate(pid), &pred);
    }

    #[test]
    fn absolute_predicate_rules() {
        // (p_t, =, v) matches (t, v') iff v' = v; (p_t, ≥, v) iff v' ≥ v.
        let mut interner = Interner::new();
        let (a, _, _) = syms(&mut interner);
        let mut index = PredicateIndex::new();
        let eq2 = index.insert(Predicate::absolute(a, PosOp::Eq, 2));
        let ge2 = index.insert(Predicate::absolute(a, PosOp::Ge, 2));
        let ge3 = index.insert(Predicate::absolute(a, PosOp::Ge, 3));
        let mut ctx = MatchContext::new();

        let p = Publication::from_tags(&["x", "a", "y"], &mut interner);
        index.evaluate(&p, None::<&pxf_xml::Document>, &mut ctx);
        assert_eq!(ctx.get(eq2), &[(1, 1)]);
        assert_eq!(ctx.get(ge2), &[(1, 1)]);
        assert!(ctx.get(ge3).is_empty());

        let p = Publication::from_tags(&["x", "y", "z", "a"], &mut interner);
        index.evaluate(&p, None::<&pxf_xml::Document>, &mut ctx);
        assert!(ctx.get(eq2).is_empty());
        assert_eq!(ctx.get(ge2), &[(1, 1)]);
        assert_eq!(ctx.get(ge3), &[(1, 1)]);
    }

    #[test]
    fn relative_predicate_rules() {
        // Paper example: given tuples (a,2) and (b,6), (d(p_a,p_b),=,2) is
        // not matched since 6−2 = 2 does not hold.
        let mut interner = Interner::new();
        let (a, b, _) = syms(&mut interner);
        let mut index = PredicateIndex::new();
        let eq2 = index.insert(Predicate::relative(a, b, PosOp::Eq, 2));
        let ge2 = index.insert(Predicate::relative(a, b, PosOp::Ge, 2));
        let mut ctx = MatchContext::new();
        // a at position 2, b at position 6: diff = 4.
        let p = Publication::from_tags(&["x", "a", "y", "z", "w", "b"], &mut interner);
        index.evaluate(&p, None::<&pxf_xml::Document>, &mut ctx);
        assert!(ctx.get(eq2).is_empty());
        assert_eq!(ctx.get(ge2), &[(1, 1)]);
    }

    #[test]
    fn relative_predicates_are_order_sensitive() {
        let mut interner = Interner::new();
        let (a, b, _) = syms(&mut interner);
        let mut index = PredicateIndex::new();
        let ba = index.insert(Predicate::relative(b, a, PosOp::Eq, 1));
        let mut ctx = MatchContext::new();
        // b never appears before a: no match.
        let p = Publication::from_tags(&["a", "b"], &mut interner);
        index.evaluate(&p, None::<&pxf_xml::Document>, &mut ctx);
        assert!(ctx.get(ba).is_empty());
    }

    #[test]
    fn end_of_path_predicate_rules() {
        // (p_t⊣, ≥, v) matches (t, v') iff l − v' ≥ v.
        let mut interner = Interner::new();
        let (a, _, _) = syms(&mut interner);
        let mut index = PredicateIndex::new();
        let e1 = index.insert(Predicate::end_of_path(a, 1));
        let e2 = index.insert(Predicate::end_of_path(a, 2));
        let mut ctx = MatchContext::new();
        let p = Publication::from_tags(&["a", "x", "y"], &mut interner); // l=3, pos=1
        index.evaluate(&p, None::<&pxf_xml::Document>, &mut ctx);
        assert_eq!(ctx.get(e1), &[(1, 1)]);
        assert_eq!(ctx.get(e2), &[(1, 1)]);
        let p = Publication::from_tags(&["x", "y", "a"], &mut interner); // l−pos = 0
        index.evaluate(&p, None::<&pxf_xml::Document>, &mut ctx);
        assert!(ctx.get(e1).is_empty());
        assert!(ctx.get(e2).is_empty());
    }

    #[test]
    fn length_predicate_rules() {
        let mut interner = Interner::new();
        let mut index = PredicateIndex::new();
        let l3 = index.insert(Predicate::length(3));
        let l4 = index.insert(Predicate::length(4));
        let mut ctx = MatchContext::new();
        let p = Publication::from_tags(&["x", "y", "z"], &mut interner);
        index.evaluate(&p, None::<&pxf_xml::Document>, &mut ctx);
        assert!(ctx.is_matched(l3));
        assert!(!ctx.is_matched(l4));
    }

    #[test]
    fn match_context_epochs_isolate_publications() {
        let mut interner = Interner::new();
        let (a, _, _) = syms(&mut interner);
        let mut index = PredicateIndex::new();
        let pid = index.insert(Predicate::absolute(a, PosOp::Eq, 1));
        let mut ctx = MatchContext::new();
        let p1 = Publication::from_tags(&["a"], &mut interner);
        index.evaluate(&p1, None::<&pxf_xml::Document>, &mut ctx);
        assert!(ctx.is_matched(pid));
        assert_eq!(ctx.matched(), &[pid]);
        let p2 = Publication::from_tags(&["b"], &mut interner);
        index.evaluate(&p2, None::<&pxf_xml::Document>, &mut ctx);
        assert!(!ctx.is_matched(pid));
        assert!(ctx.matched().is_empty());
    }

    #[test]
    fn inline_attribute_predicates() {
        // Paper §5: (a([x,≥,3]), ≥, 2) is matched by tuple (a([x,6]), 5).
        let mut interner = Interner::new();
        let doc = Document::parse(b"<r><p><q><w><a x=\"6\"/></w></q></p></r>").unwrap();
        let a = interner.intern("a");
        let mut index = PredicateIndex::new();
        let tv = TagVar::with_attrs(
            a,
            vec![AttrConstraint {
                name: "x".into(),
                constraint: Some((CmpOp::Ge, AttrValue::Int(3))),
            }],
        );
        let pid = index.insert(Predicate::Absolute {
            tag: tv.clone(),
            op: PosOp::Ge,
            value: 2,
        });
        // Same structural predicate with a different constraint is distinct.
        let tv2 = TagVar::with_attrs(
            a,
            vec![AttrConstraint {
                name: "x".into(),
                constraint: Some((CmpOp::Ge, AttrValue::Int(10))),
            }],
        );
        let pid2 = index.insert(Predicate::Absolute {
            tag: tv2,
            op: PosOp::Ge,
            value: 2,
        });
        assert_ne!(pid, pid2);
        // Re-inserting the first is deduplicated.
        assert_eq!(
            index.insert(Predicate::Absolute {
                tag: tv,
                op: PosOp::Ge,
                value: 2
            }),
            pid
        );

        let paths = doc.leaf_paths();
        let publication = Publication::from_path(&doc, &paths[0], &mut interner);
        let mut ctx = MatchContext::new();
        index.evaluate(&publication, Some(&doc), &mut ctx);
        assert_eq!(ctx.get(pid), &[(1, 1)]); // x=6 ≥ 3, pos 5 ≥ 2
        assert!(ctx.get(pid2).is_empty()); // x=6 < 10
    }

    #[test]
    fn inline_attribute_relative_predicates() {
        let mut interner = Interner::new();
        let doc = Document::parse(b"<a y=\"1\"><b x=\"2\"/></a>").unwrap();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let mut index = PredicateIndex::new();
        let from = TagVar::with_attrs(
            a,
            vec![AttrConstraint {
                name: "y".into(),
                constraint: Some((CmpOp::Eq, AttrValue::Int(1))),
            }],
        );
        let to = TagVar::with_attrs(
            b,
            vec![AttrConstraint {
                name: "x".into(),
                constraint: Some((CmpOp::Lt, AttrValue::Int(5))),
            }],
        );
        let pid = index.insert(Predicate::Relative {
            from,
            to,
            op: PosOp::Eq,
            value: 1,
        });
        let paths = doc.leaf_paths();
        let publication = Publication::from_path(&doc, &paths[0], &mut interner);
        let mut ctx = MatchContext::new();
        index.evaluate(&publication, Some(&doc), &mut ctx);
        assert_eq!(ctx.get(pid), &[(1, 1)]);
    }

    #[test]
    fn ge_values_match_all_lower_slots() {
        // (d(p_a,p_b), ≥, v) for v in 1..=3 must all match a pair with
        // distance 3.
        let mut interner = Interner::new();
        let (a, b, _) = syms(&mut interner);
        let mut index = PredicateIndex::new();
        let pids: Vec<_> = (1..=4)
            .map(|v| index.insert(Predicate::relative(a, b, PosOp::Ge, v)))
            .collect();
        let p = Publication::from_tags(&["a", "x", "y", "b"], &mut interner);
        let mut ctx = MatchContext::new();
        index.evaluate(&p, None::<&pxf_xml::Document>, &mut ctx);
        assert!(ctx.is_matched(pids[0]));
        assert!(ctx.is_matched(pids[1]));
        assert!(ctx.is_matched(pids[2]));
        assert!(!ctx.is_matched(pids[3]));
    }
}
