//! Property: the predicate index's staged evaluation agrees exactly with
//! direct per-predicate evaluation (the §4.1.1 rules applied naively).
//! Seeded randomized sweep (in-tree PRNG).

use pxf_predicate::{eval_direct, MatchContext, PosOp, Predicate, PredicateIndex, Publication};
use pxf_rng::Rng;
use pxf_xml::{Interner, Symbol};

fn arb_pred(rng: &mut Rng, n_tags: u32) -> Predicate {
    let pos_op = |rng: &mut Rng| {
        if rng.gen_bool(0.5) {
            PosOp::Ge
        } else {
            PosOp::Eq
        }
    };
    match rng.gen_range(0..4usize) {
        0 => {
            let op = pos_op(rng);
            Predicate::absolute(Symbol(rng.gen_range(0..n_tags)), op, rng.gen_range(1..8u32))
        }
        1 => {
            let (a, b) = (rng.gen_range(0..n_tags), rng.gen_range(0..n_tags));
            let op = pos_op(rng);
            Predicate::relative(Symbol(a), Symbol(b), op, rng.gen_range(1..6u32))
        }
        2 => Predicate::end_of_path(Symbol(rng.gen_range(0..n_tags)), rng.gen_range(1..6u32)),
        _ => Predicate::length(rng.gen_range(1..8u32)),
    }
}

#[test]
fn index_agrees_with_direct_evaluation() {
    let mut rng = Rng::seed_from_u64(0x1d1d);
    let names = ["a", "b", "c", "d"];
    for _ in 0..2048 {
        let preds: Vec<Predicate> = (0..rng.gen_range(1..12usize))
            .map(|_| arb_pred(&mut rng, 4))
            .collect();
        let path: Vec<usize> = (0..rng.gen_range(1..9usize))
            .map(|_| rng.gen_range(0..4usize))
            .collect();

        let mut interner = Interner::new();
        // Intern the 4 tag names so symbols 0..4 exist.
        for n in names {
            interner.intern(n);
        }
        let tags: Vec<&str> = path.iter().map(|&i| names[i]).collect();
        let publication = Publication::from_tags(&tags, &mut interner);

        let mut index = PredicateIndex::new();
        let pids: Vec<_> = preds.iter().map(|p| index.insert(p.clone())).collect();
        let mut ctx = MatchContext::new();
        index.evaluate(&publication, None::<&pxf_xml::Document>, &mut ctx);

        let mut direct = Vec::new();
        for (pred, &pid) in preds.iter().zip(&pids) {
            eval_direct(pred, &publication, None::<&pxf_xml::Document>, &mut direct);
            // The index may enumerate pairs in a different order.
            let mut via_index: Vec<(u16, u16)> = ctx.get(pid).to_vec();
            via_index.sort_unstable();
            direct.sort_unstable();
            assert_eq!(&via_index, &direct, "pred {pred:?} path {tags:?}");
        }
    }
}
