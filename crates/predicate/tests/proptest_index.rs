//! Property: the predicate index's staged evaluation agrees exactly with
//! direct per-predicate evaluation (the §4.1.1 rules applied naively).

use proptest::prelude::*;
use pxf_predicate::{eval_direct, MatchContext, PosOp, Predicate, PredicateIndex, Publication};
use pxf_xml::{Interner, Symbol};

fn arb_pred(n_tags: u32) -> impl Strategy<Value = Predicate> {
    let tag = move || 0..n_tags;
    prop_oneof![
        (tag(), any::<bool>(), 1u32..8).prop_map(|(t, ge, v)| Predicate::absolute(
            Symbol(t),
            if ge { PosOp::Ge } else { PosOp::Eq },
            v
        )),
        (tag(), tag(), any::<bool>(), 1u32..6).prop_map(|(a, b, ge, v)| Predicate::relative(
            Symbol(a),
            Symbol(b),
            if ge { PosOp::Ge } else { PosOp::Eq },
            v
        )),
        (tag(), 1u32..6).prop_map(|(t, v)| Predicate::end_of_path(Symbol(t), v)),
        (1u32..8).prop_map(Predicate::length),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn index_agrees_with_direct_evaluation(
        preds in proptest::collection::vec(arb_pred(4), 1..12),
        path in proptest::collection::vec(0u32..4, 1..9),
    ) {
        let mut interner = Interner::new();
        // Intern the 4 tag names so symbols 0..4 exist.
        let names = ["a", "b", "c", "d"];
        for n in names {
            interner.intern(n);
        }
        let tags: Vec<&str> = path.iter().map(|&i| names[i as usize]).collect();
        let publication = Publication::from_tags(&tags, &mut interner);

        let mut index = PredicateIndex::new();
        let pids: Vec<_> = preds.iter().map(|p| index.insert(p.clone())).collect();
        let mut ctx = MatchContext::new();
        index.evaluate(&publication, None, &mut ctx);

        let mut direct = Vec::new();
        for (pred, &pid) in preds.iter().zip(&pids) {
            eval_direct(pred, &publication, None, &mut direct);
            // The index may enumerate pairs in a different order.
            let mut via_index: Vec<(u16, u16)> = ctx.get(pid).to_vec();
            via_index.sort_unstable();
            direct.sort_unstable();
            prop_assert_eq!(&via_index, &direct, "pred {:?}", pred);
        }
    }
}
