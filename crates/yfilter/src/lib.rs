//! YFilter-style baseline: a shared-prefix NFA over all XPath expressions,
//! executed with a runtime stack of active state sets (Diao et al., ICDE
//! 2002 / TODS 2003).
//!
//! This is the automaton-based comparison point of the paper's evaluation
//! (§6). All expressions are compiled into one non-deterministic finite
//! automaton whose transitions are element names; common prefixes share
//! states. `*` compiles to a wildcard transition and `//` to an
//! ε-transition into a state with a self-loop (the standard YFilter
//! construction). Execution does not stop at the first accepting state: it
//! visits every reachable state so that *all* matching expressions are
//! found. Attribute filters are evaluated *selection postponed* — checked
//! only when an accepting state is reached (the mode the YFilter paper
//! found superior for its NFA).
//!
//! # Example
//!
//! ```
//! use pxf_yfilter::YFilter;
//! use pxf_xml::Document;
//!
//! let mut yf = YFilter::new();
//! let s1 = yf.add_str("/a//b").unwrap();
//! let _2 = yf.add_str("/a/c").unwrap();
//! let doc = Document::parse(b"<a><x><b/></x></a>").unwrap();
//! assert_eq!(yf.match_document(&doc), vec![s1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pxf_core::backend::{BackendError, FilterBackend};
use pxf_core::SubId;
use pxf_xml::{
    DocAccess, Document, Interner, NodeId, ParserLimits, PathDoc, Symbol, TreeEvent, XmlError,
};
use pxf_xpath::{Axis, NodeTest, XPathExpr};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`YFilter::add`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YFilterError {
    /// Nested path filters are outside the scope of this baseline (the
    /// paper's comparison workloads are single-path expressions with
    /// optional attribute filters).
    NestedPath,
}

impl fmt::Display for YFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YFilterError::NestedPath => {
                write!(f, "YFilter baseline does not support nested path filters")
            }
        }
    }
}

impl std::error::Error for YFilterError {}

/// An NFA state.
#[derive(Debug, Default)]
struct State {
    /// Element-name transitions.
    trans: HashMap<Symbol, u32>,
    /// `*` transition.
    wildcard: Option<u32>,
    /// ε-transition to the descendant (`//`) state hanging off this state.
    ds: Option<u32>,
    /// Self-loop on any element (set on descendant states).
    self_loop: bool,
    /// Expressions accepted when this state is entered.
    accepts: Vec<Accept>,
}

#[derive(Debug)]
struct Accept {
    sub: u32,
    /// Present when the expression has attribute filters: the full
    /// expression re-checked (selection postponed) along the current
    /// root-to-element path at accept time.
    attr_expr: Option<Box<XPathExpr>>,
}

/// The YFilter engine.
#[derive(Debug)]
pub struct YFilter {
    interner: Interner,
    states: Vec<State>,
    n_subs: u32,
    limits: ParserLimits,
    // reusable per-document scratch
    visited: Vec<u64>,
    visit_epoch: u64,
    matched: Vec<u64>,
    doc_epoch: u64,
}

impl Default for YFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl YFilter {
    /// Creates an empty engine (one initial state).
    pub fn new() -> Self {
        YFilter {
            interner: Interner::new(),
            states: vec![State::default()],
            n_subs: 0,
            limits: ParserLimits::default(),
            visited: Vec::new(),
            visit_epoch: 0,
            matched: Vec::new(),
            doc_epoch: 0,
        }
    }

    /// Number of registered expressions.
    pub fn len(&self) -> usize {
        self.n_subs as usize
    }

    /// True if no expressions are registered.
    pub fn is_empty(&self) -> bool {
        self.n_subs == 0
    }

    /// Number of NFA states (machine-size metric).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Parses and registers an expression.
    pub fn add_str(&mut self, src: &str) -> Result<u32, Box<dyn std::error::Error>> {
        let expr = pxf_xpath::parse(src)?;
        Ok(self.add(&expr)?)
    }

    /// Registers an expression, returning its id (dense, insertion order).
    pub fn add(&mut self, expr: &XPathExpr) -> Result<u32, YFilterError> {
        if expr.has_nested_paths() {
            return Err(YFilterError::NestedPath);
        }
        let mut cur = 0u32;
        for (i, step) in expr.steps.iter().enumerate() {
            // A relative expression may match starting anywhere: compile it
            // as if prefixed by `//`.
            let axis = if i == 0 && !expr.absolute {
                Axis::Descendant
            } else {
                step.axis
            };
            if axis == Axis::Descendant {
                cur = self.get_or_create_ds(cur);
            }
            cur = match &step.test {
                NodeTest::Tag(t) => {
                    let sym = self.interner.intern(t);
                    self.get_or_create_trans(cur, sym)
                }
                NodeTest::Wildcard => self.get_or_create_wildcard(cur),
            };
        }
        let sub = self.n_subs;
        self.n_subs += 1;
        let attr_expr = expr.has_attr_filters().then(|| Box::new(expr.clone()));
        self.states[cur as usize]
            .accepts
            .push(Accept { sub, attr_expr });
        Ok(sub)
    }

    fn alloc(&mut self, self_loop: bool) -> u32 {
        let id = self.states.len() as u32;
        self.states.push(State {
            self_loop,
            ..State::default()
        });
        id
    }

    fn get_or_create_ds(&mut self, from: u32) -> u32 {
        if let Some(ds) = self.states[from as usize].ds {
            return ds;
        }
        let ds = self.alloc(true);
        self.states[from as usize].ds = Some(ds);
        ds
    }

    fn get_or_create_trans(&mut self, from: u32, sym: Symbol) -> u32 {
        if let Some(&n) = self.states[from as usize].trans.get(&sym) {
            return n;
        }
        let n = self.alloc(false);
        self.states[from as usize].trans.insert(sym, n);
        n
    }

    fn get_or_create_wildcard(&mut self, from: u32) -> u32 {
        if let Some(n) = self.states[from as usize].wildcard {
            return n;
        }
        let n = self.alloc(false);
        self.states[from as usize].wildcard = Some(n);
        n
    }

    /// Filters a document: ids of all matching expressions, ascending.
    pub fn match_document<D: DocAccess>(&mut self, doc: &D) -> Vec<u32> {
        self.doc_epoch += 1;
        let doc_epoch = self.doc_epoch;
        self.matched.resize(self.n_subs as usize, 0);
        self.visited.resize(self.states.len(), 0);
        let mut results: Vec<u32> = Vec::new();

        // Stack of active state sets, stored in one arena with per-level
        // offsets (no per-element allocation).
        let mut arena: Vec<u32> = Vec::with_capacity(64);
        let mut level_start: Vec<usize> = vec![0];
        // Current root-to-element node chain for postponed attribute checks.
        let mut path_nodes: Vec<NodeId> = Vec::with_capacity(16);

        let states = &self.states;
        let interner = &self.interner;
        let visited = &mut self.visited;
        let matched = &mut self.matched;
        let visit_epoch = &mut self.visit_epoch;

        // Initial active set: ε-closure of the start state.
        *visit_epoch += 1;
        push_closure(states, visited, *visit_epoch, &mut arena, 0);

        doc.for_each_event(|ev| match ev {
            TreeEvent::Start(id, element) => {
                path_nodes.push(id);
                let (top_start, top_end) = (*level_start.last().unwrap(), arena.len());
                level_start.push(arena.len());
                *visit_epoch += 1;
                let epoch = *visit_epoch;
                let tag = interner.get(&element.tag);
                let mut on_accept = |accept: &Accept| {
                    fire(accept, doc, &path_nodes, matched, doc_epoch, &mut results)
                };
                let mut i = top_start;
                while i < top_end {
                    let s = arena[i];
                    i += 1;
                    let st = &states[s as usize];
                    if st.self_loop && visited[s as usize] != epoch {
                        visited[s as usize] = epoch;
                        arena.push(s);
                        // A persisting self-loop state was entered higher
                        // up; its accepts fired there.
                    }
                    if let Some(t) = tag {
                        if let Some(&n) = st.trans.get(&t) {
                            enter(states, visited, epoch, &mut arena, n, &mut on_accept);
                        }
                    }
                    if let Some(w) = st.wildcard {
                        enter(states, visited, epoch, &mut arena, w, &mut on_accept);
                    }
                }
            }
            TreeEvent::End(..) => {
                path_nodes.pop();
                let start = level_start.pop().expect("balanced events");
                arena.truncate(start);
            }
        });

        results.sort_unstable();
        results
    }

    /// Parses and filters raw document bytes in one streaming pass: the
    /// NFA consumes the same start/end element events replayed from the
    /// flat [`PathDoc`] store — no `Document` tree is built. Events replay
    /// after the parse pass so postponed attribute and `text()` re-checks
    /// observe complete element content (mixed content can extend an
    /// ancestor's text after a leaf closes).
    pub fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<u32>, XmlError> {
        let doc = PathDoc::parse_with_limits(bytes, self.limits)?;
        Ok(self.match_document(&doc))
    }

    /// Sets the per-document resource budget enforced by
    /// [`match_bytes`](Self::match_bytes).
    pub fn set_parser_limits(&mut self, limits: ParserLimits) {
        self.limits = limits;
    }
}

impl FilterBackend for YFilter {
    fn add(&mut self, expr: &XPathExpr) -> Result<SubId, BackendError> {
        YFilter::add(self, expr)
            .map(SubId)
            .map_err(|e| BackendError(e.to_string()))
    }

    fn match_document(&mut self, doc: &Document) -> Vec<SubId> {
        YFilter::match_document(self, doc)
            .into_iter()
            .map(SubId)
            .collect()
    }

    fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        Ok(YFilter::match_bytes(self, bytes)?
            .into_iter()
            .map(SubId)
            .collect())
    }

    fn set_parser_limits(&mut self, limits: ParserLimits) {
        YFilter::set_parser_limits(self, limits);
    }
}

/// Adds the ε-closure of the start state (the start state never accepts —
/// expressions have at least one step).
fn push_closure(states: &[State], visited: &mut [u64], epoch: u64, arena: &mut Vec<u32>, s: u32) {
    if visited[s as usize] == epoch {
        return;
    }
    visited[s as usize] = epoch;
    arena.push(s);
    if let Some(ds) = states[s as usize].ds {
        push_closure(states, visited, epoch, arena, ds);
    }
}

/// Enters state `n` (and its ε-closure), invoking `on_accept` for each
/// accept entry of each newly entered state.
fn enter(
    states: &[State],
    visited: &mut [u64],
    epoch: u64,
    arena: &mut Vec<u32>,
    n: u32,
    on_accept: &mut dyn FnMut(&Accept),
) {
    if visited[n as usize] == epoch {
        return;
    }
    visited[n as usize] = epoch;
    arena.push(n);
    for accept in &states[n as usize].accepts {
        on_accept(accept);
    }
    if let Some(ds) = states[n as usize].ds {
        enter(states, visited, epoch, arena, ds, on_accept);
    }
}

/// Resolves an accept: postponed attribute check (if any) along the current
/// path, then records the match once per document.
fn fire<D: DocAccess>(
    accept: &Accept,
    doc: &D,
    path_nodes: &[NodeId],
    matched: &mut [u64],
    doc_epoch: u64,
    results: &mut Vec<u32>,
) {
    if matched[accept.sub as usize] == doc_epoch {
        return;
    }
    if let Some(expr) = &accept.attr_expr {
        // Selection postponed: re-evaluate the expression with its
        // attribute filters over the current root-to-element path.
        if !matches_path_with_attrs(expr, doc, path_nodes) {
            return;
        }
    }
    matched[accept.sub as usize] = doc_epoch;
    results.push(accept.sub);
}

/// Structural + attribute match of an expression over a node chain (a
/// frontier DP; kept local so this baseline stays independent of
/// `pxf-core`).
fn matches_path_with_attrs<D: DocAccess>(expr: &XPathExpr, doc: &D, nodes: &[NodeId]) -> bool {
    let n = nodes.len();
    let step_ok = |step: &pxf_xpath::Step, pos: usize| -> bool {
        let element = doc.element(nodes[pos - 1]);
        let tag_ok = match &step.test {
            NodeTest::Tag(t) => element.tag == *t,
            NodeTest::Wildcard => true,
        };
        tag_ok
            && step
                .attr_filters()
                .all(|f| f.matches(element.value_of(&f.name)))
    };
    let mut frontier: Vec<usize> = Vec::new();
    for (i, step) in expr.steps.iter().enumerate() {
        let mut next: Vec<usize> = Vec::new();
        if i == 0 {
            let candidates: Box<dyn Iterator<Item = usize>> =
                if expr.absolute && step.axis == Axis::Child {
                    Box::new(std::iter::once(1))
                } else {
                    Box::new(1..=n)
                };
            for pos in candidates {
                if step_ok(step, pos) {
                    next.push(pos);
                }
            }
        } else {
            for &prev in &frontier {
                let candidates: Box<dyn Iterator<Item = usize>> = match step.axis {
                    Axis::Child => Box::new(std::iter::once(prev + 1)),
                    Axis::Descendant => Box::new(prev + 1..=n),
                };
                for pos in candidates {
                    if pos <= n && step_ok(step, pos) && !next.contains(&pos) {
                        next.push(pos);
                    }
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        frontier = next;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(xml: &str) -> Document {
        Document::parse(xml.as_bytes()).unwrap()
    }

    #[test]
    fn absolute_and_relative() {
        let mut yf = YFilter::new();
        let abs = yf.add_str("/a/b").unwrap();
        let rel = yf.add_str("b/c").unwrap();
        let other = yf.add_str("/x").unwrap();
        let d = doc("<a><b><c/></b></a>");
        let m = yf.match_document(&d);
        assert!(m.contains(&abs));
        assert!(m.contains(&rel));
        assert!(!m.contains(&other));
    }

    #[test]
    fn descendant_and_wildcard() {
        let mut yf = YFilter::new();
        let e1 = yf.add_str("/a//c").unwrap();
        let e2 = yf.add_str("/a/*/c").unwrap();
        let e3 = yf.add_str("/a/c").unwrap();
        let m = yf.match_document(&doc("<a><b><c/></b></a>"));
        assert_eq!(m, vec![e1, e2]);
        let m = yf.match_document(&doc("<a><c/></a>"));
        assert_eq!(m, vec![e1, e3]);
    }

    #[test]
    fn prefix_sharing_reduces_states() {
        let mut yf = YFilter::new();
        yf.add_str("/a/b/c").unwrap();
        let n1 = yf.state_count();
        yf.add_str("/a/b/d").unwrap();
        let n2 = yf.state_count();
        // Only one new state for the divergent last step.
        assert_eq!(n2, n1 + 1);
        yf.add_str("/a/b/c").unwrap();
        assert_eq!(yf.state_count(), n2, "identical expression adds no state");
    }

    #[test]
    fn repeated_matching_is_stateless() {
        let mut yf = YFilter::new();
        let s = yf.add_str("//b").unwrap();
        assert_eq!(yf.match_document(&doc("<a><b/></a>")), vec![s]);
        assert!(yf.match_document(&doc("<a/>")).is_empty());
        assert_eq!(yf.match_document(&doc("<b/>")), vec![s]);
    }

    #[test]
    fn each_expression_reported_once() {
        let mut yf = YFilter::new();
        let s = yf.add_str("//b").unwrap();
        // b occurs on several paths; the id must appear once.
        assert_eq!(yf.match_document(&doc("<a><b/><b><b/></b></a>")), vec![s]);
    }

    #[test]
    fn postponed_attribute_filters() {
        let mut yf = YFilter::new();
        let pass = yf.add_str("/a/b[@x = 1]").unwrap();
        let fail = yf.add_str("/a/b[@x = 2]").unwrap();
        let m = yf.match_document(&doc(r#"<a><b x="1"/></a>"#));
        assert!(m.contains(&pass));
        assert!(!m.contains(&fail));
    }

    #[test]
    fn attribute_filter_on_inner_step() {
        let mut yf = YFilter::new();
        let e = yf.add_str("/a[@k = \"v\"]//c").unwrap();
        assert_eq!(
            yf.match_document(&doc(r#"<a k="v"><b><c/></b></a>"#)),
            vec![e]
        );
        assert!(yf
            .match_document(&doc(r#"<a k="w"><b><c/></b></a>"#))
            .is_empty());
    }

    #[test]
    fn nested_rejected() {
        let mut yf = YFilter::new();
        let expr = pxf_xpath::parse("/a[b]/c").unwrap();
        assert_eq!(yf.add(&expr), Err(YFilterError::NestedPath));
    }

    #[test]
    fn unknown_tags_only_hit_wildcards() {
        let mut yf = YFilter::new();
        let w = yf.add_str("/*").unwrap();
        let t = yf.add_str("/q").unwrap();
        let m = yf.match_document(&doc("<unseen/>"));
        assert_eq!(m, vec![w]);
        let _ = t;
    }

    #[test]
    fn double_descendant() {
        let mut yf = YFilter::new();
        let e = yf.add_str("a//b//c").unwrap();
        assert_eq!(
            yf.match_document(&doc("<a><x><b><y><c/></y></b></x></a>")),
            vec![e]
        );
        assert!(yf.match_document(&doc("<a><c><b/></c></a>")).is_empty());
    }

    #[test]
    fn only_wildcards() {
        let mut yf = YFilter::new();
        let e3 = yf.add_str("*/*/*").unwrap();
        let e4 = yf.add_str("/*/*/*/*").unwrap();
        let m = yf.match_document(&doc("<a><b><c/></b></a>"));
        assert_eq!(m, vec![e3]);
        let m = yf.match_document(&doc("<a><b><c><d/></c></b></a>"));
        assert_eq!(m, vec![e3, e4]);
    }
}
