//! Index-Filter baseline: prefix-tree multi-query XML path matching over a
//! per-document element index (Bruno et al., "Navigation- vs. Index-Based
//! XML Multi-Query Processing", ICDE 2003).
//!
//! This is the index-based comparison point of the paper's evaluation (§6).
//! The query set is held in a prefix tree sharing common step prefixes; for
//! each document an element index is built — per element its
//! (start, end, level) interval from a pre/post-order numbering — and the
//! algorithm runs a stack-based structural join: elements are consumed in
//! document order, each element is offered to the query-tree nodes whose
//! node test it satisfies (deepest first), and a node accepts an element
//! when its parent node's stack holds a strict ancestor at the right level
//! (exact level + 1 for `/`, any enclosing level for `//`). Reaching a node
//! that carries query ids reports those queries as matched.
//!
//! Per the paper's modification, the algorithm stops after determining
//! *one* match per query instead of enumerating all matches. Wildcards
//! match any element (§6.3: the original paper does not discuss wildcards;
//! this is the handling the authors implemented, which makes the per-node
//! index streams grow rapidly at high wildcard probabilities — a weakness
//! the evaluation deliberately exposes). Attribute filters are evaluated
//! selection-postponed against the current ancestor chain. Nested path
//! filters are not supported (the comparison workloads are single paths).
//!
//! # Example
//!
//! ```
//! use pxf_indexfilter::IndexFilter;
//! use pxf_xml::Document;
//!
//! let mut ixf = IndexFilter::new();
//! let s1 = ixf.add_str("/a//c").unwrap();
//! let _2 = ixf.add_str("/a/b").unwrap();
//! let doc = Document::parse(b"<a><x><c/></x></a>").unwrap();
//! assert_eq!(ixf.match_document(&doc), vec![s1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pxf_core::backend::{BackendError, FilterBackend};
use pxf_core::SubId;
use pxf_xml::{DocAccess, Document, Interner, NodeId, ParserLimits, Symbol, TreeEvent, XmlError};
use pxf_xpath::{Axis, NodeTest, XPathExpr};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`IndexFilter::add`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexFilterError {
    /// Nested path filters are not supported by this baseline.
    NestedPath,
}

impl fmt::Display for IndexFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexFilterError::NestedPath => write!(
                f,
                "Index-Filter baseline does not support nested path filters"
            ),
        }
    }
}

impl std::error::Error for IndexFilterError {}

const NO_PARENT: u32 = u32::MAX;

type NodeKey = (Option<Symbol>, Axis);

/// A query prefix-tree node.
#[derive(Debug)]
struct QNode {
    axis: Axis,
    parent: u32,
    depth: u16,
    children: HashMap<NodeKey, u32>,
    /// Queries whose last step is this node.
    queries: Vec<QueryAccept>,
}

#[derive(Debug)]
struct QueryAccept {
    id: u32,
    /// Postponed attribute re-check (expressions with filters only).
    attr_expr: Option<Box<XPathExpr>>,
}

/// A stack entry / element-index record: the (start, end, level) interval
/// of an element in the pre/post-order numbering.
#[derive(Debug, Clone, Copy)]
struct Entry {
    start: u32,
    end: u32,
    level: u16,
    node: NodeId,
}

/// The Index-Filter engine.
#[derive(Debug)]
pub struct IndexFilter {
    interner: Interner,
    nodes: Vec<QNode>,
    limits: ParserLimits,
    roots: HashMap<NodeKey, u32>,
    /// Tag → query nodes testing that tag, sorted by depth descending (so
    /// that within one element, deeper nodes inspect their parents' stacks
    /// *before* the element itself lands there).
    by_tag: HashMap<Symbol, Vec<u32>>,
    /// Wildcard query nodes, sorted by depth descending.
    wildcards: Vec<u32>,
    n_subs: u32,
    sorted: bool,
    // per-document scratch
    stacks: Vec<Vec<Entry>>,
    matched: Vec<u64>,
    doc_epoch: u64,
}

impl Default for IndexFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexFilter {
    /// Creates an empty engine.
    pub fn new() -> Self {
        IndexFilter {
            interner: Interner::new(),
            nodes: Vec::new(),
            limits: ParserLimits::default(),
            roots: HashMap::new(),
            by_tag: HashMap::new(),
            wildcards: Vec::new(),
            n_subs: 0,
            sorted: true,
            stacks: Vec::new(),
            matched: Vec::new(),
            doc_epoch: 0,
        }
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.n_subs as usize
    }

    /// True if no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.n_subs == 0
    }

    /// Number of prefix-tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Parses and registers a query.
    pub fn add_str(&mut self, src: &str) -> Result<u32, Box<dyn std::error::Error>> {
        let expr = pxf_xpath::parse(src)?;
        Ok(self.add(&expr)?)
    }

    /// Registers a query, returning its id (dense, insertion order).
    pub fn add(&mut self, expr: &XPathExpr) -> Result<u32, IndexFilterError> {
        if expr.has_nested_paths() {
            return Err(IndexFilterError::NestedPath);
        }
        let mut cur = NO_PARENT;
        for (i, step) in expr.steps.iter().enumerate() {
            // Relative queries may match anywhere: first step acts as `//`.
            let axis = if i == 0 && !expr.absolute {
                Axis::Descendant
            } else {
                step.axis
            };
            let test = match &step.test {
                NodeTest::Tag(t) => Some(self.interner.intern(t)),
                NodeTest::Wildcard => None,
            };
            cur = self.get_or_create(cur, test, axis);
        }
        let id = self.n_subs;
        self.n_subs += 1;
        let attr_expr = expr.has_attr_filters().then(|| Box::new(expr.clone()));
        self.nodes[cur as usize]
            .queries
            .push(QueryAccept { id, attr_expr });
        Ok(id)
    }

    fn get_or_create(&mut self, parent: u32, test: Option<Symbol>, axis: Axis) -> u32 {
        let key = (test, axis);
        let existing = if parent == NO_PARENT {
            self.roots.get(&key).copied()
        } else {
            self.nodes[parent as usize].children.get(&key).copied()
        };
        if let Some(n) = existing {
            return n;
        }
        let depth = if parent == NO_PARENT {
            1
        } else {
            self.nodes[parent as usize].depth + 1
        };
        let id = self.nodes.len() as u32;
        self.nodes.push(QNode {
            axis,
            parent,
            depth,
            children: HashMap::new(),
            queries: Vec::new(),
        });
        if parent == NO_PARENT {
            self.roots.insert(key, id);
        } else {
            self.nodes[parent as usize].children.insert(key, id);
        }
        match test {
            Some(sym) => self.by_tag.entry(sym).or_default().push(id),
            None => self.wildcards.push(id),
        }
        self.sorted = false;
        id
    }

    /// Filters a document: ids of all matching queries, ascending.
    pub fn match_document<D: DocAccess>(&mut self, doc: &D) -> Vec<u32> {
        self.finalize();
        self.doc_epoch += 1;
        let doc_epoch = self.doc_epoch;
        self.matched.resize(self.n_subs as usize, 0);
        self.stacks.resize_with(self.nodes.len(), Vec::new);
        for s in &mut self.stacks {
            s.clear();
        }
        let mut results: Vec<u32> = Vec::new();

        // Build the document element index: (start, end, level) intervals
        // in document order — the streams of the original algorithm.
        let mut elements: Vec<(Symbol, Entry)> = Vec::with_capacity(doc.node_count());
        {
            let interner = &mut self.interner;
            let mut counter: u32 = 0;
            let mut open: Vec<usize> = Vec::new();
            doc.for_each_event(|ev| match ev {
                TreeEvent::Start(id, element) => {
                    counter += 1;
                    let sym = interner.intern(&element.tag);
                    open.push(elements.len());
                    elements.push((
                        sym,
                        Entry {
                            start: counter,
                            end: 0,
                            level: element.depth as u16,
                            node: id,
                        },
                    ));
                }
                TreeEvent::End(..) => {
                    counter += 1;
                    let idx = open.pop().expect("balanced");
                    elements[idx].1.end = counter;
                }
            });
        }

        // Ancestor chain of document nodes for postponed attribute checks.
        let mut ancestors: Vec<Entry> = Vec::with_capacity(16);
        // Candidate query nodes for the current element, merged depth-desc.
        let mut candidates: Vec<u32> = Vec::with_capacity(16);

        for &(sym, entry) in &elements {
            while ancestors.last().is_some_and(|a| a.end < entry.start) {
                ancestors.pop();
            }

            candidates.clear();
            let tagged: &[u32] = self.by_tag.get(&sym).map(|v| v.as_slice()).unwrap_or(&[]);
            // Merge the tag list and the wildcard list by descending depth.
            let (mut i, mut j) = (0, 0);
            while i < tagged.len() || j < self.wildcards.len() {
                let take_tag = match (tagged.get(i), self.wildcards.get(j)) {
                    (Some(&a), Some(&b)) => {
                        self.nodes[a as usize].depth >= self.nodes[b as usize].depth
                    }
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if take_tag {
                    candidates.push(tagged[i]);
                    i += 1;
                } else {
                    candidates.push(self.wildcards[j]);
                    j += 1;
                }
            }

            for &q in &candidates {
                let qnode = &self.nodes[q as usize];
                let accepted = if qnode.parent == NO_PARENT {
                    match qnode.axis {
                        Axis::Child => entry.level == 1,
                        Axis::Descendant => true,
                    }
                } else {
                    let stack = &mut self.stacks[qnode.parent as usize];
                    // Clean: pop entries that ended before this element.
                    while stack.last().is_some_and(|e| e.end < entry.start) {
                        stack.pop();
                    }
                    // After cleaning, the top is a strict ancestor (deeper
                    // entries may be stale siblings buried under it, so the
                    // `/`-axis scan stops at the first non-enclosing entry).
                    match qnode.axis {
                        Axis::Child => stack
                            .iter()
                            .rev()
                            .take_while(|e| e.end > entry.start)
                            .any(|e| e.level + 1 == entry.level),
                        Axis::Descendant => !stack.is_empty(),
                    }
                };
                if !accepted {
                    continue;
                }
                self.stacks[q as usize].push(entry);
                for accept in &self.nodes[q as usize].queries {
                    if self.matched[accept.id as usize] == doc_epoch {
                        continue;
                    }
                    if let Some(expr) = &accept.attr_expr {
                        let mut chain: Vec<NodeId> = ancestors.iter().map(|a| a.node).collect();
                        chain.push(entry.node);
                        if !matches_path_with_attrs(expr, doc, &chain) {
                            continue;
                        }
                    }
                    self.matched[accept.id as usize] = doc_epoch;
                    results.push(accept.id);
                }
            }

            ancestors.push(entry);
        }

        results.sort_unstable();
        results
    }

    /// Parses and filters raw document bytes in one streaming pass: the
    /// element-interval index is built from events replayed off the flat
    /// [`PathDoc`](pxf_xml::PathDoc) store, with no `Document` tree.
    /// Replaying after the parse pass keeps postponed attribute and
    /// `text()` re-checks exact on mixed content.
    pub fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<u32>, XmlError> {
        let doc = pxf_xml::PathDoc::parse_with_limits(bytes, self.limits)?;
        Ok(self.match_document(&doc))
    }

    /// Sets the per-document resource budget enforced by
    /// [`match_bytes`](Self::match_bytes).
    pub fn set_parser_limits(&mut self, limits: ParserLimits) {
        self.limits = limits;
    }

    /// Sorts the candidate lists by depth descending (lazy, after adds).
    fn finalize(&mut self) {
        if self.sorted {
            return;
        }
        let nodes = &self.nodes;
        for list in self.by_tag.values_mut() {
            list.sort_by_key(|&n| std::cmp::Reverse(nodes[n as usize].depth));
        }
        self.wildcards
            .sort_by_key(|&n| std::cmp::Reverse(nodes[n as usize].depth));
        self.sorted = true;
    }
}

impl FilterBackend for IndexFilter {
    fn add(&mut self, expr: &XPathExpr) -> Result<SubId, BackendError> {
        IndexFilter::add(self, expr)
            .map(SubId)
            .map_err(|e| BackendError(e.to_string()))
    }

    fn prepare(&mut self) {
        self.finalize();
    }

    fn match_document(&mut self, doc: &Document) -> Vec<SubId> {
        IndexFilter::match_document(self, doc)
            .into_iter()
            .map(SubId)
            .collect()
    }

    fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        Ok(IndexFilter::match_bytes(self, bytes)?
            .into_iter()
            .map(SubId)
            .collect())
    }

    fn set_parser_limits(&mut self, limits: ParserLimits) {
        IndexFilter::set_parser_limits(self, limits);
    }
}

/// Structural + attribute match over an ancestor chain (frontier DP, as in
/// the YFilter baseline).
fn matches_path_with_attrs<D: DocAccess>(expr: &XPathExpr, doc: &D, nodes: &[NodeId]) -> bool {
    let n = nodes.len();
    let step_ok = |step: &pxf_xpath::Step, pos: usize| -> bool {
        let element = doc.element(nodes[pos - 1]);
        let tag_ok = match &step.test {
            NodeTest::Tag(t) => element.tag == *t,
            NodeTest::Wildcard => true,
        };
        tag_ok
            && step
                .attr_filters()
                .all(|f| f.matches(element.value_of(&f.name)))
    };
    let mut frontier: Vec<usize> = Vec::new();
    for (i, step) in expr.steps.iter().enumerate() {
        let mut next: Vec<usize> = Vec::new();
        if i == 0 {
            let candidates: Box<dyn Iterator<Item = usize>> =
                if expr.absolute && step.axis == Axis::Child {
                    Box::new(std::iter::once(1))
                } else {
                    Box::new(1..=n)
                };
            for pos in candidates {
                if step_ok(step, pos) {
                    next.push(pos);
                }
            }
        } else {
            for &prev in &frontier {
                let candidates: Box<dyn Iterator<Item = usize>> = match step.axis {
                    Axis::Child => Box::new(std::iter::once(prev + 1)),
                    Axis::Descendant => Box::new(prev + 1..=n),
                };
                for pos in candidates {
                    if pos <= n && step_ok(step, pos) && !next.contains(&pos) {
                        next.push(pos);
                    }
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        frontier = next;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(xml: &str) -> Document {
        Document::parse(xml.as_bytes()).unwrap()
    }

    #[test]
    fn basic_queries() {
        let mut ixf = IndexFilter::new();
        let abs = ixf.add_str("/a/b").unwrap();
        let rel = ixf.add_str("b/c").unwrap();
        let desc = ixf.add_str("/a//c").unwrap();
        let miss = ixf.add_str("/a/c").unwrap();
        let m = ixf.match_document(&doc("<a><b><c/></b></a>"));
        assert_eq!(m, vec![abs, rel, desc]);
        let _ = miss;
    }

    #[test]
    fn wildcards_match_any_element() {
        let mut ixf = IndexFilter::new();
        let e1 = ixf.add_str("/a/*/c").unwrap();
        let e2 = ixf.add_str("/*").unwrap();
        let e3 = ixf.add_str("*/*/*/*").unwrap();
        let m = ixf.match_document(&doc("<a><b><c/></b></a>"));
        assert_eq!(m, vec![e1, e2]);
        let _ = e3;
    }

    #[test]
    fn prefix_sharing() {
        let mut ixf = IndexFilter::new();
        ixf.add_str("/a/b/c").unwrap();
        let n1 = ixf.node_count();
        ixf.add_str("/a/b/d").unwrap();
        assert_eq!(ixf.node_count(), n1 + 1);
        ixf.add_str("/a/b/c").unwrap();
        assert_eq!(ixf.node_count(), n1 + 1);
    }

    #[test]
    fn repeated_tag_chains() {
        let mut ixf = IndexFilter::new();
        let e = ixf.add_str("a//a/b").unwrap();
        assert_eq!(
            ixf.match_document(&doc("<a><x><a><b/></a></x></a>")),
            vec![e]
        );
        assert!(ixf.match_document(&doc("<a><b/></a>")).is_empty());
    }

    #[test]
    fn buried_stale_entries_are_ignored() {
        let mut ixf = IndexFilter::new();
        let e = ixf.add_str("/r/a//c").unwrap();
        // First a closes (stale stack entry), sibling x contains no a:
        // the query must NOT match through the dead a.
        assert!(ixf
            .match_document(&doc("<r><a><b/></a><x><c/></x></r>"))
            .is_empty());
        // But a live a later does match.
        assert_eq!(
            ixf.match_document(&doc("<r><a><b/></a><a><x><c/></x></a></r>")),
            vec![e]
        );
    }

    #[test]
    fn child_axis_needs_exact_level() {
        let mut ixf = IndexFilter::new();
        let e = ixf.add_str("/a/c").unwrap();
        assert!(ixf.match_document(&doc("<a><b><c/></b></a>")).is_empty());
        assert_eq!(ixf.match_document(&doc("<a><c/></a>")), vec![e]);
    }

    #[test]
    fn stop_after_first_match_reports_once() {
        let mut ixf = IndexFilter::new();
        let e = ixf.add_str("//c").unwrap();
        assert_eq!(
            ixf.match_document(&doc("<a><c/><c/><b><c/></b></a>")),
            vec![e]
        );
    }

    #[test]
    fn postponed_attribute_filters() {
        let mut ixf = IndexFilter::new();
        let pass = ixf.add_str("/a/b[@x >= 3]").unwrap();
        let fail = ixf.add_str("/a/b[@x < 3]").unwrap();
        let m = ixf.match_document(&doc(r#"<a><b x="5"/></a>"#));
        assert_eq!(m, vec![pass]);
        let _ = fail;
    }

    #[test]
    fn nested_rejected() {
        let mut ixf = IndexFilter::new();
        let expr = pxf_xpath::parse("/a[b]/c").unwrap();
        assert_eq!(ixf.add(&expr), Err(IndexFilterError::NestedPath));
    }

    #[test]
    fn documents_are_independent() {
        let mut ixf = IndexFilter::new();
        let e = ixf.add_str("//b").unwrap();
        assert_eq!(ixf.match_document(&doc("<a><b/></a>")), vec![e]);
        assert!(ixf.match_document(&doc("<a/>")).is_empty());
        assert_eq!(ixf.match_document(&doc("<b/>")), vec![e]);
    }
}
