//! End-to-end broker tests over localhost TCP: real sockets, real
//! threads, matched against a single-threaded oracle engine.

use pxf_broker::{Broker, BrokerConfig, Reply};
use pxf_core::FilterEngine;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A blocking test client with a read timeout so a broken broker fails
/// the test instead of hanging it.
struct Client {
    input: BufReader<TcpStream>,
    output: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let sock = TcpStream::connect(addr).expect("connect");
        sock.set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        sock.set_nodelay(true).unwrap();
        Client {
            input: BufReader::new(sock.try_clone().expect("clone")),
            output: sock,
        }
    }

    fn send(&mut self, line: &str) {
        self.output.write_all(line.as_bytes()).expect("send");
        self.output.write_all(b"\n").expect("send");
    }

    fn send_doc(&mut self, tag: &str, bytes: &[u8]) {
        self.output
            .write_all(format!("DOC {} {}\n", bytes.len(), tag).as_bytes())
            .expect("send doc header");
        self.output.write_all(bytes).expect("send doc payload");
    }

    /// Reads the next line; None on clean EOF.
    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.input.read_line(&mut line) {
                Ok(0) => return None,
                Ok(_) => {
                    if !line.trim().is_empty() {
                        return Some(line);
                    }
                }
                Err(e) => panic!("read timed out or failed: {e}"),
            }
        }
    }

    fn read_reply(&mut self) -> Reply {
        let line = self.read_line().expect("unexpected EOF");
        Reply::parse(&line).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    }

    /// Subscribes and returns the broker-assigned id.
    fn subscribe(&mut self, expr: &str) -> u32 {
        self.send(&format!("SUB {expr}"));
        loop {
            match self.read_reply() {
                Reply::SubOk(id) => return id,
                Reply::Err { kind, detail } => panic!("SUB rejected: {kind} {detail}"),
                _ => {} // skip async lines
            }
        }
    }

    fn unsubscribe(&mut self, id: u32) {
        self.send(&format!("UNSUB {id}"));
        loop {
            match self.read_reply() {
                Reply::UnsubOk(got) => {
                    assert_eq!(got, id);
                    return;
                }
                Reply::Err { kind, detail } => panic!("UNSUB rejected: {kind} {detail}"),
                _ => {}
            }
        }
    }
}

const EXPRS: &[&str] = &["/a", "/a/b", "//b", "//c", "/x", "/a//d", "//e", "/x/e"];

const DOC_SHAPES: &[&str] = &[
    "<a><b/></a>",
    "<a><c/><d/></a>",
    "<x><e/></x>",
    "<a><b><c/></b></a>",
];

/// Single-threaded oracle: which expression indices match each shape.
fn oracle_matches() -> Vec<BTreeSet<usize>> {
    let mut engine = FilterEngine::default();
    let ids: Vec<_> = EXPRS.iter().map(|e| engine.add_str(e).unwrap()).collect();
    engine.prepare();
    let mut matcher = engine.matcher();
    DOC_SHAPES
        .iter()
        .map(|shape| {
            let matched = matcher.match_bytes(shape.as_bytes()).unwrap();
            ids.iter()
                .enumerate()
                .filter(|(_, id)| matched.contains(id))
                .map(|(i, _)| i)
                .collect()
        })
        .collect()
}

fn spawn_broker(workers: usize) -> pxf_broker::BrokerHandle {
    Broker::spawn(BrokerConfig {
        workers,
        ..BrokerConfig::default()
    })
    .expect("spawn broker")
}

/// Two subscriber connections split the expression set; documents stream
/// while a third connection churns sub/unsub pairs. Every connection's
/// MATCH lines must equal the oracle's prediction for the expressions it
/// owns, in ingest (FIFO) order, before and after an unsubscribe.
#[test]
fn matches_agree_with_oracle_under_churn() {
    let broker = spawn_broker(4);
    let addr = broker.local_addr();
    let oracle = oracle_matches();

    // Conn A owns even expression indices, conn B odd ones.
    let mut conn_a = Client::connect(addr);
    let mut conn_b = Client::connect(addr);
    let mut a_ids = Vec::new(); // (broker id, expr index)
    let mut b_ids = Vec::new();
    for (i, expr) in EXPRS.iter().enumerate() {
        if i % 2 == 0 {
            a_ids.push((conn_a.subscribe(expr), i));
        } else {
            b_ids.push((conn_b.subscribe(expr), i));
        }
    }

    // Concurrent churn on its own connection while documents stream; its
    // short-lived subscriptions are owned by the churn connection, so
    // they never pollute A's or B's deliveries.
    let churn = std::thread::spawn(move || {
        let mut conn = Client::connect(addr);
        for round in 0..30 {
            let id = conn.subscribe(EXPRS[round % EXPRS.len()]);
            conn.unsubscribe(id);
        }
    });

    let mut ingest = Client::connect(addr);
    let n_docs = 60usize;
    for i in 0..n_docs {
        ingest.send_doc(
            &format!("d{i}"),
            DOC_SHAPES[i % DOC_SHAPES.len()].as_bytes(),
        );
    }
    let mut acked = 0;
    while acked < n_docs {
        if let Reply::DocOk { .. } = ingest.read_reply() {
            acked += 1;
        }
    }
    churn.join().expect("churn thread");

    // Expected deliveries per connection, in ingest order.
    let check = |conn: &mut Client, owned: &[(u32, usize)]| {
        let expected: Vec<(String, BTreeSet<u32>)> = (0..n_docs)
            .filter_map(|i| {
                let ids: BTreeSet<u32> = owned
                    .iter()
                    .filter(|(_, e)| oracle[i % DOC_SHAPES.len()].contains(e))
                    .map(|(id, _)| *id)
                    .collect();
                (!ids.is_empty()).then(|| (format!("d{i}"), ids))
            })
            .collect();
        let mut last_seq = None::<u64>;
        for (want_tag, want_ids) in &expected {
            let (seq, tag, ids) = match conn.read_reply() {
                Reply::Match { seq, tag, ids } => (seq, tag, ids),
                other => panic!("expected MATCH, got {other:?}"),
            };
            assert!(
                last_seq.is_none_or(|last| seq > last),
                "per-connection FIFO violated: seq {seq} after {last_seq:?}"
            );
            last_seq = Some(seq);
            assert_eq!(&tag, want_tag, "delivery out of ingest order");
            assert_eq!(&ids.iter().copied().collect::<BTreeSet<_>>(), want_ids);
        }
    };
    check(&mut conn_a, &a_ids);
    check(&mut conn_b, &b_ids);

    // Unsubscribe half of A's expressions; later documents must reflect it.
    let (dropped, kept): (Vec<_>, Vec<_>) = a_ids.iter().partition(|(_, e)| e % 4 == 0);
    for (id, _) in &dropped {
        conn_a.unsubscribe(*id);
    }
    for i in n_docs..n_docs + 20 {
        ingest.send_doc(
            &format!("d{i}"),
            DOC_SHAPES[i % DOC_SHAPES.len()].as_bytes(),
        );
    }
    let mut acked = 0;
    while acked < 20 {
        if let Reply::DocOk { .. } = ingest.read_reply() {
            acked += 1;
        }
    }
    for i in n_docs..n_docs + 20 {
        let want: BTreeSet<u32> = kept
            .iter()
            .filter(|(_, e)| oracle[i % DOC_SHAPES.len()].contains(e))
            .map(|(id, _)| *id)
            .collect();
        if want.is_empty() {
            continue;
        }
        match conn_a.read_reply() {
            Reply::Match { tag, ids, .. } => {
                assert_eq!(tag, format!("d{i}"));
                assert_eq!(ids.iter().copied().collect::<BTreeSet<_>>(), want);
            }
            other => panic!("expected MATCH, got {other:?}"),
        }
    }

    broker.shutdown();
    let stats = broker.wait();
    assert_eq!(stats.matched, (n_docs + 20) as u64);
    assert_eq!(stats.parse_failures, 0);
    assert_eq!(stats.full_rebuilds, 0, "churn must stay incremental");
}

/// A malformed document mid-stream yields `-ERR DOC` on the publishing
/// connection and nothing else: the connection survives, later documents
/// still match, and the failure is counted.
#[test]
fn malformed_doc_reports_error_without_dropping_connection() {
    let broker = spawn_broker(2);
    let mut conn = Client::connect(broker.local_addr());
    let sub = conn.subscribe("//b");

    conn.send_doc("good0", b"<a><b/></a>");
    // Balanced (so the boundary scanner hands it to a matcher) but
    // unparseable: the matcher rejects it.
    conn.send_doc("bad1", b"<bad attr=></bad>");
    conn.send_doc("good2", b"<a><b/></a>");

    let mut acks = 0;
    let mut matches = Vec::new();
    let mut errors = Vec::new();
    while matches.len() < 2 || errors.is_empty() || acks < 3 {
        match conn.read_reply() {
            Reply::DocOk { tag, .. } => {
                acks += 1;
                assert!(["good0", "bad1", "good2"].contains(&tag.as_str()));
            }
            Reply::Match { tag, ids, .. } => {
                assert_eq!(ids, vec![sub]);
                matches.push(tag);
            }
            Reply::Err { kind, .. } => {
                assert_eq!(kind, "DOC");
                errors.push(kind);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(matches, vec!["good0", "good2"], "connection kept working");

    // The connection is still fully functional after the error.
    conn.send("STATS");
    loop {
        if let Reply::Stats(kv) = conn.read_reply() {
            let stats = pxf_broker::BrokerStatsSnapshot::from_kv(&kv);
            assert_eq!(stats.parse_failures, 1);
            assert_eq!(stats.matched, 2);
            assert_eq!(stats.conns, 1);
            break;
        }
    }

    broker.shutdown();
    broker.wait();
}

/// A frame whose payload ends inside a document (complete frame,
/// truncated XML) must draw an immediate `-ERR DOC` — not silence — and
/// the leftover bytes must not leak into the next frame's scan.
#[test]
fn truncated_frame_reports_error_and_resyncs() {
    let broker = spawn_broker(2);
    let mut conn = Client::connect(broker.local_addr());
    let sub = conn.subscribe("//b");

    // Frame is complete (5 payload bytes announced, 5 sent) but the
    // document inside it is not.
    conn.send_doc("trunc", b"<a><b");
    match conn.read_reply() {
        Reply::Err { kind, detail } => {
            assert_eq!(kind, "DOC");
            assert!(
                detail.contains("inside a document"),
                "unexpected detail {detail:?}"
            );
        }
        other => panic!("expected -ERR DOC for truncated frame, got {other:?}"),
    }

    // The partial must have been discarded: this document would not match
    // //b if the scanner glued it onto the leftover "<a><b".
    conn.send_doc("good", b"<a><b/></a>");
    let mut acked = false;
    let mut matched = false;
    while !acked || !matched {
        match conn.read_reply() {
            Reply::DocOk { tag, .. } => {
                assert_eq!(tag, "good");
                acked = true;
            }
            Reply::Match { tag, ids, .. } => {
                assert_eq!(tag, "good");
                assert_eq!(ids, vec![sub]);
                matched = true;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    broker.shutdown();
    broker.wait();
}

/// With several workers completing documents out of order, the delivery
/// resequencer must still hand each connection its MATCH lines in exact
/// ingest order.
#[test]
fn delivery_is_fifo_per_connection() {
    let broker = spawn_broker(4);
    let addr = broker.local_addr();
    let mut subscriber = Client::connect(addr);
    subscriber.subscribe("//b");

    let mut ingest = Client::connect(addr);
    let n = 200usize;
    for i in 0..n {
        // Alternate sizes so worker completion order scrambles.
        let doc = if i % 3 == 0 {
            format!("<a>{}<b/></a>", "<c/>".repeat(40))
        } else {
            "<a><b/></a>".to_string()
        };
        ingest.send_doc(&format!("d{i}"), doc.as_bytes());
    }

    let mut last_seq = None::<u64>;
    for i in 0..n {
        match subscriber.read_reply() {
            Reply::Match { seq, tag, .. } => {
                assert_eq!(tag, format!("d{i}"), "delivery out of ingest order");
                assert!(last_seq.is_none_or(|last| seq > last));
                last_seq = Some(seq);
            }
            other => panic!("expected MATCH, got {other:?}"),
        }
    }

    broker.shutdown();
    broker.wait();
}

/// Documents accepted before a shutdown request must still be matched
/// and delivered before the sockets close: shutdown drains, it does not
/// discard.
#[test]
fn shutdown_drains_in_flight_documents() {
    let broker = spawn_broker(1); // one worker: the backlog stays deep
    let addr = broker.local_addr();
    let mut subscriber = Client::connect(addr);
    subscriber.subscribe("//b");

    let mut ingest = Client::connect(addr);
    let n = 100usize;
    for i in 0..n {
        ingest.send_doc(&format!("d{i}"), b"<a><b/></a>");
    }
    let mut acked = 0;
    while acked < n {
        if let Reply::DocOk { .. } = ingest.read_reply() {
            acked += 1;
        }
    }

    // Shut down while (most of) the backlog is still unprocessed.
    broker.shutdown();
    let stats = broker.wait();
    assert_eq!(stats.ingested, n as u64);
    assert_eq!(
        stats.matched, n as u64,
        "shutdown must drain in-flight docs"
    );

    // Every delivery reached the subscriber's socket before close.
    let mut got = 0;
    while let Some(line) = subscriber.read_line() {
        if let Ok(Reply::Match { tag, .. }) = Reply::parse(&line) {
            assert_eq!(tag, format!("d{got}"));
            got += 1;
        }
    }
    assert_eq!(got, n, "all in-flight matches delivered before close");
}
