//! Load-generator client for the `pxf` broker.
//!
//! Drives a running broker (or spawns one in-process with `--spawn`)
//! with a resident subscription base, concurrent SUB/UNSUB churn and a
//! full-throttle document stream, then reports ingest throughput and
//! delivery-latency percentiles.
//!
//! ```text
//! loadgen --spawn --subs 100000 --docs 2000 --churn 500
//! loadgen --addr 127.0.0.1:7878 --subs 50000 --docs 1000
//! ```

use pxf_broker::{loadgen, Broker, BrokerConfig, LoadgenConfig};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT | --spawn] [options]\n\
         \n\
         options:\n\
           --addr HOST:PORT      broker to drive (default 127.0.0.1:7878)\n\
           --spawn               spawn a broker in-process on an ephemeral port\n\
           --workers N           worker threads for --spawn (default: auto)\n\
           --subs N              resident subscriptions (default 100000)\n\
           --sub-conns N         subscriber connections (default 4)\n\
           --docs N              documents to stream (default 2000)\n\
           --churn N             concurrent SUB/UNSUB pairs (default 500)\n\
           --rate N              offered load, docs/sec, open-loop (default 0 = full throttle;\n\
                                 full throttle measures saturation sojourn, not service latency)\n\
           --malformed-every N   every Nth doc is malformed (default 0 = none)\n\
           --seed N              workload seed (default 42)\n\
           --shutdown            send SHUTDOWN to the broker when done"
    );
    std::process::exit(2);
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
        .clone()
}

fn take_number<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    let v = take_value(args, i, flag);
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value {v:?} for {flag}");
        usage()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = LoadgenConfig::default();
    let mut spawn = false;
    let mut workers = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = take_value(&args, &mut i, "--addr"),
            "--spawn" => spawn = true,
            "--workers" => workers = take_number(&args, &mut i, "--workers"),
            "--subs" => cfg.subs = take_number(&args, &mut i, "--subs"),
            "--sub-conns" => cfg.sub_conns = take_number(&args, &mut i, "--sub-conns"),
            "--docs" => cfg.docs = take_number(&args, &mut i, "--docs"),
            "--churn" => cfg.churn_pairs = take_number(&args, &mut i, "--churn"),
            "--rate" => cfg.rate = take_number(&args, &mut i, "--rate"),
            "--malformed-every" => {
                cfg.malformed_every = take_number(&args, &mut i, "--malformed-every")
            }
            "--seed" => cfg.seed = take_number(&args, &mut i, "--seed"),
            "--shutdown" => cfg.shutdown_when_done = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }

    let broker = if spawn {
        let handle = Broker::spawn(BrokerConfig {
            workers,
            ..BrokerConfig::default()
        })
        .unwrap_or_else(|e| {
            eprintln!("failed to spawn broker: {e}");
            std::process::exit(1);
        });
        cfg.addr = handle.local_addr().to_string();
        cfg.shutdown_when_done = true;
        eprintln!("spawned broker on {}", cfg.addr);
        Some(handle)
    } else {
        None
    };

    let report = loadgen::run(&cfg).unwrap_or_else(|e| {
        eprintln!("loadgen failed: {e}");
        std::process::exit(1);
    });

    println!("resident_subs      {}", report.resident_subs);
    println!("docs_sent          {}", report.docs_sent);
    println!("docs_matched       {}", report.docs_matched);
    println!("parse_failures     {}", report.parse_failures);
    println!("match_lines        {}", report.match_lines);
    println!("fifo_violations    {}", report.fifo_violations);
    println!("latency_samples    {}", report.latency_samples);
    println!("ingest_secs        {:.3}", report.ingest_secs);
    println!("docs_per_sec       {:.1}", report.docs_per_sec);
    println!("delivery_p50_ms    {:.3}", report.p50_ms);
    println!("delivery_p99_ms    {:.3}", report.p99_ms);
    println!("epoch              {}", report.stats.epoch);
    println!("full_rebuilds      {}", report.stats.full_rebuilds);
    println!("clone_fallbacks    {}", report.stats.clone_fallbacks);
    println!("incremental_patches {}", report.stats.incremental_patches);
    println!("shed               {}", report.stats.shed);
    println!("dropped            {}", report.stats.dropped);

    if let Some(handle) = broker {
        let final_stats = handle.wait();
        eprintln!(
            "broker drained: ingested={} matched={} delivered={}",
            final_stats.ingested, final_stats.matched, final_stats.delivered
        );
    }

    let ok = report.fifo_violations == 0
        && report.stats.full_rebuilds == 0
        && report.docs_matched + report.parse_failures >= report.docs_sent as u64;
    std::process::exit(if ok { 0 } else { 1 });
}
