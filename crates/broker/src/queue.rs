//! Bounded FIFO queues with explicit backpressure.
//!
//! Every hand-off inside the broker — ingest, match completion, control
//! ops, per-connection outboxes — goes through a [`BoundedQueue`]: a
//! `VecDeque` behind a `Mutex` with two `Condvar`s, a hard capacity, and
//! a configurable policy for what happens at the high-water mark. Nothing
//! in the pipeline is ever an unbounded `Vec`, and consumers never
//! busy-wait: producers park on `not_full`, consumers on `not_empty`.
//!
//! Two policies cover the two legitimate overload responses:
//!
//! * [`Backpressure::Block`] — the producer parks until space frees up.
//!   Right for ingest: a client pushing documents faster than the matcher
//!   pool drains them should feel the broker slow down (TCP backpressure
//!   propagates all the way to the peer's `write`).
//! * [`Backpressure::Shed`] — the item is dropped and counted. Right for
//!   per-subscriber outboxes: one slow consumer must not stall fan-out to
//!   everyone else.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// What a [`BoundedQueue`] does when a push finds the queue at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Park the producer until the consumer frees a slot.
    Block,
    /// Drop the pushed item and bump the shed counter.
    Shed,
}

/// Outcome of a [`BoundedQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The item is in the queue.
    Enqueued,
    /// The queue was full under [`Backpressure::Shed`]; the item was
    /// dropped and counted.
    Shed,
    /// The queue was closed; the item was dropped.
    Closed,
}

impl PushOutcome {
    /// True if the item made it into the queue.
    pub fn is_enqueued(self) -> bool {
        self == PushOutcome::Enqueued
    }
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    shed: u64,
}

/// A bounded multi-producer multi-consumer FIFO queue.
///
/// ```
/// use pxf_broker::queue::{Backpressure, BoundedQueue};
/// let q = BoundedQueue::new(2, Backpressure::Shed);
/// assert!(q.push(1).is_enqueued());
/// assert!(q.push(2).is_enqueued());
/// assert!(!q.push(3).is_enqueued()); // at capacity: shed
/// assert_eq!(q.pop(), Some(1));      // strictly FIFO
/// assert_eq!(q.pop(), Some(2));
/// q.close();
/// assert_eq!(q.pop(), None);
/// assert_eq!(q.shed_count(), 1);
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: Backpressure,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize, policy: Backpressure) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                shed: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    /// Enqueues an item at the tail. At capacity, either parks
    /// ([`Backpressure::Block`]) or drops the item ([`Backpressure::Shed`]).
    /// Pushing to a closed queue always drops.
    pub fn push(&self, item: T) -> PushOutcome {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.closed {
                return PushOutcome::Closed;
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return PushOutcome::Enqueued;
            }
            match self.policy {
                Backpressure::Shed => {
                    inner.shed += 1;
                    return PushOutcome::Shed;
                }
                Backpressure::Block => {
                    inner = self.not_full.wait(inner).expect("queue poisoned");
                }
            }
        }
    }

    /// Dequeues the head item, parking until one is available. Returns
    /// `None` once the queue is closed *and* drained — a closed queue
    /// still yields every item pushed before the close.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Dequeues up to `max` items into `out`, parking until at least one
    /// is available. Returns the number taken; 0 means closed-and-drained.
    /// Consumers that pin per-batch state (the matcher pool pins one
    /// engine snapshot per batch) use this instead of item-at-a-time pops.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        let max = max.max(1);
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if !inner.items.is_empty() {
                let n = max.min(inner.items.len());
                out.extend(inner.items.drain(..n));
                drop(inner);
                self.not_full.notify_all();
                return n;
            }
            if inner.closed {
                return 0;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Dequeues up to `max` items into `out` without ever parking.
    /// Returns the number taken — 0 simply means the queue is empty right
    /// now (or closed). The subscription-writer thread uses this to
    /// opportunistically batch control ops behind a blocking [`Self::pop`]
    /// so one snapshot publish covers the whole batch.
    pub fn try_drain(&self, max: usize, out: &mut Vec<T>) -> usize {
        let mut inner = self.inner.lock().expect("queue poisoned");
        let n = max.min(inner.items.len());
        if n > 0 {
            out.extend(inner.items.drain(..n));
            drop(inner);
            self.not_full.notify_all();
        }
        n
    }

    /// Closes the queue: subsequent pushes drop, consumers drain what is
    /// left and then observe the end of the queue.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// True if nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items dropped at the high-water mark (shed policy only).
    pub fn shed_count(&self) -> u64 {
        self.inner.lock().expect("queue poisoned").shed
    }

    /// The configured capacity (high-water mark).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overload policy.
    pub fn policy(&self) -> Backpressure {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    /// The PR-8 delivery-order satellite, at the primitive level: items
    /// come out in exactly the order they went in (the example's previous
    /// shared `Vec` + `pop()` was LIFO).
    #[test]
    fn strictly_fifo_across_threads() {
        let q = BoundedQueue::new(8, Backpressure::Block);
        std::thread::scope(|scope| {
            let q = &q;
            scope.spawn(move || {
                for i in 0..1000u32 {
                    assert!(q.push(i).is_enqueued());
                }
                q.close();
            });
            let mut expected = 0u32;
            while let Some(i) = q.pop() {
                assert_eq!(i, expected, "FIFO order violated");
                expected += 1;
            }
            assert_eq!(expected, 1000);
        });
    }

    #[test]
    fn block_policy_parks_producer_until_space() {
        let q = BoundedQueue::new(1, Backpressure::Block);
        assert!(q.push(0u32).is_enqueued());
        let parked = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let q = &q;
            let parked = &parked;
            scope.spawn(move || {
                // Full queue: this parks until the main thread pops.
                assert!(q.push(1).is_enqueued());
                parked.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(30));
            assert_eq!(
                parked.load(Ordering::SeqCst),
                0,
                "push must block at capacity"
            );
            assert_eq!(q.pop(), Some(0));
        });
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.shed_count(), 0);
    }

    #[test]
    fn shed_policy_drops_and_counts_at_high_water() {
        let q = BoundedQueue::new(2, Backpressure::Shed);
        assert!(q.push('a').is_enqueued());
        assert!(q.push('b').is_enqueued());
        assert_eq!(q.push('c'), PushOutcome::Shed);
        assert_eq!(q.push('d'), PushOutcome::Shed);
        assert_eq!(q.shed_count(), 2);
        assert_eq!(q.pop(), Some('a'));
        assert!(q.push('e').is_enqueued());
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), Some('e'));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4, Backpressure::Block);
        q.push(1);
        q.push(2);
        q.close();
        assert_eq!(q.push(3), PushOutcome::Closed);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_unblocks_waiting_consumer() {
        let q = BoundedQueue::<u32>::new(4, Backpressure::Block);
        std::thread::scope(|scope| {
            let q = &q;
            let waiter = scope.spawn(move || q.pop());
            std::thread::sleep(Duration::from_millis(20));
            q.close();
            assert_eq!(waiter.join().unwrap(), None);
        });
    }

    #[test]
    fn try_drain_never_blocks() {
        let q = BoundedQueue::new(8, Backpressure::Block);
        let mut out = Vec::new();
        assert_eq!(q.try_drain(4, &mut out), 0);
        q.push(7u32);
        q.push(8);
        assert_eq!(q.try_drain(4, &mut out), 2);
        assert_eq!(out, vec![7, 8]);
    }

    #[test]
    fn pop_batch_takes_up_to_max_in_order() {
        let q = BoundedQueue::new(16, Backpressure::Block);
        for i in 0..10u32 {
            q.push(i);
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(4, &mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.pop_batch(100, &mut out), 6);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        q.close();
        assert_eq!(q.pop_batch(4, &mut out), 0);
    }
}
