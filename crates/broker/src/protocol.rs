//! The broker's framed line protocol.
//!
//! Everything on the wire is a UTF-8 line terminated by `\n`, except the
//! document payload of a `DOC` frame, which is a raw byte run of the
//! length announced on the command line. Keeping the framing this simple
//! means the broker can be driven by `nc` for debugging, and the loadgen
//! client needs no parser beyond `read_line` + `read_exact`.
//!
//! Client → server commands:
//!
//! ```text
//! SUB <xpath>            register a subscription; reply `+SUB <id>`
//! UNSUB <id>             drop a subscription;     reply `+UNSUB <id>`
//! DOC <len> <tag>\n<len raw bytes>
//!                        ingest a document;       reply `+DOC <seq> <tag>`
//! STATS                  broker counters;         reply `+STATS k=v ...`
//! QUIT                   close this connection;   reply `+BYE`
//! SHUTDOWN               stop the whole broker;   reply `+SHUTDOWN`
//! ```
//!
//! Server → client replies are `+`-prefixed on success, `-ERR <kind>
//! <detail>` on failure, plus one asynchronous message type:
//!
//! ```text
//! MATCH <seq> <tag> <n> <id> <id> ...
//! ```
//!
//! delivered to each subscriber owning at least one matching expression.
//! `seq` is the broker-global ingest sequence number; within one
//! connection `MATCH` sequence numbers are strictly ascending — document
//! delivery order equals ingest order (the FIFO guarantee this PR fixes
//! in the in-process example too). `tag` is the client-chosen opaque
//! token from the `DOC` line, echoed back so load generators can compute
//! per-document latency without a clock on the broker.

/// A parsed client command (the `DOC` payload itself is read separately
/// by the connection reader, after parsing the command line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `SUB <xpath>` — register `xpath` for this connection.
    Sub(String),
    /// `UNSUB <id>` — drop subscription `id` (must belong to this connection).
    Unsub(u32),
    /// `DOC <len> <tag>` — `len` raw payload bytes follow the newline.
    Doc {
        /// Payload length in bytes.
        len: usize,
        /// Opaque client token echoed in `+DOC` and `MATCH` lines.
        tag: String,
    },
    /// `STATS` — dump broker counters.
    Stats,
    /// `QUIT` — close this connection after a `+BYE`.
    Quit,
    /// `SHUTDOWN` — gracefully stop the broker (drains in-flight docs).
    Shutdown,
}

/// Why a command line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable kind (first token after `-ERR`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl ProtocolError {
    fn new(kind: &'static str, detail: impl Into<String>) -> Self {
        ProtocolError {
            kind,
            detail: detail.into(),
        }
    }

    /// Renders the error as a `-ERR` wire line (no trailing newline).
    pub fn to_wire(&self) -> String {
        format!("-ERR {} {}", self.kind, self.detail)
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.detail, self.kind)
    }
}

impl std::error::Error for ProtocolError {}

impl Command {
    /// Parses one command line (without its trailing newline).
    pub fn parse(line: &str) -> Result<Command, ProtocolError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r),
            None => (line, ""),
        };
        match verb {
            "SUB" => {
                if rest.trim().is_empty() {
                    return Err(ProtocolError::new("SUB", "missing xpath expression"));
                }
                Ok(Command::Sub(rest.to_string()))
            }
            "UNSUB" => {
                let id = rest.trim().parse::<u32>().map_err(|_| {
                    ProtocolError::new("UNSUB", format!("bad subscription id {rest:?}"))
                })?;
                Ok(Command::Unsub(id))
            }
            "DOC" => {
                let (len_str, tag) = rest
                    .split_once(' ')
                    .ok_or_else(|| ProtocolError::new("DOC", "usage: DOC <len> <tag>"))?;
                let len = len_str
                    .parse::<usize>()
                    .map_err(|_| ProtocolError::new("DOC", format!("bad length {len_str:?}")))?;
                if tag.is_empty() || tag.contains(' ') {
                    return Err(ProtocolError::new(
                        "DOC",
                        "tag must be a single non-empty token",
                    ));
                }
                Ok(Command::Doc {
                    len,
                    tag: tag.to_string(),
                })
            }
            "STATS" => Ok(Command::Stats),
            "QUIT" => Ok(Command::Quit),
            "SHUTDOWN" => Ok(Command::Shutdown),
            other => Err(ProtocolError::new(
                "COMMAND",
                format!("unknown command {other:?}"),
            )),
        }
    }
}

/// A parsed server→client line, as seen by clients (the loadgen binary
/// and the e2e tests use this; the broker itself only encodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+SUB <id>`
    SubOk(u32),
    /// `+UNSUB <id>`
    UnsubOk(u32),
    /// `+DOC <seq> <tag>` — the document was accepted into the ingest queue.
    DocOk {
        /// Broker-global ingest sequence number.
        seq: u64,
        /// The client's tag, echoed.
        tag: String,
    },
    /// `+STATS k=v ...`
    Stats(Vec<(String, String)>),
    /// `+BYE`
    Bye,
    /// `+SHUTDOWN`
    ShutdownOk,
    /// `-ERR <kind> <detail>`
    Err {
        /// Machine-readable error kind.
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// `MATCH <seq> <tag> <n> <id...>` — asynchronous match notification.
    Match {
        /// Broker-global ingest sequence number of the matching document.
        seq: u64,
        /// The publisher's tag for the document.
        tag: String,
        /// Matching subscription ids owned by this connection.
        ids: Vec<u32>,
    },
}

impl Reply {
    /// Parses one reply line (without its trailing newline).
    pub fn parse(line: &str) -> Result<Reply, ProtocolError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let bad = |detail: String| ProtocolError::new("REPLY", detail);
        let mut toks = line.split(' ');
        let head = toks.next().unwrap_or("");
        match head {
            "+SUB" => {
                let id = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(format!("malformed +SUB: {line:?}")))?;
                Ok(Reply::SubOk(id))
            }
            "+UNSUB" => {
                let id = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(format!("malformed +UNSUB: {line:?}")))?;
                Ok(Reply::UnsubOk(id))
            }
            "+DOC" => {
                let seq = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(format!("malformed +DOC: {line:?}")))?;
                let tag = toks
                    .next()
                    .ok_or_else(|| bad(format!("malformed +DOC: {line:?}")))?
                    .to_string();
                Ok(Reply::DocOk { seq, tag })
            }
            "+STATS" => {
                let mut kv = Vec::new();
                for tok in toks {
                    let (k, v) = tok
                        .split_once('=')
                        .ok_or_else(|| bad(format!("malformed +STATS token {tok:?}")))?;
                    kv.push((k.to_string(), v.to_string()));
                }
                Ok(Reply::Stats(kv))
            }
            "+BYE" => Ok(Reply::Bye),
            "+SHUTDOWN" => Ok(Reply::ShutdownOk),
            "-ERR" => {
                let kind = toks
                    .next()
                    .ok_or_else(|| bad(format!("malformed -ERR: {line:?}")))?
                    .to_string();
                let detail = toks.collect::<Vec<_>>().join(" ");
                Ok(Reply::Err { kind, detail })
            }
            "MATCH" => {
                let seq = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(format!("malformed MATCH: {line:?}")))?;
                let tag = toks
                    .next()
                    .ok_or_else(|| bad(format!("malformed MATCH: {line:?}")))?
                    .to_string();
                let n: usize = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(format!("malformed MATCH: {line:?}")))?;
                let ids = toks
                    .map(|t| t.parse::<u32>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| bad(format!("malformed MATCH ids: {line:?}")))?;
                if ids.len() != n {
                    return Err(bad(format!(
                        "MATCH announced {n} ids but carried {}",
                        ids.len()
                    )));
                }
                Ok(Reply::Match { seq, tag, ids })
            }
            _ => Err(bad(format!("unknown reply {line:?}"))),
        }
    }

    /// Renders the reply as a wire line (no trailing newline).
    pub fn to_wire(&self) -> String {
        match self {
            Reply::SubOk(id) => format!("+SUB {id}"),
            Reply::UnsubOk(id) => format!("+UNSUB {id}"),
            Reply::DocOk { seq, tag } => format!("+DOC {seq} {tag}"),
            Reply::Stats(kv) => {
                let mut s = String::from("+STATS");
                for (k, v) in kv {
                    s.push(' ');
                    s.push_str(k);
                    s.push('=');
                    s.push_str(v);
                }
                s
            }
            Reply::Bye => "+BYE".to_string(),
            Reply::ShutdownOk => "+SHUTDOWN".to_string(),
            Reply::Err { kind, detail } => format!("-ERR {kind} {detail}"),
            Reply::Match { seq, tag, ids } => {
                let mut s = format!("MATCH {seq} {tag} {}", ids.len());
                for id in ids {
                    s.push(' ');
                    s.push_str(&id.to_string());
                }
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse() {
        assert_eq!(
            Command::parse("SUB /news//article[@k = \"v\"]").unwrap(),
            Command::Sub("/news//article[@k = \"v\"]".into())
        );
        assert_eq!(Command::parse("UNSUB 42\r\n").unwrap(), Command::Unsub(42));
        assert_eq!(
            Command::parse("DOC 128 d17").unwrap(),
            Command::Doc {
                len: 128,
                tag: "d17".into()
            }
        );
        assert_eq!(Command::parse("STATS").unwrap(), Command::Stats);
        assert_eq!(Command::parse("QUIT").unwrap(), Command::Quit);
        assert_eq!(Command::parse("SHUTDOWN").unwrap(), Command::Shutdown);
    }

    #[test]
    fn command_errors_carry_stable_kinds() {
        assert_eq!(Command::parse("SUB ").unwrap_err().kind, "SUB");
        assert_eq!(Command::parse("UNSUB x").unwrap_err().kind, "UNSUB");
        assert_eq!(Command::parse("DOC 12").unwrap_err().kind, "DOC");
        assert_eq!(Command::parse("DOC pig t").unwrap_err().kind, "DOC");
        assert_eq!(Command::parse("DOC 5 a b").unwrap_err().kind, "DOC");
        assert_eq!(Command::parse("NOPE").unwrap_err().kind, "COMMAND");
        assert!(Command::parse("NOPE")
            .unwrap_err()
            .to_wire()
            .starts_with("-ERR COMMAND"));
    }

    #[test]
    fn replies_round_trip() {
        let cases = vec![
            Reply::SubOk(7),
            Reply::UnsubOk(7),
            Reply::DocOk {
                seq: 991,
                tag: "t3".into(),
            },
            Reply::Stats(vec![
                ("epoch".into(), "12".into()),
                ("subs".into(), "100000".into()),
            ]),
            Reply::Bye,
            Reply::ShutdownOk,
            Reply::Err {
                kind: "DOC".into(),
                detail: "parse failed at byte 7".into(),
            },
            Reply::Match {
                seq: 5,
                tag: "d5".into(),
                ids: vec![1, 9, 33],
            },
            Reply::Match {
                seq: 6,
                tag: "d6".into(),
                ids: vec![],
            },
        ];
        for reply in cases {
            let wire = reply.to_wire();
            assert_eq!(Reply::parse(&wire).unwrap(), reply, "wire: {wire}");
        }
    }

    #[test]
    fn match_id_count_is_checked() {
        assert!(Reply::parse("MATCH 5 t 3 1 2").is_err());
        assert!(Reply::parse("MATCH 5 t 1 1 2").is_err());
    }
}
