//! The long-running broker service.
//!
//! A [`Broker`] turns the in-process snapshot-publication machinery
//! ([`SnapshotPublisher`] / [`SnapshotHandle`]) into a network service
//! speaking the line protocol of [`crate::protocol`] over plain
//! `std::net` TCP. The thread topology mirrors the paper's deployment
//! (one writer, many matchers, §6):
//!
//! ```text
//!                    ┌────────────┐  control   ┌──────────────────┐
//!  conn reader ─────▶│  BoundedQ  │───────────▶│ subscription     │
//!  (SUB/UNSUB)       └────────────┘  (Block)   │ writer thread    │──publish──▶ snapshot slot
//!                                              │ SnapshotPublisher│                 │
//!                    ┌────────────┐  ingest    └──────────────────┘                 │ load()/batch
//!  conn reader ─────▶│  BoundedQ  │────────────────┬──────────────┐                 ▼
//!  (DOC frames,      └────────────┘  (Block)       ▼              ▼          ┌────────────┐
//!   DocumentStream                             matcher w0 …  matcher wN ────▶│  BoundedQ  │
//!   push-mode scan)                                                delivery  └────────────┘
//!                                                                  (Block)        │
//!                    ┌────────────┐  per-conn outbox (Shed)  ┌────────────────────┘
//!  conn writer ◀─────│  BoundedQ  │◀─────────────────────────│ delivery thread
//!  (MATCH/-ERR/+OK)  └────────────┘                          │ (seq resequencer)
//! ```
//!
//! Invariants the topology enforces:
//!
//! * **One writer.** All subscription churn funnels through a single
//!   thread owning the [`SnapshotPublisher`]; a batch of control ops is
//!   applied and published as one snapshot swap, so matchers never see a
//!   half-applied batch and steady-state churn stays on the incremental
//!   patch + replay path (zero full rebuilds, zero clone fallbacks).
//! * **Snapshot pinning per batch.** Each matcher worker loads the
//!   current snapshot once per ingest batch and drops it before parking
//!   again, keeping the publisher's bounded reclaim wait effective.
//! * **Bounded everything.** Every hand-off is a [`BoundedQueue`]:
//!   ingest and control block producers (backpressure propagates out the
//!   TCP socket to the publisher's peer), per-subscriber outboxes shed
//!   (one slow consumer cannot stall fan-out).
//! * **FIFO delivery.** Workers finish documents out of order; the
//!   delivery thread restores global ingest-sequence order with a
//!   min-heap resequencer before fanning out, so each connection sees
//!   strictly ascending `MATCH` sequence numbers.
//! * **Malformed input is data, not failure.** Document bytes run
//!   through a per-connection push-mode [`DocumentStream`] under strict
//!   [`ParserLimits`]; scanner- and parse-level failures produce a
//!   `-ERR DOC` line on the offending connection and honor the
//!   note_success/note_failure raw-ingest contract, so only a run of
//!   *consecutive* failures (a truly desynced peer) fuses and closes the
//!   connection.

use crate::protocol::{Command, Reply};
use crate::queue::{Backpressure, BoundedQueue, PushOutcome};
use pxf_core::{FilterEngine, SnapshotHandle, SnapshotPublisher, SubId};
use pxf_xml::{DocumentStream, ParserLimits, PollDoc, XmlErrorKind};
use pxf_xpath::XPathExpr;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for a [`Broker`]. `Default` is sized for tests and small
/// deployments; the CLI exposes the interesting knobs.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub listen: String,
    /// Matcher worker threads; 0 = derive from available parallelism.
    pub workers: usize,
    /// Ingest queue capacity (documents in flight).
    pub ingest_capacity: usize,
    /// Backpressure policy of the ingest queue. [`Backpressure::Block`]
    /// (the default) propagates overload to publishers via TCP;
    /// [`Backpressure::Shed`] drops documents instead (each shed is
    /// reported and gap-filled so delivery order is preserved).
    pub ingest_policy: Backpressure,
    /// Control queue capacity (subscription ops in flight).
    pub control_capacity: usize,
    /// Delivery queue capacity (match completions in flight).
    pub delivery_capacity: usize,
    /// Per-connection outbox capacity (lines not yet written).
    pub outbox_capacity: usize,
    /// Outbox policy. Keep this [`Backpressure::Shed`] — a blocking
    /// outbox lets one unread connection stall the delivery thread.
    pub outbox_policy: Backpressure,
    /// Per-document parser budgets applied on both the boundary scanner
    /// and the matchers.
    pub limits: ParserLimits,
    /// Largest accepted `DOC` frame; bigger frames are rejected with
    /// `-ERR DOC` and their payload discarded (the connection survives).
    pub max_frame_bytes: usize,
    /// Documents a matcher worker processes per pinned snapshot.
    pub match_batch: usize,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            listen: "127.0.0.1:0".to_string(),
            workers: 0,
            ingest_capacity: 1024,
            ingest_policy: Backpressure::Block,
            control_capacity: 4096,
            delivery_capacity: 1024,
            outbox_capacity: 65536,
            outbox_policy: Backpressure::Shed,
            limits: ParserLimits::strict(),
            max_frame_bytes: 8 << 20,
            match_batch: 32,
        }
    }
}

/// A document accepted into the ingest queue.
struct IngestDoc {
    seq: u64,
    conn: u64,
    tag: String,
    bytes: Vec<u8>,
}

/// What matching a document produced.
enum Outcome {
    /// Parsed fine; these subscriptions matched (possibly none).
    Matched(Vec<SubId>),
    /// The document failed to parse under the engine's limits.
    ParseError(String),
    /// The document was shed before matching (ingest overflow); exists
    /// only to fill its sequence slot in the resequencer.
    Shed,
}

struct Completion {
    seq: u64,
    conn: u64,
    tag: String,
    outcome: Outcome,
}

/// Min-heap adapter: BinaryHeap is a max-heap, order by reversed seq.
struct Pending(Completion);

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.seq.cmp(&self.0.seq)
    }
}

/// One subscription-base mutation bound for the writer thread.
enum Control {
    Sub { conn: u64, expr: Box<XPathExpr> },
    Unsub { conn: u64, id: u32 },
    Disconnect { conn: u64 },
}

/// Per-connection state shared between its reader, its writer, the
/// subscription writer and the delivery thread.
struct ConnShared {
    id: u64,
    /// Lines awaiting the connection writer. Shed policy: a peer that
    /// stops reading loses notifications, not the broker's liveness.
    outbox: BoundedQueue<String>,
    /// Push-mode boundary scanner carrying the connection's cumulative
    /// failure-cap state (the raw-ingest contract's note_success /
    /// note_failure land here from the delivery thread).
    stream: Mutex<DocumentStream<std::io::Empty>>,
    /// Clone of the socket kept for `shutdown()` during teardown.
    sock: TcpStream,
}

#[derive(Default)]
struct Counters {
    ingested: AtomicU64,
    matched: AtomicU64,
    parse_failures: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    subs: AtomicU64,
    conns: AtomicU64,
    rebuilds: AtomicU64,
    clone_fallbacks: AtomicU64,
    patches: AtomicU64,
}

/// A point-in-time copy of the broker's counters (the payload of a
/// `+STATS` reply, and what [`BrokerHandle::wait`] returns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStatsSnapshot {
    /// Snapshot epoch of the most recent publish.
    pub epoch: u64,
    /// Connections currently open.
    pub conns: u64,
    /// Resident subscriptions.
    pub subs: u64,
    /// Documents accepted into the ingest queue.
    pub ingested: u64,
    /// Documents matched successfully (match set may be empty).
    pub matched: u64,
    /// Documents rejected by the parser.
    pub parse_failures: u64,
    /// `MATCH` lines enqueued to subscriber outboxes.
    pub delivered: u64,
    /// Items dropped at a high-water mark (ingest + all outboxes).
    pub shed: u64,
    /// Deliveries addressed to a connection that had already gone away.
    pub dropped: u64,
    /// Full index rebuilds on the write engine (steady state: 0).
    pub full_rebuilds: u64,
    /// Publishes that fell back to deep-cloning (steady state: 0).
    pub clone_fallbacks: u64,
    /// In-place incremental index patches applied.
    pub incremental_patches: u64,
}

impl BrokerStatsSnapshot {
    fn to_kv(self) -> Vec<(String, String)> {
        [
            ("epoch", self.epoch),
            ("conns", self.conns),
            ("subs", self.subs),
            ("ingested", self.ingested),
            ("matched", self.matched),
            ("parse_failures", self.parse_failures),
            ("delivered", self.delivered),
            ("shed", self.shed),
            ("dropped", self.dropped),
            ("rebuilds", self.full_rebuilds),
            ("clone_fallbacks", self.clone_fallbacks),
            ("patches", self.incremental_patches),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
    }

    /// Parses the key/value pairs of a `+STATS` reply (unknown keys are
    /// ignored so old clients tolerate new counters).
    pub fn from_kv(kv: &[(String, String)]) -> Self {
        let mut s = BrokerStatsSnapshot::default();
        for (k, v) in kv {
            let Ok(v) = v.parse::<u64>() else { continue };
            match k.as_str() {
                "epoch" => s.epoch = v,
                "conns" => s.conns = v,
                "subs" => s.subs = v,
                "ingested" => s.ingested = v,
                "matched" => s.matched = v,
                "parse_failures" => s.parse_failures = v,
                "delivered" => s.delivered = v,
                "shed" => s.shed = v,
                "dropped" => s.dropped = v,
                "rebuilds" => s.full_rebuilds = v,
                "clone_fallbacks" => s.clone_fallbacks = v,
                "patches" => s.incremental_patches = v,
                _ => {}
            }
        }
        s
    }
}

struct Shared {
    config: BrokerConfig,
    control: BoundedQueue<Control>,
    ingest: BoundedQueue<IngestDoc>,
    delivery: BoundedQueue<Completion>,
    /// Subscription id → owning connection id (readers: delivery thread;
    /// writer: the subscription-writer thread only).
    registry: RwLock<HashMap<u32, u64>>,
    conns: Mutex<HashMap<u64, Arc<ConnShared>>>,
    next_conn: AtomicU64,
    /// Broker-global ingest sequence; every consumed seq produces exactly
    /// one Completion so the resequencer never stalls on a gap.
    seq: AtomicU64,
    stats: Counters,
    handle: SnapshotHandle,
    running: AtomicBool,
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
    conn_writer_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn conn_by_id(&self, id: u64) -> Option<Arc<ConnShared>> {
        self.conns.lock().expect("conns poisoned").get(&id).cloned()
    }

    fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    fn request_shutdown(&self) {
        self.running.store(false, Ordering::Release);
    }

    fn stats_snapshot(&self) -> BrokerStatsSnapshot {
        let c = &self.stats;
        let mut shed = self.ingest.shed_count();
        {
            let conns = self.conns.lock().expect("conns poisoned");
            for conn in conns.values() {
                shed += conn.outbox.shed_count();
            }
        }
        BrokerStatsSnapshot {
            epoch: self.handle.epoch(),
            conns: c.conns.load(Ordering::Relaxed),
            subs: c.subs.load(Ordering::Relaxed),
            ingested: c.ingested.load(Ordering::Relaxed),
            matched: c.matched.load(Ordering::Relaxed),
            parse_failures: c.parse_failures.load(Ordering::Relaxed),
            delivered: c.delivered.load(Ordering::Relaxed),
            shed,
            dropped: c.dropped.load(Ordering::Relaxed),
            full_rebuilds: c.rebuilds.load(Ordering::Relaxed),
            clone_fallbacks: c.clone_fallbacks.load(Ordering::Relaxed),
            incremental_patches: c.patches.load(Ordering::Relaxed),
        }
    }

    fn mirror_publisher(&self, publisher: &SnapshotPublisher) {
        let c = &self.stats;
        c.subs
            .store(publisher.engine().len() as u64, Ordering::Relaxed);
        c.rebuilds
            .store(publisher.engine().full_rebuilds(), Ordering::Relaxed);
        c.clone_fallbacks
            .store(publisher.clone_fallbacks(), Ordering::Relaxed);
        c.patches
            .store(publisher.engine().incremental_patches(), Ordering::Relaxed);
    }
}

/// Handle onto a spawned broker: address, shutdown trigger, teardown.
pub struct BrokerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    core: Option<CoreThreads>,
}

struct CoreThreads {
    listener: JoinHandle<()>,
    sub_writer: JoinHandle<()>,
    delivery: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

/// Namespace for spawning a broker service.
pub struct Broker;

impl Broker {
    /// Binds, spawns the full thread topology and returns immediately.
    pub fn spawn(config: BrokerConfig) -> std::io::Result<BrokerHandle> {
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;

        let mut engine = FilterEngine::default();
        engine.set_parser_limits(config.limits);
        let publisher = SnapshotPublisher::new(engine);
        let handle = publisher.handle();

        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get().saturating_sub(2))
                .unwrap_or(2)
                .max(2)
        };

        let shared = Arc::new(Shared {
            control: BoundedQueue::new(config.control_capacity, Backpressure::Block),
            ingest: BoundedQueue::new(config.ingest_capacity, config.ingest_policy),
            delivery: BoundedQueue::new(config.delivery_capacity, Backpressure::Block),
            registry: RwLock::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            stats: Counters::default(),
            handle,
            running: AtomicBool::new(true),
            reader_threads: Mutex::new(Vec::new()),
            conn_writer_threads: Mutex::new(Vec::new()),
            config,
        });

        let core = CoreThreads {
            listener: {
                let shared = shared.clone();
                std::thread::spawn(move || listener_loop(&shared, listener))
            },
            sub_writer: {
                let shared = shared.clone();
                std::thread::spawn(move || sub_writer_loop(&shared, publisher))
            },
            delivery: {
                let shared = shared.clone();
                std::thread::spawn(move || delivery_loop(&shared))
            },
            workers: (0..workers)
                .map(|_| {
                    let shared = shared.clone();
                    std::thread::spawn(move || worker_loop(&shared))
                })
                .collect(),
        };

        Ok(BrokerHandle {
            addr,
            shared,
            core: Some(core),
        })
    }
}

impl BrokerHandle {
    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters (same numbers a `STATS` command reports).
    pub fn stats(&self) -> BrokerStatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// documents, flush outboxes. Pair with [`Self::wait`].
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until a shutdown is requested (by [`Self::shutdown`] or a
    /// client's `SHUTDOWN` command), then tears the broker down in drain
    /// order and returns the final counters.
    pub fn wait(mut self) -> BrokerStatsSnapshot {
        while self.shared.is_running() {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.teardown();
        self.shared.stats_snapshot()
    }

    /// Drain-ordered teardown. Each stage closes the queue feeding the
    /// next only after the producers of that queue have been joined, so
    /// every document accepted before shutdown flows all the way to its
    /// subscribers' sockets.
    fn teardown(&mut self) {
        let Some(core) = self.core.take() else { return };
        self.shared.request_shutdown();
        let _ = core.listener.join();

        // Unblock connection readers parked in read(); they observe EOF,
        // enqueue their Disconnect and exit. Join them before closing the
        // queues they produce into.
        {
            let conns = self.shared.conns.lock().expect("conns poisoned");
            for conn in conns.values() {
                let _ = conn.sock.shutdown(Shutdown::Read);
            }
        }
        let readers =
            std::mem::take(&mut *self.shared.reader_threads.lock().expect("threads poisoned"));
        for r in readers {
            let _ = r.join();
        }

        self.shared.control.close();
        let _ = core.sub_writer.join();

        self.shared.ingest.close();
        for w in core.workers {
            let _ = w.join();
        }

        self.shared.delivery.close();
        let _ = core.delivery.join();

        // Everything is delivered into outboxes; close them so the
        // connection writers flush and exit, then drop the sockets.
        {
            let conns = self.shared.conns.lock().expect("conns poisoned");
            for conn in conns.values() {
                conn.outbox.close();
            }
        }
        let writers = std::mem::take(
            &mut *self
                .shared
                .conn_writer_threads
                .lock()
                .expect("threads poisoned"),
        );
        for w in writers {
            let _ = w.join();
        }
        let mut conns = self.shared.conns.lock().expect("conns poisoned");
        for conn in conns.values() {
            let _ = conn.sock.shutdown(Shutdown::Both);
        }
        conns.clear();
    }
}

impl Drop for BrokerHandle {
    fn drop(&mut self) {
        if self.core.is_some() {
            self.teardown();
        }
    }
}

fn listener_loop(shared: &Arc<Shared>, listener: TcpListener) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    while shared.is_running() {
        match listener.accept() {
            Ok((sock, _peer)) => spawn_connection(shared, sock),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn spawn_connection(shared: &Arc<Shared>, sock: TcpStream) {
    let _ = sock.set_nodelay(true);
    let (write_sock, keep_sock) = match (sock.try_clone(), sock.try_clone()) {
        (Ok(w), Ok(k)) => (w, k),
        _ => return,
    };
    let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let conn = Arc::new(ConnShared {
        id,
        outbox: BoundedQueue::new(shared.config.outbox_capacity, shared.config.outbox_policy),
        stream: Mutex::new(DocumentStream::push_mode(shared.config.limits)),
        sock: keep_sock,
    });
    shared
        .conns
        .lock()
        .expect("conns poisoned")
        .insert(id, conn.clone());
    shared.stats.conns.fetch_add(1, Ordering::Relaxed);

    let reader = {
        let shared = shared.clone();
        let conn = conn.clone();
        std::thread::spawn(move || reader_loop(&shared, &conn, sock))
    };
    let writer = std::thread::spawn(move || conn_writer_loop(&conn, write_sock));
    shared
        .reader_threads
        .lock()
        .expect("threads poisoned")
        .push(reader);
    shared
        .conn_writer_threads
        .lock()
        .expect("threads poisoned")
        .push(writer);
}

/// Drains the connection's outbox onto the socket. A write error flips
/// the connection into sink mode (keep draining so shed-policy pushes
/// stay cheap) until the outbox is closed.
fn conn_writer_loop(conn: &Arc<ConnShared>, sock: TcpStream) {
    let mut out = BufWriter::new(sock);
    let mut dead = false;
    while let Some(line) = conn.outbox.pop() {
        if dead {
            continue;
        }
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .is_err()
        {
            dead = true;
            continue;
        }
        if conn.outbox.is_empty() && out.flush().is_err() {
            dead = true;
        }
    }
    let _ = out.flush();
}

fn reader_loop(shared: &Arc<Shared>, conn: &Arc<ConnShared>, sock: TcpStream) {
    let mut input = BufReader::new(sock);
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let cmd = match Command::parse(&line) {
            Ok(cmd) => cmd,
            Err(e) => {
                conn.outbox.push(e.to_wire());
                continue;
            }
        };
        match cmd {
            Command::Sub(src) => match pxf_xpath::parse(&src) {
                Ok(expr) => {
                    shared.control.push(Control::Sub {
                        conn: conn.id,
                        expr: Box::new(expr),
                    });
                }
                Err(e) => {
                    conn.outbox
                        .push(format!("-ERR SUB {}", one_line(&e.to_string())));
                }
            },
            Command::Unsub(id) => {
                shared.control.push(Control::Unsub { conn: conn.id, id });
            }
            Command::Doc { len, tag } => {
                if !ingest_frame(shared, conn, &mut input, len, &tag) {
                    break;
                }
            }
            Command::Stats => {
                conn.outbox
                    .push(Reply::Stats(shared.stats_snapshot().to_kv()).to_wire());
            }
            Command::Quit => {
                conn.outbox.push(Reply::Bye.to_wire());
                break;
            }
            Command::Shutdown => {
                conn.outbox.push(Reply::ShutdownOk.to_wire());
                shared.request_shutdown();
                break;
            }
        }
    }
    shared.control.push(Control::Disconnect { conn: conn.id });
}

fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// Reads a `DOC` frame's payload, feeding it through the connection's
/// boundary scanner in bounded chunks. Returns false when the connection
/// must close (socket died or the stream fused).
fn ingest_frame(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    input: &mut BufReader<TcpStream>,
    len: usize,
    tag: &str,
) -> bool {
    const CHUNK: usize = 64 * 1024;
    if len > shared.config.max_frame_bytes {
        // Consume the payload to stay in frame sync, then report.
        let mut remaining = len;
        let mut sink = [0u8; 4096];
        while remaining > 0 {
            let take = sink.len().min(remaining);
            if input.read_exact(&mut sink[..take]).is_err() {
                return false;
            }
            remaining -= take;
        }
        conn.outbox.push(format!(
            "-ERR DOC frame of {len} bytes exceeds max_frame_bytes={}",
            shared.config.max_frame_bytes
        ));
        return true;
    }
    let mut remaining = len;
    let mut chunk = vec![0u8; CHUNK.min(len.max(1))];
    while remaining > 0 {
        let take = chunk.len().min(remaining);
        if input.read_exact(&mut chunk[..take]).is_err() {
            return false;
        }
        remaining -= take;
        conn.stream
            .lock()
            .expect("stream poisoned")
            .feed(&chunk[..take]);
        if !drain_scanner(shared, conn, tag) {
            return false;
        }
    }
    // A frame must end on a document boundary: anything still buffered is
    // a truncated document. Report it and resync so the next frame cannot
    // concatenate with the leftover bytes (and so the client gets a reply
    // instead of silence).
    let dropped = conn
        .stream
        .lock()
        .expect("stream poisoned")
        .discard_partial();
    if let Some(n) = dropped {
        conn.outbox.push(format!(
            "-ERR DOC frame ended inside a document ({n} bytes discarded)"
        ));
        // discard_partial counts against the consecutive-failure cap;
        // surface the fuse the same way an in-band failure would.
        if !drain_scanner(shared, conn, tag) {
            return false;
        }
    }
    true
}

/// Polls completed documents out of the connection's scanner and moves
/// them into the ingest pipeline. Never holds the stream lock across a
/// queue push (the delivery thread takes the same lock for the
/// note_success/note_failure contract).
fn drain_scanner(shared: &Arc<Shared>, conn: &Arc<ConnShared>, tag: &str) -> bool {
    loop {
        let polled = conn.stream.lock().expect("stream poisoned").poll_raw_at();
        match polled {
            PollDoc::Doc(_, bytes) => {
                let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
                conn.outbox.push(
                    Reply::DocOk {
                        seq,
                        tag: tag.to_string(),
                    }
                    .to_wire(),
                );
                shared.stats.ingested.fetch_add(1, Ordering::Relaxed);
                let doc = IngestDoc {
                    seq,
                    conn: conn.id,
                    tag: tag.to_string(),
                    bytes,
                };
                match shared.ingest.push(doc) {
                    PushOutcome::Enqueued => {}
                    PushOutcome::Shed | PushOutcome::Closed => {
                        conn.outbox
                            .push(format!("-ERR DOC shed at ingest high-water (seq {seq})"));
                        // Fill the sequence slot so the resequencer
                        // keeps delivering later documents in order.
                        shared.delivery.push(Completion {
                            seq,
                            conn: conn.id,
                            tag: tag.to_string(),
                            outcome: Outcome::Shed,
                        });
                    }
                }
            }
            PollDoc::Fail(e) => {
                // Scanner-level failure (desync, oversize): already
                // counted against the failure cap by the stream itself.
                let fused = matches!(e.kind, XmlErrorKind::TooManyFailures(_));
                conn.outbox
                    .push(format!("-ERR DOC {}", one_line(&e.to_string())));
                if fused {
                    return false;
                }
            }
            PollDoc::NeedInput | PollDoc::End => return true,
        }
    }
}

/// The single subscription writer: owns the [`SnapshotPublisher`],
/// applies batches of control ops, publishes once per batch, and only
/// then acknowledges — a `+SUB`/`+UNSUB` reply means the change is
/// visible to every document ingested after the reply.
fn sub_writer_loop(shared: &Arc<Shared>, mut publisher: SnapshotPublisher) {
    let mut conn_subs: HashMap<u64, HashSet<u32>> = HashMap::new();
    let mut batch: Vec<Control> = Vec::new();
    let mut replies: Vec<(u64, String)> = Vec::new();
    while let Some(first) = shared.control.pop() {
        batch.push(first);
        shared.control.try_drain(255, &mut batch);
        for op in batch.drain(..) {
            match op {
                Control::Sub { conn, expr } => match publisher.add(&expr) {
                    Ok(sub) => {
                        shared
                            .registry
                            .write()
                            .expect("registry poisoned")
                            .insert(sub.0, conn);
                        conn_subs.entry(conn).or_default().insert(sub.0);
                        replies.push((conn, Reply::SubOk(sub.0).to_wire()));
                    }
                    Err(e) => {
                        replies.push((conn, format!("-ERR SUB {}", one_line(&e.to_string()))));
                    }
                },
                Control::Unsub { conn, id } => {
                    let owned = conn_subs.get(&conn).is_some_and(|s| s.contains(&id));
                    if owned && publisher.remove(SubId(id)) {
                        shared
                            .registry
                            .write()
                            .expect("registry poisoned")
                            .remove(&id);
                        conn_subs
                            .get_mut(&conn)
                            .expect("owned implies entry")
                            .remove(&id);
                        replies.push((conn, Reply::UnsubOk(id).to_wire()));
                    } else {
                        replies.push((conn, format!("-ERR UNSUB unknown subscription {id}")));
                    }
                }
                Control::Disconnect { conn } => {
                    // During shutdown the connection (and its
                    // subscriptions) must survive until the in-flight
                    // documents have drained to it; final teardown
                    // retires everything.
                    if !shared.is_running() {
                        continue;
                    }
                    if let Some(ids) = conn_subs.remove(&conn) {
                        let mut reg = shared.registry.write().expect("registry poisoned");
                        for id in ids {
                            publisher.remove(SubId(id));
                            reg.remove(&id);
                        }
                    }
                    let retired = shared.conns.lock().expect("conns poisoned").remove(&conn);
                    if let Some(c) = retired {
                        c.outbox.close();
                        shared.stats.conns.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if publisher.pending_ops() > 0 {
            publisher.publish();
        }
        shared.mirror_publisher(&publisher);
        for (conn, line) in replies.drain(..) {
            if let Some(c) = shared.conn_by_id(conn) {
                c.outbox.push(line);
            }
        }
    }
    if publisher.pending_ops() > 0 {
        publisher.publish();
    }
    shared.mirror_publisher(&publisher);
}

/// A matcher worker: pin one snapshot per batch, match, hand completions
/// to the delivery thread.
///
/// The pin is epoch-bounded: between documents the worker compares the
/// handle's lock-free [`SnapshotHandle::epoch`] mirror against the pinned
/// snapshot and re-pins when a publish happened, so under subscription
/// churn a worker never holds a retired snapshot longer than one document
/// match — comfortably inside the publisher's bounded reclaim wait, which
/// is what keeps steady-state `clone_fallbacks` at zero.
fn worker_loop(shared: &Arc<Shared>) {
    let mut batch: Vec<IngestDoc> = Vec::new();
    loop {
        batch.clear();
        if shared
            .ingest
            .pop_batch(shared.config.match_batch, &mut batch)
            == 0
        {
            return;
        }
        let mut i = 0;
        while i < batch.len() {
            // Load *after* popping: a document enqueued after a +SUB ack
            // is always matched against a snapshot containing that sub.
            let snapshot = shared.handle.load();
            let mut matcher = snapshot.matcher();
            while i < batch.len() {
                if shared.handle.epoch() != snapshot.epoch() {
                    break; // a publish landed: release + re-pin
                }
                let doc = &mut batch[i];
                i += 1;
                let bytes = std::mem::take(&mut doc.bytes);
                let outcome = match matcher.match_bytes(&bytes) {
                    Ok(ids) => Outcome::Matched(ids),
                    Err(e) => Outcome::ParseError(one_line(&e.to_string())),
                };
                shared.delivery.push(Completion {
                    seq: doc.seq,
                    conn: doc.conn,
                    tag: std::mem::take(&mut doc.tag),
                    outcome,
                });
            }
        }
    }
}

/// The delivery thread: restores ingest order with a min-heap
/// resequencer, applies the raw-ingest failure-cap contract to the
/// origin connection's scanner, and fans matches out per subscriber.
fn delivery_loop(shared: &Arc<Shared>) {
    let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
    let mut next = 0u64;
    while let Some(done) = shared.delivery.pop() {
        heap.push(Pending(done));
        while heap.peek().is_some_and(|p| p.0.seq == next) {
            let c = heap.pop().expect("peeked").0;
            next += 1;
            deliver_one(shared, c);
        }
    }
    // Closed: flush stragglers in order (gaps only if a producer died).
    while let Some(p) = heap.pop() {
        deliver_one(shared, p.0);
    }
}

fn deliver_one(shared: &Arc<Shared>, c: Completion) {
    match c.outcome {
        Outcome::Matched(ids) => {
            if let Some(origin) = shared.conn_by_id(c.conn) {
                origin
                    .stream
                    .lock()
                    .expect("stream poisoned")
                    .note_success();
            }
            shared.stats.matched.fetch_add(1, Ordering::Relaxed);
            if ids.is_empty() {
                return;
            }
            let mut per_conn: HashMap<u64, Vec<u32>> = HashMap::new();
            {
                let reg = shared.registry.read().expect("registry poisoned");
                for id in &ids {
                    if let Some(&owner) = reg.get(&id.0) {
                        per_conn.entry(owner).or_default().push(id.0);
                    }
                }
            }
            for (owner, ids) in per_conn {
                let line = Reply::Match {
                    seq: c.seq,
                    tag: c.tag.clone(),
                    ids,
                }
                .to_wire();
                match shared.conn_by_id(owner) {
                    Some(conn) => {
                        if conn.outbox.push(line).is_enqueued() {
                            shared.stats.delivered.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => {
                        shared.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Outcome::ParseError(detail) => {
            shared.stats.parse_failures.fetch_add(1, Ordering::Relaxed);
            if let Some(origin) = shared.conn_by_id(c.conn) {
                origin
                    .stream
                    .lock()
                    .expect("stream poisoned")
                    .note_failure();
                origin.outbox.push(format!("-ERR DOC {detail}"));
            }
        }
        Outcome::Shed => {}
    }
}
