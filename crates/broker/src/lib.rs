//! A long-running XML/XPath pub/sub broker over the `pxf` filtering
//! engine.
//!
//! This crate turns the library-level pieces — [`pxf_core`]'s
//! snapshot-published [`FilterEngine`](pxf_core::FilterEngine) and
//! [`pxf_xml`]'s hardened [`DocumentStream`](pxf_xml::DocumentStream) —
//! into the deployment the paper evaluates: a broker holding hundreds of
//! thousands of resident XPath subscriptions, filtering a continuous
//! document stream while users subscribe and unsubscribe, and fanning
//! matches out to the owning connections.
//!
//! Everything is hand-rolled `std`: blocking `std::net` TCP with one
//! reader/writer thread pair per connection, [`queue::BoundedQueue`]
//! hand-offs with explicit backpressure, a single subscription-writer
//! thread, a matcher worker pool, and a sequence-restoring delivery
//! thread. See [`server`] for the thread topology and invariants, and
//! [`protocol`] for the wire format.
//!
//! # Quick start
//!
//! ```no_run
//! use pxf_broker::{Broker, BrokerConfig};
//!
//! let handle = Broker::spawn(BrokerConfig::default()).unwrap();
//! println!("listening on {}", handle.local_addr());
//! let final_stats = handle.wait(); // until SHUTDOWN or handle.shutdown()
//! assert_eq!(final_stats.full_rebuilds, 0);
//! ```
//!
//! The [`loadgen`] module (and the `loadgen` binary) drives a broker at
//! benchmark scale and measures ingest throughput and delivery latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod server;

pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{Command, ProtocolError, Reply};
pub use queue::{Backpressure, BoundedQueue, PushOutcome};
pub use server::{Broker, BrokerConfig, BrokerHandle, BrokerStatsSnapshot};
