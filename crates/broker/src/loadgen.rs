//! Benchmark load generator for a running broker.
//!
//! Drives a broker over real TCP the way the paper's evaluation drives
//! the engine in-process: a large resident subscription base, a paced
//! stream of subscribe/unsubscribe churn, and a full-throttle document
//! stream, measuring end-to-end ingest throughput (docs/sec) and
//! delivery latency (`DOC` send → `MATCH` receipt) percentiles.
//!
//! Topology per [`LoadgenConfig`]:
//!
//! * `sub_conns` subscriber connections splitting `subs` resident
//!   subscriptions between them; each runs a reader thread counting
//!   `MATCH` lines, asserting per-connection FIFO (strictly ascending
//!   sequence numbers) and sampling delivery latency against the shared
//!   send-time table.
//! * one churn connection issuing `churn_pairs` SUB/UNSUB pairs
//!   concurrently with document ingest (each pair forces snapshot
//!   publishes under load).
//! * one ingest connection streaming `docs` documents as `DOC` frames,
//!   tagged `d<i>` so `MATCH` lines index the send-time table directly.
//! * one stats connection polling `STATS` until every sent document has
//!   been processed, which is also how the run detects completion.

use crate::protocol::Reply;
use crate::server::BrokerStatsSnapshot;
use pxf_workload::{Regime, XPathGenerator, XmlGenerator};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What to run against the broker.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Broker address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Resident subscriptions registered before ingest starts.
    pub subs: usize,
    /// Connections the resident subscriptions are split across.
    pub sub_conns: usize,
    /// Documents streamed through the ingest connection.
    pub docs: usize,
    /// SUB/UNSUB pairs issued concurrently with ingest.
    pub churn_pairs: usize,
    /// Every `malformed_every`-th document is replaced by a malformed
    /// one (0 disables) to exercise per-connection error reporting.
    pub malformed_every: usize,
    /// Workload seed (expressions and documents are generated from the
    /// NITF regime of `pxf-workload`).
    pub seed: u64,
    /// Offered document rate in docs/sec; 0 streams full throttle.
    ///
    /// Full throttle is a *closed-loop saturation* measurement: every
    /// document queues behind the whole backlog, so the delivery
    /// percentiles report queueing sojourn (seconds), not service
    /// latency. A paced *open-loop* run below the saturation throughput
    /// sends each `DOC` at its scheduled instant regardless of broker
    /// progress, so p50/p99 report what a subscriber actually waits at
    /// that offered load.
    pub rate: f64,
    /// Send `SHUTDOWN` to the broker once the run completes.
    pub shutdown_when_done: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            subs: 100_000,
            sub_conns: 4,
            docs: 2_000,
            churn_pairs: 500,
            malformed_every: 0,
            seed: 42,
            rate: 0.0,
            shutdown_when_done: false,
        }
    }
}

/// What the run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Subscriptions resident when ingest started (from `STATS`).
    pub resident_subs: u64,
    /// Documents sent (including intentionally malformed ones).
    pub docs_sent: usize,
    /// Documents the broker matched successfully.
    pub docs_matched: u64,
    /// Documents the broker rejected at parse.
    pub parse_failures: u64,
    /// `MATCH` lines received across all subscriber connections.
    pub match_lines: u64,
    /// Per-connection FIFO violations observed (must be 0).
    pub fifo_violations: u64,
    /// Latency samples collected (one per `MATCH` line).
    pub latency_samples: usize,
    /// Wall-clock seconds from first `DOC` frame to last processed doc.
    pub ingest_secs: f64,
    /// End-to-end ingest throughput.
    pub docs_per_sec: f64,
    /// Median delivery latency (DOC send → MATCH receipt), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile delivery latency, milliseconds.
    pub p99_ms: f64,
    /// Final broker counters.
    pub stats: BrokerStatsSnapshot,
}

/// A blocking line-protocol client (request/response or pipelined).
struct Client {
    input: BufReader<TcpStream>,
    output: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let sock = TcpStream::connect(addr)?;
        let _ = sock.set_nodelay(true);
        Ok(Client {
            input: BufReader::new(sock.try_clone()?),
            output: sock,
        })
    }

    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.output.write_all(line.as_bytes())?;
        self.output.write_all(b"\n")
    }

    fn read_reply(&mut self) -> std::io::Result<Reply> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.input.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "broker closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Reply::parse(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }

    fn stats(&mut self) -> std::io::Result<BrokerStatsSnapshot> {
        self.send_line("STATS")?;
        loop {
            // Skip any interleaved asynchronous lines.
            if let Reply::Stats(kv) = self.read_reply()? {
                return Ok(BrokerStatsSnapshot::from_kv(&kv));
            }
        }
    }
}

/// Sorted-slice percentile (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A document the boundary scanner accepts but the parser rejects —
/// exercises the `-ERR DOC` path without desyncing the stream.
const MALFORMED_DOC: &[u8] = b"<bad attr=></bad>";

/// Runs the full load profile against a broker at `cfg.addr`.
pub fn run(cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    let regime = Regime::nitf();
    let mut xp = regime.xpath.clone();
    xp.count = cfg.subs + cfg.churn_pairs.min(cfg.subs.max(1));
    xp.seed = cfg.seed;
    let exprs: Vec<String> = XPathGenerator::new(&regime.dtd, xp)
        .generate()
        .iter()
        .map(|e| e.to_string())
        .collect();
    let mut xg = XmlGenerator::new(&regime.dtd, regime.xml.clone());
    let docs: Vec<Vec<u8>> = (0..cfg.docs)
        .map(|i| {
            if cfg.malformed_every > 0 && i % cfg.malformed_every == cfg.malformed_every - 1 {
                MALFORMED_DOC.to_vec()
            } else {
                xg.generate().to_xml().into_bytes()
            }
        })
        .collect();

    let t0 = Instant::now();
    let send_ns: Arc<Vec<AtomicU64>> = Arc::new((0..cfg.docs).map(|_| AtomicU64::new(0)).collect());
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let match_lines = Arc::new(AtomicU64::new(0));
    let fifo_violations = Arc::new(AtomicU64::new(0));

    // --- resident subscriptions, pipelined per connection ---
    let sub_conns = cfg.sub_conns.max(1);
    let mut subscriber_socks: Vec<TcpStream> = Vec::new();
    let mut subscriber_readers = Vec::new();
    for c in 0..sub_conns {
        let mut client = Client::connect(&cfg.addr)?;
        let mine: Vec<&String> = exprs[..cfg.subs]
            .iter()
            .skip(c)
            .step_by(sub_conns)
            .collect();
        let mut out = String::new();
        for expr in &mine {
            out.push_str("SUB ");
            out.push_str(expr);
            out.push('\n');
        }
        client.output.write_all(out.as_bytes())?;
        let mut acked = 0usize;
        while acked < mine.len() {
            match client.read_reply()? {
                Reply::SubOk(_) => acked += 1,
                Reply::Err { kind, detail } => {
                    return Err(std::io::Error::other(format!(
                        "subscription rejected: {kind} {detail}"
                    )));
                }
                _ => {}
            }
        }
        // Reader thread: count MATCH lines, check FIFO, sample latency.
        let keep = client.output.try_clone()?;
        let send_ns = send_ns.clone();
        let latencies = latencies.clone();
        let match_lines = match_lines.clone();
        let fifo_violations = fifo_violations.clone();
        subscriber_readers.push(std::thread::spawn(move || {
            let mut input = client.input;
            let mut line = String::new();
            let mut last_seq: Option<u64> = None;
            loop {
                line.clear();
                match input.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                let Ok(Reply::Match { seq, tag, .. }) = Reply::parse(&line) else {
                    continue;
                };
                match_lines.fetch_add(1, Ordering::Relaxed);
                if last_seq.is_some_and(|last| seq <= last) {
                    fifo_violations.fetch_add(1, Ordering::Relaxed);
                }
                last_seq = Some(seq);
                if let Some(idx) = tag.strip_prefix('d').and_then(|t| t.parse::<usize>().ok()) {
                    if let Some(slot) = send_ns.get(idx) {
                        let sent = slot.load(Ordering::Acquire);
                        if sent > 0 {
                            let now = t0.elapsed().as_nanos() as u64;
                            latencies
                                .lock()
                                .expect("latencies poisoned")
                                .push((now.saturating_sub(sent)) as f64 / 1e6);
                        }
                    }
                }
            }
            drop(client.output);
        }));
        subscriber_socks.push(keep);
    }

    let mut stats_client = Client::connect(&cfg.addr)?;
    let resident_subs = stats_client.stats()?.subs;

    // --- churn connection, concurrent with ingest ---
    let churn_stop = Arc::new(AtomicU64::new(0));
    let churn_thread = {
        let addr = cfg.addr.clone();
        let pairs = cfg.churn_pairs;
        let exprs: Vec<String> = exprs[cfg.subs..].to_vec();
        let stop = churn_stop.clone();
        std::thread::spawn(move || -> std::io::Result<u64> {
            let mut done = 0u64;
            if exprs.is_empty() {
                return Ok(0);
            }
            let mut client = Client::connect(&addr)?;
            for i in 0..pairs {
                if stop.load(Ordering::Acquire) > 0 {
                    break;
                }
                client.send_line(&format!("SUB {}", exprs[i % exprs.len()]))?;
                let id = loop {
                    match client.read_reply()? {
                        Reply::SubOk(id) => break id,
                        Reply::Err { kind, detail } => {
                            return Err(std::io::Error::other(format!(
                                "churn SUB: {kind} {detail}"
                            )))
                        }
                        _ => {}
                    }
                };
                client.send_line(&format!("UNSUB {id}"))?;
                loop {
                    match client.read_reply()? {
                        Reply::UnsubOk(_) => break,
                        Reply::Err { kind, detail } => {
                            return Err(std::io::Error::other(format!(
                                "churn UNSUB: {kind} {detail}"
                            )))
                        }
                        _ => {}
                    }
                }
                done += 1;
            }
            client.send_line("QUIT")?;
            Ok(done)
        })
    };

    // --- ingest ---
    let ingest_start = Instant::now();
    let mut ingest = Client::connect(&cfg.addr)?;
    let ack_reader = {
        let sock = ingest.output.try_clone()?;
        let expect = cfg.docs;
        std::thread::spawn(move || {
            let mut input = BufReader::new(sock);
            let mut line = String::new();
            let mut seen = 0usize;
            while seen < expect {
                line.clear();
                match input.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                match Reply::parse(&line) {
                    Ok(Reply::DocOk { .. }) => seen += 1,
                    Ok(Reply::Err { .. }) => {}
                    _ => {}
                }
            }
            seen
        })
    };
    let interval = (cfg.rate > 0.0).then(|| Duration::from_secs_f64(1.0 / cfg.rate));
    for (i, bytes) in docs.iter().enumerate() {
        if let Some(interval) = interval {
            // Open-loop pacing: document i is due at i·interval from
            // ingest start, independent of how far the broker has
            // drained — a slow broker accumulates lateness in the
            // latency samples instead of silently throttling the
            // offered load.
            let deadline = interval.mul_f64(i as f64);
            let elapsed = ingest_start.elapsed();
            if elapsed < deadline {
                std::thread::sleep(deadline - elapsed);
            }
        }
        let header = format!("DOC {} d{}\n", bytes.len(), i);
        send_ns[i].store(t0.elapsed().as_nanos() as u64, Ordering::Release);
        ingest.output.write_all(header.as_bytes())?;
        ingest.output.write_all(bytes)?;
    }
    ingest.output.flush()?;

    // --- completion: poll STATS until every doc is processed ---
    let expect = cfg.docs as u64;
    let mut stats;
    loop {
        stats = stats_client.stats()?;
        if stats.matched + stats.parse_failures >= expect {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let ingest_secs = ingest_start.elapsed().as_secs_f64();

    churn_stop.store(1, Ordering::Release);
    let _churn_done = churn_thread
        .join()
        .map_err(|_| std::io::Error::other("churn thread panicked"))??;

    // Give final MATCH lines a moment to land, then close subscriber
    // connections so their reader threads observe EOF and exit.
    std::thread::sleep(Duration::from_millis(50));
    let final_stats = stats_client.stats()?;
    for sock in &subscriber_socks {
        let _ = sock.shutdown(Shutdown::Both);
    }
    for reader in subscriber_readers {
        let _ = reader.join();
    }
    let _ = ingest.send_line("QUIT");
    let _ = ack_reader.join();

    if cfg.shutdown_when_done {
        let _ = stats_client.send_line("SHUTDOWN");
    }

    let mut lat = latencies.lock().expect("latencies poisoned").clone();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Ok(LoadgenReport {
        resident_subs,
        docs_sent: cfg.docs,
        docs_matched: final_stats.matched,
        parse_failures: final_stats.parse_failures,
        match_lines: match_lines.load(Ordering::Relaxed),
        fifo_violations: fifo_violations.load(Ordering::Relaxed),
        latency_samples: lat.len(),
        ingest_secs,
        docs_per_sec: cfg.docs as f64 / ingest_secs.max(1e-9),
        p50_ms: percentile(&lat, 50.0),
        p99_ms: percentile(&lat, 99.0),
        stats: final_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }
}
