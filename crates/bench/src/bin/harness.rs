//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section (§6).
//!
//! ```text
//! harness [all|table1|fig6a|fig6b|fig7|fig8w|fig8d|fig9|fig10|parse]
//!         [--scale F] [--docs N]
//! harness compare OLD.json NEW.json [--max-regress PCT] [--abs-slack MS] [--loose SUBSTR=PCT ...]
//! ```
//!
//! `--scale` multiplies the expression counts of each experiment (1.0 =
//! the paper's sizes; the default for the heavyweight experiments is
//! smaller — each section prints the scale it ran at). `--docs` sets the
//! number of documents per data point (the paper averages over 500).
//!
//! `compare` diffs two `benchjson` output files row by row (keyed on
//! section, workload, engine, stage 1/2, and expression count) and exits
//! nonzero if any row's `ms_per_doc` regressed by more than
//! `--max-regress` percent (default 5) plus `--abs-slack` ms (default
//! 0.002 — the timing-noise floor of the µs-band rows) — the CI gate
//! over the checked-in benchmark files.

use pxf_bench::{
    build_workload, measure_parse_paths_us, measure_parse_us, run_churn, run_engine,
    run_engine_compiled, run_engine_configured, run_sharded, EngineKind, RunResult, WorkloadSpec,
};
use pxf_core::{AttrMode, CompileOptions, Stage1, Stage2};
use pxf_workload::Regime;

struct Opts {
    experiment: String,
    scale: f64,
    docs: usize,
    reps: usize,
    out: Option<String>,
}

fn parse_args() -> Opts {
    let mut experiment = "all".to_string();
    let mut scale = 0.0; // 0 = per-experiment default
    let mut docs = 0;
    let mut reps = 0; // 0 = per-experiment default
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"))
            }
            "--docs" => {
                docs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--docs needs a number"))
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--reps needs a number"))
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage("--out needs a path"))),
            "--help" | "-h" => {
                usage("");
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    Opts {
        experiment,
        scale,
        docs,
        reps,
        out,
    }
}

/// Runs a measurement `reps` times and keeps the fastest run — the
/// standard defense against scheduler noise when each configuration is
/// measured once (the minimum is the run least disturbed by the rest of
/// the system).
fn best_of<F: FnMut() -> RunResult>(reps: usize, mut run: F) -> RunResult {
    let mut best = run();
    for _ in 1..reps {
        let r = run();
        if r.ms_per_doc < best.ms_per_doc {
            best = r;
        }
    }
    best
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: harness [all|table1|fig6a|fig6b|fig7|fig8w|fig8d|fig9|fig10|parse|insert|covering|subset_compile|xfilter|hostile|churn|broker|benchjson] \
         [--scale F] [--docs N] [--reps N] [--out PATH]\n\
         \x20      harness compare OLD.json NEW.json [--max-regress PCT] [--abs-slack MS] [--loose SUBSTR=PCT ...]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("compare") {
        compare_cmd(&argv[1..]);
        return;
    }
    let opts = parse_args();
    let run = |name: &str| opts.experiment == "all" || opts.experiment == name;
    let mut ran = false;
    if run("table1") {
        table1();
        ran = true;
    }
    if run("fig6a") {
        fig6a(&opts);
        ran = true;
    }
    if run("fig6b") {
        fig6b(&opts);
        ran = true;
    }
    if run("fig7") {
        fig7(&opts);
        ran = true;
    }
    if run("fig8w") {
        fig8(&opts, true);
        ran = true;
    }
    if run("fig8d") {
        fig8(&opts, false);
        ran = true;
    }
    if run("fig9") {
        fig9(&opts);
        ran = true;
    }
    if run("fig10") {
        fig10(&opts);
        ran = true;
    }
    if run("parse") {
        parse_times(&opts);
        ran = true;
    }
    if run("insert") {
        insert_times(&opts);
        ran = true;
    }
    if run("covering") {
        covering_analysis(&opts);
        ran = true;
    }
    if run("subset_compile") {
        subset_compile(&opts, None);
        ran = true;
    }
    if run("xfilter") {
        xfilter_lineage(&opts);
        ran = true;
    }
    if run("hostile") {
        hostile(&opts);
        ran = true;
    }
    // Not part of "all": multi-second wall-clock windows per size.
    if opts.experiment == "churn" {
        let reps = if opts.reps == 0 { 3 } else { opts.reps };
        if let Some(out) = &opts.out {
            // Internal hand-off used by `benchjson`: write the JSON rows
            // (no surrounding file structure) for the parent to splice.
            let mut rows = Vec::new();
            churn_rows(
                &Regime::scaling(),
                docs_or(&opts, 20),
                reps,
                Some(&mut rows),
            );
            std::fs::write(out, rows.join(",\n")).expect("write churn rows");
        } else {
            churn_rows(&Regime::scaling(), docs_or(&opts, 20), reps, None);
        }
        ran = true;
    }
    // Not part of "all": spins up a real TCP broker and drives it with
    // the loadgen client (seconds of wall clock, spawns a thread pool).
    if opts.experiment == "broker" {
        if let Some(out) = &opts.out {
            let mut rows = Vec::new();
            broker_rows(&opts, Some(&mut rows));
            std::fs::write(out, rows.join(",\n")).expect("write broker rows");
        } else {
            broker_rows(&opts, None);
        }
        ran = true;
    }
    // Not part of "all": writes a machine-readable comparison file.
    if opts.experiment == "benchjson" {
        benchjson(&opts);
        ran = true;
    }
    if !ran {
        usage(&format!("unknown experiment '{}'", opts.experiment));
    }
}

/// Extracts the value of `"key": value` from one benchjson row line
/// (quoted strings are unquoted; numbers returned as text).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses a benchjson file into `(row key, ms_per_doc)` pairs. Rows are
/// keyed on section, workload, engine, both stages, and the expression
/// count — everything that identifies a configuration; document counts
/// and timings are free to differ between the two files.
fn parse_bench_rows(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(section) = json_field(line, "section") else {
            continue;
        };
        let key = format!(
            "{section}/{}/{}/{}/{}/{}",
            json_field(line, "workload").unwrap_or("?"),
            json_field(line, "engine").unwrap_or("?"),
            json_field(line, "stage1").unwrap_or("?"),
            json_field(line, "stage2").unwrap_or("?"),
            json_field(line, "n_exprs").unwrap_or("?"),
        );
        let Some(ms) = json_field(line, "ms_per_doc").and_then(|v| v.parse::<f64>().ok()) else {
            continue;
        };
        rows.push((key, ms));
    }
    if rows.is_empty() {
        eprintln!("error: no benchjson rows found in {path}");
        std::process::exit(2);
    }
    rows
}

/// `harness compare OLD.json NEW.json [--max-regress PCT]
/// [--abs-slack MS] [--loose SUBSTR=PCT ...]`: row-by-row `ms_per_doc`
/// diff; exits 1 if any configuration present in both files regressed
/// beyond its threshold.
///
/// The gate is `new <= old * (1 + PCT/100) + MS`. The absolute term
/// (default 0.002 ms) exists for the microsecond-band rows: a purely
/// relative gate on a 12 µs/doc measurement demands sub-µs timing
/// stability, which scheduler jitter on a shared runner does not
/// deliver — across repeated generations of the same binary those rows
/// move ±2–4 µs while the millisecond rows hold within the relative
/// threshold. Real regressions at the micro scale still show up in the
/// same configuration's larger-scale rows, which the slack term leaves
/// effectively untouched.
///
/// `--loose SUBSTR=PCT` (repeatable) overrides the relative threshold
/// for rows whose configuration key contains `SUBSTR`. Rows that
/// timeshare threads on the single-core bench container (the churn
/// writer/reader pair, the sharded matcher) are at the mercy of
/// scheduler interleaving and move by tens of percent between file
/// generations even when best-of-N is taken, while the single-threaded
/// rows hold within the tight gate — the override keeps those rows
/// gated (a finite ceiling) at an honest tolerance instead of
/// loosening every row.
fn compare_cmd(args: &[String]) {
    let mut files: Vec<&String> = Vec::new();
    let mut max_regress = 5.0f64;
    let mut abs_slack = 0.002f64;
    let mut loose: Vec<(String, f64)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-regress" => {
                max_regress = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--max-regress needs a number"))
            }
            "--abs-slack" => {
                abs_slack = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--abs-slack needs a number (ms)"))
            }
            "--loose" => {
                let spec = it
                    .next()
                    .unwrap_or_else(|| usage("--loose needs SUBSTR=PCT"));
                let (substr, pct) = spec
                    .split_once('=')
                    .and_then(|(s, p)| p.parse::<f64>().ok().map(|p| (s, p)))
                    .unwrap_or_else(|| usage("--loose needs SUBSTR=PCT"));
                loose.push((substr.to_string(), pct));
            }
            other if !other.starts_with('-') => files.push(a),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if files.len() != 2 {
        usage("compare needs exactly two benchjson files");
    }
    let old_rows = parse_bench_rows(files[0]);
    let new_rows: std::collections::HashMap<String, f64> =
        parse_bench_rows(files[1]).into_iter().collect();
    println!(
        "## compare {} -> {} (max regress {max_regress}% + {abs_slack} ms)",
        files[0], files[1]
    );
    println!(
        "{:<64} {:>10} {:>10} {:>8}",
        "configuration", "old ms", "new ms", "delta%"
    );
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, old_ms) in &old_rows {
        let Some(&new_ms) = new_rows.get(key) else {
            println!("{key:<64} {old_ms:>10.4} {:>10} {:>8}", "-", "gone");
            continue;
        };
        compared += 1;
        let delta = (new_ms - old_ms) / old_ms.max(1e-12) * 100.0;
        let threshold = loose
            .iter()
            .find(|(substr, _)| key.contains(substr.as_str()))
            .map(|&(_, pct)| pct)
            .unwrap_or(max_regress);
        let flag = if new_ms > old_ms * (1.0 + threshold / 100.0) + abs_slack {
            regressions += 1;
            "  REGRESSED"
        } else if threshold != max_regress {
            "  (loose)"
        } else {
            ""
        };
        println!("{key:<64} {old_ms:>10.4} {new_ms:>10.4} {delta:>+7.1}%{flag}");
    }
    println!(
        "\n{compared} configurations compared, {regressions} regressed beyond {max_regress}% + {abs_slack} ms"
    );
    if regressions > 0 {
        std::process::exit(1);
    }
}

fn docs_or(opts: &Opts, default: usize) -> usize {
    if opts.docs > 0 {
        opts.docs
    } else {
        default
    }
}

fn scale_or(opts: &Opts, default: f64) -> f64 {
    if opts.scale > 0.0 {
        opts.scale
    } else {
        default
    }
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(100)
}

/// Table 1: predicate matching results for a//b/c and c//b//a over the
/// document path (a, b, c, a, b, c).
fn table1() {
    use pxf_core::encode::{encode_single_path, AttrMode};
    use pxf_predicate::{MatchContext, Publication};
    use pxf_xml::Interner;

    println!("## Table 1 — Predicate Matching Result");
    println!("path: (a, b, c, a, b, c)");
    let mut interner = Interner::new();
    let mut index = pxf_predicate::PredicateIndex::new();
    let mut rows: Vec<(String, String, pxf_predicate::PredId)> = Vec::new();
    for src in ["a//b/c", "c//b//a"] {
        let expr = pxf_xpath::parse(src).unwrap();
        let enc = encode_single_path(&expr, &mut interner, AttrMode::Postponed).unwrap();
        for pred in &enc.preds {
            let pid = index.insert(pred.clone());
            rows.push((src.to_string(), pred.to_notation(&interner), pid));
        }
    }
    let publication = Publication::from_tags(&["a", "b", "c", "a", "b", "c"], &mut interner);
    let mut ctx = MatchContext::new();
    index.evaluate(&publication, None::<&pxf_xml::Document>, &mut ctx);
    println!(
        "{:<10} {:<26} matching occurrence pairs",
        "XPE", "predicate"
    );
    for (src, notation, pid) in rows {
        println!("{src:<10} {notation:<26} {:?}", ctx.get(pid));
    }
    println!();
}

fn print_header(cols: &[&str]) {
    print!("{:<10}", cols[0]);
    for c in &cols[1..] {
        print!(" {c:>13}");
    }
    println!();
}

/// Fig. 6(a): NITF, distinct expressions, 25k–125k, five engines.
fn fig6a(opts: &Opts) {
    let scale = scale_or(opts, 1.0);
    let docs = docs_or(opts, 100);
    let regime = Regime::nitf();
    println!("## Fig 6(a) — NITF distinct expressions (scale {scale}, {docs} docs)");
    println!("total filter time, ms/doc");
    print_header(&[
        "n_exprs",
        "basic",
        "basic-pc",
        "basic-pc-ap",
        "yfilter",
        "index-filter",
        "match%",
        "distinct",
    ]);
    for n in [25_000, 50_000, 75_000, 100_000, 125_000] {
        let n = scaled(n, scale);
        let w = build_workload(
            &regime,
            &WorkloadSpec {
                n_exprs: n,
                distinct: true,
                n_docs: docs,
                ..Default::default()
            },
        );
        let results: Vec<RunResult> = EngineKind::ALL
            .iter()
            .map(|&k| run_engine(k, AttrMode::Inline, &w))
            .collect();
        print!("{n:<10}");
        for r in &results {
            print!(" {:>13.3}", r.ms_per_doc);
        }
        println!(" {:>12.1}% {:>9}", results[2].match_pct, w.distinct);
    }
    println!();
}

/// Fig. 6(b): PSD, distinct expressions, 1k–10k, five engines.
fn fig6b(opts: &Opts) {
    let scale = scale_or(opts, 1.0);
    let docs = docs_or(opts, 100);
    let regime = Regime::psd();
    println!("## Fig 6(b) — PSD distinct expressions (scale {scale}, {docs} docs)");
    println!("total filter time, ms/doc");
    print_header(&[
        "n_exprs",
        "basic",
        "basic-pc",
        "basic-pc-ap",
        "yfilter",
        "index-filter",
        "match%",
        "distinct",
    ]);
    for n in [1_000, 2_500, 5_000, 7_500, 10_000] {
        let n = scaled(n, scale);
        let w = build_workload(
            &regime,
            &WorkloadSpec {
                n_exprs: n,
                distinct: true,
                n_docs: docs,
                ..Default::default()
            },
        );
        let results: Vec<RunResult> = EngineKind::ALL
            .iter()
            .map(|&k| run_engine(k, AttrMode::Inline, &w))
            .collect();
        print!("{n:<10}");
        for r in &results {
            print!(" {:>13.3}", r.ms_per_doc);
        }
        println!(" {:>12.1}% {:>9}", results[2].match_pct, w.distinct);
    }
    println!();
}

/// Fig. 7: duplicate expressions, 0.5M–5M, basic-pc-ap vs YFilter (PSD and
/// NITF).
fn fig7(opts: &Opts) {
    let scale = scale_or(opts, 0.2);
    let docs = docs_or(opts, 50);
    for regime in [Regime::psd(), Regime::nitf()] {
        println!(
            "## Fig 7 — {} duplicate expressions (scale {scale}, {docs} docs)",
            regime.name.to_uppercase()
        );
        println!("total filter time, ms/doc");
        print_header(&["n_exprs", "basic-pc-ap", "yfilter", "distinct"]);
        for n in [500_000usize, 1_000_000, 2_000_000, 3_500_000, 5_000_000] {
            let n = scaled(n, scale);
            let w = build_workload(
                &regime,
                &WorkloadSpec {
                    n_exprs: n,
                    distinct: false,
                    n_docs: docs,
                    ..Default::default()
                },
            );
            let ap = run_engine(EngineKind::BasicPcAp, AttrMode::Inline, &w);
            let yf = run_engine(EngineKind::YFilter, AttrMode::Inline, &w);
            println!(
                "{n:<10} {:>13.3} {:>13.3} {:>9}",
                ap.ms_per_doc, yf.ms_per_doc, w.distinct
            );
        }
        println!();
    }
}

/// Fig. 8: varying W (wildcards) or DO (descendants), 2M expressions, NITF.
/// Index-Filter is excluded from the W sweep, as in the paper.
fn fig8(opts: &Opts, wildcard: bool) {
    let scale = scale_or(opts, 0.05);
    let docs = docs_or(opts, 30);
    let regime = Regime::nitf();
    let base = scaled(2_000_000, scale);
    let (name, flag) = if wildcard {
        ("Fig 8 — varying wildcard probability W", "W")
    } else {
        (
            "Fig 8 (companion) — varying descendant probability DO",
            "DO",
        )
    };
    println!("## {name} (NITF, {base} exprs, scale {scale}, {docs} docs)");
    println!("total filter time, ms/doc");
    if wildcard {
        print_header(&[flag, "basic-pc-ap", "yfilter", "distinct-preds"]);
    } else {
        print_header(&[
            flag,
            "basic-pc-ap",
            "yfilter",
            "index-filter",
            "distinct-preds",
        ]);
    }
    for p in [0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9] {
        let spec = WorkloadSpec {
            n_exprs: base,
            distinct: false,
            n_docs: docs,
            wildcard_prob: wildcard.then_some(p),
            descendant_prob: (!wildcard).then_some(p),
            ..Default::default()
        };
        let w = build_workload(&regime, &spec);
        let ap = run_engine(EngineKind::BasicPcAp, AttrMode::Inline, &w);
        let yf = run_engine(EngineKind::YFilter, AttrMode::Inline, &w);
        if wildcard {
            println!(
                "{p:<10} {:>13.3} {:>13.3} {:>13}",
                ap.ms_per_doc, yf.ms_per_doc, ap.distinct_preds
            );
        } else {
            let ixf = run_engine(EngineKind::IndexFilter, AttrMode::Inline, &w);
            println!(
                "{p:<10} {:>13.3} {:>13.3} {:>13.3} {:>13}",
                ap.ms_per_doc, yf.ms_per_doc, ixf.ms_per_doc, ap.distinct_preds
            );
        }
    }
    println!();
}

/// Fig. 9: attribute filters — inline vs selection postponed vs YFilter-SP,
/// with 1 and 2 filters per expression, NITF and PSD.
fn fig9(opts: &Opts) {
    let scale = scale_or(opts, 0.5);
    let docs = docs_or(opts, 50);
    for regime in [Regime::nitf(), Regime::psd()] {
        let sizes: Vec<usize> = if regime.name == "nitf" {
            [25_000usize, 50_000, 75_000, 100_000]
                .iter()
                .map(|&n| scaled(n, scale))
                .collect()
        } else {
            [2_500usize, 5_000, 7_500, 10_000]
                .iter()
                .map(|&n| scaled(n, scale))
                .collect()
        };
        println!(
            "## Fig 9 — attribute filters, {} (scale {scale}, {docs} docs)",
            regime.name.to_uppercase()
        );
        println!("total filter time, ms/doc");
        print_header(&[
            "n_exprs",
            "inline-1",
            "inline-2",
            "sp-1",
            "sp-2",
            "yfilter-1",
            "yfilter-2",
        ]);
        for &n in &sizes {
            let mut row: Vec<RunResult> = Vec::new();
            for filters in [1usize, 2] {
                let w = build_workload(
                    &regime,
                    &WorkloadSpec {
                        n_exprs: n,
                        distinct: true,
                        n_docs: docs,
                        attr_filters: filters,
                        ..Default::default()
                    },
                );
                row.push(run_engine(EngineKind::BasicPcAp, AttrMode::Inline, &w));
                row.push(run_engine(EngineKind::BasicPcAp, AttrMode::Postponed, &w));
                row.push(run_engine(EngineKind::YFilter, AttrMode::Postponed, &w));
            }
            // row = [in1, sp1, yf1, in2, sp2, yf2] → print figure order.
            println!(
                "{n:<10} {:>13.3} {:>13.3} {:>13.3} {:>13.3} {:>13.3} {:>13.3}",
                row[0].ms_per_doc,
                row[3].ms_per_doc,
                row[1].ms_per_doc,
                row[4].ms_per_doc,
                row[2].ms_per_doc,
                row[5].ms_per_doc,
            );
        }
        println!();
    }
}

/// Fig. 10: cost breakdown of the duplicate-expression workload (NITF
/// plotted in the paper; both printed here), plus distinct predicate
/// counts.
fn fig10(opts: &Opts) {
    let scale = scale_or(opts, 0.2);
    let docs = docs_or(opts, 50);
    for regime in [Regime::nitf(), Regime::psd()] {
        println!(
            "## Fig 10 — cost breakdown, {} duplicates (scale {scale}, {docs} docs)",
            regime.name.to_uppercase()
        );
        println!("per-document cost of basic-pc-ap, ms");
        print_header(&[
            "n_exprs",
            "predicate",
            "expression",
            "other",
            "total",
            "distinct-preds",
        ]);
        for n in [1_000_000usize, 2_000_000, 3_000_000, 4_000_000, 5_000_000] {
            let n = scaled(n, scale);
            let w = build_workload(
                &regime,
                &WorkloadSpec {
                    n_exprs: n,
                    distinct: false,
                    n_docs: docs,
                    ..Default::default()
                },
            );
            let r = run_engine(EngineKind::BasicPcAp, AttrMode::Inline, &w);
            let (p, e, o) = r.breakdown_ms;
            println!(
                "{n:<10} {p:>13.3} {e:>13.3} {o:>13.3} {:>13.3} {:>13}",
                r.ms_per_doc, r.distinct_preds
            );
        }
        println!();
    }
}

/// Insertion-time measurement (paper §6.1: "all insertion operations are
/// constant time and the number of predicates encoding an XPE is linear in
/// the number of location steps"). Reports per-expression insertion cost
/// at growing engine sizes — flat cost = constant-time insertion.
fn insert_times(opts: &Opts) {
    use pxf_core::{Algorithm, AttrMode, FilterEngine};
    let scale = scale_or(opts, 1.0);
    println!("## Insertion cost (basic-pc-ap; paper §6.1 claims O(1) in engine size)");
    print_header(&["engine size", "us/insert", "distinct-preds"]);
    let regime = Regime::nitf();
    let total = scaled(1_000_000, scale);
    let mut xpath = regime.xpath.clone();
    xpath.count = total;
    xpath.distinct = false;
    let exprs = pxf_workload::XPathGenerator::new(&regime.dtd, xpath).generate();
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    let step = total / 10;
    let mut inserted = 0usize;
    for chunk in exprs.chunks(step) {
        let t = std::time::Instant::now();
        for e in chunk {
            engine.add(e).unwrap();
        }
        let us = t.elapsed().as_secs_f64() * 1e6 / chunk.len() as f64;
        inserted += chunk.len();
        println!(
            "{inserted:<10} {us:>13.3} {:>13}",
            engine.distinct_predicates()
        );
    }
    println!();
}

/// Covering analysis: quantifies the paper's future-work extension —
/// beyond the prefix covering the trie exploits, how many expressions are
/// covered as *contained* sub-chains of other expressions (suffixes and
/// infixes)?
fn covering_analysis(opts: &Opts) {
    use pxf_core::covering::CoveringIndex;
    use pxf_core::encode::{encode_single_path, AttrMode};
    let scale = scale_or(opts, 1.0);
    println!("## Covering analysis (paper §4.2.2 future work: suffix/contained covering)");
    print_header(&["regime", "exprs", "prefix-pairs", "contained", "ac-states"]);
    for regime in [Regime::nitf(), Regime::psd()] {
        let n = scaled(
            if regime.name == "nitf" {
                50_000
            } else {
                10_000
            },
            scale,
        );
        let mut xpath = regime.xpath.clone();
        xpath.count = n;
        // A third of the workload is relative expressions: contained
        // covering only arises between relative chains and the interiors
        // of longer chains (absolute predicates are always chain-initial).
        xpath.relative_prob = 0.33;
        let exprs = pxf_workload::XPathGenerator::new(&regime.dtd, xpath).generate();
        let mut interner = pxf_xml::Interner::new();
        let mut index = pxf_predicate::PredicateIndex::new();
        let chains: Vec<Vec<pxf_predicate::PredId>> = exprs
            .iter()
            .map(|e| {
                encode_single_path(&e.structural_skeleton(), &mut interner, AttrMode::Postponed)
                    .unwrap()
                    .preds
                    .into_iter()
                    .map(|p| index.insert(p))
                    .collect()
            })
            .collect();
        let stats = CoveringIndex::analyze(&chains);
        let ac = CoveringIndex::build(&chains);
        println!(
            "{:<10} {:>13} {:>13} {:>13} {:>13}",
            regime.name,
            stats.chains,
            stats.prefix_pairs,
            stats.contained_pairs,
            ac.state_count()
        );
    }
    println!();
}

/// Subscription-set compilation: before/after expression counts and
/// filtering cost of the dedup + containment-covering + predicate-program
/// pipeline, measured against the uncompiled oracle on the same workload.
///
/// Two rows per mode: the duplicate-heavy regime (`Regime::duplicates`,
/// ≈35% verbatim re-registrations + ≈25% derived contained sub-paths) is
/// where the compiler earns its effective-N reduction (asserted ≥30%);
/// the distinct NITF regime is the dedup-free control, where compilation
/// must not regress. Match counts between the compiled engine and the
/// oracle are asserted equal.
fn subset_compile(opts: &Opts, mut entries: Option<&mut Vec<String>>) {
    let scale = scale_or(opts, 1.0);
    let docs = docs_or(opts, 30);
    let reps = if opts.reps == 0 { 3 } else { opts.reps };
    println!(
        "## subset_compile — subscription-set compilation (scale {scale}, {docs} docs, best of {reps})"
    );
    print_header(&[
        "workload",
        "engine",
        "mode",
        "ms/doc",
        "registered",
        "canonical",
        "covered",
        "effective",
        "reduction",
    ]);
    // Both the flat organization (every canonical entry scanned or posted
    // individually, so effective-N cuts translate directly into ms/doc)
    // and the trie organization (duplicate structure is already shared at
    // terminals; dedup cuts index state and prepare work instead).
    let configs = [
        (Regime::duplicates(), scaled(50_000, scale), false),
        (Regime::nitf(), scaled(25_000, scale), true),
    ];
    for (regime, n_exprs, distinct) in configs {
        let w = build_workload(
            &regime,
            &WorkloadSpec {
                n_exprs,
                distinct,
                n_docs: docs,
                ..Default::default()
            },
        );
        for kind in [EngineKind::Basic, EngineKind::BasicPcAp] {
            let modes = [
                ("uncompiled", CompileOptions::none()),
                ("compiled", CompileOptions::default()),
            ];
            // Interleave the modes' repetitions (A/B/A/B…) so slow machine-state
            // drift across the measurement window biases neither mode's best-of.
            let mut best: [Option<(RunResult, pxf_core::SubsetStats)>; 2] = [None, None];
            for _ in 0..reps {
                for (mi, (_, options)) in modes.iter().enumerate() {
                    let (r, subset) =
                        run_engine_compiled(kind, AttrMode::Inline, Stage2::Posting, *options, &w);
                    match &mut best[mi] {
                        Some((b, _)) if b.ms_per_doc <= r.ms_per_doc => {}
                        slot => *slot = Some((r, subset)),
                    }
                }
            }
            let mut matches_by_mode: Vec<f64> = Vec::new();
            for (mi, (mode, _)) in modes.iter().enumerate() {
                let mode = *mode;
                let (r, subset) = best[mi].take().expect("reps >= 1");
                matches_by_mode.push(r.avg_matches);
                let reduction = 1.0 - subset.effective() as f64 / subset.registered.max(1) as f64;
                println!(
                    "{:<10} {:>12} {:>11} {:>11.3} {:>13} {:>13} {:>13} {:>13} {:>12.1}%",
                    regime.name,
                    kind.label(),
                    mode,
                    r.ms_per_doc,
                    subset.registered,
                    subset.canonical,
                    subset.covered,
                    subset.effective(),
                    reduction * 100.0,
                );
                if mode == "compiled" && regime.name == "nitf-dup" {
                    assert!(
                        reduction >= 0.30,
                        "duplicate-heavy workload must compile away ≥30% of its \
                     effective stage-2 population (got {:.1}%)",
                        reduction * 100.0
                    );
                }
                if let Some(entries) = entries.as_deref_mut() {
                    let stats = r.stats.unwrap_or_default();
                    entries.push(format!(
                        concat!(
                            "    {{\"section\": \"subset_compile\", \"workload\": \"{}\", ",
                            "\"engine\": \"{}-{}\", ",
                            "\"stage1\": \"incremental\", \"stage2\": \"posting\", ",
                            "\"n_exprs\": {}, \"n_docs\": {}, ",
                            "\"ms_per_doc\": {:.6}, \"docs_per_sec\": {:.3}, ",
                            "\"matched_fraction\": {:.6}, \"index_bytes\": {}, ",
                            "\"registered\": {}, \"canonical\": {}, \"covered\": {}, ",
                            "\"effective_n\": {}, \"effective_n_reduction\": {:.4}, ",
                            "\"dedup_hits\": {}, \"covered_skips\": {}, ",
                            "\"occurrence_runs\": {}}}"
                        ),
                        regime.name,
                        kind.label(),
                        mode,
                        w.exprs.len(),
                        docs,
                        r.ms_per_doc,
                        1e3 / r.ms_per_doc.max(1e-9),
                        r.match_pct / 100.0,
                        r.index_bytes,
                        subset.registered,
                        subset.canonical,
                        subset.covered,
                        subset.effective(),
                        reduction,
                        stats.dedup_hits,
                        stats.covered_skips,
                        stats.occurrence_runs,
                    ));
                }
            }
            assert_eq!(
                matches_by_mode[0],
                matches_by_mode[1],
                "compiled engine must produce the oracle's match counts ({}, {})",
                regime.name,
                kind.label()
            );
        }
    }
    println!();
}

/// The automaton-lineage experiment behind the paper's §2 narrative:
/// XFilter (one FSM per expression, no sharing) → YFilter (shared-prefix
/// NFA) → the predicate engine (shared predicates + expression trie).
fn xfilter_lineage(opts: &Opts) {
    let scale = scale_or(opts, 1.0);
    let docs = docs_or(opts, 50);
    println!(
        "## Lineage — XFilter vs YFilter vs basic-pc-ap (paper §2; scale {scale}, {docs} docs)"
    );
    println!("total filter time, ms/doc");
    for regime in [Regime::nitf(), Regime::psd()] {
        let sizes: &[usize] = if regime.name == "nitf" {
            &[5_000, 10_000, 25_000, 50_000]
        } else {
            &[1_000, 2_500, 5_000, 10_000]
        };
        println!("{}:", regime.name.to_uppercase());
        print_header(&["n_exprs", "xfilter", "yfilter", "basic-pc-ap"]);
        for &n in sizes {
            let n = scaled(n, scale);
            let w = build_workload(
                &regime,
                &WorkloadSpec {
                    n_exprs: n,
                    n_docs: docs,
                    ..Default::default()
                },
            );
            let xf = run_engine(EngineKind::XFilter, AttrMode::Inline, &w);
            let yf = run_engine(EngineKind::YFilter, AttrMode::Inline, &w);
            let ap = run_engine(EngineKind::BasicPcAp, AttrMode::Inline, &w);
            println!(
                "{n:<10} {:>13.3} {:>13.3} {:>13.3}",
                xf.ms_per_doc, yf.ms_per_doc, ap.ms_per_doc
            );
        }
        println!();
    }
}

/// §6.5 parse-time measurement (paper: 314 µs NITF, 355 µs PSD). Also
/// reports the tree-free `PathDoc` parse used by the streaming match
/// path — it should be no slower than building the `Document` tree.
fn parse_times(opts: &Opts) {
    let docs = docs_or(opts, 200);
    println!("## Parse time (paper §6.5: 314 us NITF, 355 us PSD)");
    for regime in [Regime::nitf(), Regime::psd()] {
        let w = build_workload(
            &regime,
            &WorkloadSpec {
                n_exprs: 100,
                n_docs: docs,
                ..Default::default()
            },
        );
        let us = measure_parse_us(&w, 5);
        let stream_us = measure_parse_paths_us(&w, 5);
        let bytes: usize = w.doc_bytes.iter().map(|b| b.len()).sum();
        println!(
            "{:<6} avg parse {us:>8.1} us/doc   streaming {stream_us:>8.1} us/doc   avg size {:>6.2} KB",
            regime.name.to_uppercase(),
            bytes as f64 / docs as f64 / 1024.0
        );
    }
    println!();
}

/// Machine-readable stage-2 comparison and scaling sweep.
///
/// Part 1 — scan (the previous formulation, "before") vs posting-driven
/// (the default, "after") stage 2 for the three predicate-engine
/// organizations over NITF, PSD, and a shallow NITF variant, with the
/// incremental stage 1 pinned. The NITF row at the default scale is the
/// 5k-XPE configuration of BENCH_pr4.json (no-regression reference).
///
/// Part 2 — expression-count scaling at fixed match fraction
/// (`Regime::scaling`, duplicates allowed): 10k → 1M XPEs for
/// `basic-pc-ap` with the posting-driven stage 2. Per-document time must
/// grow sublinearly in the registered count.
///
/// Part 3 — churn: the same `Regime::scaling` resident sets (100k and
/// 1M subscriptions) filtered off lock-free snapshots while a writer
/// thread applies 1000 add+remove pairs per second and republishes every
/// 128 pairs. Reports the reader's ms/doc under churn plus the writer's
/// per-pair patch latency and per-snapshot publication latency; the
/// write buffers must perform zero full rebuilds. This part executes
/// first, in a *child process*: the churn reader is compared against
/// the static 1M row, and running it in a heap already fragmented by
/// repeated million-expression builds penalizes exactly the arena
/// relocations that churn exercises (and vice versa for the sweeps).
///
/// Part 4 — broker: the end-to-end TCP broker service benchmark
/// (`broker_rows`): 100k resident subscriptions, churn concurrent with
/// ingest, throughput + delivery-latency percentiles. Also a child
/// process, both for heap isolation and because the broker spawns a
/// worker pool whose threads should not inherit a fragmented arena.
///
/// Writes JSON to `--out` (default `BENCH_pr8.json`). Each row —
/// including the churn rows — is the best of `--reps` runs (default 3;
/// the broker row is a single run — it is a multi-second end-to-end
/// window, already noise-averaged by its own length).
fn benchjson(opts: &Opts) {
    let scale = scale_or(opts, 0.2);
    let docs = docs_or(opts, 50);
    // Best-of-3 per row by default: single-run rows at these sizes
    // measure a few milliseconds and gate CI at 5%, so one scheduler
    // hiccup would fail the build.
    let reps = if opts.reps == 0 { 3 } else { opts.reps };
    let out_path = opts.out.clone().unwrap_or_else(|| "BENCH_pr9.json".into());

    let mut entries: Vec<String> = Vec::new();
    // `extra` is spliced verbatim before the closing brace — row-specific
    // fields like the sharded rows' thread count.
    let fmt_entry = |section: &str,
                     workload: &str,
                     engine_label: &str,
                     stage2_label: &str,
                     n_exprs: usize,
                     n_docs: usize,
                     r: &RunResult,
                     extra: &str|
     -> String {
        let (pred_ms, expr_ms, other_ms) = r.breakdown_ms;
        let stats = r.stats.unwrap_or_default();
        format!(
            concat!(
                "    {{\"section\": \"{}\", \"workload\": \"{}\", \"engine\": \"{}\", ",
                "\"stage1\": \"incremental\", \"stage2\": \"{}\", ",
                "\"n_exprs\": {}, \"n_docs\": {}, ",
                "\"ms_per_doc\": {:.6}, \"docs_per_sec\": {:.3}, ",
                "\"matched_fraction\": {:.6}, ",
                "\"index_bytes\": {}, \"bytes_per_expr\": {:.1}, ",
                "\"predicate_ns_per_doc\": {:.0}, \"expression_ns_per_doc\": {:.0}, ",
                "\"other_ns_per_doc\": {:.0}, ",
                "\"occurrence_runs\": {}, \"stage2_candidates\": {}, ",
                "\"posting_bumps\": {}, \"ap_root_probes\": {}, ",
                "\"pc_propagations\": {}, \"memo_path_skips\": {}, ",
                "\"dedup_hits\": {}, \"covered_skips\": {}, ",
                "\"shard_imbalance_ns\": {}{}}}"
            ),
            section,
            workload,
            engine_label,
            stage2_label,
            n_exprs,
            n_docs,
            r.ms_per_doc,
            1e3 / r.ms_per_doc.max(1e-9),
            r.match_pct / 100.0,
            r.index_bytes,
            r.bytes_per_expr(n_exprs),
            pred_ms * 1e6,
            expr_ms * 1e6,
            other_ms * 1e6,
            stats.occurrence_runs,
            stats.stage2_candidates,
            stats.posting_bumps,
            stats.ap_root_probes,
            stats.pc_propagations,
            stats.memo_path_skips,
            stats.dedup_hits,
            stats.covered_skips,
            stats.shard_imbalance_ns,
            extra,
        )
    };

    // Part 3 runs first, in a child process (re-exec `harness churn`):
    // churn patch/publish latencies and the churn reader's ms/doc are
    // acutely sensitive to allocator state, and the static sweeps below
    // build many million-expression engines. A virgin heap keeps the
    // churn rows comparable to a standalone `harness churn`, and keeps
    // the static sweeps' own process shape identical to the earlier
    // BENCH files they are regression-gated against.
    let sweep_docs = docs.min(20);
    let churn_tmp =
        std::env::temp_dir().join(format!("pxf_churn_rows_{}.json", std::process::id()));
    let exe = std::env::current_exe().expect("current harness executable");
    let status = std::process::Command::new(&exe)
        .arg("churn")
        .args([
            "--docs",
            &sweep_docs.to_string(),
            "--reps",
            &reps.to_string(),
        ])
        .arg("--out")
        .arg(&churn_tmp)
        .status()
        .expect("spawn churn child process");
    assert!(status.success(), "churn child process failed: {status}");
    entries.push(std::fs::read_to_string(&churn_tmp).expect("read churn rows"));
    let _ = std::fs::remove_file(&churn_tmp);

    // Part 4, also in a child process: the TCP broker run at its own
    // defaults (100k resident subs, 2000 docs) regardless of this
    // sweep's --scale/--docs, so the checked-in broker row is always
    // the ISSUE's headline configuration.
    let broker_tmp =
        std::env::temp_dir().join(format!("pxf_broker_rows_{}.json", std::process::id()));
    let status = std::process::Command::new(&exe)
        .arg("broker")
        .arg("--out")
        .arg(&broker_tmp)
        .status()
        .expect("spawn broker child process");
    assert!(status.success(), "broker child process failed: {status}");
    entries.push(std::fs::read_to_string(&broker_tmp).expect("read broker rows"));
    let _ = std::fs::remove_file(&broker_tmp);

    // Part 1: scan vs posting at the PR4 configurations.
    let mut shallow = Regime::nitf();
    shallow.name = "nitf-shallow";
    shallow.xml.max_levels = 3;
    shallow.xpath.min_depth = 2;
    shallow.xpath.max_depth = 3;
    let workloads = [
        (Regime::nitf(), scaled(25_000, scale)),
        (Regime::psd(), scaled(5_000, scale)),
        (shallow, scaled(25_000, scale)),
    ];
    let kinds = [
        EngineKind::Basic,
        EngineKind::BasicPc,
        EngineKind::BasicPcAp,
    ];
    let stages = [(Stage2::Scan, "scan"), (Stage2::Posting, "posting")];
    println!("## benchjson — stage-2 scan vs posting (scale {scale}, {docs} docs, best of {reps})");
    print_header(&[
        "workload", "engine", "stage2", "ms/doc", "pred-ms", "expr-ms",
    ]);
    for (regime, n_exprs) in &workloads {
        let w = build_workload(
            regime,
            &WorkloadSpec {
                n_exprs: *n_exprs,
                distinct: true,
                n_docs: docs,
                ..Default::default()
            },
        );
        for &kind in &kinds {
            for (stage2, stage_label) in stages {
                let r = best_of(reps, || {
                    run_engine_configured(kind, AttrMode::Inline, Stage1::Incremental, stage2, &w)
                });
                let (pred_ms, expr_ms, _) = r.breakdown_ms;
                println!(
                    "{:<12} {:>13} {:>9} {:>11.3} {:>11.3} {:>11.3}",
                    regime.name,
                    kind.label(),
                    stage_label,
                    r.ms_per_doc,
                    pred_ms,
                    expr_ms
                );
                entries.push(fmt_entry(
                    "stage2_compare",
                    regime.name,
                    kind.label(),
                    stage_label,
                    w.exprs.len(),
                    docs,
                    &r,
                    "",
                ));
            }
        }
    }

    // Part 2: expression-count scaling at fixed match fraction.
    let regime = Regime::scaling();
    println!(
        "\n## benchjson — stage-2 scaling sweep ({}, {sweep_docs} docs, best of {reps})",
        regime.name
    );
    print_header(&[
        "n_exprs",
        "engine",
        "stage2",
        "ms/doc",
        "B/expr",
        "match-frac",
    ]);
    for n_exprs in [10_000usize, 100_000, 1_000_000] {
        let w = build_workload(
            &regime,
            &WorkloadSpec {
                n_exprs,
                distinct: false,
                n_docs: sweep_docs,
                ..Default::default()
            },
        );
        let r = best_of(reps, || {
            run_engine_configured(
                EngineKind::BasicPcAp,
                AttrMode::Inline,
                Stage1::Incremental,
                Stage2::Posting,
                &w,
            )
        });
        println!(
            "{:<12} {:>13} {:>9} {:>11.3} {:>11.1} {:>11.4}",
            n_exprs,
            EngineKind::BasicPcAp.label(),
            "posting",
            r.ms_per_doc,
            r.bytes_per_expr(w.exprs.len()),
            r.match_pct / 100.0
        );
        entries.push(fmt_entry(
            "scaling",
            regime.name,
            EngineKind::BasicPcAp.label(),
            "posting",
            w.exprs.len(),
            sweep_docs,
            &r,
            "",
        ));
        // The expression-sharded axis at the same sizes: 4 round-robin
        // shards, same subscriptions, merged results.
        let rs = best_of(reps, || {
            run_sharded(4, EngineKind::BasicPcAp, AttrMode::Inline, &w)
        });
        println!(
            "{:<12} {:>13} {:>9} {:>11.3} {:>11.1} {:>11.4}",
            n_exprs,
            "…-x4shard",
            "posting",
            rs.ms_per_doc,
            rs.bytes_per_expr(w.exprs.len()),
            rs.match_pct / 100.0
        );
        // The sharded matcher timeshares its four shard threads on
        // whatever cores the runner has, so both its ms_per_doc and its
        // shard_imbalance_ns move with scheduler interleaving — stamped
        // scheduler_noisy, and gated loosely (compare `--loose x4shard`),
        // like the churn rows.
        entries.push(fmt_entry(
            "scaling",
            regime.name,
            "basic-pc-ap-x4shard",
            "posting",
            w.exprs.len(),
            sweep_docs,
            &rs,
            ", \"threads\": 4, \"scheduler_noisy\": true",
        ));
    }

    // Part 5: subscription-set compilation (dedup + covering + programs
    // vs the uncompiled oracle), including the duplicate-heavy regime's
    // effective-N reduction.
    println!();
    subset_compile(opts, Some(&mut entries));

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"pr9_subset\",\n  \"scale\": {scale},\n  \"docs\": {docs},\n",
            "  \"notes\": {{\"shard_imbalance_ns\": \"slowest shard minus mean shard wall ",
            "time per doc; on shared runners scheduler interleaving, not work skew, ",
            "dominates it — interpret only on idle multi-core hosts\"}},\n",
            "  \"results\": [\n{rows}\n  ]\n}}\n"
        ),
        scale = scale,
        docs = docs,
        rows = entries.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write benchjson output");
    println!("\nwrote {out_path}");
}

/// Filtering under churn: a writer thread applies 1000 add+remove pairs
/// per second through a snapshot publisher (publishing every 128 pairs)
/// while the measuring thread filters documents off the lock-free
/// snapshots. Shared between `harness churn` and the `benchjson` output;
/// when `entries` is given, a JSON row per size is appended. Each row is
/// the best of `reps` independent churn windows (fresh engine each):
/// on small machines the writer and reader timeshare cores, so a single
/// window is at the mercy of one bad scheduling stretch.
fn churn_rows(regime: &Regime, docs: usize, reps: usize, mut entries: Option<&mut Vec<String>>) {
    println!(
        "\n## benchjson — churn ({}, 1000 add+remove pairs/sec)",
        regime.name
    );
    print_header(&[
        "n_resident",
        "ms/doc",
        "docs",
        "patch-us",
        "publish-us",
        "rebuilds",
        "clone-fb",
    ]);
    for n_exprs in [100_000usize, 1_000_000] {
        let w = build_workload(
            regime,
            &WorkloadSpec {
                n_exprs,
                distinct: false,
                n_docs: docs,
                ..Default::default()
            },
        );
        // Window: enough pairs at 1k/sec for a few seconds of reader
        // throughput measurement.
        let churn_ops = 4_000usize;
        let mut r = run_churn(&w, churn_ops, 1_000.0, 128);
        for _ in 1..reps.max(1) {
            let next = run_churn(&w, churn_ops, 1_000.0, 128);
            assert_eq!(
                next.full_rebuilds, 0,
                "steady-state churn must not trigger full rebuilds"
            );
            if next.ms_per_doc < r.ms_per_doc {
                r = next;
            }
        }
        assert_eq!(
            r.full_rebuilds, 0,
            "steady-state churn must not trigger full rebuilds"
        );
        println!(
            "{:<12} {:>13.3} {:>9} {:>11.2} {:>11.1} {:>11} {:>11}",
            n_exprs,
            r.ms_per_doc,
            r.docs_matched,
            r.patch_us_per_op,
            r.publish_us,
            r.full_rebuilds,
            r.clone_fallbacks
        );
        if let Some(entries) = entries.as_deref_mut() {
            entries.push(format!(
                concat!(
                    "    {{\"section\": \"churn\", \"workload\": \"{}\", ",
                    "\"engine\": \"basic-pc-ap-snapshot\", ",
                    "\"stage1\": \"incremental\", \"stage2\": \"posting\", ",
                    "\"n_exprs\": {}, \"n_docs\": {}, ",
                    "\"ms_per_doc\": {:.6}, \"docs_per_sec\": {:.3}, ",
                    "\"matched_fraction\": {:.6}, ",
                    "\"churn_ops\": {}, \"churn_ops_per_sec\": {:.1}, ",
                    "\"patch_us_per_op\": {:.3}, \"publish_us\": {:.1}, ",
                    "\"publishes\": {}, \"full_rebuilds\": {}, ",
                    "\"incremental_patches\": {}, \"clone_fallbacks\": {}}}"
                ),
                regime.name,
                w.exprs.len(),
                r.docs_matched,
                r.ms_per_doc,
                1e3 / r.ms_per_doc.max(1e-9),
                r.avg_matches / w.exprs.len().max(1) as f64,
                r.churn_ops,
                r.ops_per_sec,
                r.patch_us_per_op,
                r.publish_us,
                r.publishes,
                r.full_rebuilds,
                r.incremental_patches,
                r.clone_fallbacks,
            ));
        }
    }
}

/// End-to-end broker benchmark: spawns the `pxf-broker` TCP service
/// in-process on an ephemeral port and drives it with the loadgen
/// client — a 100k resident subscription base split across four
/// subscriber connections, 500 SUB/UNSUB churn pairs concurrent with a
/// full-throttle document stream. Reports ingest throughput (docs/sec;
/// `ms_per_doc` is its inverse so the compare gate applies unchanged)
/// and delivery latency (`DOC` send → `MATCH` receipt) percentiles.
/// Steady-state churn must complete with zero full index rebuilds and
/// zero deep-clone publish fallbacks; per-connection delivery must be
/// strictly FIFO — all three are asserted, not just reported.
fn broker_rows(opts: &Opts, mut entries: Option<&mut Vec<String>>) {
    use pxf_broker::{loadgen, Broker, BrokerConfig};
    let docs = docs_or(opts, 2_000);
    let subs = if opts.scale > 0.0 {
        scaled(100_000, opts.scale)
    } else {
        100_000
    };
    let churn_pairs = 500usize;
    println!("\n## benchjson — broker ({subs} resident subs over TCP, {churn_pairs} churn pairs)");
    let handle = Broker::spawn(BrokerConfig::default()).expect("spawn broker");
    let report = loadgen::run(&loadgen::LoadgenConfig {
        addr: handle.local_addr().to_string(),
        subs,
        sub_conns: 4,
        docs,
        churn_pairs,
        malformed_every: 0,
        seed: 42,
        rate: 0.0,
        shutdown_when_done: true,
    })
    .expect("loadgen run");
    let final_stats = handle.wait();
    assert_eq!(
        report.fifo_violations, 0,
        "per-connection delivery must be FIFO"
    );
    assert_eq!(
        final_stats.full_rebuilds, 0,
        "steady-state broker churn must not trigger full rebuilds"
    );
    assert_eq!(
        final_stats.clone_fallbacks, 0,
        "broker publishes must reclaim retired snapshots, not deep-clone"
    );
    print_header(&[
        "n_resident",
        "docs/sec",
        "p50-ms",
        "p99-ms",
        "matched",
        "epoch",
        "rebuilds",
        "clone-fb",
    ]);
    println!(
        "{:<12} {:>13.1} {:>13.3} {:>13.3} {:>13} {:>13} {:>13} {:>13}",
        report.resident_subs,
        report.docs_per_sec,
        report.p50_ms,
        report.p99_ms,
        report.docs_matched,
        final_stats.epoch,
        final_stats.full_rebuilds,
        final_stats.clone_fallbacks,
    );
    if let Some(entries) = entries.as_deref_mut() {
        entries.push(format!(
            concat!(
                "    {{\"section\": \"broker\", \"workload\": \"nitf\", ",
                "\"engine\": \"broker-tcp\", ",
                "\"stage1\": \"incremental\", \"stage2\": \"posting\", ",
                "\"n_exprs\": {}, \"n_docs\": {}, ",
                "\"ms_per_doc\": {:.6}, \"docs_per_sec\": {:.3}, ",
                "\"delivery_p50_ms\": {:.3}, \"delivery_p99_ms\": {:.3}, ",
                "\"match_lines\": {}, \"latency_samples\": {}, ",
                "\"churn_pairs\": {}, \"fifo_violations\": {}, ",
                "\"docs_matched\": {}, \"parse_failures\": {}, \"shed\": {}, ",
                "\"snapshot_epoch\": {}, \"full_rebuilds\": {}, ",
                "\"incremental_patches\": {}, \"clone_fallbacks\": {}}}"
            ),
            subs,
            docs,
            1e3 / report.docs_per_sec.max(1e-9),
            report.docs_per_sec,
            report.p50_ms,
            report.p99_ms,
            report.match_lines,
            report.latency_samples,
            churn_pairs,
            report.fifo_violations,
            report.docs_matched,
            report.parse_failures,
            final_stats.shed,
            final_stats.epoch,
            final_stats.full_rebuilds,
            final_stats.incremental_patches,
            final_stats.clone_fallbacks,
        ));
    }

    // Paced open-loop run: the full-throttle row above saturates the
    // broker, so its delivery percentiles measure queueing sojourn (the
    // whole backlog ahead of each document), not service latency. This
    // row offers a fixed 150 docs/sec — about a third of the measured
    // saturation throughput — so p50/p99 report what a subscriber
    // actually waits at a sustainable load.
    let paced_rate = 150.0f64;
    let paced_docs = 1_000usize;
    println!("\n## benchjson — broker paced ({subs} resident subs, {paced_rate} docs/sec offered)");
    let handle = Broker::spawn(BrokerConfig::default()).expect("spawn paced broker");
    let paced = loadgen::run(&loadgen::LoadgenConfig {
        addr: handle.local_addr().to_string(),
        subs,
        sub_conns: 4,
        docs: paced_docs,
        churn_pairs,
        malformed_every: 0,
        seed: 42,
        rate: paced_rate,
        shutdown_when_done: true,
    })
    .expect("paced loadgen run");
    let paced_stats = handle.wait();
    assert_eq!(
        paced.fifo_violations, 0,
        "per-connection delivery must be FIFO"
    );
    assert_eq!(
        paced_stats.full_rebuilds, 0,
        "steady-state broker churn must not trigger full rebuilds"
    );
    print_header(&[
        "n_resident",
        "docs/sec",
        "p50-ms",
        "p99-ms",
        "matched",
        "epoch",
        "rebuilds",
        "clone-fb",
    ]);
    println!(
        "{:<12} {:>13.1} {:>13.3} {:>13.3} {:>13} {:>13} {:>13} {:>13}",
        paced.resident_subs,
        paced.docs_per_sec,
        paced.p50_ms,
        paced.p99_ms,
        paced.docs_matched,
        paced_stats.epoch,
        paced_stats.full_rebuilds,
        paced_stats.clone_fallbacks,
    );
    if let Some(entries) = entries.take() {
        entries.push(format!(
            concat!(
                "    {{\"section\": \"broker\", \"workload\": \"nitf\", ",
                "\"engine\": \"broker-tcp-paced\", ",
                "\"stage1\": \"incremental\", \"stage2\": \"posting\", ",
                "\"n_exprs\": {}, \"n_docs\": {}, ",
                "\"offered_docs_per_sec\": {:.1}, ",
                "\"ms_per_doc\": {:.6}, \"docs_per_sec\": {:.3}, ",
                "\"delivery_p50_ms\": {:.3}, \"delivery_p99_ms\": {:.3}, ",
                "\"match_lines\": {}, \"latency_samples\": {}, ",
                "\"churn_pairs\": {}, \"fifo_violations\": {}, ",
                "\"docs_matched\": {}, \"parse_failures\": {}, \"shed\": {}, ",
                "\"snapshot_epoch\": {}, \"full_rebuilds\": {}, ",
                "\"incremental_patches\": {}, \"clone_fallbacks\": {}}}"
            ),
            subs,
            paced_docs,
            paced_rate,
            1e3 / paced.docs_per_sec.max(1e-9),
            paced.docs_per_sec,
            paced.p50_ms,
            paced.p99_ms,
            paced.match_lines,
            paced.latency_samples,
            churn_pairs,
            paced.fifo_violations,
            paced.docs_matched,
            paced.parse_failures,
            paced_stats.shed,
            paced_stats.epoch,
            paced_stats.full_rebuilds,
            paced_stats.incremental_patches,
            paced_stats.clone_fallbacks,
        ));
    }
}

/// Malformed-document throughput: 10% of each batch is damaged by the
/// seeded fault injector; the batch must complete through the isolated
/// parallel path with per-document errors and zero panics. Reports
/// docs/s alongside the batch error breakdown.
fn hostile(opts: &Opts) {
    use pxf_core::{parallel, Algorithm, BatchReport, FilterEngine};
    use pxf_workload::FaultInjector;
    let docs = docs_or(opts, 1_000);
    let scale = scale_or(opts, 0.1);
    let n_exprs = (10_000.0 * scale) as usize;
    println!("## Hostile-input throughput (10% of documents damaged, {n_exprs} exprs)");
    for regime in [Regime::nitf(), Regime::psd()] {
        let w = build_workload(
            &regime,
            &WorkloadSpec {
                n_exprs,
                n_docs: docs,
                ..Default::default()
            },
        );
        let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
        for e in &w.exprs {
            let _ = engine.add(e);
        }
        engine.prepare();
        let mut bytes = w.doc_bytes.clone();
        let mutated = FaultInjector::new(0xFEED).corrupt_fraction(&mut bytes, 0.10);
        for threads in [1, 4] {
            let started = std::time::Instant::now();
            let results = parallel::filter_batch_bytes(&engine, &bytes, threads);
            let elapsed = started.elapsed();
            let report = BatchReport::from_results(&results);
            assert_eq!(report.panics, 0, "hostile batch must not panic");
            println!(
                "{:<6} threads={threads}: {:>9.1} docs/s   ({} docs, {} mutated; {report})",
                regime.name.to_uppercase(),
                docs as f64 / elapsed.as_secs_f64(),
                docs,
                mutated.len(),
            );
        }
    }
    println!();
}
