//! Minimal plain-`std` micro-benchmark runner.
//!
//! The workspace builds fully offline, so the benches under `benches/`
//! use this module instead of an external harness (every `[[bench]]`
//! target sets `harness = false`). The API is deliberately small: a
//! [`Group`] times closures over a fixed number of samples and prints
//! min / median / mean wall-clock time per iteration. Results go to
//! stdout; there is no statistical machinery beyond taking the median,
//! which is what the paper's figures report anyway.

use std::time::{Duration, Instant};

/// A named group of related measurements (mirrors one figure or one
/// configuration sweep).
pub struct Group {
    name: String,
    samples: usize,
    throughput_bytes: Option<u64>,
}

impl Group {
    /// Creates a group with the default sample count (10).
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n== {name} ==");
        Group {
            name,
            samples: 10,
            throughput_bytes: None,
        }
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares how many input bytes one iteration consumes, so results
    /// also report throughput.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Times `f` (after one untimed warm-up call) and prints the result.
    /// The closure's return value is passed through [`std::hint::black_box`]
    /// so the measured work is not optimized away.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            times.push(t.elapsed());
        }
        self.report(label, &mut times);
    }

    /// Like [`Group::bench`] but re-creates the input with `setup` before
    /// every timed call, excluding setup cost from the measurement (for
    /// routines that consume or mutate their input).
    pub fn bench_batched<T, R>(
        &mut self,
        label: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T) -> R,
    ) {
        std::hint::black_box(routine(setup()));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            times.push(t.elapsed());
        }
        self.report(label, &mut times);
    }

    fn report(&self, label: &str, times: &mut [Duration]) {
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let mut line = format!(
            "{}/{label:<24} min {:>10}  median {:>10}  mean {:>10}",
            self.name,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
        if let Some(bytes) = self.throughput_bytes {
            let mbps = bytes as f64 / 1e6 / median.as_secs_f64();
            line.push_str(&format!("  ({mbps:.1} MB/s)"));
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = Group::new("test-group");
        g.sample_size(3).throughput_bytes(1024);
        let mut calls = 0usize;
        g.bench("counting", || {
            calls += 1;
            calls
        });
        // One warm-up + three timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_batched_reruns_setup() {
        let mut g = Group::new("test-batched");
        g.sample_size(2);
        let mut setups = 0usize;
        g.bench_batched(
            "setup-count",
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
        );
        assert_eq!(setups, 3);
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
