//! Shared benchmark machinery: workload construction and engine runners
//! used by both the `harness` binary (regenerates every figure of the
//! paper) and the plain-`std` benches (`benches/`, via [`micro`]).
//!
//! All engines are driven through the [`FilterBackend`] trait — one
//! builder ([`build_backend`]) and one runner ([`run_engine`]) cover the
//! predicate engine in its three organizations plus the YFilter,
//! Index-Filter, and XFilter baselines. Matching takes the streaming path
//! ([`FilterBackend::match_bytes`]): parse and match happen in one pass
//! per document, matching the paper's total-filter-time metric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pxf_core::{Algorithm, AttrMode, EngineStats, FilterBackend, FilterEngine, Stage1, Stage2};
use pxf_indexfilter::IndexFilter;
use pxf_workload::{Regime, XPathGenerator, XmlGenerator};
use pxf_xfilter::XFilter;
use pxf_xml::Document;
use pxf_xpath::XPathExpr;
use pxf_yfilter::YFilter;
use std::time::Instant;

pub mod micro;

/// A prepared workload: expressions plus serialized documents (documents
/// are re-parsed inside the timed region — the paper's total filtering
/// time includes parsing).
pub struct Workload {
    /// Subscription expressions.
    pub exprs: Vec<XPathExpr>,
    /// Serialized XML documents.
    pub doc_bytes: Vec<Vec<u8>>,
    /// Number of distinct expressions (≤ exprs.len()).
    pub distinct: usize,
}

/// Workload construction options on top of a [`Regime`].
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of expressions.
    pub n_exprs: usize,
    /// D: distinct expressions only.
    pub distinct: bool,
    /// Number of documents.
    pub n_docs: usize,
    /// Attribute filters per expression (Fig. 9).
    pub attr_filters: usize,
    /// Override W (wildcard probability), if set (Fig. 8).
    pub wildcard_prob: Option<f64>,
    /// Override DO (descendant probability), if set (Fig. 8).
    pub descendant_prob: Option<f64>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_exprs: 10_000,
            distinct: true,
            n_docs: 50,
            attr_filters: 0,
            wildcard_prob: None,
            descendant_prob: None,
        }
    }
}

/// Builds a workload for a regime.
pub fn build_workload(regime: &Regime, spec: &WorkloadSpec) -> Workload {
    let mut xpath = regime.xpath.clone();
    xpath.count = spec.n_exprs;
    xpath.distinct = spec.distinct;
    xpath.attr_filters = spec.attr_filters;
    if let Some(w) = spec.wildcard_prob {
        xpath.wildcard_prob = w;
    }
    if let Some(d) = spec.descendant_prob {
        xpath.descendant_prob = d;
    }
    let exprs = XPathGenerator::new(&regime.dtd, xpath).generate();
    let distinct = {
        let mut set: std::collections::HashSet<String> =
            std::collections::HashSet::with_capacity(exprs.len());
        for e in &exprs {
            set.insert(e.to_string());
        }
        set.len()
    };
    let doc_bytes = XmlGenerator::new(&regime.dtd, regime.xml.clone())
        .generate_batch(spec.n_docs)
        .into_iter()
        .map(|d| d.to_xml().into_bytes())
        .collect();
    Workload {
        exprs,
        doc_bytes,
        distinct,
    }
}

/// The engines compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Predicate engine, `basic` organization.
    Basic,
    /// Predicate engine, `basic-pc`.
    BasicPc,
    /// Predicate engine, `basic-pc-ap`.
    BasicPcAp,
    /// YFilter NFA baseline.
    YFilter,
    /// Index-Filter baseline.
    IndexFilter,
    /// XFilter baseline (one FSM per expression; not part of the paper's
    /// figure set, so excluded from [`EngineKind::ALL`]).
    XFilter,
}

impl EngineKind {
    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Basic => "basic",
            EngineKind::BasicPc => "basic-pc",
            EngineKind::BasicPcAp => "basic-pc-ap",
            EngineKind::YFilter => "yfilter",
            EngineKind::IndexFilter => "index-filter",
            EngineKind::XFilter => "xfilter",
        }
    }

    /// All five engines, in figure order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Basic,
        EngineKind::BasicPc,
        EngineKind::BasicPcAp,
        EngineKind::YFilter,
        EngineKind::IndexFilter,
    ];
}

/// Result of one engine run over a workload.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Average total filtering time per document, milliseconds (includes
    /// document parsing, per the paper's metric).
    pub ms_per_doc: f64,
    /// Average matches per document.
    pub avg_matches: f64,
    /// Matched percentage (avg matches / expressions).
    pub match_pct: f64,
    /// Engine construction time (expression insertion), milliseconds.
    pub build_ms: f64,
    /// Distinct predicates stored (predicate engines only).
    pub distinct_preds: usize,
    /// Stage timing breakdown from the engine, per document, in
    /// milliseconds: (predicate matching, expression matching, other).
    /// Zero for the baselines.
    pub breakdown_ms: (f64, f64, f64),
    /// Approximate index footprint in bytes (arena/slab accounting via
    /// [`FilterBackend::index_bytes`]); 0 for backends that don't report
    /// it.
    pub index_bytes: usize,
    /// Raw engine counters of the run (predicate engines only).
    pub stats: Option<EngineStats>,
}

impl RunResult {
    /// Index bytes per registered expression (the compact-layout metric);
    /// 0.0 when the backend doesn't report a footprint.
    pub fn bytes_per_expr(&self, n_exprs: usize) -> f64 {
        self.index_bytes as f64 / n_exprs.max(1) as f64
    }
}

/// Builds an engine of the given kind over the workload expressions,
/// behind the unified [`FilterBackend`] interface.
pub fn build_backend(
    kind: EngineKind,
    attr_mode: AttrMode,
    exprs: &[XPathExpr],
) -> Box<dyn FilterBackend> {
    let mut backend: Box<dyn FilterBackend> = match kind {
        EngineKind::Basic => Box::new(FilterEngine::new(Algorithm::Basic, attr_mode)),
        EngineKind::BasicPc => Box::new(FilterEngine::new(Algorithm::PrefixCovering, attr_mode)),
        EngineKind::BasicPcAp => Box::new(FilterEngine::new(Algorithm::AccessPredicate, attr_mode)),
        EngineKind::YFilter => Box::new(YFilter::new()),
        EngineKind::IndexFilter => Box::new(IndexFilter::new()),
        EngineKind::XFilter => Box::new(XFilter::new()),
    };
    for e in exprs {
        backend.add(e).expect("workload expressions are supported");
    }
    backend.prepare();
    backend
}

/// Runs one engine over a workload, measuring the paper's total-filter-time
/// metric (parse + match, averaged over documents).
pub fn run_engine(kind: EngineKind, attr_mode: AttrMode, workload: &Workload) -> RunResult {
    let t0 = Instant::now();
    let mut engine = build_backend(kind, attr_mode, &workload.exprs);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    engine.reset_stats();
    let mut total_matches = 0usize;
    let t1 = Instant::now();
    for bytes in &workload.doc_bytes {
        total_matches += engine
            .match_bytes(bytes)
            .expect("generated documents are well-formed")
            .len();
    }
    let elapsed = t1.elapsed().as_secs_f64() * 1e3;
    let n_docs = workload.doc_bytes.len().max(1) as f64;

    let distinct_preds = engine.distinct_predicates();
    let stats = engine.stats();
    let breakdown_ms = match &stats {
        Some(stats) => (
            stats.predicate_ns as f64 / 1e6 / n_docs,
            stats.expression_ns as f64 / 1e6 / n_docs,
            stats.other_ns as f64 / 1e6 / n_docs,
        ),
        None => (0.0, 0.0, 0.0),
    };

    let avg_matches = total_matches as f64 / n_docs;
    RunResult {
        ms_per_doc: elapsed / n_docs,
        avg_matches,
        match_pct: avg_matches / workload.exprs.len().max(1) as f64 * 100.0,
        build_ms,
        distinct_preds,
        breakdown_ms,
        index_bytes: engine.index_bytes(),
        stats,
    }
}

/// The [`Algorithm`] behind a predicate-engine [`EngineKind`]; panics for
/// the baselines.
pub fn engine_algorithm(kind: EngineKind) -> Algorithm {
    match kind {
        EngineKind::Basic => Algorithm::Basic,
        EngineKind::BasicPc => Algorithm::PrefixCovering,
        EngineKind::BasicPcAp => Algorithm::AccessPredicate,
        other => panic!("{other:?} is not a predicate-engine organization"),
    }
}

/// Like [`run_engine`] but pins both evaluator strategies, for
/// old-vs-new comparisons of the predicate engine (per-path vs
/// incremental stage 1; scan vs posting-driven stage 2).
/// Predicate-engine kinds only.
pub fn run_engine_configured(
    kind: EngineKind,
    attr_mode: AttrMode,
    stage1: Stage1,
    stage2: Stage2,
    workload: &Workload,
) -> RunResult {
    let t0 = Instant::now();
    let mut engine = FilterEngine::new(engine_algorithm(kind), attr_mode);
    engine.set_stage1(stage1);
    engine.set_stage2(stage2);
    for e in &workload.exprs {
        engine.add(e).expect("workload expressions are supported");
    }
    engine.prepare();
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    engine.reset_stats();
    let mut total_matches = 0usize;
    let t1 = Instant::now();
    for bytes in &workload.doc_bytes {
        total_matches += engine
            .match_bytes(bytes)
            .expect("generated documents are well-formed")
            .len();
    }
    let elapsed = t1.elapsed().as_secs_f64() * 1e3;
    let n_docs = workload.doc_bytes.len().max(1) as f64;

    let stats = engine.stats();
    let avg_matches = total_matches as f64 / n_docs;
    RunResult {
        ms_per_doc: elapsed / n_docs,
        avg_matches,
        match_pct: avg_matches / workload.exprs.len().max(1) as f64 * 100.0,
        build_ms,
        distinct_preds: engine.distinct_predicates(),
        breakdown_ms: (
            stats.predicate_ns as f64 / 1e6 / n_docs,
            stats.expression_ns as f64 / 1e6 / n_docs,
            stats.other_ns as f64 / 1e6 / n_docs,
        ),
        index_bytes: engine.index_bytes(),
        stats: Some(stats),
    }
}

/// Runs an expression-sharded engine ([`pxf_core::ShardedEngine`]) over a
/// workload with the default evaluator strategies: one parse per
/// document, all shards matched, results merged. Mirrors
/// [`run_engine_configured`] for the sharded axis.
pub fn run_sharded(
    n_shards: usize,
    kind: EngineKind,
    attr_mode: AttrMode,
    workload: &Workload,
) -> RunResult {
    let t0 = Instant::now();
    let mut engine = pxf_core::ShardedEngine::new(n_shards, engine_algorithm(kind), attr_mode);
    for e in &workload.exprs {
        engine.add(e).expect("workload expressions are supported");
    }
    engine.prepare();
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    engine.reset_stats();
    let mut total_matches = 0usize;
    let t1 = Instant::now();
    for bytes in &workload.doc_bytes {
        total_matches += engine
            .match_bytes(bytes)
            .expect("generated documents are well-formed")
            .len();
    }
    let elapsed = t1.elapsed().as_secs_f64() * 1e3;
    let n_docs = workload.doc_bytes.len().max(1) as f64;

    let stats = engine.stats();
    let avg_matches = total_matches as f64 / n_docs;
    RunResult {
        ms_per_doc: elapsed / n_docs,
        avg_matches,
        match_pct: avg_matches / workload.exprs.len().max(1) as f64 * 100.0,
        build_ms,
        distinct_preds: engine.distinct_predicates(),
        breakdown_ms: (
            stats.predicate_ns as f64 / 1e6 / n_docs,
            stats.expression_ns as f64 / 1e6 / n_docs,
            stats.other_ns as f64 / 1e6 / n_docs,
        ),
        index_bytes: engine.index_bytes(),
        stats: Some(stats),
    }
}

/// [`run_engine_configured`] with the default (posting-driven) stage 2.
pub fn run_engine_stage1(
    kind: EngineKind,
    attr_mode: AttrMode,
    stage1: Stage1,
    workload: &Workload,
) -> RunResult {
    run_engine_configured(kind, attr_mode, stage1, Stage2::default(), workload)
}

/// Measures average document parse time in microseconds (the paper §6.5
/// reports 314 µs / 355 µs for NITF / PSD).
pub fn measure_parse_us(workload: &Workload, repeats: usize) -> f64 {
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..repeats.max(1) {
        for bytes in &workload.doc_bytes {
            let doc = Document::parse(bytes).expect("well-formed");
            sink += doc.len();
        }
    }
    let total = t.elapsed().as_secs_f64() * 1e6;
    std::hint::black_box(sink);
    total / (repeats.max(1) * workload.doc_bytes.len().max(1)) as f64
}

/// Streaming counterpart of [`measure_parse_us`]: average time to parse a
/// document straight into the flat [`pxf_xml::PathDoc`] store (the
/// tree-free path used by `match_bytes`).
pub fn measure_parse_paths_us(workload: &Workload, repeats: usize) -> f64 {
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..repeats.max(1) {
        for bytes in &workload.doc_bytes {
            let doc = pxf_xml::PathDoc::parse(bytes).expect("well-formed");
            sink += doc.len();
        }
    }
    let total = t.elapsed().as_secs_f64() * 1e6;
    std::hint::black_box(sink);
    total / (repeats.max(1) * workload.doc_bytes.len().max(1)) as f64
}

/// Convenience: the two paper regimes.
pub fn regimes() -> [Regime; 2] {
    [Regime::nitf(), Regime::psd()]
}
