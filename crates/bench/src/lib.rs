//! Shared benchmark machinery: workload construction and engine runners
//! used by both the `harness` binary (regenerates every figure of the
//! paper) and the plain-`std` benches (`benches/`, via [`micro`]).
//!
//! All engines are driven through the [`FilterBackend`] trait — one
//! builder ([`build_backend`]) and one runner ([`run_engine`]) cover the
//! predicate engine in its three organizations plus the YFilter,
//! Index-Filter, and XFilter baselines. Matching takes the streaming path
//! ([`FilterBackend::match_bytes`]): parse and match happen in one pass
//! per document, matching the paper's total-filter-time metric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pxf_core::{
    Algorithm, AttrMode, EngineStats, FilterBackend, FilterEngine, SnapshotPublisher, Stage1,
    Stage2, SubId,
};
use pxf_indexfilter::IndexFilter;
use pxf_workload::{Regime, XPathGenerator, XmlGenerator};
use pxf_xfilter::XFilter;
use pxf_xml::Document;
use pxf_xpath::XPathExpr;
use pxf_yfilter::YFilter;
use std::time::Instant;

pub mod micro;

/// A prepared workload: expressions plus serialized documents (documents
/// are re-parsed inside the timed region — the paper's total filtering
/// time includes parsing).
pub struct Workload {
    /// Subscription expressions.
    pub exprs: Vec<XPathExpr>,
    /// Serialized XML documents.
    pub doc_bytes: Vec<Vec<u8>>,
    /// Number of distinct expressions (≤ exprs.len()).
    pub distinct: usize,
}

/// Workload construction options on top of a [`Regime`].
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of expressions.
    pub n_exprs: usize,
    /// D: distinct expressions only.
    pub distinct: bool,
    /// Number of documents.
    pub n_docs: usize,
    /// Attribute filters per expression (Fig. 9).
    pub attr_filters: usize,
    /// Override W (wildcard probability), if set (Fig. 8).
    pub wildcard_prob: Option<f64>,
    /// Override DO (descendant probability), if set (Fig. 8).
    pub descendant_prob: Option<f64>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_exprs: 10_000,
            distinct: true,
            n_docs: 50,
            attr_filters: 0,
            wildcard_prob: None,
            descendant_prob: None,
        }
    }
}

/// Builds a workload for a regime.
pub fn build_workload(regime: &Regime, spec: &WorkloadSpec) -> Workload {
    let mut xpath = regime.xpath.clone();
    xpath.count = spec.n_exprs;
    xpath.distinct = spec.distinct;
    xpath.attr_filters = spec.attr_filters;
    if let Some(w) = spec.wildcard_prob {
        xpath.wildcard_prob = w;
    }
    if let Some(d) = spec.descendant_prob {
        xpath.descendant_prob = d;
    }
    let exprs = XPathGenerator::new(&regime.dtd, xpath).generate();
    let distinct = {
        let mut set: std::collections::HashSet<String> =
            std::collections::HashSet::with_capacity(exprs.len());
        for e in &exprs {
            set.insert(e.to_string());
        }
        set.len()
    };
    let doc_bytes = XmlGenerator::new(&regime.dtd, regime.xml.clone())
        .generate_batch(spec.n_docs)
        .into_iter()
        .map(|d| d.to_xml().into_bytes())
        .collect();
    Workload {
        exprs,
        doc_bytes,
        distinct,
    }
}

/// The engines compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Predicate engine, `basic` organization.
    Basic,
    /// Predicate engine, `basic-pc`.
    BasicPc,
    /// Predicate engine, `basic-pc-ap`.
    BasicPcAp,
    /// YFilter NFA baseline.
    YFilter,
    /// Index-Filter baseline.
    IndexFilter,
    /// XFilter baseline (one FSM per expression; not part of the paper's
    /// figure set, so excluded from [`EngineKind::ALL`]).
    XFilter,
}

impl EngineKind {
    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Basic => "basic",
            EngineKind::BasicPc => "basic-pc",
            EngineKind::BasicPcAp => "basic-pc-ap",
            EngineKind::YFilter => "yfilter",
            EngineKind::IndexFilter => "index-filter",
            EngineKind::XFilter => "xfilter",
        }
    }

    /// All five engines, in figure order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Basic,
        EngineKind::BasicPc,
        EngineKind::BasicPcAp,
        EngineKind::YFilter,
        EngineKind::IndexFilter,
    ];
}

/// Result of one engine run over a workload.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Average total filtering time per document, milliseconds (includes
    /// document parsing, per the paper's metric).
    pub ms_per_doc: f64,
    /// Average matches per document.
    pub avg_matches: f64,
    /// Matched percentage (avg matches / expressions).
    pub match_pct: f64,
    /// Engine construction time (expression insertion), milliseconds.
    pub build_ms: f64,
    /// Distinct predicates stored (predicate engines only).
    pub distinct_preds: usize,
    /// Stage timing breakdown from the engine, per document, in
    /// milliseconds: (predicate matching, expression matching, other).
    /// Zero for the baselines.
    pub breakdown_ms: (f64, f64, f64),
    /// Approximate index footprint in bytes (arena/slab accounting via
    /// [`FilterBackend::index_bytes`]); 0 for backends that don't report
    /// it.
    pub index_bytes: usize,
    /// Raw engine counters of the run (predicate engines only).
    pub stats: Option<EngineStats>,
}

impl RunResult {
    /// Index bytes per registered expression (the compact-layout metric);
    /// 0.0 when the backend doesn't report a footprint.
    pub fn bytes_per_expr(&self, n_exprs: usize) -> f64 {
        self.index_bytes as f64 / n_exprs.max(1) as f64
    }
}

/// Builds an engine of the given kind over the workload expressions,
/// behind the unified [`FilterBackend`] interface.
pub fn build_backend(
    kind: EngineKind,
    attr_mode: AttrMode,
    exprs: &[XPathExpr],
) -> Box<dyn FilterBackend> {
    let mut backend: Box<dyn FilterBackend> = match kind {
        EngineKind::Basic => Box::new(FilterEngine::new(Algorithm::Basic, attr_mode)),
        EngineKind::BasicPc => Box::new(FilterEngine::new(Algorithm::PrefixCovering, attr_mode)),
        EngineKind::BasicPcAp => Box::new(FilterEngine::new(Algorithm::AccessPredicate, attr_mode)),
        EngineKind::YFilter => Box::new(YFilter::new()),
        EngineKind::IndexFilter => Box::new(IndexFilter::new()),
        EngineKind::XFilter => Box::new(XFilter::new()),
    };
    for e in exprs {
        backend.add(e).expect("workload expressions are supported");
    }
    backend.prepare();
    backend
}

/// Runs one engine over a workload, measuring the paper's total-filter-time
/// metric (parse + match, averaged over documents).
pub fn run_engine(kind: EngineKind, attr_mode: AttrMode, workload: &Workload) -> RunResult {
    let t0 = Instant::now();
    let mut engine = build_backend(kind, attr_mode, &workload.exprs);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    engine.reset_stats();
    let mut total_matches = 0usize;
    let t1 = Instant::now();
    for bytes in &workload.doc_bytes {
        total_matches += engine
            .match_bytes(bytes)
            .expect("generated documents are well-formed")
            .len();
    }
    let elapsed = t1.elapsed().as_secs_f64() * 1e3;
    let n_docs = workload.doc_bytes.len().max(1) as f64;

    let distinct_preds = engine.distinct_predicates();
    let stats = engine.stats();
    let breakdown_ms = match &stats {
        Some(stats) => (
            stats.predicate_ns as f64 / 1e6 / n_docs,
            stats.expression_ns as f64 / 1e6 / n_docs,
            stats.other_ns as f64 / 1e6 / n_docs,
        ),
        None => (0.0, 0.0, 0.0),
    };

    let avg_matches = total_matches as f64 / n_docs;
    RunResult {
        ms_per_doc: elapsed / n_docs,
        avg_matches,
        match_pct: avg_matches / workload.exprs.len().max(1) as f64 * 100.0,
        build_ms,
        distinct_preds,
        breakdown_ms,
        index_bytes: engine.index_bytes(),
        stats,
    }
}

/// The [`Algorithm`] behind a predicate-engine [`EngineKind`]; panics for
/// the baselines.
pub fn engine_algorithm(kind: EngineKind) -> Algorithm {
    match kind {
        EngineKind::Basic => Algorithm::Basic,
        EngineKind::BasicPc => Algorithm::PrefixCovering,
        EngineKind::BasicPcAp => Algorithm::AccessPredicate,
        other => panic!("{other:?} is not a predicate-engine organization"),
    }
}

/// Like [`run_engine`] but pins both evaluator strategies, for
/// old-vs-new comparisons of the predicate engine (per-path vs
/// incremental stage 1; scan vs posting-driven stage 2).
/// Predicate-engine kinds only.
pub fn run_engine_configured(
    kind: EngineKind,
    attr_mode: AttrMode,
    stage1: Stage1,
    stage2: Stage2,
    workload: &Workload,
) -> RunResult {
    let t0 = Instant::now();
    let mut engine = FilterEngine::new(engine_algorithm(kind), attr_mode);
    engine.set_stage1(stage1);
    engine.set_stage2(stage2);
    for e in &workload.exprs {
        engine.add(e).expect("workload expressions are supported");
    }
    engine.prepare();
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    engine.reset_stats();
    let mut total_matches = 0usize;
    let t1 = Instant::now();
    for bytes in &workload.doc_bytes {
        total_matches += engine
            .match_bytes(bytes)
            .expect("generated documents are well-formed")
            .len();
    }
    let elapsed = t1.elapsed().as_secs_f64() * 1e3;
    let n_docs = workload.doc_bytes.len().max(1) as f64;

    let stats = engine.stats();
    let avg_matches = total_matches as f64 / n_docs;
    RunResult {
        ms_per_doc: elapsed / n_docs,
        avg_matches,
        match_pct: avg_matches / workload.exprs.len().max(1) as f64 * 100.0,
        build_ms,
        distinct_preds: engine.distinct_predicates(),
        breakdown_ms: (
            stats.predicate_ns as f64 / 1e6 / n_docs,
            stats.expression_ns as f64 / 1e6 / n_docs,
            stats.other_ns as f64 / 1e6 / n_docs,
        ),
        index_bytes: engine.index_bytes(),
        stats: Some(stats),
    }
}

/// Like [`run_engine_configured`] with the default evaluator strategies,
/// but pinning the subscription-set compilation passes
/// ([`pxf_core::CompileOptions`]) — `CompileOptions::none()` is the
/// uncompiled oracle, `CompileOptions::default()` the full
/// dedup + covering + program pipeline. Also returns the engine's
/// [`pxf_core::SubsetStats`] (registered vs canonical vs covered entry
/// counts), the before/after population of the compiler.
pub fn run_engine_compiled(
    kind: EngineKind,
    attr_mode: AttrMode,
    stage2: Stage2,
    options: pxf_core::CompileOptions,
    workload: &Workload,
) -> (RunResult, pxf_core::SubsetStats) {
    let t0 = Instant::now();
    let mut engine = FilterEngine::new(engine_algorithm(kind), attr_mode);
    engine.set_compile_options(options);
    engine.set_stage2(stage2);
    for e in &workload.exprs {
        engine.add(e).expect("workload expressions are supported");
    }
    engine.prepare();
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let subset = engine.subset_stats();
    // Registration-time counter; captured before the reset that scopes the
    // remaining stats to the measured matching window.
    let dedup_hits = engine.stats().dedup_hits;

    engine.reset_stats();
    let mut total_matches = 0usize;
    let t1 = Instant::now();
    for bytes in &workload.doc_bytes {
        total_matches += engine
            .match_bytes(bytes)
            .expect("generated documents are well-formed")
            .len();
    }
    let elapsed = t1.elapsed().as_secs_f64() * 1e3;
    let n_docs = workload.doc_bytes.len().max(1) as f64;

    let mut stats = engine.stats();
    stats.dedup_hits = dedup_hits;
    let avg_matches = total_matches as f64 / n_docs;
    let result = RunResult {
        ms_per_doc: elapsed / n_docs,
        avg_matches,
        match_pct: avg_matches / workload.exprs.len().max(1) as f64 * 100.0,
        build_ms,
        distinct_preds: engine.distinct_predicates(),
        breakdown_ms: (
            stats.predicate_ns as f64 / 1e6 / n_docs,
            stats.expression_ns as f64 / 1e6 / n_docs,
            stats.other_ns as f64 / 1e6 / n_docs,
        ),
        index_bytes: engine.index_bytes(),
        stats: Some(stats),
    };
    (result, subset)
}

/// Runs an expression-sharded engine ([`pxf_core::ShardedEngine`]) over a
/// workload with the default evaluator strategies: one parse per
/// document, all shards matched, results merged. Mirrors
/// [`run_engine_configured`] for the sharded axis.
pub fn run_sharded(
    n_shards: usize,
    kind: EngineKind,
    attr_mode: AttrMode,
    workload: &Workload,
) -> RunResult {
    let t0 = Instant::now();
    let mut engine = pxf_core::ShardedEngine::new(n_shards, engine_algorithm(kind), attr_mode);
    for e in &workload.exprs {
        engine.add(e).expect("workload expressions are supported");
    }
    engine.prepare();
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    engine.reset_stats();
    let mut total_matches = 0usize;
    let t1 = Instant::now();
    for bytes in &workload.doc_bytes {
        total_matches += engine
            .match_bytes(bytes)
            .expect("generated documents are well-formed")
            .len();
    }
    let elapsed = t1.elapsed().as_secs_f64() * 1e3;
    let n_docs = workload.doc_bytes.len().max(1) as f64;

    let stats = engine.stats();
    let avg_matches = total_matches as f64 / n_docs;
    RunResult {
        ms_per_doc: elapsed / n_docs,
        avg_matches,
        match_pct: avg_matches / workload.exprs.len().max(1) as f64 * 100.0,
        build_ms,
        distinct_preds: engine.distinct_predicates(),
        breakdown_ms: (
            stats.predicate_ns as f64 / 1e6 / n_docs,
            stats.expression_ns as f64 / 1e6 / n_docs,
            stats.other_ns as f64 / 1e6 / n_docs,
        ),
        index_bytes: engine.index_bytes(),
        stats: Some(stats),
    }
}

/// [`run_engine_configured`] with the default (posting-driven) stage 2.
pub fn run_engine_stage1(
    kind: EngineKind,
    attr_mode: AttrMode,
    stage1: Stage1,
    workload: &Workload,
) -> RunResult {
    run_engine_configured(kind, attr_mode, stage1, Stage2::default(), workload)
}

/// Measures average document parse time in microseconds (the paper §6.5
/// reports 314 µs / 355 µs for NITF / PSD).
pub fn measure_parse_us(workload: &Workload, repeats: usize) -> f64 {
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..repeats.max(1) {
        for bytes in &workload.doc_bytes {
            let doc = Document::parse(bytes).expect("well-formed");
            sink += doc.len();
        }
    }
    let total = t.elapsed().as_secs_f64() * 1e6;
    std::hint::black_box(sink);
    total / (repeats.max(1) * workload.doc_bytes.len().max(1)) as f64
}

/// Streaming counterpart of [`measure_parse_us`]: average time to parse a
/// document straight into the flat [`pxf_xml::PathDoc`] store (the
/// tree-free path used by `match_bytes`).
pub fn measure_parse_paths_us(workload: &Workload, repeats: usize) -> f64 {
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..repeats.max(1) {
        for bytes in &workload.doc_bytes {
            let doc = pxf_xml::PathDoc::parse(bytes).expect("well-formed");
            sink += doc.len();
        }
    }
    let total = t.elapsed().as_secs_f64() * 1e6;
    std::hint::black_box(sink);
    total / (repeats.max(1) * workload.doc_bytes.len().max(1)) as f64
}

/// Result of a churn run: filtering throughput measured off immutable
/// snapshots while a writer thread applies paced add/remove churn and
/// republishes.
#[derive(Debug, Clone, Default)]
pub struct ChurnResult {
    /// Average total filtering time per document on the reader thread
    /// (snapshot load + parse + match), milliseconds.
    pub ms_per_doc: f64,
    /// Documents filtered while the writer was churning.
    pub docs_matched: usize,
    /// Average matches per document.
    pub avg_matches: f64,
    /// add+remove pairs the writer applied.
    pub churn_ops: usize,
    /// Achieved churn rate (pairs per second; the writer paces itself to
    /// the requested rate and reports what it actually sustained).
    pub ops_per_sec: f64,
    /// Average in-place patch latency per add+remove pair, microseconds
    /// (index mutation only, publication excluded).
    pub patch_us_per_op: f64,
    /// Average snapshot publication latency, microseconds (prepare +
    /// `Arc` swap + retired-buffer reclaim or clone).
    pub publish_us: f64,
    /// Snapshots published during the run.
    pub publishes: usize,
    /// Full index rebuilds the write buffers performed (compactions);
    /// steady-state churn must keep this at zero.
    pub full_rebuilds: u64,
    /// In-place index patches the write buffers performed.
    pub incremental_patches: u64,
    /// Publishes that deep-cloned the engine because a reader pinned the
    /// retired snapshot past the bounded reclaim wait.
    pub clone_fallbacks: u64,
}

/// Drives one writer thread churning subscriptions through a
/// [`SnapshotPublisher`] at `ops_per_sec` add+remove pairs per second
/// while the calling thread filters `workload.doc_bytes` (cycled) off
/// lock-free snapshots for the whole churn window. Each churn pair adds
/// the next workload expression (cycling) and removes the oldest
/// resident, so the resident count stays at `workload.exprs.len()`.
/// `publish_every` sets the snapshot cadence in pairs (the retired
/// buffer is reclaimed and replayed — never rebuilt — in steady state).
pub fn run_churn(
    workload: &Workload,
    churn_ops: usize,
    ops_per_sec: f64,
    publish_every: usize,
) -> ChurnResult {
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    for e in &workload.exprs {
        engine.add(e).expect("workload expressions are supported");
    }
    let mut publisher = SnapshotPublisher::new(engine);
    let handle = publisher.handle();
    let done = std::sync::atomic::AtomicBool::new(false);
    let publish_every = publish_every.max(1);
    let op_interval = std::time::Duration::from_secs_f64(1.0 / ops_per_sec.max(1e-9));

    let (result, docs_matched, total_matches, match_elapsed) = std::thread::scope(|scope| {
        let done = &done;
        let writer = scope.spawn(move || {
            let n_resident = workload.exprs.len();
            let mut next_remove = SubId(0);
            let mut patch_ns = 0u128;
            let mut publish_ns = 0u128;
            let mut publishes = 0usize;
            // Pairs are applied in bursts with one sleep per burst: the
            // same average rate as per-pair pacing, but an order of
            // magnitude fewer wakeups — per-pair sleeps preempt matcher
            // threads once per millisecond, which distorts the reader
            // metric on small machines far more than the patch work
            // itself does.
            let burst = 16usize;
            let started = Instant::now();
            for op in 0..churn_ops {
                let t = Instant::now();
                publisher
                    .add(&workload.exprs[op % n_resident])
                    .expect("churn expressions are supported");
                assert!(publisher.remove(next_remove), "oldest resident is live");
                next_remove.0 += 1;
                patch_ns += t.elapsed().as_nanos();
                if (op + 1) % publish_every == 0 {
                    let t = Instant::now();
                    publisher.publish();
                    publish_ns += t.elapsed().as_nanos();
                    publishes += 1;
                }
                // Pace to the requested rate; if patching is slower than
                // the budget the writer just runs flat out.
                if (op + 1) % burst == 0 {
                    let deadline = op_interval.mul_f64((op + 1) as f64);
                    let elapsed = started.elapsed();
                    if elapsed < deadline {
                        std::thread::sleep(deadline - elapsed);
                    }
                }
            }
            let t = Instant::now();
            publisher.publish();
            publish_ns += t.elapsed().as_nanos();
            publishes += 1;
            let wall = started.elapsed().as_secs_f64();
            done.store(true, std::sync::atomic::Ordering::Release);
            let engine = publisher.engine();
            ChurnResult {
                churn_ops,
                ops_per_sec: churn_ops as f64 / wall.max(1e-9),
                patch_us_per_op: patch_ns as f64 / 1e3 / churn_ops.max(1) as f64,
                publish_us: publish_ns as f64 / 1e3 / publishes.max(1) as f64,
                publishes,
                full_rebuilds: engine.full_rebuilds(),
                incremental_patches: engine.incremental_patches(),
                clone_fallbacks: publisher.clone_fallbacks(),
                ..ChurnResult::default()
            }
        });

        // Reader: filter documents off pinned snapshots until the writer
        // finishes; this is the metric under churn. The scratch persists
        // across snapshots, mirroring the static runners' streaming path
        // (parse straight into a `PathDoc`, no tree).
        let mut scratch = pxf_core::MatchScratch::new();
        let mut docs_matched = 0usize;
        let mut total_matches = 0usize;
        let t = Instant::now();
        while !done.load(std::sync::atomic::Ordering::Acquire) {
            let bytes = &workload.doc_bytes[docs_matched % workload.doc_bytes.len()];
            let snap = handle.load();
            let doc = pxf_xml::PathDoc::parse(bytes).expect("generated documents are well-formed");
            total_matches += snap.engine().match_document_with(&doc, &mut scratch).len();
            docs_matched += 1;
        }
        let match_elapsed = t.elapsed().as_secs_f64() * 1e3;
        (
            writer.join().expect("churn writer panicked"),
            docs_matched,
            total_matches,
            match_elapsed,
        )
    });

    ChurnResult {
        ms_per_doc: match_elapsed / docs_matched.max(1) as f64,
        docs_matched,
        avg_matches: total_matches as f64 / docs_matched.max(1) as f64,
        ..result
    }
}

/// Convenience: the two paper regimes.
pub fn regimes() -> [Regime; 2] {
    [Regime::nitf(), Regime::psd()]
}
