//! Smoke tests for the benchmark machinery: tiny versions of every
//! experiment path, asserting engine agreement and sane outputs.

use pxf_bench::{
    build_backend, build_workload, measure_parse_paths_us, measure_parse_us, run_engine,
    EngineKind, WorkloadSpec,
};
use pxf_core::{AttrMode, FilterBackend};
use pxf_workload::Regime;
use pxf_xml::Document;

fn tiny_spec() -> WorkloadSpec {
    WorkloadSpec {
        n_exprs: 400,
        n_docs: 6,
        ..Default::default()
    }
}

#[test]
fn all_engines_agree_on_bench_workloads() {
    for regime in [Regime::nitf(), Regime::psd()] {
        for attr_filters in [0usize, 1, 2] {
            let spec = WorkloadSpec {
                attr_filters,
                ..tiny_spec()
            };
            let w = build_workload(&regime, &spec);
            let docs: Vec<Document> = w
                .doc_bytes
                .iter()
                .map(|b| Document::parse(b).unwrap())
                .collect();
            let mut engines: Vec<(String, Box<dyn FilterBackend>)> = EngineKind::ALL
                .iter()
                .chain([EngineKind::XFilter].iter())
                .map(|&k| {
                    // Inline only exists for the predicate engine; the
                    // baselines always run selection postponed.
                    (
                        k.label().to_string(),
                        build_backend(k, AttrMode::Inline, &w.exprs),
                    )
                })
                .collect();
            engines.push((
                "ap-postponed".into(),
                build_backend(EngineKind::BasicPcAp, AttrMode::Postponed, &w.exprs),
            ));
            for (doc, bytes) in docs.iter().zip(&w.doc_bytes) {
                let reference = engines[0].1.match_document(doc);
                for (name, engine) in engines.iter_mut() {
                    assert_eq!(
                        engine.match_document(doc),
                        reference,
                        "{name} disagrees ({} filters, {})",
                        attr_filters,
                        regime.name
                    );
                    assert_eq!(
                        engine.match_bytes(bytes).unwrap(),
                        reference,
                        "{name} streaming path disagrees ({} filters, {})",
                        attr_filters,
                        regime.name
                    );
                }
            }
        }
    }
}

#[test]
fn run_engine_reports_consistent_metrics() {
    let regime = Regime::psd();
    let w = build_workload(&regime, &tiny_spec());
    let r = run_engine(EngineKind::BasicPcAp, AttrMode::Inline, &w);
    assert!(r.ms_per_doc > 0.0);
    assert!(r.match_pct > 0.0 && r.match_pct <= 100.0);
    assert!(r.distinct_preds > 0);
    let (p, e, o) = r.breakdown_ms;
    // The breakdown must roughly compose into the total (timers overlap
    // slightly with parse, so allow slack).
    assert!(p + e + o <= r.ms_per_doc * 1.5 + 1.0, "{r:?}");
    // Baselines report no breakdown.
    let y = run_engine(EngineKind::YFilter, AttrMode::Postponed, &w);
    assert_eq!(y.breakdown_ms, (0.0, 0.0, 0.0));
    assert_eq!(y.distinct_preds, 0);
}

#[test]
fn duplicate_workloads_have_fewer_distinct() {
    let regime = Regime::psd();
    let spec = WorkloadSpec {
        n_exprs: 3000,
        distinct: false,
        ..tiny_spec()
    };
    let w = build_workload(&regime, &spec);
    assert_eq!(w.exprs.len(), 3000);
    assert!(w.distinct < 3000, "distinct = {}", w.distinct);
}

#[test]
fn parse_measurement_is_positive() {
    let regime = Regime::nitf();
    let w = build_workload(&regime, &tiny_spec());
    let us = measure_parse_us(&w, 2);
    assert!(us > 0.0 && us < 100_000.0);
    let stream_us = measure_parse_paths_us(&w, 2);
    assert!(stream_us > 0.0 && stream_us < 100_000.0);
}

#[test]
fn spec_overrides_apply() {
    let regime = Regime::nitf();
    let spec = WorkloadSpec {
        wildcard_prob: Some(0.0),
        descendant_prob: Some(0.0),
        ..tiny_spec()
    };
    let w = build_workload(&regime, &spec);
    for e in &w.exprs {
        assert!(!e.has_descendant());
        assert!(e.steps.iter().all(|s| !s.test.is_wildcard()));
    }
}
