//! §6.5 parse-time micro-benchmark: the paper reports 314 µs (NITF) and
//! 355 µs (PSD) per document and argues parsing is negligible. Also
//! times the tree-free `PathDoc` parse used by the streaming match path,
//! which should be no slower than building the `Document` tree.

use pxf_bench::{build_workload, micro, WorkloadSpec};
use pxf_workload::Regime;
use pxf_xml::{Document, PathDoc};

fn main() {
    for regime in [Regime::nitf(), Regime::psd()] {
        let w = build_workload(
            &regime,
            &WorkloadSpec {
                n_exprs: 100,
                n_docs: 50,
                ..Default::default()
            },
        );
        let bytes: usize = w.doc_bytes.iter().map(|b| b.len()).sum();
        let mut group = micro::Group::new(format!("parse/{}", regime.name));
        group.throughput_bytes(bytes as u64);
        group.bench("document-tree", || {
            let mut tags = 0usize;
            for d in &w.doc_bytes {
                tags += Document::parse(d).unwrap().len();
            }
            tags
        });
        group.bench("pathdoc-streaming", || {
            let mut tags = 0usize;
            for d in &w.doc_bytes {
                tags += PathDoc::parse(d).unwrap().len();
            }
            tags
        });
    }
}
