//! §6.5 parse-time micro-benchmark: the paper reports 314 µs (NITF) and
//! 355 µs (PSD) per document and argues parsing is negligible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pxf_bench::{build_workload, WorkloadSpec};
use pxf_workload::Regime;
use pxf_xml::Document;

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for regime in [Regime::nitf(), Regime::psd()] {
        let w = build_workload(
            &regime,
            &WorkloadSpec {
                n_exprs: 100,
                n_docs: 50,
                ..Default::default()
            },
        );
        let bytes: usize = w.doc_bytes.iter().map(|b| b.len()).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_function(BenchmarkId::from_parameter(regime.name), |b| {
            b.iter(|| {
                let mut tags = 0usize;
                for d in &w.doc_bytes {
                    tags += Document::parse(d).unwrap().len();
                }
                tags
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
