//! Fig. 6 micro-benchmarks: per-document filter time of all five engines
//! on distinct-expression workloads in both regimes (reduced sizes; the
//! full-scale sweep lives in the `harness` binary). Each engine is also
//! timed on the streaming path (`match_bytes`, parse + match in one
//! pass) for comparison against tree-based matching.

use pxf_bench::{build_workload, micro, EngineKind, WorkloadSpec};
use pxf_core::AttrMode;
use pxf_workload::Regime;
use pxf_xml::Document;

fn main() {
    for (regime, n_exprs) in [(Regime::nitf(), 20_000usize), (Regime::psd(), 5_000)] {
        let spec = WorkloadSpec {
            n_exprs,
            n_docs: 10,
            ..Default::default()
        };
        let w = build_workload(&regime, &spec);
        let docs: Vec<Document> = w
            .doc_bytes
            .iter()
            .map(|b| Document::parse(b).unwrap())
            .collect();
        let mut group = micro::Group::new(format!("fig6/{}-{}", regime.name, n_exprs));
        group.sample_size(10);
        for kind in EngineKind::ALL {
            let mut engine = pxf_bench::build_backend(kind, AttrMode::Inline, &w.exprs);
            group.bench(kind.label(), || {
                let mut m = 0usize;
                for d in &docs {
                    m += engine.match_document(d).len();
                }
                m
            });
            group.bench(&format!("{}-streaming", kind.label()), || {
                let mut m = 0usize;
                for bytes in &w.doc_bytes {
                    m += engine.match_bytes(bytes).unwrap().len();
                }
                m
            });
        }
    }
}
