//! Fig. 6 micro-benchmarks: per-document filter time of all five engines
//! on distinct-expression workloads in both regimes (reduced sizes; the
//! full-scale sweep lives in the `harness` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxf_bench::{build_workload, AnyEngine, EngineKind, WorkloadSpec};
use pxf_core::AttrMode;
use pxf_workload::Regime;
use pxf_xml::Document;

fn bench_fig6(c: &mut Criterion) {
    for (regime, n_exprs) in [(Regime::nitf(), 20_000usize), (Regime::psd(), 5_000)] {
        let spec = WorkloadSpec {
            n_exprs,
            n_docs: 10,
            ..Default::default()
        };
        let w = build_workload(&regime, &spec);
        let docs: Vec<Document> = w
            .doc_bytes
            .iter()
            .map(|b| Document::parse(b).unwrap())
            .collect();
        let mut group = c.benchmark_group(format!("fig6/{}-{}", regime.name, n_exprs));
        group.sample_size(10);
        for kind in EngineKind::ALL {
            let mut engine = AnyEngine::build(kind, AttrMode::Inline, &w.exprs);
            group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
                b.iter(|| {
                    let mut m = 0usize;
                    for d in &docs {
                        m += engine.match_count(d);
                    }
                    m
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
