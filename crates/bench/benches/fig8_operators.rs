//! Fig. 8 micro-benchmark: effect of wildcard (W) and descendant (DO)
//! probability on filter time.

use pxf_bench::{build_backend, build_workload, micro, EngineKind, WorkloadSpec};
use pxf_core::AttrMode;
use pxf_workload::Regime;
use pxf_xml::Document;

fn main() {
    let regime = Regime::nitf();
    for (label, wildcard) in [("wildcard", true), ("descendant", false)] {
        let mut group = micro::Group::new(format!("fig8/{label}"));
        group.sample_size(10);
        for p in [0.0, 0.3, 0.9] {
            let spec = WorkloadSpec {
                n_exprs: 50_000,
                distinct: false,
                n_docs: 10,
                wildcard_prob: wildcard.then_some(p),
                descendant_prob: (!wildcard).then_some(p),
                ..Default::default()
            };
            let w = build_workload(&regime, &spec);
            let docs: Vec<Document> = w
                .doc_bytes
                .iter()
                .map(|b| Document::parse(b).unwrap())
                .collect();
            for kind in [EngineKind::BasicPcAp, EngineKind::YFilter] {
                let mut engine = build_backend(kind, AttrMode::Inline, &w.exprs);
                group.bench(&format!("{}/{p}", kind.label()), || {
                    let mut m = 0usize;
                    for d in &docs {
                        m += engine.match_document(d).len();
                    }
                    m
                });
            }
        }
    }
}
