//! Stage-2 scaling: per-document filtering time as the registered
//! expression count sweeps 10k → 1M at a *fixed* match fraction
//! (`Regime::scaling`: i.i.d. NITF expressions, duplicates allowed, so
//! selectivity does not drift with the count). The posting-driven stage 2
//! derives per-path candidates from the satisfied predicates, so its
//! per-document cost tracks the matched expressions — not the registered
//! count — while the scan formulation pays a per-document pass over every
//! registered entry.
//!
//! `--max-exprs N` caps the sweep (CI smoke runs only the smallest size).

use pxf_bench::{build_workload, micro, WorkloadSpec};
use pxf_core::{Algorithm, AttrMode, FilterEngine, Stage2};
use pxf_workload::Regime;

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

fn build_engine(
    algorithm: Algorithm,
    stage2: Stage2,
    exprs: &[pxf_xpath::XPathExpr],
) -> FilterEngine {
    let mut engine = FilterEngine::new(algorithm, AttrMode::Inline);
    engine.set_stage2(stage2);
    for e in exprs {
        engine.add(e).expect("workload expressions encode");
    }
    engine.prepare();
    engine
}

fn run(engine: &FilterEngine, doc_bytes: &[Vec<u8>]) -> usize {
    let mut matcher = engine.matcher();
    let mut total = 0usize;
    for bytes in doc_bytes {
        total += matcher.match_bytes(bytes).expect("well-formed").len();
    }
    total
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_exprs: usize = args
        .iter()
        .position(|a| a == "--max-exprs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(*SIZES.last().unwrap());

    let regime = Regime::scaling();
    for n_exprs in SIZES.into_iter().filter(|&n| n <= max_exprs) {
        let w = build_workload(
            &regime,
            &WorkloadSpec {
                n_exprs,
                distinct: false,
                n_docs: 10,
                ..Default::default()
            },
        );
        let mut group = micro::Group::new(format!("stage2-scaling/n={n_exprs}"));
        group.sample_size(5);

        let posting = build_engine(Algorithm::AccessPredicate, Stage2::Posting, &w.exprs);
        group.bench("ap-posting", || run(&posting, &w.doc_bytes));
        drop(posting);

        let scan = build_engine(Algorithm::AccessPredicate, Stage2::Scan, &w.exprs);
        group.bench("ap-scan", || run(&scan, &w.doc_bytes));
    }
}
