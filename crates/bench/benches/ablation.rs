//! Ablation benches for the paper's central design choices:
//!
//! * **Predicate sharing** (the core claim): stage-1 evaluation through
//!   the shared predicate index vs evaluating every expression's own
//!   predicates directly (`eval_direct`), as a per-expression system
//!   would.
//! * **Insertion cost**: adding expressions to a small vs an already-large
//!   engine (the §6.1 constant-time claim).

use pxf_bench::{build_workload, micro, WorkloadSpec};
use pxf_core::encode::{encode_single_path, AttrMode};
use pxf_core::{Algorithm, FilterEngine};
use pxf_predicate::{eval_direct, MatchContext, Predicate, PredicateIndex, Publication};
use pxf_workload::Regime;
use pxf_xml::{Document, Interner};

fn bench_sharing() {
    let regime = Regime::psd();
    let w = build_workload(
        &regime,
        &WorkloadSpec {
            n_exprs: 5_000,
            n_docs: 10,
            ..Default::default()
        },
    );
    let docs: Vec<Document> = w
        .doc_bytes
        .iter()
        .map(|b| Document::parse(b).unwrap())
        .collect();

    let mut interner = Interner::new();
    let mut index = PredicateIndex::new();
    let chains: Vec<Vec<Predicate>> = w
        .exprs
        .iter()
        .map(|e| {
            encode_single_path(&e.structural_skeleton(), &mut interner, AttrMode::Postponed)
                .unwrap()
                .preds
        })
        .collect();
    for chain in &chains {
        for p in chain {
            index.insert(p.clone());
        }
    }

    let mut group = micro::Group::new("ablation/predicate-sharing");
    group.sample_size(10);

    // Shared index: every distinct predicate evaluated once per path.
    {
        let mut ctx = MatchContext::new();
        let mut publication = Publication::new();
        let interner = interner.clone();
        group.bench("shared-index", || {
            let mut matched = 0usize;
            let mut i = interner.clone();
            for d in &docs {
                d.for_each_leaf_path(|path| {
                    publication.encode(d, path, &mut i);
                    index.evaluate(&publication, None::<&Document>, &mut ctx);
                    matched += ctx.matched().len();
                });
            }
            matched
        });
    }

    // No sharing: every expression evaluates its own predicates directly.
    {
        let mut publication = Publication::new();
        let mut out = Vec::new();
        let interner2 = interner.clone();
        group.bench("per-expression", || {
            let mut matched = 0usize;
            let mut i = interner2.clone();
            for d in &docs {
                d.for_each_leaf_path(|path| {
                    publication.encode(d, path, &mut i);
                    for chain in &chains {
                        for pred in chain {
                            eval_direct(pred, &publication, None::<&Document>, &mut out);
                            matched += usize::from(!out.is_empty());
                        }
                    }
                });
            }
            matched
        });
    }
}

fn bench_insertion() {
    let regime = Regime::nitf();
    let w = build_workload(
        &regime,
        &WorkloadSpec {
            n_exprs: 120_000,
            distinct: false,
            n_docs: 1,
            ..Default::default()
        },
    );
    let mut group = micro::Group::new("ablation/insertion");
    group.sample_size(10);
    for preload in [0usize, 100_000] {
        // Engine preloaded with `preload` subscriptions; measure adding
        // 10k more — constant-time insertion means both are equal.
        group.bench_batched(
            &format!("add-10k-at/{preload}"),
            || {
                let mut engine =
                    FilterEngine::new(Algorithm::AccessPredicate, pxf_core::AttrMode::Inline);
                for e in &w.exprs[..preload] {
                    engine.add(e).unwrap();
                }
                engine
            },
            |mut engine| {
                for e in &w.exprs[preload..preload + 10_000] {
                    engine.add(e).unwrap();
                }
                engine.len()
            },
        );
    }
}

fn main() {
    bench_sharing();
    bench_insertion();
}
