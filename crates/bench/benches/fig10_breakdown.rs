//! Fig. 10 micro-benchmark: isolates the two stages of the algorithm —
//! predicate matching (publication encoding + index evaluation) vs the
//! full pipeline — on the duplicate workload. The harness prints the
//! timer-based per-stage breakdown; this bench provides the endpoints.

use pxf_bench::{build_workload, micro, WorkloadSpec};
use pxf_core::{Algorithm, AttrMode, FilterEngine};
use pxf_predicate::{MatchContext, Publication};
use pxf_workload::Regime;
use pxf_xml::Document;

fn main() {
    let regime = Regime::nitf();
    let spec = WorkloadSpec {
        n_exprs: 200_000,
        distinct: false,
        n_docs: 10,
        ..Default::default()
    };
    let w = build_workload(&regime, &spec);
    let docs: Vec<Document> = w
        .doc_bytes
        .iter()
        .map(|b| Document::parse(b).unwrap())
        .collect();

    let mut group = micro::Group::new("fig10/nitf-200k-dup");
    group.sample_size(10);

    // Stage 1 alone: encode publications and evaluate the predicate index.
    {
        // Build a standalone index with the same predicates via encoding.
        let mut interner = pxf_xml::Interner::new();
        let mut index = pxf_predicate::PredicateIndex::new();
        for e in &w.exprs {
            let enc = pxf_core::encode::encode_single_path(
                &e.structural_skeleton(),
                &mut interner,
                pxf_core::AttrMode::Postponed,
            )
            .unwrap();
            for p in enc.preds {
                index.insert(p);
            }
        }
        let mut ctx = MatchContext::new();
        let mut publication = Publication::new();
        group.bench("predicate-matching-only", || {
            let mut matched = 0usize;
            for d in &docs {
                d.for_each_leaf_path(|path| {
                    publication.encode(d, path, &mut interner);
                    index.evaluate(&publication, Some(d), &mut ctx);
                    matched += ctx.matched().len();
                });
            }
            matched
        });
    }

    // Full pipeline.
    {
        let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
        for e in &w.exprs {
            engine.add(e).unwrap();
        }
        group.bench("full-pipeline", || {
            let mut m = 0usize;
            for d in &docs {
                m += engine.match_document(d).len();
            }
            m
        });
    }
}
