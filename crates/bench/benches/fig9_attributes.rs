//! Fig. 9 micro-benchmark: attribute filters — inline vs selection
//! postponed vs YFilter (selection postponed), 1 and 2 filters per path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxf_bench::{build_workload, AnyEngine, EngineKind, WorkloadSpec};
use pxf_core::AttrMode;
use pxf_workload::Regime;
use pxf_xml::Document;

fn bench_fig9(c: &mut Criterion) {
    for (regime, n_exprs) in [(Regime::nitf(), 20_000usize), (Regime::psd(), 5_000)] {
        for filters in [1usize, 2] {
            let spec = WorkloadSpec {
                n_exprs,
                n_docs: 10,
                attr_filters: filters,
                ..Default::default()
            };
            let w = build_workload(&regime, &spec);
            let docs: Vec<Document> = w
                .doc_bytes
                .iter()
                .map(|b| Document::parse(b).unwrap())
                .collect();
            let mut group =
                c.benchmark_group(format!("fig9/{}-{}filters", regime.name, filters));
            group.sample_size(10);
            for (label, kind, mode) in [
                ("inline", EngineKind::BasicPcAp, AttrMode::Inline),
                ("sp", EngineKind::BasicPcAp, AttrMode::Postponed),
                ("yfilter-sp", EngineKind::YFilter, AttrMode::Postponed),
            ] {
                let mut engine = AnyEngine::build(kind, mode, &w.exprs);
                group.bench_function(BenchmarkId::from_parameter(label), |b| {
                    b.iter(|| {
                        let mut m = 0usize;
                        for d in &docs {
                            m += engine.match_count(d);
                        }
                        m
                    })
                });
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
