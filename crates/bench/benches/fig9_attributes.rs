//! Fig. 9 micro-benchmark: attribute filters — inline vs selection
//! postponed vs YFilter (selection postponed), 1 and 2 filters per path.

use pxf_bench::{build_backend, build_workload, micro, EngineKind, WorkloadSpec};
use pxf_core::AttrMode;
use pxf_workload::Regime;
use pxf_xml::Document;

fn main() {
    for (regime, n_exprs) in [(Regime::nitf(), 20_000usize), (Regime::psd(), 5_000)] {
        for filters in [1usize, 2] {
            let spec = WorkloadSpec {
                n_exprs,
                n_docs: 10,
                attr_filters: filters,
                ..Default::default()
            };
            let w = build_workload(&regime, &spec);
            let docs: Vec<Document> = w
                .doc_bytes
                .iter()
                .map(|b| Document::parse(b).unwrap())
                .collect();
            let mut group = micro::Group::new(format!("fig9/{}-{}filters", regime.name, filters));
            group.sample_size(10);
            for (label, kind, mode) in [
                ("inline", EngineKind::BasicPcAp, AttrMode::Inline),
                ("sp", EngineKind::BasicPcAp, AttrMode::Postponed),
                ("yfilter-sp", EngineKind::YFilter, AttrMode::Postponed),
            ] {
                let mut engine = build_backend(kind, mode, &w.exprs);
                group.bench(label, || {
                    let mut m = 0usize;
                    for d in &docs {
                        m += engine.match_document(d).len();
                    }
                    m
                });
            }
        }
    }
}
