//! Fig. 7 micro-benchmark: duplicate-expression workloads — the trie
//! collapses duplicates onto shared nodes, YFilter shares prefixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxf_bench::{build_workload, AnyEngine, EngineKind, WorkloadSpec};
use pxf_core::AttrMode;
use pxf_workload::Regime;
use pxf_xml::Document;

fn bench_fig7(c: &mut Criterion) {
    let regime = Regime::psd();
    let spec = WorkloadSpec {
        n_exprs: 200_000,
        distinct: false,
        n_docs: 10,
        ..Default::default()
    };
    let w = build_workload(&regime, &spec);
    let docs: Vec<Document> = w
        .doc_bytes
        .iter()
        .map(|b| Document::parse(b).unwrap())
        .collect();
    let mut group = c.benchmark_group("fig7/psd-200k-dup");
    group.sample_size(10);
    for kind in [EngineKind::BasicPcAp, EngineKind::YFilter] {
        let mut engine = AnyEngine::build(kind, AttrMode::Inline, &w.exprs);
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let mut m = 0usize;
                for d in &docs {
                    m += engine.match_count(d);
                }
                m
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
