//! Fig. 7 micro-benchmark: duplicate-expression workloads — the trie
//! collapses duplicates onto shared nodes, YFilter shares prefixes.

use pxf_bench::{build_backend, build_workload, micro, EngineKind, WorkloadSpec};
use pxf_core::AttrMode;
use pxf_workload::Regime;
use pxf_xml::Document;

fn main() {
    let regime = Regime::psd();
    let spec = WorkloadSpec {
        n_exprs: 200_000,
        distinct: false,
        n_docs: 10,
        ..Default::default()
    };
    let w = build_workload(&regime, &spec);
    let docs: Vec<Document> = w
        .doc_bytes
        .iter()
        .map(|b| Document::parse(b).unwrap())
        .collect();
    let mut group = micro::Group::new("fig7/psd-200k-dup");
    group.sample_size(10);
    for kind in [EngineKind::BasicPcAp, EngineKind::YFilter] {
        let mut engine = build_backend(kind, AttrMode::Inline, &w.exprs);
        group.bench(kind.label(), || {
            let mut m = 0usize;
            for d in &docs {
                m += engine.match_document(d).len();
            }
            m
        });
    }
}
