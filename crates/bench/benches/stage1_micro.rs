//! Stage-1 micro-benchmark: isolates predicate matching (no stage 2) and
//! compares the per-path formulation — encode and evaluate every
//! root-to-leaf path from scratch — against the incremental evaluator —
//! one enter/leave traversal with context marks. Run on deep documents
//! (NITF defaults, where leaf paths share long prefixes) and shallow ones
//! (3 levels, minimal sharing — the incremental path must not regress).

use pxf_bench::{build_workload, micro, WorkloadSpec};
use pxf_predicate::{CtxMark, MatchContext, PredicateIndex, Publication};
use pxf_workload::Regime;
use pxf_xml::{DocAccess, Document, ElementVisitor, Interner, NodeId, Symbol};

/// Bare incremental stage-1 driver (no stage 2): push/evaluate on enter,
/// length predicates at leaves, roll back on leave.
struct Stage1Driver<'a> {
    doc: &'a Document,
    interner: &'a Interner,
    index: &'a PredicateIndex,
    publication: &'a mut Publication,
    ctx: &'a mut MatchContext,
    marks: Vec<CtxMark>,
    matched: usize,
}

impl ElementVisitor for Stage1Driver<'_> {
    fn enter(&mut self, id: NodeId, is_leaf: bool) {
        let tag = self
            .interner
            .get(self.doc.tag(id))
            .unwrap_or(Symbol::UNKNOWN);
        self.marks.push(self.ctx.push_mark());
        self.publication.push_path_element(tag, id);
        self.index
            .eval_enter(self.publication, Some(self.doc), self.ctx);
        if is_leaf {
            let mark = self.ctx.push_mark();
            self.index
                .eval_leaf(self.publication, Some(self.doc), self.ctx);
            self.matched += self.ctx.matched().len();
            self.ctx.pop_to_mark(mark);
        }
    }

    fn leave(&mut self, _id: NodeId) {
        self.publication.pop_path_element();
        self.ctx.pop_to_mark(self.marks.pop().expect("mark stack"));
    }
}

fn bench_regime(group_name: &str, regime: &Regime, n_exprs: usize) {
    let w = build_workload(
        regime,
        &WorkloadSpec {
            n_exprs,
            distinct: true,
            n_docs: 10,
            ..Default::default()
        },
    );
    let docs: Vec<Document> = w
        .doc_bytes
        .iter()
        .map(|b| Document::parse(b).unwrap())
        .collect();

    let mut interner = Interner::new();
    let mut index = PredicateIndex::new();
    for e in &w.exprs {
        let enc = pxf_core::encode::encode_single_path(
            &e.structural_skeleton(),
            &mut interner,
            pxf_core::AttrMode::Postponed,
        )
        .unwrap();
        for p in enc.preds {
            index.insert(p);
        }
    }

    let mut group = micro::Group::new(group_name);
    group.sample_size(10);

    let mut ctx = MatchContext::new();
    let mut publication = Publication::new();
    group.bench("per-path", || {
        let mut matched = 0usize;
        for d in &docs {
            d.for_each_leaf_path(|path| {
                publication.encode_readonly(d, path, &interner);
                index.evaluate(&publication, Some(d), &mut ctx);
                matched += ctx.matched().len();
            });
        }
        matched
    });

    group.bench("incremental", || {
        let mut matched = 0usize;
        for d in &docs {
            publication.begin_incremental();
            ctx.begin(index.len());
            let mut driver = Stage1Driver {
                doc: d,
                interner: &interner,
                index: &index,
                publication: &mut publication,
                ctx: &mut ctx,
                marks: Vec::new(),
                matched: 0,
            };
            d.for_each_element(&mut driver);
            matched += driver.matched;
        }
        matched
    });
}

fn main() {
    // Deep documents: NITF defaults (up to 9 levels — long shared
    // prefixes, where incremental evaluation pays off).
    bench_regime("stage1/nitf-deep", &Regime::nitf(), 20_000);

    // Shallow documents: 3 levels, shallow expressions — little prefix
    // sharing; the incremental evaluator must hold its ground.
    let mut shallow = Regime::nitf();
    shallow.xml.max_levels = 3;
    shallow.xpath.min_depth = 2;
    shallow.xpath.max_depth = 3;
    bench_regime("stage1/nitf-shallow", &shallow, 20_000);
}
