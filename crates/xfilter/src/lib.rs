//! XFilter baseline: one finite state machine *per expression* (Altinel &
//! Franklin, VLDB 2000).
//!
//! XFilter is the ancestor of the automaton-based filtering line the paper
//! surveys in §2: every XPath expression becomes its own FSM whose states
//! advance as document elements stream by; an inverted *candidate list*
//! index on element names locates the FSMs whose current state waits for
//! the incoming tag. The paper's critique — "this approach is not able to
//! adequately handle overlap, especially, prefix overlap between
//! expressions" — is what YFilter's shared NFA and the predicate engine's
//! shared predicate index fix; this implementation exists to make that
//! lineage measurable (`harness xfilter`).
//!
//! Execution follows XFilter's *basic* algorithm: on a start-element event
//! the candidate instances waiting for that tag (plus the wildcard list)
//! are checked against their level constraints; survivors either accept
//! their query or spawn an instance for the next state, which is retracted
//! when the element closes. Attribute and content filters are checked
//! inline at the step that carries them. Nested path filters are not
//! supported (as in the original system, which decomposes them away).
//!
//! # Example
//!
//! ```
//! use pxf_xfilter::XFilter;
//! use pxf_xml::Document;
//!
//! let mut xf = XFilter::new();
//! let s1 = xf.add_str("/a//b").unwrap();
//! let _2 = xf.add_str("/a/c").unwrap();
//! let doc = Document::parse(b"<a><x><b/></x></a>").unwrap();
//! assert_eq!(xf.match_document(&doc), vec![s1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pxf_core::backend::{BackendError, FilterBackend};
use pxf_core::SubId;
use pxf_xml::{DocAccess, Document, Interner, ParserLimits, Symbol, TreeEvent, XmlError};
use pxf_xpath::{Axis, NodeTest, Step, XPathExpr};
use std::fmt;

/// Errors from [`XFilter::add`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XFilterError {
    /// Nested path filters are outside this baseline's scope.
    NestedPath,
}

impl fmt::Display for XFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XFilterError::NestedPath => {
                write!(f, "XFilter baseline does not support nested path filters")
            }
        }
    }
}

impl std::error::Error for XFilterError {}

/// One FSM state: the step it tests plus how it relates to its
/// predecessor's match level.
#[derive(Debug, Clone)]
struct Node {
    /// Interned tag, or `None` for `*`.
    test: Option<Symbol>,
    /// Exact distance from the previous matched level (`Some(d)`), or any
    /// distance ≥ the stored minimum (`None` ⇒ descendant-flexible).
    exact: bool,
    /// Level delta from the previous matched level (≥ 1).
    delta: u16,
    /// Index of the step in the query (for the filter check).
    step: usize,
}

/// A compiled query: its FSM nodes plus the original steps for filter
/// evaluation.
#[derive(Debug)]
struct Query {
    nodes: Vec<Node>,
    steps: Vec<Step>,
    /// Absolute queries anchor node 0 at level `delta`; relative queries
    /// let it float.
    anchored: bool,
}

/// A live instance: query `q` waiting for its node `node` to match at a
/// constrained level.
#[derive(Debug, Clone, Copy)]
struct Instance {
    query: u32,
    node: u32,
    /// Exact level required, or minimum level when `exact` is false.
    level: u16,
    exact: bool,
}

/// The XFilter engine.
#[derive(Debug)]
pub struct XFilter {
    interner: Interner,
    queries: Vec<Query>,
    limits: ParserLimits,
    // Per-document runtime state (reused across documents).
    /// Candidate lists: tag → waiting instances.
    candidates: Vec<Vec<Instance>>,
    /// Instances whose next test is `*`.
    wildcards: Vec<Instance>,
    matched: Vec<u64>,
    doc_epoch: u64,
}

impl Default for XFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl XFilter {
    /// Creates an empty engine.
    pub fn new() -> Self {
        XFilter {
            interner: Interner::new(),
            queries: Vec::new(),
            limits: ParserLimits::default(),
            candidates: Vec::new(),
            wildcards: Vec::new(),
            matched: Vec::new(),
            doc_epoch: 0,
        }
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Parses and registers a query.
    pub fn add_str(&mut self, src: &str) -> Result<u32, Box<dyn std::error::Error>> {
        let expr = pxf_xpath::parse(src)?;
        Ok(self.add(&expr)?)
    }

    /// Registers a query, returning its id (dense, insertion order).
    pub fn add(&mut self, expr: &XPathExpr) -> Result<u32, XFilterError> {
        if expr.has_nested_paths() {
            return Err(XFilterError::NestedPath);
        }
        let mut nodes = Vec::with_capacity(expr.steps.len());
        for (i, step) in expr.steps.iter().enumerate() {
            let test = match &step.test {
                NodeTest::Tag(t) => Some(self.interner.intern(t)),
                NodeTest::Wildcard => None,
            };
            // Each node is one level below its predecessor (`/`) or any
            // number of levels below (`//`). Runs of steps between two
            // nodes are impossible here — every step is a node — so the
            // delta is always 1; `//` only relaxes exactness.
            let exact = match step.axis {
                Axis::Child => true,
                Axis::Descendant => false,
            };
            nodes.push(Node {
                test,
                exact,
                delta: 1,
                step: i,
            });
        }
        let id = self.queries.len() as u32;
        self.queries.push(Query {
            nodes,
            steps: expr.steps.clone(),
            anchored: expr.absolute,
        });
        Ok(id)
    }

    fn candidate_list(&mut self, sym: Symbol) -> &mut Vec<Instance> {
        let idx = sym.index();
        if self.candidates.len() <= idx {
            self.candidates.resize_with(idx + 1, Vec::new);
        }
        &mut self.candidates[idx]
    }

    /// Seeds the initial instance of every query.
    fn seed(&mut self) {
        for list in &mut self.candidates {
            list.clear();
        }
        self.wildcards.clear();
        for (qi, query) in self.queries.iter().enumerate() {
            let node = &query.nodes[0];
            let instance = Instance {
                query: qi as u32,
                node: 0,
                level: 1,
                // Absolute with a `/` first step: the first node must match
                // exactly at the root level; everything else floats.
                exact: query.anchored && node.exact,
            };
            match node.test {
                Some(sym) => {
                    let idx = sym.index();
                    if self.candidates.len() <= idx {
                        self.candidates.resize_with(idx + 1, Vec::new);
                    }
                    self.candidates[idx].push(instance);
                }
                None => self.wildcards.push(instance),
            }
        }
    }

    /// Filters a document: ids of all matching queries, ascending.
    pub fn match_document<D: DocAccess>(&mut self, doc: &D) -> Vec<u32> {
        self.doc_epoch += 1;
        let doc_epoch = self.doc_epoch;
        self.matched.resize(self.queries.len(), 0);
        self.seed();
        let mut results: Vec<u32> = Vec::new();
        // Instances added while an element is open, retracted at its end:
        // (target list: tag symbol or wildcard, snapshot length) per depth.
        let mut added: Vec<Vec<(Option<Symbol>, Instance)>> = Vec::new();

        doc.for_each_event(|ev| match ev {
            TreeEvent::Start(_, element) => {
                let level = element.depth as u16;
                let mut spawned: Vec<(Option<Symbol>, Instance)> = Vec::new();
                // Snapshot candidates for this tag plus the wildcard list.
                let tag = self.interner.get(&element.tag);
                let tag_count = tag
                    .map(|s| self.candidates.get(s.index()).map(|l| l.len()).unwrap_or(0))
                    .unwrap_or(0);
                let wild_count = self.wildcards.len();
                for i in 0..tag_count + wild_count {
                    let instance = if i < tag_count {
                        self.candidates[tag.unwrap().index()][i]
                    } else {
                        self.wildcards[i - tag_count]
                    };
                    let level_ok = if instance.exact {
                        level == instance.level
                    } else {
                        level >= instance.level
                    };
                    if !level_ok {
                        continue;
                    }
                    let query = &self.queries[instance.query as usize];
                    if self.matched[instance.query as usize] == doc_epoch {
                        continue;
                    }
                    // Inline attribute/content filters on this step.
                    let step = &query.steps[query.nodes[instance.node as usize].step];
                    if !step
                        .attr_filters()
                        .all(|f| f.matches(element.value_of(&f.name)))
                    {
                        continue;
                    }
                    if instance.node as usize + 1 == query.nodes.len() {
                        self.matched[instance.query as usize] = doc_epoch;
                        results.push(instance.query);
                        continue;
                    }
                    let next = &query.nodes[instance.node as usize + 1];
                    let child = Instance {
                        query: instance.query,
                        node: instance.node + 1,
                        level: level + next.delta,
                        exact: next.exact,
                    };
                    spawned.push((next.test, child));
                }
                for &(target, instance) in &spawned {
                    match target {
                        Some(sym) => self.candidate_list(sym).push(instance),
                        None => self.wildcards.push(instance),
                    }
                }
                added.push(spawned);
            }
            TreeEvent::End(..) => {
                // Retract the instances spawned at this element.
                for (target, _) in added.pop().expect("balanced events") {
                    match target {
                        Some(sym) => {
                            self.candidates[sym.index()].pop();
                        }
                        None => {
                            self.wildcards.pop();
                        }
                    }
                }
            }
        });

        results.sort_unstable();
        results
    }

    /// Parses and filters raw document bytes in one streaming pass: the
    /// per-expression machines consume events replayed off the flat
    /// [`PathDoc`](pxf_xml::PathDoc) store — no `Document` tree is built.
    pub fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<u32>, XmlError> {
        let doc = pxf_xml::PathDoc::parse_with_limits(bytes, self.limits)?;
        Ok(self.match_document(&doc))
    }

    /// Sets the per-document resource budget enforced by
    /// [`match_bytes`](Self::match_bytes).
    pub fn set_parser_limits(&mut self, limits: ParserLimits) {
        self.limits = limits;
    }
}

impl FilterBackend for XFilter {
    fn add(&mut self, expr: &XPathExpr) -> Result<SubId, BackendError> {
        XFilter::add(self, expr)
            .map(SubId)
            .map_err(|e| BackendError(e.to_string()))
    }

    fn match_document(&mut self, doc: &Document) -> Vec<SubId> {
        XFilter::match_document(self, doc)
            .into_iter()
            .map(SubId)
            .collect()
    }

    fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        Ok(XFilter::match_bytes(self, bytes)?
            .into_iter()
            .map(SubId)
            .collect())
    }

    fn set_parser_limits(&mut self, limits: ParserLimits) {
        XFilter::set_parser_limits(self, limits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(xml: &str) -> Document {
        Document::parse(xml.as_bytes()).unwrap()
    }

    #[test]
    fn basic_queries() {
        let mut xf = XFilter::new();
        let abs = xf.add_str("/a/b").unwrap();
        let rel = xf.add_str("b/c").unwrap();
        let desc = xf.add_str("/a//c").unwrap();
        let miss = xf.add_str("/b").unwrap();
        let m = xf.match_document(&doc("<a><b><c/></b></a>"));
        assert_eq!(m, vec![abs, rel, desc]);
        let _ = miss;
    }

    #[test]
    fn wildcards() {
        let mut xf = XFilter::new();
        let e1 = xf.add_str("/a/*/c").unwrap();
        let e2 = xf.add_str("/*").unwrap();
        let e3 = xf.add_str("*/*/*/*").unwrap();
        let m = xf.match_document(&doc("<a><b><c/></b></a>"));
        assert_eq!(m, vec![e1, e2]);
        let _ = e3;
    }

    #[test]
    fn anchoring() {
        let mut xf = XFilter::new();
        let anchored = xf.add_str("/b").unwrap();
        let floating = xf.add_str("b").unwrap();
        let m = xf.match_document(&doc("<a><b/></a>"));
        assert_eq!(m, vec![floating]);
        let _ = anchored;
    }

    #[test]
    fn retraction_on_element_end() {
        // The a→b chain must not survive into the sibling subtree.
        let mut xf = XFilter::new();
        let e = xf.add_str("/a/b/c").unwrap();
        assert!(xf
            .match_document(&doc("<a><b><x/></b><q><c/></q></a>"))
            .is_empty());
        assert_eq!(
            xf.match_document(&doc("<a><b><x/></b><b><c/></b></a>")),
            vec![e]
        );
    }

    #[test]
    fn descendant_levels() {
        let mut xf = XFilter::new();
        let e = xf.add_str("a//b//c").unwrap();
        assert_eq!(
            xf.match_document(&doc("<a><x><b><y><c/></y></b></x></a>")),
            vec![e]
        );
        assert!(xf.match_document(&doc("<a><c><b/></c></a>")).is_empty());
    }

    #[test]
    fn attribute_and_text_filters() {
        let mut xf = XFilter::new();
        let attr = xf.add_str("/a/b[@x >= 3]").unwrap();
        let text = xf.add_str("/a/b[text() = \"w\"]").unwrap();
        let m = xf.match_document(&doc(r#"<a><b x="5">w</b></a>"#));
        assert_eq!(m, vec![attr, text]);
        let m = xf.match_document(&doc(r#"<a><b x="1">v</b></a>"#));
        assert!(m.is_empty());
    }

    #[test]
    fn repeated_matching_is_stateless() {
        let mut xf = XFilter::new();
        let e = xf.add_str("//b").unwrap();
        assert_eq!(xf.match_document(&doc("<a><b/></a>")), vec![e]);
        assert!(xf.match_document(&doc("<a/>")).is_empty());
        assert_eq!(xf.match_document(&doc("<b/>")), vec![e]);
    }

    #[test]
    fn nested_rejected() {
        let mut xf = XFilter::new();
        assert_eq!(
            xf.add(&pxf_xpath::parse("/a[b]/c").unwrap()),
            Err(XFilterError::NestedPath)
        );
    }
}
