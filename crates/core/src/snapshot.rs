//! RCU-style snapshot publication for a live subscription base.
//!
//! The paper's deployment is a broker filtering a continuous document
//! stream while users subscribe and unsubscribe; matching must never
//! pause for index maintenance. This module separates the two roles:
//! a single writer owns a mutable [`FilterEngine`] and applies churn
//! through a [`SnapshotPublisher`], while any number of matcher threads
//! read immutable [`EngineSnapshot`]s obtained from a cheap, cloneable
//! [`SnapshotHandle`]. Publication swaps an `Arc` — readers holding the
//! previous snapshot keep matching against it unperturbed, and new
//! matchers pick up the new epoch.
//!
//! # Write-side cost
//!
//! The publisher double-buffers: publishing moves the writer's engine
//! into the new snapshot and recycles the engine inside the *previous*
//! snapshot as the next write buffer, catching it up by replaying the
//! operation log accumulated since the last publish (subscription ids
//! are assigned deterministically in registration order, so a replay
//! reconstructs the identical index). Steady-state churn therefore
//! costs two in-place patches per operation (once on the write buffer,
//! once at replay) and *no* engine clone — unless a reader still holds
//! the previous snapshot after a bounded reclamation spin, in which
//! case the publisher falls back to one deep clone of the fresh
//! snapshot.
//!
//! Because [`FilterEngine::add`]/[`FilterEngine::remove`] patch the
//! prepared index in place (see the engine's incremental-maintenance
//! counters), the `prepare()` inside [`SnapshotPublisher::publish`] is
//! amortized O(1): it verifies the patched flags and returns.

use crate::engine::{AddError, FilterEngine, Matcher, SubId};
use crate::parallel::MatcherSource;
use pxf_xpath::XPathExpr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An immutable published view of the subscription base: a prepared
/// engine frozen at a publication epoch. Readers mint per-thread
/// [`Matcher`]s from it; the engine is never mutated after publication.
#[derive(Debug)]
pub struct EngineSnapshot {
    engine: FilterEngine,
    epoch: u64,
}

impl EngineSnapshot {
    /// The frozen engine (read-only: mint matchers, inspect footprint).
    pub fn engine(&self) -> &FilterEngine {
        &self.engine
    }

    /// The publication epoch this snapshot was created at (0 for the
    /// initial snapshot, incremented by every [`SnapshotPublisher::publish`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Creates an independent matching handle over this snapshot.
    pub fn matcher(&self) -> Matcher<'_> {
        self.engine.matcher()
    }
}

impl AsRef<FilterEngine> for EngineSnapshot {
    fn as_ref(&self) -> &FilterEngine {
        &self.engine
    }
}

/// Lets a slice of shared snapshots act as a slice of engines (the
/// sharded matcher runs over `&[Arc<EngineSnapshot>]`).
impl AsRef<FilterEngine> for Arc<EngineSnapshot> {
    fn as_ref(&self) -> &FilterEngine {
        &self.engine
    }
}

/// One logged subscription-base mutation, replayed to catch the spare
/// write buffer up after a publication swap.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// `add(expr)` returned the recorded id (replay must agree).
    Add(XPathExpr, SubId),
    /// `remove(sub)` returned `true`.
    Remove(SubId),
}

/// Shared slot holding the current snapshot. Readers briefly take the
/// read lock only to clone the `Arc` out — never while matching — so
/// matcher threads run lock-free against their pinned snapshot and the
/// writer's swap contends only with those pointer clones.
type SharedSlot = Arc<RwLock<Arc<EngineSnapshot>>>;

/// A cloneable reader handle: [`Self::load`] pins the current snapshot
/// for a batch of documents.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    shared: SharedSlot,
    /// Epoch of the most recent publish, mirrored atomically so stats
    /// paths can poll it without touching the snapshot slot at all.
    epoch: Arc<AtomicU64>,
}

impl SnapshotHandle {
    /// Pins the currently published snapshot. The returned `Arc` stays
    /// valid (and its match sets stable) for as long as the caller holds
    /// it, regardless of concurrent publishes.
    pub fn load(&self) -> Arc<EngineSnapshot> {
        self.shared.read().expect("snapshot slot poisoned").clone()
    }

    /// Epoch of the most recently published snapshot.
    ///
    /// A single atomic load: no lock is taken and no snapshot `Arc` is
    /// cloned, so a stats poller hammering this (the broker calls it per
    /// `STATS` request) can never pin a retired snapshot and push the
    /// publisher into its deep-clone reclaim fallback. May lead
    /// [`Self::load`] by one publish while a swap is in flight.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// The single-writer side: applies churn to a private write buffer and
/// publishes immutable snapshots of it.
///
/// ```
/// use pxf_core::{FilterEngine, SnapshotPublisher};
/// use pxf_xml::Document;
///
/// let mut engine = FilterEngine::default();
/// engine.add_str("/a/b").unwrap();
/// let mut publisher = SnapshotPublisher::new(engine);
/// let handle = publisher.handle();
///
/// let sub = publisher.add_str("//c").unwrap();
/// let before = handle.load(); // does not see `//c` yet
/// publisher.publish();
/// let after = handle.load();
///
/// let doc = Document::parse(b"<a><c/></a>").unwrap();
/// assert!(!before.matcher().match_document(&doc).contains(&sub));
/// assert!(after.matcher().match_document(&doc).contains(&sub));
/// ```
#[derive(Debug)]
pub struct SnapshotPublisher {
    /// The up-to-date write buffer (mutated by add/remove).
    write: FilterEngine,
    /// Operations applied to `write` since the last publish — exactly
    /// what the engine recycled from the previous snapshot is missing.
    log: Vec<ChurnOp>,
    shared: SharedSlot,
    epoch: u64,
    /// Lock-free mirror of `epoch`, shared with every [`SnapshotHandle`].
    published_epoch: Arc<AtomicU64>,
    /// Publishes that could not recycle the retired buffer (a reader
    /// pinned it past the bounded wait) and deep-cloned instead.
    clone_fallbacks: u64,
}

/// How many `yield_now` rounds the publisher waits for readers to drop
/// the previous snapshot before giving up and deep-cloning instead.
const RECLAIM_SPINS: usize = 64;

/// After the yield spins, how many 200 µs sleeps the publisher waits out
/// a reader that pinned the retired snapshot mid-match. A document match
/// over a large resident set runs for milliseconds — far longer than the
/// yield spins — so without this phase steady-state publication under
/// load would deep-clone the whole engine every time.
const RECLAIM_SLEEPS: usize = 25;

impl SnapshotPublisher {
    /// Takes ownership of an engine (prepared or not) and publishes its
    /// current state as the epoch-0 snapshot.
    pub fn new(mut engine: FilterEngine) -> Self {
        engine.prepare();
        let snapshot = Arc::new(EngineSnapshot {
            engine: engine.clone(),
            epoch: 0,
        });
        SnapshotPublisher {
            write: engine,
            log: Vec::new(),
            shared: Arc::new(RwLock::new(snapshot)),
            epoch: 0,
            published_epoch: Arc::new(AtomicU64::new(0)),
            clone_fallbacks: 0,
        }
    }

    /// A reader handle onto this publisher's snapshot slot.
    pub fn handle(&self) -> SnapshotHandle {
        SnapshotHandle {
            shared: self.shared.clone(),
            epoch: self.published_epoch.clone(),
        }
    }

    /// Registers an expression on the write buffer. Invisible to
    /// readers until the next [`Self::publish`].
    pub fn add(&mut self, expr: &XPathExpr) -> Result<SubId, AddError> {
        let sub = self.write.add(expr)?;
        self.log.push(ChurnOp::Add(expr.clone(), sub));
        Ok(sub)
    }

    /// Parses and registers an expression (convenience).
    pub fn add_str(&mut self, src: &str) -> Result<SubId, Box<dyn std::error::Error>> {
        let expr = pxf_xpath::parse(src)?;
        Ok(self.add(&expr)?)
    }

    /// Unregisters a subscription on the write buffer. Readers holding
    /// an earlier snapshot keep reporting it until they reload.
    pub fn remove(&mut self, sub: SubId) -> bool {
        let removed = self.write.remove(sub);
        if removed {
            self.log.push(ChurnOp::Remove(sub));
        }
        removed
    }

    /// Read access to the write buffer (maintenance counters, footprint).
    pub fn engine(&self) -> &FilterEngine {
        &self.write
    }

    /// The epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pending operations not yet visible to readers.
    pub fn pending_ops(&self) -> usize {
        self.log.len()
    }

    /// Publishes that fell back to deep-cloning the engine because a
    /// reader pinned the retired snapshot past the bounded reclaim wait.
    /// Steady-state churn with well-behaved readers keeps this near zero.
    pub fn clone_fallbacks(&self) -> u64 {
        self.clone_fallbacks
    }

    /// Publishes the write buffer's current state as a new snapshot and
    /// returns its epoch. Readers loading after this call observe every
    /// operation applied so far; readers holding older snapshots are
    /// undisturbed.
    pub fn publish(&mut self) -> u64 {
        // Amortized O(1) in steady state: add/remove patched in place,
        // so the dirty flags are clean and prepare() early-returns.
        self.write.prepare();
        self.epoch += 1;
        let fresh = Arc::new(EngineSnapshot {
            engine: std::mem::take(&mut self.write),
            epoch: self.epoch,
        });
        let previous = {
            let mut slot = self.shared.write().expect("snapshot slot poisoned");
            std::mem::replace(&mut *slot, fresh)
        };
        self.published_epoch.store(self.epoch, Ordering::Release);
        self.write = self.reclaim(previous);
        self.log.clear();
        self.epoch
    }

    /// Recycles the engine inside the retired snapshot as the next write
    /// buffer, replaying the logged operations to catch it up. Falls
    /// back to cloning the just-published engine if readers still hold
    /// the retired snapshot after a bounded wait.
    fn reclaim(&mut self, mut retired: Arc<EngineSnapshot>) -> FilterEngine {
        for round in 0..RECLAIM_SPINS + RECLAIM_SLEEPS {
            match Arc::try_unwrap(retired) {
                Ok(snapshot) => {
                    let mut engine = snapshot.engine;
                    for op in &self.log {
                        match op {
                            ChurnOp::Add(expr, recorded) => {
                                let sub = engine
                                    .add(expr)
                                    .expect("replaying an add that previously succeeded");
                                debug_assert_eq!(
                                    sub, *recorded,
                                    "replay must assign identical subscription ids"
                                );
                            }
                            ChurnOp::Remove(sub) => {
                                engine.remove(*sub);
                            }
                        }
                    }
                    engine.prepare();
                    return engine;
                }
                Err(still_shared) => {
                    retired = still_shared;
                    if round < RECLAIM_SPINS {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
            }
        }
        // A reader pinned the retired snapshot across the whole spin;
        // leave it to them and start from a copy of the fresh state.
        self.clone_fallbacks += 1;
        drop(retired);
        self.shared
            .read()
            .expect("snapshot slot poisoned")
            .engine
            .clone()
    }
}

impl MatcherSource for EngineSnapshot {
    type Matcher<'a> = Matcher<'a>;
    fn matcher(&self) -> Matcher<'_> {
        EngineSnapshot::matcher(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxf_xml::Document;

    fn doc(xml: &str) -> Document {
        Document::parse(xml.as_bytes()).unwrap()
    }

    #[test]
    fn readers_pin_their_epoch() {
        let mut publisher = SnapshotPublisher::new(FilterEngine::default());
        let handle = publisher.handle();
        let a = publisher.add_str("/a/b").unwrap();
        assert_eq!(publisher.publish(), 1);

        let pinned = handle.load();
        assert_eq!(pinned.epoch(), 1);
        let d = doc("<a><b/></a>");
        assert_eq!(pinned.matcher().match_document(&d), vec![a]);

        assert!(publisher.remove(a));
        publisher.publish();
        // The pinned snapshot still reports the removed subscription…
        assert_eq!(pinned.matcher().match_document(&d), vec![a]);
        // …while a fresh load does not.
        let fresh = handle.load();
        assert_eq!(fresh.epoch(), 2);
        assert!(fresh.matcher().match_document(&d).is_empty());
    }

    #[test]
    fn replay_keeps_ids_and_match_sets_identical() {
        let mut publisher = SnapshotPublisher::new(FilterEngine::default());
        let handle = publisher.handle();
        let mut subs = Vec::new();
        for round in 0..6 {
            subs.push(publisher.add_str("/a/b").unwrap());
            subs.push(publisher.add_str("//c").unwrap());
            if round % 2 == 0 {
                let victim = subs.remove(0);
                assert!(publisher.remove(victim));
            }
            publisher.publish();
            // Oracle: an engine rebuilt from scratch with the same op
            // sequence must agree with the recycled-and-replayed buffer.
            let snap = handle.load();
            let d = doc("<a><b/><c/></a>");
            let got = snap.matcher().match_document(&d);
            assert_eq!(got.len(), subs.len(), "round {round}");
            assert_eq!(got, subs, "round {round}");
        }
    }

    #[test]
    fn reclaim_falls_back_to_clone_under_pinned_reader() {
        let mut publisher = SnapshotPublisher::new(FilterEngine::default());
        let handle = publisher.handle();
        let a = publisher.add_str("/a/b").unwrap();
        publisher.publish();
        let pinned = handle.load(); // hold epoch 1 across the next publish
        let b = publisher.add_str("//c").unwrap();
        publisher.publish(); // reclaim spin fails → deep clone path
        let d = doc("<a><b/><c/></a>");
        assert_eq!(pinned.matcher().match_document(&d), vec![a]);
        assert_eq!(handle.load().matcher().match_document(&d), vec![a, b]);
        // The cloned write buffer must still be fully functional.
        let c = publisher.add_str("/a").unwrap();
        publisher.publish();
        assert_eq!(handle.load().matcher().match_document(&d), vec![a, b, c]);
    }

    /// The stats-path satellite of PR 8: `SnapshotHandle::epoch()` must
    /// not pin (or even briefly clone) the snapshot, so a poller hammering
    /// it in a tight loop across many publishes never pushes the
    /// publisher into its deep-clone reclaim fallback, and sees a
    /// monotonically nondecreasing epoch sequence.
    #[test]
    fn epoch_polling_does_not_extend_snapshot_lifetime() {
        let mut publisher = SnapshotPublisher::new(FilterEngine::default());
        let handle = publisher.handle();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let poller_handle = handle.clone();
            let stop = &stop;
            let poller = scope.spawn(move || {
                let mut last = 0u64;
                let mut reads = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let e = poller_handle.epoch();
                    assert!(e >= last, "epoch went backwards: {last} -> {e}");
                    last = e;
                    reads += 1;
                }
                (last, reads)
            });
            for _ in 0..200 {
                let s = publisher.add_str("/a/b").unwrap();
                publisher.publish();
                publisher.remove(s);
                publisher.publish();
            }
            stop.store(true, Ordering::Release);
            let (last_seen, reads) = poller.join().expect("poller panicked");
            assert!(reads > 0);
            assert!(last_seen <= publisher.epoch());
        });
        assert_eq!(publisher.epoch(), 400);
        assert_eq!(handle.epoch(), 400);
        assert_eq!(
            publisher.clone_fallbacks(),
            0,
            "an epoch poller must never pin a retired snapshot"
        );
        // The lock-free mirror agrees with the slot itself.
        assert_eq!(handle.load().epoch(), handle.epoch());
    }

    #[test]
    fn steady_state_publish_does_not_rebuild() {
        let mut publisher = SnapshotPublisher::new(FilterEngine::default());
        for _ in 0..20 {
            let s = publisher.add_str("/a/b").unwrap();
            publisher.add_str("//c[@k = \"1\"]").unwrap();
            publisher.remove(s);
            publisher.publish();
        }
        assert_eq!(publisher.engine().full_rebuilds(), 0);
        assert!(publisher.engine().incremental_patches() > 0);
    }
}
