//! The occurrence determination algorithm (paper §4.2.1, Algorithm 1).
//!
//! Stage one produces, for each predicate of an expression, a list of
//! matching occurrence-number pairs. A combination — one pair per predicate
//! — is a true match iff the second occurrence number of each predicate
//! equals the first occurrence number of its successor (the two predicates
//! constrain the *same* tag variable, so equal occurrence numbers identify
//! the same document node). Finding such a combination is a constraint
//! satisfaction problem solved by backtracking; the algorithm stops at the
//! first full combination (the filtering semantic needs one match, not all).

/// One predicate's matching occurrence pairs (stage-one output).
pub type MatchList<'a> = &'a [(u16, u16)];

/// Expressions at most this deep search with stack-allocated state; the
/// (rare) deeper ones fall back to two heap vectors. Matches the paper's
/// workloads, whose expression lengths top out well below 16.
const STACK_LEVELS: usize = 16;

/// Runs Algorithm 1: returns true iff a chained combination exists across
/// the ordered `results` lists.
///
/// Mirrors the paper: an empty list anywhere is an immediate `noMatch`
/// (lines 2–6); otherwise a depth-first search over partial combinations
/// with backtracking, returning `match` on the first complete one.
pub fn determine_match(results: &[MatchList<'_>]) -> bool {
    determine_match_filtered(results, |_, _| true)
}

/// Algorithm 1 driven through a per-level list accessor instead of a
/// pre-collected slice of lists — stage 2 calls this with
/// `|i| ctx.get(preds[i])` so no `Vec<&[(u16, u16)]>` is built per
/// expression per path. Returns false when `n == 0` or any level's list
/// is empty.
pub fn determine_match_by<'a, G>(n: usize, mut get: G) -> bool
where
    G: FnMut(usize) -> &'a [(u16, u16)],
{
    if n == 0 {
        return false;
    }
    // Lines 2–6: any predicate without matches ⇒ noMatch.
    for i in 0..n {
        if get(i).is_empty() {
            return false;
        }
    }
    let mut admit = |_: usize, _: (u16, u16)| true;
    if n <= STACK_LEVELS {
        let mut pos = [0usize; STACK_LEVELS];
        let mut chosen = [(0u16, 0u16); STACK_LEVELS];
        search(n, &mut get, &mut admit, &mut pos, &mut chosen)
    } else {
        let mut pos = vec![0usize; n];
        let mut chosen = vec![(0u16, 0u16); n];
        search(n, &mut get, &mut admit, &mut pos, &mut chosen)
    }
}

/// Algorithm 1 with an extra admissibility test per selected pair.
///
/// `admit(level, pair)` decides whether a candidate pair may be used for
/// the predicate at `level`. The plain algorithm uses `|_, _| true`. The
/// engine's selection-postponed attribute check (paper §5: "the
/// occurrence determination step has to be repeated") is equivalent to
/// this filtered determination; for speed it pre-filters each level's
/// list once and runs [`determine_match`] on the result — admissibility
/// does not depend on the search state, so the two formulations accept
/// exactly the same inputs (covered by tests).
pub fn determine_match_filtered<F>(results: &[MatchList<'_>], mut admit: F) -> bool
where
    F: FnMut(usize, (u16, u16)) -> bool,
{
    let n = results.len();
    if n == 0 {
        return false;
    }
    if results.iter().any(|r| r.is_empty()) {
        return false;
    }
    let mut get = |i: usize| results[i];
    if n <= STACK_LEVELS {
        let mut pos = [0usize; STACK_LEVELS];
        let mut chosen = [(0u16, 0u16); STACK_LEVELS];
        search(n, &mut get, &mut admit, &mut pos, &mut chosen)
    } else {
        let mut pos = vec![0usize; n];
        let mut chosen = vec![(0u16, 0u16); n];
        search(n, &mut get, &mut admit, &mut pos, &mut chosen)
    }
}

/// The backtracking core of Algorithm 1 over caller-provided search state
/// (`pos[i]`: next candidate index at level i; `chosen[i]`: pair currently
/// selected there). Levels must be non-empty — callers check first.
fn search<'a, G, F>(
    n: usize,
    get: &mut G,
    admit: &mut F,
    pos: &mut [usize],
    chosen: &mut [(u16, u16)],
) -> bool
where
    G: FnMut(usize) -> &'a [(u16, u16)],
    F: FnMut(usize, (u16, u16)) -> bool,
{
    let mut level = 0usize;
    pos[0] = 0;
    loop {
        let list = get(level);
        let need = if level == 0 {
            None
        } else {
            Some(chosen[level - 1].1)
        };
        // Advance to the next admissible candidate at this level.
        let mut i = pos[level];
        while i < list.len() {
            let pair = list[i];
            let chains = need.is_none_or(|o| pair.0 == o);
            if chains && admit(level, pair) {
                break;
            }
            i += 1;
        }
        if i < list.len() {
            chosen[level] = list[i];
            pos[level] = i + 1;
            if level == n - 1 {
                return true; // first complete combination found
            }
            level += 1;
            pos[level] = 0;
        } else {
            // Exhausted this level: backtrack (Algorithm 1 lines 18–27).
            if level == 0 {
                return false;
            }
            level -= 1;
        }
    }
}

/// Enumerates every chained combination, invoking `visit` with the full
/// pair sequence. `visit` returns `false` to stop early.
///
/// Used by tests and by the nested-path machinery, which needs all matches
/// rather than the first.
pub fn for_each_combination<F>(results: &[MatchList<'_>], mut visit: F)
where
    F: FnMut(&[(u16, u16)]) -> bool,
{
    let n = results.len();
    if n == 0 || results.iter().any(|r| r.is_empty()) {
        return;
    }
    let mut pos = vec![0usize; n];
    let mut chosen = vec![(0u16, 0u16); n];
    let mut level = 0usize;
    loop {
        let list = results[level];
        let need = if level == 0 {
            None
        } else {
            Some(chosen[level - 1].1)
        };
        let mut i = pos[level];
        while i < list.len() && need.is_some_and(|o| list[i].0 != o) {
            i += 1;
        }
        if i < list.len() {
            chosen[level] = list[i];
            pos[level] = i + 1;
            if level == n - 1 {
                if !visit(&chosen) {
                    return;
                }
                // Stay at this level and try the next candidate.
            } else {
                level += 1;
                pos[level] = 0;
            }
        } else {
            if level == 0 {
                return;
            }
            level -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Example 2 / §4.2.1: a//b/c over (a,b,c,a,b,c) has occurrence
    /// results {(1,1),(1,2),(2,2)} ↦ {(1,1),(2,2)} and a true match exists
    /// — e.g. (1,1),(1,1).
    #[test]
    fn example2_positive() {
        let r1: &[(u16, u16)] = &[(1, 1), (1, 2), (2, 2)];
        let r2: &[(u16, u16)] = &[(1, 1), (2, 2)];
        assert!(determine_match(&[r1, r2]));
    }

    /// Paper Example 2: c//b//a over the same path has results
    /// {(1,2)} ↦ {(1,2)}: the chain 2 ≠ 1 fails, so no match.
    #[test]
    fn example2_negative() {
        let r1: &[(u16, u16)] = &[(1, 2)];
        let r2: &[(u16, u16)] = &[(1, 2)];
        assert!(!determine_match(&[r1, r2]));
    }

    #[test]
    fn empty_list_means_no_match() {
        let r1: &[(u16, u16)] = &[(1, 1)];
        let r2: &[(u16, u16)] = &[];
        assert!(!determine_match(&[r1, r2]));
        assert!(!determine_match(&[]));
    }

    #[test]
    fn single_predicate() {
        let r: &[(u16, u16)] = &[(3, 3)];
        assert!(determine_match(&[r]));
    }

    /// Backtracking: the first choice at level 0 leads to a dead end, a
    /// later one succeeds.
    #[test]
    fn backtracking_explores_alternatives() {
        let r1: &[(u16, u16)] = &[(1, 1), (1, 2)];
        let r2: &[(u16, u16)] = &[(2, 3)];
        let r3: &[(u16, u16)] = &[(3, 1)];
        assert!(determine_match(&[r1, r2, r3]));
    }

    /// Deep backtracking: must retreat more than one level.
    #[test]
    fn multi_level_backtracking() {
        let r1: &[(u16, u16)] = &[(1, 1), (1, 2)];
        let r2: &[(u16, u16)] = &[(1, 5), (2, 3)];
        let r3: &[(u16, u16)] = &[(5, 9)];
        // (1,1)->(1,5)->(5,9) succeeds, but only after trying nothing wrong…
        assert!(determine_match(&[r1, r2, r3]));
        // Make the only consistent prefix fail at the last level.
        let r3b: &[(u16, u16)] = &[(3, 9)];
        // (1,1)->(1,5): 5≠3 dead end; backtrack; (1,2)->(2,3)->(3,9) ✓.
        assert!(determine_match(&[r1, r2, r3b]));
        let r3c: &[(u16, u16)] = &[(4, 9)];
        assert!(!determine_match(&[r1, r2, r3c]));
    }

    #[test]
    fn discontinuous_occurrences_rejected() {
        // (1,1) then (2,3): 1 ≠ 2 — the paper's "discontinuing occurrences".
        let r1: &[(u16, u16)] = &[(1, 1)];
        let r2: &[(u16, u16)] = &[(2, 3)];
        assert!(!determine_match(&[r1, r2]));
    }

    #[test]
    fn filtered_determination_restricts_pairs() {
        let r1: &[(u16, u16)] = &[(1, 1), (2, 2)];
        let r2: &[(u16, u16)] = &[(1, 1), (2, 2)];
        assert!(determine_match_filtered(&[r1, r2], |_, _| true));
        // Only occurrence 2 admitted at every level.
        assert!(determine_match_filtered(&[r1, r2], |_, p| p.0 == 2 && p.1 == 2));
        // Nothing admitted at level 1.
        assert!(!determine_match_filtered(&[r1, r2], |l, _| l == 0));
    }

    #[test]
    fn enumerate_all_combinations() {
        let r1: &[(u16, u16)] = &[(1, 1), (1, 2), (2, 2)];
        let r2: &[(u16, u16)] = &[(1, 1), (2, 2)];
        let mut combos = Vec::new();
        for_each_combination(&[r1, r2], |c| {
            combos.push(c.to_vec());
            true
        });
        assert_eq!(
            combos,
            vec![
                vec![(1, 1), (1, 1)],
                vec![(1, 2), (2, 2)],
                vec![(2, 2), (2, 2)],
            ]
        );
    }

    #[test]
    fn enumeration_early_stop() {
        let r1: &[(u16, u16)] = &[(1, 1), (2, 2)];
        let r2: &[(u16, u16)] = &[(1, 1), (2, 2)];
        let mut count = 0;
        for_each_combination(&[r1, r2], |_| {
            count += 1;
            false
        });
        assert_eq!(count, 1);
    }

    /// The accessor-driven variant must accept exactly the same inputs as
    /// the slice-driven one.
    #[test]
    fn by_accessor_matches_slice_form() {
        let cases: Vec<Vec<Vec<(u16, u16)>>> = vec![
            vec![vec![(1, 1), (1, 2), (2, 2)], vec![(1, 1), (2, 2)]],
            vec![vec![(1, 2)], vec![(1, 2)]],
            vec![vec![(1, 1)], vec![]],
            vec![vec![(3, 3)]],
            vec![vec![(1, 1), (1, 2)], vec![(2, 3)], vec![(3, 1)]],
            vec![],
        ];
        for lists in &cases {
            let slices: Vec<MatchList<'_>> = lists.iter().map(|l| l.as_slice()).collect();
            assert_eq!(
                determine_match_by(slices.len(), |i| slices[i]),
                determine_match(&slices),
                "{lists:?}"
            );
        }
        // Past the stack-allocated level bound: a long chain of singletons.
        let long: Vec<Vec<(u16, u16)>> = (0..20).map(|_| vec![(1, 1)]).collect();
        let slices: Vec<MatchList<'_>> = long.iter().map(|l| l.as_slice()).collect();
        assert!(determine_match_by(slices.len(), |i| slices[i]));
        let mut broken = long.clone();
        broken[10] = vec![(2, 1)];
        let slices: Vec<MatchList<'_>> = broken.iter().map(|l| l.as_slice()).collect();
        assert!(!determine_match_by(slices.len(), |i| slices[i]));
    }

    /// Exhaustive cross-check against a brute-force product on small inputs.
    #[test]
    fn agrees_with_brute_force() {
        fn brute(results: &[MatchList<'_>]) -> bool {
            fn rec(results: &[MatchList<'_>], level: usize, prev: Option<u16>) -> bool {
                if level == results.len() {
                    return true;
                }
                results[level].iter().any(|&(o1, o2)| {
                    prev.is_none_or(|p| p == o1) && rec(results, level + 1, Some(o2))
                })
            }
            !results.is_empty() && rec(results, 0, None)
        }
        // All lists over pairs with occurrences in 1..=2, up to 3 levels.
        let pool: Vec<(u16, u16)> = vec![(1, 1), (1, 2), (2, 1), (2, 2)];
        let mut subsets: Vec<Vec<(u16, u16)>> = Vec::new();
        for mask in 0..16u32 {
            subsets.push(
                pool.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &p)| p)
                    .collect(),
            );
        }
        for a in &subsets {
            for b in &subsets {
                let lists: Vec<MatchList<'_>> = vec![a.as_slice(), b.as_slice()];
                assert_eq!(determine_match(&lists), brute(&lists), "{a:?} {b:?}");
                for c in subsets.iter().step_by(3) {
                    let lists: Vec<MatchList<'_>> = vec![a.as_slice(), b.as_slice(), c.as_slice()];
                    assert_eq!(determine_match(&lists), brute(&lists));
                }
            }
        }
    }
}
