//! Containment covering — the paper's future-work extension (§4.2.2).
//!
//! Prefix covering (implemented in the engine's trie) exploits that a
//! match of `pre1 ↦ … ↦ pren` implies a match of every *prefix*
//! expression. The paper notes the covering relation "also holds, if for
//! two expressions, one constitutes a suffix or a contained expression of
//! the other one" and postpones exploiting it. This module implements that
//! extension: any *contiguous subsequence* of a matched predicate chain is
//! itself matched, because restricting a valid occurrence combination to a
//! sub-chain keeps every pair in its predicate's result list and preserves
//! the chaining equalities.
//!
//! Wait — one subtlety keeps this from being a one-liner: a sub-chain of a
//! *relative-predicate* chain is a valid expression encoding, but chains
//! starting with an absolute predicate cannot appear mid-chain (absolute
//! predicates are always first). The automaton handles arbitrary chains;
//! the engine only ever registers well-formed ones, so matches are sound
//! either way.
//!
//! The implementation is a classic Aho–Corasick automaton whose alphabet
//! is [`PredId`]s: expression chains are the patterns; feeding a matched
//! expression's chain through the automaton reports every registered
//! expression contained in it. [`CoveringIndex::analyze`] quantifies, for
//! a workload, how many covering pairs the extension exposes beyond prefix
//! covering — the number the paper's future work would want to know.

use pxf_predicate::PredId;
use std::collections::{HashMap, VecDeque};

/// Aho–Corasick automaton over predicate chains.
#[derive(Debug)]
pub struct CoveringIndex {
    nodes: Vec<AcNode>,
    patterns: usize,
}

#[derive(Debug, Default)]
struct AcNode {
    goto_: HashMap<PredId, u32>,
    fail: u32,
    /// Dictionary-suffix link: nearest ancestor-via-fail that ends a
    /// pattern (0 = none).
    dict: u32,
    /// Pattern payloads ending exactly here.
    out: Vec<u32>,
}

impl CoveringIndex {
    /// Builds the automaton from expression chains. The payload reported
    /// by [`Self::contained_in`] is the pattern's index in `chains`.
    pub fn build<C: AsRef<[PredId]>>(chains: &[C]) -> CoveringIndex {
        let mut nodes: Vec<AcNode> = vec![AcNode::default()];
        for (pi, chain) in chains.iter().enumerate() {
            let mut cur = 0u32;
            for &pid in chain.as_ref() {
                let next = match nodes[cur as usize].goto_.get(&pid) {
                    Some(&n) => n,
                    None => {
                        let n = nodes.len() as u32;
                        nodes.push(AcNode::default());
                        nodes[cur as usize].goto_.insert(pid, n);
                        n
                    }
                };
                cur = next;
            }
            nodes[cur as usize].out.push(pi as u32);
        }
        // BFS fail links.
        let mut queue: VecDeque<u32> = VecDeque::new();
        let root_children: Vec<u32> = nodes[0].goto_.values().copied().collect();
        for c in root_children {
            nodes[c as usize].fail = 0;
            queue.push_back(c);
        }
        while let Some(u) = queue.pop_front() {
            let transitions: Vec<(PredId, u32)> = nodes[u as usize]
                .goto_
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect();
            for (pid, v) in transitions {
                // fail(v) = longest proper suffix state.
                let mut f = nodes[u as usize].fail;
                let fail_v = loop {
                    if let Some(&n) = nodes[f as usize].goto_.get(&pid) {
                        if n != v {
                            break n;
                        }
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                nodes[v as usize].fail = fail_v;
                nodes[v as usize].dict = if !nodes[fail_v as usize].out.is_empty() {
                    fail_v
                } else {
                    nodes[fail_v as usize].dict
                };
                queue.push_back(v);
            }
        }
        CoveringIndex {
            nodes,
            patterns: chains.len(),
        }
    }

    /// Number of registered patterns.
    pub fn len(&self) -> usize {
        self.patterns
    }

    /// True if no patterns are registered.
    pub fn is_empty(&self) -> bool {
        self.patterns == 0
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }

    /// Reports every pattern contained (as a contiguous subsequence) in
    /// `chain`, via `visit(pattern_index)`. A pattern occurring several
    /// times is reported once per occurrence; callers deduplicate if
    /// needed.
    pub fn contained_in<F: FnMut(u32)>(&self, chain: &[PredId], mut visit: F) {
        let mut state = 0u32;
        for &pid in chain {
            state = loop {
                if let Some(&n) = self.nodes[state as usize].goto_.get(&pid) {
                    break n;
                }
                if state == 0 {
                    break 0;
                }
                state = self.nodes[state as usize].fail;
            };
            // Emit outputs along the dictionary-suffix chain.
            let mut s = state;
            loop {
                for &p in &self.nodes[s as usize].out {
                    visit(p);
                }
                s = self.nodes[s as usize].dict;
                if s == 0 {
                    break;
                }
            }
        }
    }

    /// [`Self::contained_in`] with positions: `visit(pattern_index, end)`
    /// where `end` is the 0-based index in `chain` of the occurrence's
    /// last element, so the occurrence spans
    /// `chain[end + 1 - pattern_len ..= end]`. Callers use the offset to
    /// distinguish prefix occurrences (offset 0) from strictly-contained
    /// ones.
    pub fn contained_in_at<F: FnMut(u32, usize)>(&self, chain: &[PredId], mut visit: F) {
        let mut state = 0u32;
        for (end, &pid) in chain.iter().enumerate() {
            state = loop {
                if let Some(&n) = self.nodes[state as usize].goto_.get(&pid) {
                    break n;
                }
                if state == 0 {
                    break 0;
                }
                state = self.nodes[state as usize].fail;
            };
            let mut s = state;
            loop {
                for &p in &self.nodes[s as usize].out {
                    visit(p, end);
                }
                s = self.nodes[s as usize].dict;
                if s == 0 {
                    break;
                }
            }
        }
    }

    /// Counts covering pairs among the registered chains: for each ordered
    /// pair (i, j), i ≠ j, whether chain i is contained in chain j —
    /// split into prefix pairs (chain i is a prefix of chain j: what the
    /// engine's trie already exploits) and strictly-contained pairs (the
    /// future-work surplus).
    pub fn analyze<C: AsRef<[PredId]>>(chains: &[C]) -> CoveringStats {
        let index = CoveringIndex::build(chains);
        let mut prefix_pairs = 0u64;
        let mut contained_pairs = 0u64;
        let mut seen: Vec<u64> = vec![0; chains.len()];
        for (j, chain) in chains.iter().enumerate() {
            let chain = chain.as_ref();
            let epoch = (j + 1) as u64;
            index.contained_in(chain, |i| {
                let i = i as usize;
                if i == j || seen[i] == epoch {
                    return;
                }
                seen[i] = epoch;
                if chains[i].as_ref().len() <= chain.len()
                    && chains[i].as_ref() == &chain[..chains[i].as_ref().len()]
                {
                    prefix_pairs += 1;
                } else {
                    contained_pairs += 1;
                }
            });
        }
        CoveringStats {
            chains: chains.len(),
            prefix_pairs,
            contained_pairs,
        }
    }
}

/// Result of [`CoveringIndex::analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoveringStats {
    /// Number of chains analyzed.
    pub chains: usize,
    /// Ordered pairs (i, j) where i is a proper prefix-or-equal of j —
    /// already exploited by the engine's prefix-covering trie.
    pub prefix_pairs: u64,
    /// Ordered pairs where i is contained in j but not as a prefix — the
    /// additional covering the future-work extension would unlock.
    pub contained_pairs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(ids: &[u32]) -> Vec<PredId> {
        ids.iter().map(|&i| PredId(i)).collect()
    }

    fn contained(index: &CoveringIndex, c: &[PredId]) -> Vec<u32> {
        let mut out = Vec::new();
        index.contained_in(c, |p| out.push(p));
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn finds_substrings() {
        let chains = vec![
            chain(&[1, 2]),       // 0
            chain(&[2, 3]),       // 1
            chain(&[1, 2, 3, 4]), // 2
            chain(&[3]),          // 3
            chain(&[5]),          // 4
        ];
        let index = CoveringIndex::build(&chains);
        // Everything contained in chain 2.
        assert_eq!(contained(&index, &chains[2]), vec![0, 1, 2, 3]);
        assert_eq!(contained(&index, &chains[0]), vec![0]);
        assert_eq!(contained(&index, &chain(&[9, 9])), Vec::<u32>::new());
    }

    #[test]
    fn overlapping_occurrences() {
        let chains = vec![chain(&[1, 1])];
        let index = CoveringIndex::build(&chains);
        let mut hits = 0;
        index.contained_in(&chain(&[1, 1, 1]), |_| hits += 1);
        assert_eq!(hits, 2); // positions 2 and 3
    }

    #[test]
    fn duplicate_patterns_each_reported() {
        let chains = vec![chain(&[7, 8]), chain(&[7, 8])];
        let index = CoveringIndex::build(&chains);
        assert_eq!(contained(&index, &chain(&[7, 8])), vec![0, 1]);
    }

    #[test]
    fn analyze_splits_prefix_and_contained() {
        let chains = vec![
            chain(&[1, 2, 3]), // 0
            chain(&[1, 2]),    // 1: prefix of 0
            chain(&[2, 3]),    // 2: contained in 0, not prefix
            chain(&[4]),       // 3: unrelated
        ];
        let stats = CoveringIndex::analyze(&chains);
        assert_eq!(stats.chains, 4);
        assert_eq!(stats.prefix_pairs, 1); // (1 ⊑ 0)
        assert_eq!(stats.contained_pairs, 1); // (2 ⊂ 0)
    }

    #[test]
    fn contained_in_at_reports_end_positions() {
        let chains = vec![
            chain(&[1, 2]),    // 0
            chain(&[2, 3]),    // 1
            chain(&[1, 2, 3]), // 2
        ];
        let index = CoveringIndex::build(&chains);
        let mut hits = Vec::new();
        index.contained_in_at(&chains[2], |p, end| hits.push((p, end)));
        hits.sort_unstable();
        // Pattern 0 ends at index 1 (offset 0: a prefix), pattern 1 ends
        // at index 2 (offset 1: strictly contained), pattern 2 is the
        // probe itself.
        assert_eq!(hits, vec![(0, 1), (1, 2), (2, 2)]);
        // Offsets reconstruct via end + 1 - len.
        for &(p, end) in &hits {
            let len = chains[p as usize].len();
            let offset = end + 1 - len;
            assert_eq!(
                &chains[2][offset..=end],
                chains[p as usize].as_slice(),
                "pattern {p}"
            );
        }
    }

    /// Brute-force cross-check on random chains.
    #[test]
    fn agrees_with_brute_force() {
        // Deterministic pseudo-random chains over a tiny alphabet.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let chains: Vec<Vec<PredId>> = (0..40)
            .map(|_| {
                let len = 1 + (rand() % 5) as usize;
                (0..len).map(|_| PredId((rand() % 4) as u32)).collect()
            })
            .collect();
        let index = CoveringIndex::build(&chains);
        for probe in &chains {
            let got = contained(&index, probe);
            let expected: Vec<u32> = chains
                .iter()
                .enumerate()
                .filter(|(_, c)| probe.windows(c.len()).any(|w| w == c.as_slice()))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, expected, "probe {probe:?}");
        }
    }

    /// Soundness at the matching level: if a chain matches a path, every
    /// contained sub-chain matches too (restriction of a valid
    /// combination).
    #[test]
    fn containment_is_sound_for_matching() {
        use crate::encode::{encode_single_path, AttrMode};
        use crate::occurrence::determine_match;
        use pxf_predicate::{MatchContext, PredicateIndex, Publication};
        use pxf_xml::Interner;

        let mut interner = Interner::new();
        let mut index = PredicateIndex::new();
        let exprs = ["a/b/c/d", "b/c", "c/d", "a/b", "b/c/d"];
        let chains: Vec<Vec<PredId>> = exprs
            .iter()
            .map(|src| {
                let e = pxf_xpath::parse(src).unwrap();
                encode_single_path(&e, &mut interner, AttrMode::Postponed)
                    .unwrap()
                    .preds
                    .iter()
                    .map(|p| index.insert(p.clone()))
                    .collect()
            })
            .collect();
        let publication = Publication::from_tags(&["x", "a", "b", "c", "d"], &mut interner);
        let mut ctx = MatchContext::new();
        index.evaluate(&publication, None::<&pxf_xml::Document>, &mut ctx);
        // The long chain matches…
        let lists: Vec<&[(u16, u16)]> = chains[0].iter().map(|&p| ctx.get(p)).collect();
        assert!(determine_match(&lists));
        // …so every chain the automaton reports as contained must match.
        let ac = CoveringIndex::build(&chains);
        let mut covered = Vec::new();
        ac.contained_in(&chains[0], |p| covered.push(p));
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered, vec![0, 1, 2, 3, 4]);
        for &ci in &covered {
            let lists: Vec<&[(u16, u16)]> =
                chains[ci as usize].iter().map(|&p| ctx.get(p)).collect();
            assert!(determine_match(&lists), "{}", exprs[ci as usize]);
        }
    }
}
