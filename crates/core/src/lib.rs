//! Predicate-based XPath filtering engine — the core contribution of
//! *Predicate-based Filtering of XPath Expressions* (Hou & Jacobsen).
//!
//! The engine solves the XML/XPath *filtering problem*: given a large set
//! of XPath expressions (subscriptions) and a stream of XML documents,
//! determine for each document the set of matching expressions. XPEs are
//! encoded as ordered sets of position predicates ([`encode`]), documents
//! as sets of (attribute, value) tuples, and matching runs in two stages —
//! predicate matching over a shared, deduplicated predicate index, followed
//! by per-expression occurrence determination ([`occurrence`]).
//!
//! # Quick start
//!
//! ```
//! use pxf_core::{Algorithm, AttrMode, FilterEngine};
//! use pxf_xml::Document;
//!
//! let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
//! let sports = engine.add_str("/news//article[@category = \"sports\"]").unwrap();
//! let politics = engine.add_str("/news//article[@category = \"politics\"]/headline").unwrap();
//!
//! let doc = Document::parse(
//!     br#"<news><article category="sports"><headline/></article></news>"#,
//! ).unwrap();
//! assert_eq!(engine.match_document(&doc), vec![sports]);
//! let _ = politics;
//! ```
//!
//! The three expression organizations of the paper (§4.2.2) are selected
//! with [`Algorithm`]: `Basic`, `PrefixCovering` (basic-pc), and
//! `AccessPredicate` (basic-pc-ap). Attribute filters run [`AttrMode::Inline`]
//! or [`AttrMode::Postponed`] (§5). Nested path filters (tree patterns) are
//! decomposed and combined per §5 ([`nested`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod covering;
pub mod encode;
mod engine;
pub mod nested;
pub mod occurrence;
pub mod parallel;
mod program;
pub mod reference;
pub mod sharded;
pub mod snapshot;

pub use backend::{BackendError, FilterBackend};
pub use encode::{AttrMode, EncodeError, EncodedPath};
pub use engine::{
    AddError, Algorithm, CompileOptions, EngineStats, FilterEngine, MatchScratch, Matcher, Stage1,
    Stage2, SubId, SubsetStats,
};
pub use parallel::{
    BatchMatcher, BatchReport, BatchScratch, ByteFilterResult, DocError, DocFilterResult,
    MatcherSource,
};
pub use sharded::{
    ShardedEngine, ShardedHandle, ShardedMatcher, ShardedPublisher, ShardedSnapshot,
    ShardedSnapshotMatcher,
};
pub use snapshot::{ChurnOp, EngineSnapshot, SnapshotHandle, SnapshotPublisher};
