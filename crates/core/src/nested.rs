//! Nested path expressions (paper §5): decomposition and combination.
//!
//! A nested path filter turns an XPE into a tree pattern. Following the
//! paper (and the query-decomposition lineage of XFilter/XTrie), the
//! expression is decomposed into a *main* sub-expression plus *extended*
//! sub-expressions — the main prefix up to the branching step with the
//! nested path appended — each annotated with the branch position
//! (the paper's `(pos, =, v)` predicate). Every sub-expression is a
//! single-path XPE evaluated by the ordinary predicate machinery; the
//! combination stage then checks, bottom-up over the decomposition tree,
//! that matching document paths agree on the identity of the branch node.
//!
//! The paper identifies branch nodes by comparing *structure tuples*
//! (`m_k` = child index of the k-th element, Fig. 4) up to the branch
//! position; two root-anchored paths of the same document share their first
//! `d` nodes iff their structure tuples agree on the first `d` entries, iff
//! their `d`-th node ids coincide. We use node ids directly — the same
//! comparison, O(1) instead of O(d).

use crate::reference::{match_positions, DocPathView};
use pxf_xml::{DocAccess, NodeId};
use pxf_xpath::{Axis, Step, StepFilter, XPathExpr};
use std::collections::HashSet;

/// One sub-expression of a decomposed tree pattern.
#[derive(Debug, Clone)]
pub struct Component {
    /// The single-path sub-expression (attribute filters retained, nested
    /// path filters stripped).
    pub expr: XPathExpr,
    /// Parent component in the decomposition tree (`None` for the main
    /// sub-expression).
    pub parent: Option<u32>,
    /// 0-based index *in this component's expression* of the step bound to
    /// the branch node shared with the parent.
    pub anchor_step: usize,
    /// 0-based index *in the parent's expression* of the branching step —
    /// the paper's `(pos, =, v)` annotation (v = index + 1).
    pub parent_branch_step: usize,
}

/// The decomposition of a nested path expression (paper Fig. 3).
#[derive(Debug, Clone)]
pub struct NestedPlan {
    /// Components in pre-order: a parent always precedes its children.
    pub components: Vec<Component>,
}

impl NestedPlan {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Always at least one component.
    pub fn is_empty(&self) -> bool {
        false
    }
}

fn strip_path_filters(step: &Step) -> Step {
    Step {
        axis: step.axis,
        test: step.test.clone(),
        filters: step
            .filters
            .iter()
            .filter(|f| matches!(f, StepFilter::Attribute(_)))
            .cloned()
            .collect(),
    }
}

/// Decomposes a (possibly nested) expression into its component
/// sub-expressions.
pub fn decompose(expr: &XPathExpr) -> NestedPlan {
    let mut components = Vec::new();
    decompose_into(expr, None, 0, 0, &mut components);
    NestedPlan { components }
}

fn decompose_into(
    expr: &XPathExpr,
    parent: Option<u32>,
    anchor_step: usize,
    parent_branch_step: usize,
    out: &mut Vec<Component>,
) {
    let my_idx = out.len() as u32;
    let main = XPathExpr {
        absolute: expr.absolute,
        steps: expr.steps.iter().map(strip_path_filters).collect(),
    };
    out.push(Component {
        expr: main,
        parent,
        anchor_step,
        parent_branch_step,
    });
    for (i, step) in expr.steps.iter().enumerate() {
        for nested in step.path_filters() {
            // Extended sub-expression: the prefix up to the branching step
            // (path filters stripped) with the nested path appended. The
            // appended steps keep their own filters so that deeper nesting
            // decomposes recursively.
            let mut steps: Vec<Step> = expr.steps[..=i].iter().map(strip_path_filters).collect();
            steps.extend(nested.steps.iter().cloned());
            let child = XPathExpr {
                absolute: expr.absolute,
                steps,
            };
            decompose_into(&child, Some(my_idx), i, i, out);
        }
    }
}

/// Combines per-component path-match results into a verdict for the whole
/// tree pattern.
///
/// `comp_paths[c]` lists the indices (into `paths`) of the document paths
/// on which component `c` structurally matched (as pre-filtered by the
/// predicate engine). The combination re-derives exact step positions with
/// [`match_positions`] (which also applies attribute filters) and checks
/// branch-node agreement bottom-up.
pub fn combine<D: DocAccess>(
    plan: &NestedPlan,
    doc: &D,
    paths: &[Vec<NodeId>],
    comp_paths: &[Vec<u32>],
) -> bool {
    debug_assert_eq!(plan.components.len(), comp_paths.len());
    let k = plan.components.len();
    // anchors[c] = document nodes that can serve as component c's branch
    // node with all of c's own children satisfied.
    let mut anchors: Vec<HashSet<NodeId>> = vec![HashSet::new(); k];
    // children grouped by parent.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (ci, comp) in plan.components.iter().enumerate() {
        if let Some(p) = comp.parent {
            children[p as usize].push(ci);
        }
    }
    // Components are in pre-order, so reverse order is bottom-up.
    for ci in (0..k).rev() {
        let comp = &plan.components[ci];
        let is_root = comp.parent.is_none();
        let mut root_ok = false;
        for &pi in &comp_paths[ci] {
            let path = &paths[pi as usize];
            let view = DocPathView { doc, nodes: path };
            let Some(positions) = match_positions(&comp.expr, &view) else {
                continue; // structural pre-filter passed but attributes failed
            };
            let axes: Vec<Axis> = comp.expr.steps.iter().map(|s| s.axis).collect();
            let mut new_anchors: Vec<NodeId> = Vec::new();
            let found_root = for_each_assignment(
                &positions,
                &axes,
                &mut |assign| {
                    for &ch in &children[ci] {
                        let branch = plan.components[ch].parent_branch_step;
                        let node = path[assign[branch] - 1];
                        if !anchors[ch].contains(&node) {
                            return AssignOutcome::Reject;
                        }
                    }
                    if is_root {
                        AssignOutcome::AcceptStop
                    } else {
                        AssignOutcome::AcceptContinue
                    }
                },
                |assign| {
                    if !is_root {
                        new_anchors.push(path[assign[comp.anchor_step] - 1]);
                    }
                },
            );
            anchors[ci].extend(new_anchors);
            if found_root {
                root_ok = true;
                break;
            }
        }
        if is_root {
            return root_ok;
        }
        if anchors[ci].is_empty() {
            return false; // a required branch can never be satisfied
        }
    }
    unreachable!("component 0 is always the root")
}

enum AssignOutcome {
    Reject,
    AcceptContinue,
    AcceptStop,
}

/// Enumerates all step→position assignments consistent with the per-step
/// position sets and axis constraints. Calls `check` for each complete
/// assignment; on acceptance calls `on_accept`; returns true if an
/// `AcceptStop` occurred.
fn for_each_assignment(
    positions: &[Vec<usize>],
    axes: &[Axis],
    check: &mut dyn FnMut(&[usize]) -> AssignOutcome,
    on_accept: impl FnMut(&[usize]),
) -> bool {
    let n = positions.len();
    let mut assign = vec![0usize; n];
    fn rec(
        positions: &[Vec<usize>],
        axes: &[Axis],
        assign: &mut Vec<usize>,
        level: usize,
        check: &mut dyn FnMut(&[usize]) -> AssignOutcome,
        on_accept: &mut dyn FnMut(&[usize]),
    ) -> bool {
        let n = positions.len();
        for &pos in &positions[level] {
            if level > 0 {
                let prev = assign[level - 1];
                let ok = match axes[level] {
                    Axis::Child => pos == prev + 1,
                    Axis::Descendant => pos > prev,
                };
                if !ok {
                    continue;
                }
            }
            assign[level] = pos;
            if level + 1 == n {
                match check(assign) {
                    AssignOutcome::Reject => {}
                    AssignOutcome::AcceptContinue => on_accept(assign),
                    AssignOutcome::AcceptStop => {
                        on_accept(assign);
                        return true;
                    }
                }
            } else if rec(positions, axes, assign, level + 1, check, on_accept) {
                return true;
            }
        }
        false
    }
    if n == 0 {
        return false;
    }
    let mut on_accept_dyn = on_accept;
    rec(positions, axes, &mut assign, 0, check, &mut on_accept_dyn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::matches_document;
    use pxf_xml::Document;
    use pxf_xpath::parse;

    fn comp_strs(plan: &NestedPlan) -> Vec<String> {
        plan.components.iter().map(|c| c.expr.to_string()).collect()
    }

    /// Paper Fig. 3: /a[*/c[d]/e]//c[d]/e decomposes into four
    /// sub-expressions.
    #[test]
    fn paper_decomposition_example() {
        let expr = parse("/a[*/c[d]/e]//c[d]/e").unwrap();
        let plan = decompose(&expr);
        assert_eq!(
            comp_strs(&plan),
            vec!["/a//c/e", "/a/*/c/e", "/a/*/c/d", "/a//c/d"]
        );
        // Main has no parent; /a/*/c/e branches from main at step 0 (tag a);
        // /a/*/c/d branches from /a/*/c/e at step 2 (the c); /a//c/d
        // branches from main at step 1 (the paper's (pos, =, 2)).
        assert_eq!(plan.components[0].parent, None);
        assert_eq!(plan.components[1].parent, Some(0));
        assert_eq!(plan.components[1].parent_branch_step, 0);
        assert_eq!(plan.components[2].parent, Some(1));
        assert_eq!(plan.components[2].parent_branch_step, 2);
        assert_eq!(plan.components[3].parent, Some(0));
        assert_eq!(plan.components[3].parent_branch_step, 1);
    }

    #[test]
    fn decomposition_keeps_attr_filters() {
        let expr = parse("/a[@x = 1][b/c]/d").unwrap();
        let plan = decompose(&expr);
        assert_eq!(comp_strs(&plan), vec!["/a[@x = 1]/d", "/a[@x = 1]/b/c"]);
    }

    fn full_match(src: &str, xml: &str) -> bool {
        // End-to-end through decompose + combine, using the reference DP as
        // the per-component structural matcher (standing in for the
        // predicate engine pre-filter, which only ever removes paths that
        // the DP would reject anyway).
        let expr = parse(src).unwrap();
        let doc = Document::parse(xml.as_bytes()).unwrap();
        let plan = decompose(&expr);
        let paths = doc.leaf_paths();
        let comp_paths: Vec<Vec<u32>> = plan
            .components
            .iter()
            .map(|c| {
                let skeleton = c.expr.structural_skeleton();
                paths
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        crate::reference::matches_path(
                            &skeleton,
                            &DocPathView {
                                doc: &doc,
                                nodes: p,
                            },
                        )
                    })
                    .map(|(i, _)| i as u32)
                    .collect()
            })
            .collect();
        combine(&plan, &doc, &paths, &comp_paths)
    }

    #[test]
    fn combine_agrees_with_reference_oracle() {
        let cases = [
            ("/a[b]/c", "<a><b/><c/></a>", true),
            ("/a[b]/c", "<a><c/></a>", false),
            ("/a[b]/c", "<a><b/></a>", false),
            // Both filters must bind the SAME a node.
            ("//a[b][c]", "<r><a><b/></a><a><c/></a></r>", false),
            ("//a[b][c]", "<r><a><b/><c/></a></r>", true),
            // Deep nesting.
            ("/a[b[c]]", "<a><b><c/></b></a>", true),
            ("/a[b[c]]", "<a><b/><x><c/></x></a>", false),
            // The filter step may coincide with the main continuation tag.
            ("/a[b]/b", "<a><b/></a>", true),
            // Paper running example.
            (
                "/a[*/c[d]/e]//c[d]/e",
                "<a><x><c><d/><e/></c></x><y><c><d/><e/></c></y></a>",
                true,
            ),
            ("/a[*/c[d]/e]//c[d]/e", "<a><y><c><e/></c></y></a>", false),
            // Branch below a descendant step: anchor depth varies.
            ("//c[d]/e", "<r><q><c><d/><e/></c></q></r>", true),
            ("//c[d]/e", "<r><q><c><e/></c><c><d/></c></q></r>", false),
        ];
        for (src, xml, expected) in cases {
            assert_eq!(full_match(src, xml), expected, "{src} over {xml}");
            // Cross-check the expectation against the tree oracle itself.
            let expr = parse(src).unwrap();
            let doc = Document::parse(xml.as_bytes()).unwrap();
            assert_eq!(
                matches_document(&expr, &doc),
                expected,
                "oracle {src} over {xml}"
            );
        }
    }

    #[test]
    fn combine_with_attr_filters_in_branches() {
        assert!(full_match("/a[b[@x = 1]]/c", r#"<a><b x="1"/><c/></a>"#));
        assert!(!full_match("/a[b[@x = 1]]/c", r#"<a><b x="2"/><c/></a>"#));
    }
}

#[cfg(test)]
mod structure_tuple_tests {
    use pxf_xml::Document;

    /// DESIGN.md claims node-id equality at depth d is equivalent to the
    /// paper's structure-tuple prefix comparison (Fig. 4). Verify on a
    /// bushy document: for every pair of root-to-leaf paths and depth d,
    /// `path_a[d] == path_b[d]` iff their child-index tuples agree on the
    /// first d+1 entries.
    #[test]
    fn node_identity_equals_structure_tuple_prefix() {
        let doc =
            Document::parse(b"<a><b><c/><c/><d><c/></d></b><b><c/><d/></b><e><b><c/></b></e></a>")
                .unwrap();
        let paths = doc.leaf_paths();
        let tuple = |p: &[pxf_xml::NodeId]| -> Vec<u32> {
            p.iter().map(|&n| doc.node(n).child_index).collect()
        };
        for a in &paths {
            for b in &paths {
                let ta = tuple(a);
                let tb = tuple(b);
                for d in 0..a.len().min(b.len()) {
                    let same_node = a[d] == b[d];
                    let same_prefix = ta[..=d] == tb[..=d];
                    assert_eq!(same_node, same_prefix, "paths {a:?} vs {b:?} at depth {d}");
                }
            }
        }
    }
}
