//! Expression-index sharding: one document fanned out to independent
//! sub-engines.
//!
//! [`parallel`](crate::parallel) parallelizes across *documents* — each
//! worker owns a matcher over one shared subscription base. This module
//! adds the orthogonal axis: the subscription base itself is split
//! round-robin into `n` independent [`FilterEngine`] shards, a document is
//! matched against every shard, and the per-shard match sets are merged.
//! Each shard's index is a fraction of the whole, so its hot structures
//! (trie arena, posting slabs, predicate columns) fit lower cache tiers —
//! the compact-layout refactor's data-parallel complement, and the unit of
//! distribution a broker deployment would place on separate cores or
//! machines.
//!
//! Round-robin placement keeps the mapping arithmetic-only: global
//! subscription id `g` lives on shard `g % n` as local id `g / n`, so
//! local result lists (ascending) map back with `g = local · n + shard`
//! and merge in one k-way pass — no translation tables. A
//! [`ShardedEngine`] implements [`FilterBackend`] unchanged, and
//! [`ShardedEngine::matcher`] yields per-thread handles so the document
//! axis composes with this one.

use crate::backend::{BackendError, FilterBackend};
use crate::encode::AttrMode;
use crate::engine::{Algorithm, EngineStats, FilterEngine, MatchScratch, Stage1, Stage2, SubId};
use crate::parallel::{BatchMatcher, MatcherSource};
use crate::snapshot::{EngineSnapshot, SnapshotPublisher};
use pxf_xml::{DocAccess, Document, ParserLimits, PathDoc, XmlError};
use pxf_xpath::XPathExpr;
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Per-shard scratch plus the merge state for one matching context (the
/// engine's own `&mut self` API or one [`ShardedMatcher`]).
#[derive(Debug, Default)]
struct ShardScratch {
    per_shard: Vec<MatchScratch>,
    /// Cumulative slowest-minus-fastest shard time per document.
    imbalance_ns: u64,
    /// Reused k-way merge cursors (one per shard).
    cursors: Vec<usize>,
    /// Reused per-shard local result lists.
    locals: Vec<Vec<SubId>>,
}

impl ShardScratch {
    fn with_shards(n: usize) -> Self {
        ShardScratch {
            per_shard: (0..n).map(|_| MatchScratch::new()).collect(),
            imbalance_ns: 0,
            cursors: vec![0; n],
            locals: (0..n).map(|_| Vec::new()).collect(),
        }
    }
}

/// An expression-sharded filtering engine: subscriptions are distributed
/// round-robin over `n` independent [`FilterEngine`]s and every document
/// is matched against all of them, with the per-shard results merged into
/// one ascending id list. Behaves exactly like a single engine through
/// [`FilterBackend`].
///
/// ```
/// use pxf_core::{Algorithm, AttrMode, ShardedEngine};
/// use pxf_xml::Document;
///
/// let mut engine = ShardedEngine::new(4, Algorithm::AccessPredicate, AttrMode::Inline);
/// let a = engine.add_str("/a/b").unwrap();
/// let c = engine.add_str("//c").unwrap();
/// engine.prepare();
/// let doc = Document::parse(b"<a><b><c/></b></a>").unwrap();
/// assert_eq!(engine.match_document(&doc), vec![a, c]);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<FilterEngine>,
    n_subs: u32,
    scratch: ShardScratch,
    limits: ParserLimits,
}

impl ShardedEngine {
    /// Creates an engine with `n_shards` sub-engines (at least 1; a count
    /// of 0 is promoted to 1) running the given algorithm and attribute
    /// mode.
    pub fn new(n_shards: usize, algorithm: Algorithm, attr_mode: AttrMode) -> Self {
        let n = n_shards.max(1);
        ShardedEngine {
            shards: (0..n)
                .map(|_| FilterEngine::new(algorithm, attr_mode))
                .collect(),
            n_subs: 0,
            scratch: ShardScratch::with_shards(n),
            limits: ParserLimits::default(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the shard engines (diagnostics, footprint reports).
    pub fn shards(&self) -> &[FilterEngine] {
        &self.shards
    }

    /// Selects the stage-1 evaluation mode on every shard.
    pub fn set_stage1(&mut self, stage1: Stage1) {
        for s in &mut self.shards {
            s.set_stage1(stage1);
        }
    }

    /// Selects the stage-2 strategy on every shard.
    pub fn set_stage2(&mut self, stage2: Stage2) {
        for s in &mut self.shards {
            s.set_stage2(stage2);
        }
    }

    /// Registered subscriptions (across all shards).
    pub fn len(&self) -> usize {
        self.n_subs as usize
    }

    /// True if no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.n_subs == 0
    }

    /// Registers an expression on the next shard in round-robin order and
    /// returns its global subscription id.
    pub fn add(&mut self, expr: &XPathExpr) -> Result<SubId, BackendError> {
        let n = self.shards.len() as u32;
        let shard = (self.n_subs % n) as usize;
        let local = FilterBackend::add(&mut self.shards[shard], expr)?;
        // Round-robin invariant: shard `s` holds globals s, s+n, s+2n, …
        // in registration order, so the local id the shard just assigned
        // must be exactly global / n.
        debug_assert_eq!(local.0, self.n_subs / n);
        let global = SubId(self.n_subs);
        self.n_subs += 1;
        Ok(global)
    }

    /// Parses and registers an expression (convenience).
    pub fn add_str(&mut self, src: &str) -> Result<SubId, BackendError> {
        let expr = pxf_xpath::parse(src).map_err(|e| BackendError(e.to_string()))?;
        self.add(&expr)
    }

    /// Unregisters a subscription by global id, routing to the shard the
    /// round-robin placement assigned it to (`g % n`, local id `g / n`).
    /// Returns whether the shard held a live subscription under that id.
    pub fn remove(&mut self, sub: SubId) -> bool {
        let n = self.shards.len() as u32;
        let shard = (sub.0 % n) as usize;
        self.shards[shard].remove(SubId(sub.0 / n))
    }

    /// Finishes construction on every shard.
    pub fn prepare(&mut self) {
        for s in &mut self.shards {
            s.prepare();
        }
    }

    /// Filters a parsed document: global ids of all matching
    /// subscriptions, ascending. Prepares implicitly, like the
    /// single-engine `&mut self` entry points.
    pub fn match_document<D: DocAccess>(&mut self, doc: &D) -> Vec<SubId> {
        self.prepare();
        let shards = &self.shards;
        Self::match_with(shards, doc, &mut self.scratch)
    }

    /// Parses and filters raw bytes: one parse into the flat path store,
    /// then every shard matches against the same parsed document.
    pub fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        self.prepare();
        let doc = PathDoc::parse_with_limits(bytes, self.limits)?;
        Ok(Self::match_with(&self.shards, &doc, &mut self.scratch))
    }

    /// Per-document resource budget for the byte entry points (shared by
    /// every matcher created afterwards).
    pub fn set_parser_limits(&mut self, limits: ParserLimits) {
        self.limits = limits;
        for s in &mut self.shards {
            s.set_parser_limits(limits);
        }
    }

    /// Creates an independent matching handle over the shared shards (one
    /// per thread); requires [`Self::prepare`].
    pub fn matcher(&self) -> ShardedMatcher<'_> {
        ShardedMatcher {
            engine: self,
            scratch: ShardScratch::with_shards(self.shards.len()),
        }
    }

    /// Merged statistics of the internal (`&mut self`) matching API:
    /// per-shard stage times and counters summed, `docs` counted once per
    /// document, and the shard-imbalance counter filled in. Maintenance
    /// counters (incremental patches, full rebuilds) live on the shard
    /// engines, not in matching scratch, and are summed in here.
    pub fn stats(&self) -> EngineStats {
        let mut out = merged_stats(&self.scratch);
        for s in &self.shards {
            out.incremental_patches += s.incremental_patches();
            out.full_rebuilds += s.full_rebuilds();
        }
        out
    }

    /// Resets the internal matching API's statistics.
    pub fn reset_stats(&mut self) {
        for s in &mut self.scratch.per_shard {
            *s = MatchScratch::new();
        }
        self.scratch.imbalance_ns = 0;
    }

    /// Distinct predicates summed over the shards. Sharding trades some
    /// cross-shard predicate sharing for smaller per-shard indexes, so
    /// this is ≥ the unsharded count for the same subscriptions.
    pub fn distinct_predicates(&self) -> usize {
        self.shards.iter().map(|s| s.distinct_predicates()).sum()
    }

    /// Approximate index footprint in bytes, summed over the shards.
    pub fn index_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.index_bytes()).sum()
    }

    /// Matches `doc` against every shard and merges the local result
    /// lists. The shards are borrowed immutably (directly or through
    /// snapshot `Arc`s), so any number of scratches can run concurrently.
    fn match_with<S: AsRef<FilterEngine>, D: DocAccess>(
        shards: &[S],
        doc: &D,
        scratch: &mut ShardScratch,
    ) -> Vec<SubId> {
        let n = shards.len() as u32;
        let mut fastest = u64::MAX;
        let mut slowest = 0u64;
        for (s, shard) in shards.iter().enumerate() {
            let t0 = Instant::now();
            let local = shard
                .as_ref()
                .match_document_with(doc, &mut scratch.per_shard[s]);
            let dt = t0.elapsed().as_nanos() as u64;
            fastest = fastest.min(dt);
            slowest = slowest.max(dt);
            scratch.locals[s] = local;
        }
        scratch.imbalance_ns += slowest - fastest;

        // K-way merge: each local list is ascending and `g = local·n + s`
        // is strictly monotone per shard, so repeatedly taking the
        // smallest head yields the ascending global list.
        scratch.cursors.fill(0);
        let total: usize = scratch.locals.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (s, local) in scratch.locals.iter().enumerate() {
                if let Some(&SubId(l)) = local.get(scratch.cursors[s]) {
                    let g = l * n + s as u32;
                    if best.is_none_or(|(bg, _)| g < bg) {
                        best = Some((g, s));
                    }
                }
            }
            let Some((g, s)) = best else { break };
            scratch.cursors[s] += 1;
            out.push(SubId(g));
        }
        for local in &mut scratch.locals {
            local.clear();
        }
        out
    }
}

impl Default for ShardedEngine {
    /// Two shards of the paper's default configuration.
    fn default() -> Self {
        ShardedEngine::new(2, Algorithm::AccessPredicate, AttrMode::Inline)
    }
}

/// Merges per-shard scratch statistics: stage times and counters are
/// summed, `docs` is taken from the first shard (every shard sees every
/// document), and the accumulated imbalance is reported.
fn merged_stats(scratch: &ShardScratch) -> EngineStats {
    let mut out = EngineStats::default();
    for (i, s) in scratch.per_shard.iter().enumerate() {
        let st = s.stats();
        if i == 0 {
            out.docs = st.docs;
        }
        out.predicate_ns += st.predicate_ns;
        out.expression_ns += st.expression_ns;
        out.other_ns += st.other_ns;
        out.occurrence_runs += st.occurrence_runs;
        out.pc_propagations += st.pc_propagations;
        out.stage2_candidates += st.stage2_candidates;
        out.posting_bumps += st.posting_bumps;
        out.ap_root_probes += st.ap_root_probes;
        out.memo_path_skips += st.memo_path_skips;
        out.matches += st.matches;
    }
    out.shard_imbalance_ns = scratch.imbalance_ns;
    out
}

/// A per-thread matching handle over a shared [`ShardedEngine`]: holds
/// its own per-shard scratch so the document axis
/// ([`parallel`](crate::parallel)) composes with expression sharding.
#[derive(Debug)]
pub struct ShardedMatcher<'e> {
    engine: &'e ShardedEngine,
    scratch: ShardScratch,
}

impl ShardedMatcher<'_> {
    /// Filters a document: global ids of all matching subscriptions,
    /// ascending.
    pub fn match_document<D: DocAccess>(&mut self, doc: &D) -> Vec<SubId> {
        ShardedEngine::match_with(&self.engine.shards, doc, &mut self.scratch)
    }

    /// Parses and filters raw bytes (one parse, all shards).
    pub fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        let doc = PathDoc::parse_with_limits(bytes, self.engine.limits)?;
        Ok(ShardedEngine::match_with(
            &self.engine.shards,
            &doc,
            &mut self.scratch,
        ))
    }

    /// Merged statistics accumulated by this matcher (maintenance
    /// counters come from the shared engine's shards).
    pub fn stats(&self) -> EngineStats {
        let mut out = merged_stats(&self.scratch);
        for s in &self.engine.shards {
            out.incremental_patches += s.incremental_patches();
            out.full_rebuilds += s.full_rebuilds();
        }
        out
    }
}

/// An immutable published view of a sharded subscription base: one
/// [`EngineSnapshot`] per shard, frozen together at a publication epoch.
#[derive(Debug)]
pub struct ShardedSnapshot {
    shards: Vec<Arc<EngineSnapshot>>,
    epoch: u64,
    limits: ParserLimits,
}

impl ShardedSnapshot {
    /// The publication epoch this composite snapshot was created at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-shard snapshots (diagnostics, footprint reports).
    pub fn shards(&self) -> &[Arc<EngineSnapshot>] {
        &self.shards
    }

    /// Creates an independent matching handle over this snapshot.
    pub fn matcher(&self) -> ShardedSnapshotMatcher<'_> {
        ShardedSnapshotMatcher {
            shards: &self.shards,
            limits: self.limits,
            scratch: ShardScratch::with_shards(self.shards.len()),
        }
    }
}

/// A per-thread matching handle over a [`ShardedSnapshot`].
#[derive(Debug)]
pub struct ShardedSnapshotMatcher<'e> {
    shards: &'e [Arc<EngineSnapshot>],
    limits: ParserLimits,
    scratch: ShardScratch,
}

impl ShardedSnapshotMatcher<'_> {
    /// Filters a document: global ids of all matching subscriptions,
    /// ascending.
    pub fn match_document<D: DocAccess>(&mut self, doc: &D) -> Vec<SubId> {
        ShardedEngine::match_with(self.shards, doc, &mut self.scratch)
    }

    /// Parses and filters raw bytes (one parse, all shards).
    pub fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        let doc = PathDoc::parse_with_limits(bytes, self.limits)?;
        Ok(ShardedEngine::match_with(
            self.shards,
            &doc,
            &mut self.scratch,
        ))
    }
}

impl BatchMatcher for ShardedSnapshotMatcher<'_> {
    fn match_document(&mut self, doc: &Document) -> Vec<SubId> {
        ShardedSnapshotMatcher::match_document(self, doc)
    }
    fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        ShardedSnapshotMatcher::match_bytes(self, bytes)
    }
}

impl MatcherSource for ShardedSnapshot {
    type Matcher<'a> = ShardedSnapshotMatcher<'a>;
    fn matcher(&self) -> ShardedSnapshotMatcher<'_> {
        ShardedSnapshot::matcher(self)
    }
}

/// A cloneable reader handle onto a [`ShardedPublisher`]'s snapshot slot.
#[derive(Debug, Clone)]
pub struct ShardedHandle {
    shared: Arc<RwLock<Arc<ShardedSnapshot>>>,
}

impl ShardedHandle {
    /// Pins the currently published composite snapshot.
    pub fn load(&self) -> Arc<ShardedSnapshot> {
        self.shared
            .read()
            .expect("sharded snapshot slot poisoned")
            .clone()
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.load().epoch
    }
}

/// The single-writer side of an expression-sharded subscription base:
/// churn routes to per-shard [`SnapshotPublisher`]s and every
/// [`Self::publish`] swaps in a composite [`ShardedSnapshot`] — the
/// per-shard snapshot swap of the deployment where shards live on
/// separate cores.
#[derive(Debug)]
pub struct ShardedPublisher {
    publishers: Vec<SnapshotPublisher>,
    n_subs: u32,
    shared: Arc<RwLock<Arc<ShardedSnapshot>>>,
    epoch: u64,
    limits: ParserLimits,
}

impl ShardedPublisher {
    /// Takes ownership of a sharded engine (prepared or not) and
    /// publishes its current state as the epoch-0 composite snapshot.
    pub fn new(engine: ShardedEngine) -> Self {
        let ShardedEngine {
            shards,
            n_subs,
            limits,
            ..
        } = engine;
        let publishers: Vec<SnapshotPublisher> =
            shards.into_iter().map(SnapshotPublisher::new).collect();
        let snapshot = Arc::new(ShardedSnapshot {
            shards: publishers.iter().map(|p| p.handle().load()).collect(),
            epoch: 0,
            limits,
        });
        ShardedPublisher {
            publishers,
            n_subs,
            shared: Arc::new(RwLock::new(snapshot)),
            epoch: 0,
            limits,
        }
    }

    /// A reader handle onto this publisher's snapshot slot.
    pub fn handle(&self) -> ShardedHandle {
        ShardedHandle {
            shared: self.shared.clone(),
        }
    }

    /// Registers an expression on the next shard in round-robin order
    /// (invisible to readers until the next [`Self::publish`]).
    pub fn add(&mut self, expr: &XPathExpr) -> Result<SubId, BackendError> {
        let n = self.publishers.len() as u32;
        let shard = (self.n_subs % n) as usize;
        let local = self.publishers[shard]
            .add(expr)
            .map_err(|e| BackendError(e.to_string()))?;
        debug_assert_eq!(local.0, self.n_subs / n);
        let global = SubId(self.n_subs);
        self.n_subs += 1;
        Ok(global)
    }

    /// Parses and registers an expression (convenience).
    pub fn add_str(&mut self, src: &str) -> Result<SubId, BackendError> {
        let expr = pxf_xpath::parse(src).map_err(|e| BackendError(e.to_string()))?;
        self.add(&expr)
    }

    /// Unregisters a subscription by global id, routed like
    /// [`ShardedEngine::remove`].
    pub fn remove(&mut self, sub: SubId) -> bool {
        let n = self.publishers.len() as u32;
        let shard = (sub.0 % n) as usize;
        self.publishers[shard].remove(SubId(sub.0 / n))
    }

    /// Read access to the per-shard write buffers (maintenance counters).
    pub fn engines(&self) -> impl Iterator<Item = &FilterEngine> {
        self.publishers.iter().map(|p| p.engine())
    }

    /// Publishes every shard and swaps in a new composite snapshot,
    /// returning its epoch.
    pub fn publish(&mut self) -> u64 {
        for p in &mut self.publishers {
            p.publish();
        }
        self.epoch += 1;
        let fresh = Arc::new(ShardedSnapshot {
            shards: self.publishers.iter().map(|p| p.handle().load()).collect(),
            epoch: self.epoch,
            limits: self.limits,
        });
        *self.shared.write().expect("sharded snapshot slot poisoned") = fresh;
        self.epoch
    }
}

impl FilterBackend for ShardedEngine {
    fn add(&mut self, expr: &XPathExpr) -> Result<SubId, BackendError> {
        ShardedEngine::add(self, expr)
    }

    fn prepare(&mut self) {
        ShardedEngine::prepare(self);
    }

    fn remove(&mut self, sub: SubId) -> bool {
        ShardedEngine::remove(self, sub)
    }

    fn match_document(&mut self, doc: &Document) -> Vec<SubId> {
        ShardedEngine::match_document(self, doc)
    }

    fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        ShardedEngine::match_bytes(self, bytes)
    }

    fn set_parser_limits(&mut self, limits: ParserLimits) {
        ShardedEngine::set_parser_limits(self, limits);
    }

    fn reset_stats(&mut self) {
        ShardedEngine::reset_stats(self);
    }

    fn stats(&self) -> Option<EngineStats> {
        Some(ShardedEngine::stats(self))
    }

    fn distinct_predicates(&self) -> usize {
        ShardedEngine::distinct_predicates(self)
    }

    fn index_bytes(&self) -> usize {
        ShardedEngine::index_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(xml: &str) -> Document {
        Document::parse(xml.as_bytes()).unwrap()
    }

    const EXPRS: [&str; 7] = [
        "/a/b",
        "//c",
        "a/*/d",
        "//b[@k = \"1\"]",
        "/a//c/d",
        "//a//b",
        "/a",
    ];

    fn oracle(exprs: &[&str], xml: &str) -> Vec<SubId> {
        let mut single = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
        for e in exprs {
            single.add_str(e).unwrap();
        }
        single.prepare();
        single.match_document(&doc(xml))
    }

    #[test]
    fn sharded_matches_equal_single_engine() {
        let docs = [
            "<a><b/></a>",
            "<a><x><c><d/></c></x></a>",
            "<a><b k=\"1\"><c/></b></a>",
            "<z/>",
        ];
        for n_shards in [1usize, 2, 3, 4] {
            let mut sharded =
                ShardedEngine::new(n_shards, Algorithm::AccessPredicate, AttrMode::Inline);
            for (i, e) in EXPRS.iter().enumerate() {
                assert_eq!(sharded.add_str(e).unwrap(), SubId(i as u32));
            }
            sharded.prepare();
            for xml in docs {
                let want = oracle(&EXPRS, xml);
                assert_eq!(sharded.match_document(&doc(xml)), want, "{n_shards} shards");
                assert_eq!(
                    sharded.match_bytes(xml.as_bytes()).unwrap(),
                    want,
                    "{n_shards} shards, byte path"
                );
            }
        }
    }

    #[test]
    fn matchers_are_independent_and_agree() {
        let mut sharded = ShardedEngine::new(3, Algorithm::AccessPredicate, AttrMode::Inline);
        for e in EXPRS {
            sharded.add_str(e).unwrap();
        }
        sharded.prepare();
        let d = doc("<a><b k=\"1\"><c/></b></a>");
        let want = oracle(&EXPRS, "<a><b k=\"1\"><c/></b></a>");
        let mut m1 = sharded.matcher();
        let mut m2 = sharded.matcher();
        assert_eq!(m1.match_document(&d), want);
        assert_eq!(m1.match_document(&d), want);
        assert_eq!(m2.match_document(&d), want);
        assert_eq!(m1.stats().docs, 2);
        assert_eq!(m2.stats().docs, 1);
    }

    #[test]
    fn merged_stats_count_documents_once() {
        let mut sharded = ShardedEngine::new(4, Algorithm::AccessPredicate, AttrMode::Inline);
        for e in EXPRS {
            sharded.add_str(e).unwrap();
        }
        sharded.prepare();
        let d = doc("<a><b/></a>");
        sharded.match_document(&d);
        sharded.match_document(&d);
        let stats = ShardedEngine::stats(&sharded);
        assert_eq!(stats.docs, 2);
        assert_eq!(stats.matches, 2 * 3); // /a/b, //a//b, /a per document
        sharded.reset_stats();
        assert_eq!(ShardedEngine::stats(&sharded).docs, 0);
        assert_eq!(ShardedEngine::stats(&sharded).shard_imbalance_ns, 0);
    }

    #[test]
    fn backend_trait_dispatch() {
        let mut backend: Box<dyn FilterBackend> = Box::new(ShardedEngine::new(
            2,
            Algorithm::AccessPredicate,
            AttrMode::Inline,
        ));
        let a = backend.add_str("/a/b").unwrap();
        let b = backend.add_str("//c").unwrap();
        backend.prepare();
        let bytes = b"<a><b><c/></b></a>";
        assert_eq!(
            backend.match_document(&doc("<a><b><c/></b></a>")),
            vec![a, b]
        );
        assert_eq!(backend.match_bytes(bytes).unwrap(), vec![a, b]);
        assert!(backend.stats().is_some());
        assert!(backend.distinct_predicates() > 0);
        assert!(backend.index_bytes() > 0);
        backend.set_parser_limits(ParserLimits {
            max_depth: 2,
            ..ParserLimits::default()
        });
        assert!(backend
            .match_bytes(b"<a><b><c/></b></a>")
            .unwrap_err()
            .is_limit());
    }

    #[test]
    fn zero_shards_promotes_to_one() {
        let engine = ShardedEngine::new(0, Algorithm::Basic, AttrMode::Inline);
        assert_eq!(engine.n_shards(), 1);
    }
}
