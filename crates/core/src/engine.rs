//! The filtering engine: subscription storage, the two-stage matching
//! algorithm, and the optimized expression organizations of §4.2.2.
//!
//! Three organizations are provided (the paper's experimental variants):
//!
//! * [`Algorithm::Basic`] — every expression is checked independently
//!   (predicates are still shared through the predicate index),
//! * [`Algorithm::PrefixCovering`] (`basic-pc`) — expressions are held in a
//!   trie keyed by their predicate sequences; identical expressions collapse
//!   onto one node, and evaluation proceeds longest-first so that a match
//!   of an expression marks every prefix expression matched without
//!   re-running occurrence determination,
//! * [`Algorithm::AccessPredicate`] (`basic-pc-ap`) — additionally clusters
//!   the trie by each expression's first predicate (the *access
//!   predicate*); if it has no matches the entire cluster is skipped.

use crate::covering::CoveringIndex;
use crate::encode::{encode_single_path, AttrMode, EncodeError, EncodedPath};
use crate::nested::{combine, decompose, NestedPlan};
use crate::occurrence::determine_match_by;
use crate::program::PredPrograms;
use pxf_predicate::{CtxMark, MatchContext, PredId, PredicateIndex, Publication};
use pxf_xml::{
    DocAccess, ElementVisitor, Interner, NodeId, ParserLimits, PathDoc, Symbol, XmlError,
};
use pxf_xpath::{AttrFilter, XPathExpr};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Identifier of a registered subscription (dense, insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubId(pub u32);

/// Expression organization (paper §4.2.2 / §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// `basic` — no expression-level sharing.
    Basic,
    /// `basic-pc` — prefix-covering trie, longest-first evaluation.
    PrefixCovering,
    /// `basic-pc-ap` — prefix covering plus access-predicate clustering.
    #[default]
    AccessPredicate,
}

/// Stage-1 (predicate matching) evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stage1 {
    /// One pre-order traversal of the document: each element's predicate
    /// contributions are evaluated exactly once and shared — via the
    /// [`MatchContext`] undo log — by every leaf path through it. Only the
    /// path-length-dependent predicates (length, end-of-path) run per
    /// leaf. Duplicate tag-sequence paths additionally skip stage 2 when
    /// no attribute predicate or nested plan makes equal tag paths
    /// non-equivalent.
    #[default]
    Incremental,
    /// The paper's formulation: re-evaluate the full predicate index for
    /// every root-to-leaf path (O(Σ path lengths) element visits).
    /// Retained as the equivalence oracle for the incremental path.
    PerPath,
}

/// Stage-2 (expression matching) candidate-generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stage2 {
    /// Output-sensitive: per-path candidate expressions are derived from
    /// the *satisfied* predicates via prepare-time posting lists
    /// (predicate → expression/terminal) intersected by counting —
    /// an expression is visited only when every distinct predicate in its
    /// chain matched the path. The access-predicate organization instead
    /// probes a dense `pid → cluster root` map per satisfied predicate.
    /// Per-path cost is proportional to the satisfied predicates' posting
    /// lists, independent of how many expressions are registered.
    #[default]
    Posting,
    /// Scan every registered entry still active in this document (the
    /// formulation of earlier revisions). Retained as the equivalence
    /// oracle for the posting-driven path.
    Scan,
}

/// Error returned when a subscription cannot be added.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddError {
    /// The expression could not be encoded.
    Encode(EncodeError),
}

impl fmt::Display for AddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddError::Encode(e) => write!(f, "cannot add subscription: {e}"),
        }
    }
}

impl std::error::Error for AddError {}

impl From<EncodeError> for AddError {
    fn from(e: EncodeError) -> Self {
        AddError::Encode(e)
    }
}

/// Cumulative matching statistics (the paper's Fig. 10 cost breakdown).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Documents processed.
    pub docs: u64,
    /// Time spent encoding publications and matching predicates (stage 1).
    pub predicate_ns: u64,
    /// Time spent in expression matching / occurrence determination
    /// (stage 2).
    pub expression_ns: u64,
    /// Time spent on everything else (result collection, nested-path
    /// combination).
    pub other_ns: u64,
    /// Occurrence determination invocations.
    pub occurrence_runs: u64,
    /// Expressions resolved by prefix-covering propagation instead of an
    /// occurrence determination run.
    pub pc_propagations: u64,
    /// Stage-2 candidate entries produced by posting-list counting (flat
    /// expressions or trie terminals whose full distinct predicate set
    /// was satisfied on a path). Posting mode only.
    pub stage2_candidates: u64,
    /// Per-path posting-list counter bumps (one per entry occurrence in a
    /// satisfied predicate's posting list). Posting mode only; this is
    /// the whole candidate-generation cost.
    pub posting_bumps: u64,
    /// Access-predicate cluster roots probed because their access
    /// predicate matched (posting mode; replaces the retired
    /// `ap_cluster_skips` — unmatched clusters are no longer even
    /// looked at, so there is nothing left to count skipping).
    pub ap_root_probes: u64,
    /// Leaf paths whose stage 2 was skipped because an identical
    /// tag-sequence path was already processed in the same document
    /// (incremental stage 1 only).
    pub memo_path_skips: u64,
    /// Expression-sharded matching only: cumulative per-document
    /// imbalance (slowest shard minus fastest shard, in nanoseconds)
    /// across the shards of a `ShardedEngine`. Zero for unsharded
    /// engines.
    pub shard_imbalance_ns: u64,
    /// Total subscription matches reported.
    pub matches: u64,
    /// Maintenance: `add`/`remove` operations applied as in-place patches
    /// of the packed index (posting lists, trie columns, `pid→root` maps)
    /// after the first [`FilterEngine::prepare`] — no rebuild involved.
    pub incremental_patches: u64,
    /// Maintenance: full index recompilations after the first prepare
    /// (garbage-triggered compactions, or an explicit dirty rebuild).
    /// Steady-state churn keeps this at zero.
    pub full_rebuilds: u64,
    /// Covered terminals resolved through their coverer's structural
    /// match instead of their own stage-2 evaluation (subscription-set
    /// compilation, containment covering).
    pub covered_skips: u64,
    /// Subscriptions registered as O(1) members of an existing canonical
    /// group (structural-hash dedup) instead of full encode+index adds.
    pub dedup_hits: u64,
}

/// Selection-postponed attribute re-check data: for each predicate level,
/// the attribute filters of the steps bound to its first/second tag
/// variables.
#[derive(Debug, Clone)]
struct AttrCheck {
    levels: Box<[LevelCheck]>,
}

#[derive(Debug, Clone)]
struct LevelCheck {
    first_tag: Option<Symbol>,
    first: Box<[AttrFilter]>,
    second_tag: Option<Symbol>,
    second: Box<[AttrFilter]>,
}

impl AttrCheck {
    /// Builds the check from an encoding; `None` when the expression has no
    /// attribute filters on any slot.
    fn build(
        expr: &XPathExpr,
        enc: &EncodedPath,
        interner: &mut Interner,
    ) -> Option<Box<AttrCheck>> {
        let mut any = false;
        let levels: Vec<LevelCheck> = enc
            .preds
            .iter()
            .zip(&enc.slots)
            .map(|(pred, (s1, s2))| {
                let collect = |slot: &Option<usize>| -> Box<[AttrFilter]> {
                    slot.map(|i| {
                        expr.steps[i]
                            .attr_filters()
                            .cloned()
                            .collect::<Vec<_>>()
                            .into_boxed_slice()
                    })
                    .unwrap_or_default()
                };
                let first = collect(s1);
                let second = collect(s2);
                if !first.is_empty() || !second.is_empty() {
                    any = true;
                }
                LevelCheck {
                    first_tag: pred.first_tag(),
                    first,
                    second_tag: pred.second_tag(),
                    second,
                }
            })
            .collect();
        let _ = interner;
        any.then(|| {
            Box::new(AttrCheck {
                levels: levels.into_boxed_slice(),
            })
        })
    }

    /// Is the occurrence pair admissible at `level` on this publication?
    fn admit<D: DocAccess>(
        &self,
        level: usize,
        pair: (u16, u16),
        publication: &Publication,
        doc: &D,
    ) -> bool {
        let lc = &self.levels[level];
        let node_ok = |tag: Option<Symbol>, occ: u16, filters: &[AttrFilter]| -> bool {
            if filters.is_empty() {
                return true;
            }
            let Some(tag) = tag else { return true };
            let Some(tuple) = publication.find_occurrence(tag, occ) else {
                return false;
            };
            let element = doc.element(tuple.node);
            filters.iter().all(|f| f.matches(element.value_of(&f.name)))
        };
        node_ok(lc.first_tag, pair.0, &lc.first) && node_ok(lc.second_tag, pair.1, &lc.second)
    }
}

/// What an expression entry resolves to when it matches a path.
#[derive(Debug, Clone)]
enum Sink {
    /// A public single-path subscription.
    Sub {
        sub: SubId,
        attr_check: Option<Box<AttrCheck>>,
    },
    /// A component of a nested-path subscription: record the path index.
    Component { comp: u32 },
}

/// Flat expression entry (Basic organization). One entry can carry
/// several sinks: structurally identical subscriptions dedup onto one
/// canonical entry whose chain is evaluated once per path. An entry with
/// no sinks left is dead (skipped by scans, `NEVER_CANDIDATE` in posting
/// mode).
#[derive(Debug, Clone)]
struct FlatExpr {
    preds: Box<[PredId]>,
    sinks: Vec<Sink>,
}

/// A trie node in the *builder* representation (PrefixCovering /
/// AccessPredicate organizations): insertion-time state plus the sink
/// lists, which stay here (cold) while the hot matching walk runs over
/// the arena-packed [`PackedTrie`] columns compiled by
/// [`Trie::finalize`].
#[derive(Debug, Clone)]
struct TrieNode {
    pid: PredId,
    parent: u32, // u32::MAX = no parent (root-level node)
    depth: u16,
    sinks: Vec<Sink>,
}

const NO_PARENT: u32 = u32::MAX;

#[derive(Debug, Clone, Default)]
struct Trie {
    nodes: Vec<TrieNode>,
    /// Insert-time edge lookup: `(parent, pid) → child` (parent
    /// `NO_PARENT` keys the root level). Matching never touches this —
    /// it walks the packed CSR ranges instead.
    edges: HashMap<(u32, PredId), u32>,
    /// Arena-packed read-only layout; rebuilt lazily.
    packed: PackedTrie,
    dirty: bool,
}

/// A capacity-tracked slice of an arena: the live elements are
/// `arena[start..start + len]` and the slot owns `cap` elements starting
/// at `start`. Bulk compilation emits spans with `cap == len` (a plain
/// CSR); incremental patching appends in place while `len < cap` and
/// relocates the span to the end of the arena (doubling `cap`) when
/// full, leaving the abandoned slot as garbage for the next compaction.
#[derive(Debug, Clone, Copy, Default)]
struct Span {
    start: u32,
    len: u32,
    cap: u32,
}

impl Span {
    #[inline]
    fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// Appends `v` to the span's slice inside `arena`, relocating the span to
/// the end of the arena (capacity doubled, old slot abandoned into
/// `garbage`) when it is full.
fn grow_span<T: Copy>(arena: &mut Vec<T>, span: &mut Span, v: T, garbage: &mut usize) {
    if span.len == span.cap {
        let new_cap = (span.cap * 2).max(4);
        let new_start = arena.len() as u32;
        for i in 0..span.len {
            let x = arena[(span.start + i) as usize];
            arena.push(x);
        }
        arena.resize(new_start as usize + new_cap as usize, v);
        *garbage += span.cap as usize;
        span.start = new_start;
        span.cap = new_cap;
    }
    arena[(span.start + span.len) as usize] = v;
    span.len += 1;
}

/// [`grow_span`] over two parallel arenas that must relocate together
/// (e.g. the child `pid`/`node` columns).
fn grow_span2<A: Copy, B: Copy>(
    a: &mut Vec<A>,
    b: &mut Vec<B>,
    span: &mut Span,
    va: A,
    vb: B,
    garbage: &mut usize,
) {
    if span.len == span.cap {
        let new_cap = (span.cap * 2).max(4);
        let new_start = a.len() as u32;
        for i in 0..span.len {
            let x = a[(span.start + i) as usize];
            let y = b[(span.start + i) as usize];
            a.push(x);
            b.push(y);
        }
        a.resize(new_start as usize + new_cap as usize, va);
        b.resize(new_start as usize + new_cap as usize, vb);
        *garbage += 2 * span.cap as usize;
        span.start = new_start;
        span.cap = new_cap;
    }
    a[(span.start + span.len) as usize] = va;
    b[(span.start + span.len) as usize] = vb;
    span.len += 1;
}

/// Terminal slot of a node that carries no sinks (never a terminal, or
/// tombstoned by removal).
const NO_TERM: u32 = u32::MAX;

/// Arena-packed structure-of-arrays trie layout: per-node columns, child
/// edges as capacity-tracked arena spans (sorted by predicate at compile
/// time, append-order afterwards), roots as parallel arrays, and terminal
/// chains packed end-to-end in one arena. The hot stage-2 walks touch
/// only these dense columns (plus the builder sink lists when a node
/// actually resolves subscriptions). Incremental `add`/`remove` patch the
/// columns in place; [`Trie::finalize`] recompiles them from scratch.
#[derive(Debug, Clone, Default)]
struct PackedTrie {
    /// Node → its predicate.
    pid: Vec<PredId>,
    /// Node → parent node (`NO_PARENT` at roots).
    parent: Vec<u32>,
    /// Node → number of sinks (hot presence check; the sinks themselves
    /// stay on the builder nodes).
    sink_len: Vec<u32>,
    /// Plain-subscription sink spans: node `n`'s sinks that are
    /// `Sink::Sub` with no attribute check, as bare subscription ids in
    /// `plain_subs[plain_span[n]]`. When the span covers all
    /// `sink_len[n]` sinks, resolving the node is a tight bitmap-marking
    /// sweep over this column (4 bytes per sink instead of a 16-byte enum
    /// match), the duplicate-heavy common case.
    plain_span: Vec<Span>,
    plain_subs: Vec<u32>,
    /// Children spans: node `n`'s edges are parallel
    /// `child_pid/child_node[child_span[n]]` slices.
    child_span: Vec<Span>,
    child_pid: Vec<PredId>,
    child_node: Vec<u32>,
    /// Root clusters as parallel arrays (sorted by predicate at compile
    /// time; patched roots append — every consumer scans linearly).
    root_pid: Vec<PredId>,
    root_node: Vec<u32>,
    /// Terminals (nodes with sinks): node ids plus chain spans into
    /// `chain_arena`, sorted (root pid asc, chain length desc) — per
    /// cluster, longest chain first (the paper's longest-expression-first
    /// strategy). Patched terminals append at the end; the order is a
    /// heuristic only (covering propagation is correct in any order).
    term_node: Vec<u32>,
    term_chain_start: Vec<u32>,
    chain_arena: Vec<PredId>,
    /// Node → its terminal index (`NO_TERM` when the node has no sinks).
    /// Lets a patched `add` find the existing terminal of a node and a
    /// patched `remove` tombstone it.
    term_of: Vec<u32>,
}

impl PackedTrie {
    fn n_terminals(&self) -> usize {
        self.term_node.len()
    }

    /// Terminal → its full predicate chain (root first).
    #[inline]
    fn chain(&self, ti: u32) -> &[PredId] {
        let s = self.term_chain_start[ti as usize] as usize;
        let e = self.term_chain_start[ti as usize + 1] as usize;
        &self.chain_arena[s..e]
    }

    /// Node → its plain-subscription sinks (no attribute check).
    #[inline]
    fn plain_subs(&self, n: u32) -> &[u32] {
        &self.plain_subs[self.plain_span[n as usize].range()]
    }

    /// Node → its child edges as parallel `(pid, node)` slices.
    #[inline]
    fn children(&self, n: u32) -> (&[PredId], &[u32]) {
        let r = self.child_span[n as usize].range();
        (&self.child_pid[r.clone()], &self.child_node[r])
    }

    /// Heap footprint of the packed columns, in bytes.
    fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pid.capacity() * size_of::<PredId>()
            + self.parent.capacity() * size_of::<u32>()
            + self.sink_len.capacity() * size_of::<u32>()
            + self.plain_span.capacity() * size_of::<Span>()
            + self.plain_subs.capacity() * size_of::<u32>()
            + self.child_span.capacity() * size_of::<Span>()
            + self.child_pid.capacity() * size_of::<PredId>()
            + self.child_node.capacity() * size_of::<u32>()
            + self.root_pid.capacity() * size_of::<PredId>()
            + self.root_node.capacity() * size_of::<u32>()
            + self.term_node.capacity() * size_of::<u32>()
            + self.term_chain_start.capacity() * size_of::<u32>()
            + self.chain_arena.capacity() * size_of::<PredId>()
            + self.term_of.capacity() * size_of::<u32>()
    }
}

impl Trie {
    fn insert(&mut self, preds: &[PredId], sink: Sink) -> u32 {
        debug_assert!(!preds.is_empty());
        let mut current: u32 = NO_PARENT;
        for &pid in preds {
            current = match self.edges.get(&(current, pid)) {
                Some(&n) => n,
                None => {
                    let depth = if current == NO_PARENT {
                        1
                    } else {
                        self.nodes[current as usize].depth + 1
                    };
                    let n = self.alloc(pid, current, depth);
                    self.edges.insert((current, pid), n);
                    n
                }
            };
        }
        self.nodes[current as usize].sinks.push(sink);
        self.dirty = true;
        current
    }

    fn alloc(&mut self, pid: PredId, parent: u32, depth: u16) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(TrieNode {
            pid,
            parent,
            depth,
            sinks: Vec::new(),
        });
        id
    }

    /// Compiles the packed layout from the builder nodes: child CSR
    /// (counting sort by `(parent, pid)`), sorted root arrays, and the
    /// terminal chain arena.
    fn finalize(&mut self) {
        if !self.dirty {
            return;
        }
        let n = self.nodes.len();
        let p = &mut self.packed;
        p.pid.clear();
        p.parent.clear();
        p.sink_len.clear();
        p.pid.extend(self.nodes.iter().map(|nd| nd.pid));
        p.parent.extend(self.nodes.iter().map(|nd| nd.parent));
        p.sink_len
            .extend(self.nodes.iter().map(|nd| nd.sinks.len() as u32));
        p.plain_span.clear();
        p.plain_subs.clear();
        for nd in &self.nodes {
            let start = p.plain_subs.len() as u32;
            for s in &nd.sinks {
                if let Sink::Sub {
                    sub,
                    attr_check: None,
                } = s
                {
                    p.plain_subs.push(sub.0);
                }
            }
            let len = p.plain_subs.len() as u32 - start;
            p.plain_span.push(Span {
                start,
                len,
                cap: len,
            });
        }

        // Every non-root node contributes exactly one child edge.
        let mut edges: Vec<(u32, PredId, u32)> = Vec::new();
        let mut roots: Vec<(PredId, u32)> = Vec::new();
        for (i, nd) in self.nodes.iter().enumerate() {
            if nd.parent == NO_PARENT {
                roots.push((nd.pid, i as u32));
            } else {
                edges.push((nd.parent, nd.pid, i as u32));
            }
        }
        edges.sort_unstable();
        roots.sort_unstable();
        let mut counts = vec![0u32; n];
        for &(parent, _, _) in &edges {
            counts[parent as usize] += 1;
        }
        p.child_span.clear();
        let mut acc = 0u32;
        for &len in &counts {
            p.child_span.push(Span {
                start: acc,
                len,
                cap: len,
            });
            acc += len;
        }
        p.child_pid.clear();
        p.child_node.clear();
        p.child_pid.extend(edges.iter().map(|e| e.1));
        p.child_node.extend(edges.iter().map(|e| e.2));
        p.root_pid.clear();
        p.root_node.clear();
        p.root_pid.extend(roots.iter().map(|r| r.0));
        p.root_node.extend(roots.iter().map(|r| r.1));

        // Terminal chains: walk parents into a temporary arena, then emit
        // in (root pid asc, length desc) order.
        let mut tmp_arena: Vec<PredId> = Vec::new();
        let mut terms: Vec<(PredId, u32, u32, u32)> = Vec::new();
        for (ni, nd) in self.nodes.iter().enumerate() {
            if nd.sinks.is_empty() {
                continue;
            }
            let start = tmp_arena.len() as u32;
            let mut cur = ni as u32;
            loop {
                let nd2 = &self.nodes[cur as usize];
                tmp_arena.push(nd2.pid);
                if nd2.parent == NO_PARENT {
                    break;
                }
                cur = nd2.parent;
            }
            tmp_arena[start as usize..].reverse();
            let len = tmp_arena.len() as u32 - start;
            terms.push((tmp_arena[start as usize], start, len, ni as u32));
        }
        terms.sort_by(|a, b| a.0.cmp(&b.0).then(b.2.cmp(&a.2)));
        p.term_node.clear();
        p.term_chain_start.clear();
        p.chain_arena.clear();
        p.term_of.clear();
        p.term_of.resize(n, NO_TERM);
        p.term_chain_start.push(0);
        for (ti, &(_, start, len, node)) in terms.iter().enumerate() {
            p.term_node.push(node);
            p.chain_arena
                .extend_from_slice(&tmp_arena[start as usize..(start + len) as usize]);
            p.term_chain_start.push(p.chain_arena.len() as u32);
            p.term_of[node as usize] = ti as u32;
        }
        self.dirty = false;
    }
}

/// Prepare-time posting lists driving the output-sensitive stage 2
/// ([`Stage2::Posting`]): for every distinct predicate, the entries (flat
/// expression indices or trie terminal indices) whose predicate chain
/// contains it, plus the distinct-predicate count each entry needs before
/// it becomes a candidate. Rebuilt by [`FilterEngine::prepare`] whenever
/// subscriptions changed.
#[derive(Debug, Clone, Default)]
struct Postings {
    /// Posting lists as arena spans: predicate index `p`'s entries are
    /// `entries[pred_span[p]]` (deduplicated: an entry appears once per
    /// *distinct* predicate in its chain). One flat slab instead of one
    /// heap `Vec` per predicate; incremental adds append via
    /// [`grow_span`].
    pred_span: Vec<Span>,
    entries: Vec<u32>,
    /// Entry id → number of distinct predicates in its chain; a per-path
    /// counter reaching this value makes the entry a candidate.
    /// `u32::MAX` marks entries that can never match (removed flat
    /// entries).
    required: Vec<u32>,
    /// Predicate index → access-predicate cluster root node
    /// (`u32::MAX` when the predicate roots no cluster). Lets `basic-
    /// pc-ap` probe only the clusters whose access predicate matched
    /// instead of iterating every root.
    root_of: Vec<u32>,
}

impl Postings {
    /// Posting list of one predicate.
    #[inline]
    fn of(&self, pid: usize) -> &[u32] {
        &self.entries[self.pred_span[pid].range()]
    }

    /// Grows the per-predicate columns to cover `npreds` predicates (new
    /// predicates start with an empty posting list and no cluster root).
    fn ensure(&mut self, npreds: usize) {
        if self.pred_span.len() < npreds {
            self.pred_span.resize(npreds, Span::default());
            self.root_of.resize(npreds, NO_ROOT);
        }
    }

    /// Heap footprint of the posting slabs, in bytes.
    fn slab_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pred_span.capacity() * size_of::<Span>()
            + (self.entries.capacity() + self.required.capacity() + self.root_of.capacity())
                * size_of::<u32>()
    }
}

const NO_ROOT: u32 = u32::MAX;
const NEVER_CANDIDATE: u32 = u32::MAX;

/// Subscription-set compilation switches. All passes are on by default;
/// [`CompileOptions::none`] turns every pass off, yielding the uncompiled
/// baseline used as the equivalence oracle in tests and ablation rows in
/// the benchmarks. Options must be chosen before subscriptions are added
/// (see [`FilterEngine::set_compile_options`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Hash-dedup structurally identical expressions onto one canonical
    /// entry carrying a subscriber list.
    pub dedup: bool,
    /// Detect pairwise containment between trie terminal chains at
    /// prepare time; a covered terminal is resolved by its coverer's
    /// structural match with no stage-2 work of its own.
    pub covering: bool,
    /// Compile the flat organization's predicate chains into flat
    /// slot-resolved programs executed without per-probe context
    /// dispatch. Trie organizations already store chains slot-resolved
    /// in the packed terminal arena, so the pass applies to
    /// [`Algorithm::Basic`] only.
    pub programs: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            dedup: true,
            covering: true,
            programs: true,
        }
    }
}

impl CompileOptions {
    /// Every compilation pass disabled (the uncompiled oracle).
    pub fn none() -> Self {
        CompileOptions {
            dedup: false,
            covering: false,
            programs: false,
        }
    }
}

/// Effective-subscription accounting after subscription-set compilation
/// (see [`FilterEngine::subset_stats`]). The stage-2 work per document is
/// driven by `canonical - covered` entries, not by `registered`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubsetStats {
    /// Live single-path subscriptions registered (dedup-eligible
    /// population; nested-path subscriptions are excluded).
    pub registered: u64,
    /// Canonical entries actually stored (distinct structural hashes).
    pub canonical: u64,
    /// Canonical trie terminals covered by another terminal's chain, so
    /// they run no stage-2 evaluation of their own.
    pub covered: u64,
}

impl SubsetStats {
    /// Entries that still execute stage-2 work per candidate path.
    pub fn effective(&self) -> u64 {
        self.canonical.saturating_sub(self.covered)
    }
}

/// A canonical expression group: every structurally identical subscription
/// shares one entry (flat expression or trie terminal). The group — not
/// the individual member — owns the predicate-index references of the
/// chain, so member churn inside a live group never touches the index.
#[derive(Debug, Clone)]
struct CanonGroup {
    /// Canonical rendering (hash-collision verification key).
    canon: Box<str>,
    /// The encoded predicate chain (for releasing index references when
    /// the last member leaves).
    chain: Box<[PredId]>,
    /// Where the shared entry lives (`Flat` or `Node`).
    location: SubLocation,
    /// Live member count; 0 = dead group (entry tombstoned).
    members: u32,
    /// Postponed attribute-check template; identical for every member
    /// (it derives from the canonical expression), cloned per sink.
    attr_check: Option<Box<AttrCheck>>,
}

/// Sentinel group id for subscriptions outside the dedup universe
/// (nested-path subscriptions, or dedup disabled).
const NO_GROUP: u32 = u32::MAX;

/// Prepare-time containment covering over trie terminals: for each
/// terminal (the *coverer*), the terminals whose entire chain appears as
/// a contiguous window of the coverer's chain at offset ≥ 1 (offset-0
/// windows are trie-prefix ancestors, already resolved by prefix-covering
/// propagation). When the coverer's chain admits an occurrence
/// combination, every covered chain does too (restriction of the
/// combination to the window — see [`crate::covering`]), so covered
/// terminals resolve with no determination run of their own. Rebuilt at
/// prepare/compaction; terminals patched in afterwards simply carry no
/// edges until the next compilation (sound — they just run uncovered).
#[derive(Debug, Clone, Default)]
struct TermCovering {
    /// Coverer terminal → span of covered terminal ids; indexed by
    /// terminal id, may be shorter than the terminal table after patches.
    span: Vec<(u32, u32)>,
    arena: Vec<u32>,
    /// Distinct terminals covered by at least one coverer.
    n_covered: u64,
}

impl TermCovering {
    fn clear(&mut self) {
        self.span.clear();
        self.arena.clear();
        self.n_covered = 0;
    }

    /// Terminals covered by `ti` (empty for terminals without edges).
    #[inline]
    fn covered_by(&self, ti: u32) -> &[u32] {
        match self.span.get(ti as usize) {
            Some(&(start, len)) => &self.arena[start as usize..(start + len) as usize],
            None => &[],
        }
    }

    fn bytes(&self) -> usize {
        self.span.len() * 8 + self.arena.len() * 4
    }
}

/// A registered nested-path subscription.
#[derive(Debug, Clone)]
struct NestedSub {
    sub: SubId,
    plan: NestedPlan,
    /// First component registry id; components occupy
    /// `comp_base .. comp_base + plan.len()`.
    comp_base: u32,
    /// False once removed.
    live: bool,
}

/// The predicate-based XPath filtering engine.
///
/// ```
/// use pxf_core::FilterEngine;
/// use pxf_xml::Document;
///
/// let mut engine = FilterEngine::default();
/// let s1 = engine.add_str("a//b/c").unwrap();
/// let s2 = engine.add_str("c//b//a").unwrap();
/// let doc = Document::parse(b"<a><b><c><a><b><c/></b></a></c></b></a>").unwrap();
/// assert_eq!(engine.match_document(&doc), vec![s1]);
/// let _ = s2;
/// ```
#[derive(Debug)]
pub struct FilterEngine {
    algorithm: Algorithm,
    attr_mode: AttrMode,
    stage1: Stage1,
    stage2: Stage2,
    /// True once any subscription carries a selection-postponed attribute
    /// re-check: such checks consult document nodes, so equal tag-sequence
    /// paths stop being equivalent and path memoization must stay off.
    has_attr_checks: bool,
    interner: Interner,
    index: PredicateIndex,
    n_subs: u32,
    flat: Vec<FlatExpr>,
    trie: Trie,
    /// Posting lists for [`Stage2::Posting`]; rebuilt by
    /// [`Self::prepare`] when `postings_dirty`.
    postings: Postings,
    postings_dirty: bool,
    nested: Vec<NestedSub>,
    n_components: u32,
    /// Where each subscription's sinks live (for O(depth) removal).
    locations: Vec<SubLocation>,
    /// Subscription-set compilation switches (fixed before the first add).
    compile: CompileOptions,
    /// Canonical groups (dedup pass); `canon_index` maps a structural
    /// hash to the group ids sharing it (verified against the canonical
    /// rendering — the hash alone is not proof of identity).
    groups: Vec<CanonGroup>,
    canon_index: HashMap<u64, Vec<u32>>,
    /// Subscription → its canonical group (`NO_GROUP` outside dedup).
    sub_group: Vec<u32>,
    /// Containment covering over trie terminals (covering pass).
    covering: TermCovering,
    /// Compiled predicate programs (programs pass) for the flat
    /// organization's entries. Empty when the pass is off. Trie terminals
    /// need no programs: their chains already live slot-resolved in the
    /// packed SoA arena, so an extra program indirection only adds cost.
    flat_programs: PredPrograms,
    /// Subscriptions removed via [`FilterEngine::remove`] (ids are never
    /// reused).
    removed: u32,
    /// True once [`Self::prepare`] has compiled the packed structures.
    /// From then on `add`/`remove` patch them in place and `prepare`
    /// is an O(1) no-op (amortized by occasional compactions).
    prepared: bool,
    /// Arena slots abandoned by span relocations, tombstoned terminal
    /// chains, and dead posting entries. Crossing the compaction
    /// threshold triggers one full recompilation.
    garbage: usize,
    /// Maintenance counters surfaced through [`EngineStats`].
    incremental_patches: u64,
    full_rebuilds: u64,
    dedup_hits: u64,
    /// Test hook: overrides the garbage threshold that triggers
    /// compaction.
    compaction_override: Option<usize>,
    /// Scratch backing the convenient `&mut self` matching API; concurrent
    /// users create their own via [`FilterEngine::matcher`].
    scratch: MatchScratch,
    /// Per-document resource budget enforced on the streaming parse path
    /// (`match_bytes`); shared by every matcher created from this engine.
    limits: ParserLimits,
}

impl Clone for FilterEngine {
    /// Deep copy of the subscription base and its packed index; the
    /// per-document scratch starts fresh (it carries no subscription
    /// state, only reusable buffers and statistics).
    fn clone(&self) -> Self {
        FilterEngine {
            algorithm: self.algorithm,
            attr_mode: self.attr_mode,
            stage1: self.stage1,
            stage2: self.stage2,
            has_attr_checks: self.has_attr_checks,
            interner: self.interner.clone(),
            index: self.index.clone(),
            n_subs: self.n_subs,
            flat: self.flat.clone(),
            trie: self.trie.clone(),
            postings: self.postings.clone(),
            postings_dirty: self.postings_dirty,
            nested: self.nested.clone(),
            n_components: self.n_components,
            locations: self.locations.clone(),
            compile: self.compile,
            groups: self.groups.clone(),
            canon_index: self.canon_index.clone(),
            sub_group: self.sub_group.clone(),
            covering: self.covering.clone(),
            flat_programs: self.flat_programs.clone(),
            removed: self.removed,
            prepared: self.prepared,
            garbage: self.garbage,
            incremental_patches: self.incremental_patches,
            full_rebuilds: self.full_rebuilds,
            dedup_hits: self.dedup_hits,
            compaction_override: self.compaction_override,
            scratch: MatchScratch::default(),
            limits: self.limits,
        }
    }
}

/// Back-pointer from a subscription to its storage, enabling removal.
#[derive(Debug, Clone, Copy)]
enum SubLocation {
    /// Index into `flat` (Basic organization).
    Flat(u32),
    /// Trie node holding the sink.
    Node(u32),
    /// Index into `nested`.
    Nested(u32),
    /// Already removed.
    Gone,
}

/// Reusable per-document matching state. One scratch per concurrent
/// matcher; see [`FilterEngine::matcher`].
#[derive(Debug, Default)]
pub struct MatchScratch {
    publication: Publication,
    ctx: MatchContext,
    state: DocState,
    stats: EngineStats,
}

impl MatchScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative statistics of the documents matched with this scratch.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    #[doc(hidden)]
    /// Test hook: forces the internal document/path epochs (e.g. just
    /// below the u32 wrap point) so the epoch-wrap hard-clear discipline
    /// can be soaked without matching 2³² documents.
    pub fn force_epochs(&mut self, doc_epoch: u32, path_epoch: u32) {
        self.state.doc_epoch = doc_epoch;
        self.state.path_epoch = path_epoch;
    }

    #[doc(hidden)]
    /// Test hook: the current (doc, path) epochs.
    pub fn epochs(&self) -> (u32, u32) {
        (self.state.doc_epoch, self.state.path_epoch)
    }
}

/// A matching handle over a shared, immutable [`FilterEngine`]: holds its
/// own scratch so that many matchers (e.g. one per thread) can filter
/// documents concurrently against one subscription base.
///
/// Create with [`FilterEngine::matcher`] after all subscriptions are
/// registered.
#[derive(Debug)]
pub struct Matcher<'e> {
    engine: &'e FilterEngine,
    scratch: MatchScratch,
}

impl Matcher<'_> {
    /// Filters a document: ids of all matching subscriptions, ascending.
    pub fn match_document<D: DocAccess>(&mut self, doc: &D) -> Vec<SubId> {
        self.engine.match_document_with(doc, &mut self.scratch)
    }

    /// Parses and filters a document in a single streaming pass: the bytes
    /// go through [`PathDoc::parse`] (no tree is built) and the match runs
    /// over the flat path store. Results are identical to parsing with
    /// [`pxf_xml::Document::parse`] and calling [`Self::match_document`].
    pub fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        let doc = PathDoc::parse_with_limits(bytes, self.engine.limits)?;
        Ok(self.engine.match_document_with(&doc, &mut self.scratch))
    }

    /// Statistics accumulated by this matcher, with the engine's
    /// maintenance counters merged in.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.scratch.stats();
        s.incremental_patches = self.engine.incremental_patches;
        s.full_rebuilds = self.engine.full_rebuilds;
        s.dedup_hits = self.engine.dedup_hits;
        s
    }

    /// The engine this matcher reads from.
    pub fn engine(&self) -> &FilterEngine {
        self.engine
    }
}

/// An epoch-stamped bitmap: one bit per id, valid only while the owning
/// 64-bit word's stamp equals the current epoch. Setting a bit in a
/// stale word lazily zeroes the word first, so neither documents nor
/// paths pay a clearing pass. The same u32 wrap discipline as the plain
/// stamp arrays applies: on epoch wrap the owner must [`hard_clear`]
/// (otherwise a word last stamped 2³² epochs ago would read as current).
///
/// [`hard_clear`]: EpochBitmap::hard_clear
#[derive(Debug, Default)]
struct EpochBitmap {
    words: Vec<u64>,
    stamps: Vec<u32>,
}

impl EpochBitmap {
    /// Grows to cover at least `bits` ids (never shrinks).
    fn resize(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        if self.words.len() < words {
            self.words.resize(words, 0);
            self.stamps.resize(words, 0);
        }
    }

    #[inline]
    fn test(&self, i: usize, epoch: u32) -> bool {
        self.stamps[i / 64] == epoch && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    #[inline]
    fn set(&mut self, i: usize, epoch: u32) {
        let w = i / 64;
        if self.stamps[w] != epoch {
            self.stamps[w] = epoch;
            self.words[w] = 0;
        }
        self.words[w] |= 1u64 << (i % 64);
    }

    /// Zeroes every word and stamp (epoch-wrap hard clear).
    fn hard_clear(&mut self) {
        self.words.fill(0);
        self.stamps.fill(0);
    }

    /// Visits every bit set in the current epoch, in ascending id order.
    fn for_each_set(&self, epoch: u32, mut f: impl FnMut(usize)) {
        for (w, (&stamp, &word)) in self.stamps.iter().zip(&self.words).enumerate() {
            if stamp != epoch || word == 0 {
                continue;
            }
            let mut bits = word;
            while bits != 0 {
                f(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }
}

/// Open-addressed flat hash table for the per-document path memo (hash of
/// the tag-symbol sequence → span into `memo_syms`). Linear probing over
/// one key slab; key 0 means empty (callers remap a real hash of 0 to 1,
/// which is sound because every hit is verified against the stored symbol
/// sequence anyway).
#[derive(Debug, Default)]
struct MemoTable {
    keys: Vec<u64>,
    vals: Vec<(u32, u32)>,
    len: usize,
}

impl MemoTable {
    /// Empties the table, keeping capacity.
    fn clear(&mut self) {
        self.keys.fill(0);
        self.len = 0;
    }

    fn get(&self, h: u64) -> Option<(u32, u32)> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let k = self.keys[i];
            if k == 0 {
                return None;
            }
            if k == h {
                return Some(self.vals[i]);
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, h: u64, v: (u32, u32)) {
        debug_assert_ne!(h, 0, "hash 0 is the empty marker");
        if self.len * 2 >= self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = (h as usize) & mask;
        while self.keys[i] != 0 {
            if self.keys[i] == h {
                self.vals[i] = v;
                return;
            }
            i = (i + 1) & mask;
        }
        self.keys[i] = h;
        self.vals[i] = v;
        self.len += 1;
    }

    /// Doubles capacity (load factor ½) and rehashes.
    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(64);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![(0, 0); new_cap]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != 0 {
                self.insert(k, v);
            }
        }
    }
}

#[derive(Debug, Default)]
struct DocState {
    doc_epoch: u32,
    path_epoch: u32,
    /// SubId → matched in the current document (doc-epoch bitmap). Also
    /// the result accumulator: the final ascending bitmap scan *is* the
    /// sorted result list, replacing per-match pushes plus a sort.
    sub_matched: EpochBitmap,
    /// Trie node → (found or propagated) structurally matched on the
    /// current path (path-epoch bitmap).
    node_matched: EpochBitmap,
    /// Trie node → whole subtree resolved in the current document (every
    /// reachable subscription matched): pruned from later paths.
    node_done: EpochBitmap,
    /// Trie node → all of its own sinks resolved in the current document
    /// (so later visits skip sink processing — crucial for
    /// duplicate-heavy workloads where one node carries thousands of
    /// subscriptions).
    node_sinks_done: EpochBitmap,
    /// Component registry id → path indices matched in the current doc.
    comp_paths: Vec<Vec<u32>>,
    /// Terminals (trie) or expressions (flat) still unresolved in the
    /// current document; compacted in place as subscriptions match so that
    /// later paths skip them (an expression is matched by a document as
    /// soon as any of its paths matches — §3.1).
    active: Vec<u32>,
    /// Scratch for the selection-postponed re-check: per-level admissible
    /// pair lists.
    sp_bufs: Vec<Vec<(u16, u16)>>,
    results: Vec<SubId>,
    /// Leaf paths of the current document (node ids), recorded for nested
    /// plans only. The outer vector and every inner vector are reused
    /// across documents; `n_paths` is the live prefix.
    paths: Vec<Vec<NodeId>>,
    n_paths: usize,
    /// Posting-driven stage 2: per-entry satisfied-predicate counters
    /// packed as `(path_epoch << 32) | count` — one load/store per
    /// posting bump, no separate epoch array (an entry becomes a
    /// candidate when its count reaches the entry's distinct-predicate
    /// count).
    cand: Vec<u64>,
    /// Candidate entries of the current path.
    cand_buf: Vec<u32>,
    /// Incremental stage 1: one context mark per open element.
    ctx_marks: Vec<CtxMark>,
    /// Scratch predicate chain for `dfs_node` sink processing.
    chain_buf: Vec<PredId>,
    /// Per-document path memo (verified on hit — a hash collision falls
    /// back to running stage 2).
    memo: MemoTable,
    memo_syms: Vec<Symbol>,
}

impl DocState {
    /// Bumps the document epoch. On u32 wrap the stamped bitmaps are
    /// hard-cleared and the epoch restarts at 1 — otherwise a slot last
    /// stamped 2³² documents ago would read as current.
    fn advance_doc_epoch(&mut self) {
        self.doc_epoch = self.doc_epoch.wrapping_add(1);
        if self.doc_epoch == 0 {
            self.sub_matched.hard_clear();
            self.node_done.hard_clear();
            self.node_sinks_done.hard_clear();
            self.doc_epoch = 1;
        }
    }

    /// Bumps the path epoch, with the same wrap handling for the
    /// structures stamped per path (the packed candidate slots carry the
    /// epoch in their high half, so zeroing them is the hard clear).
    fn advance_path_epoch(&mut self) {
        self.path_epoch = self.path_epoch.wrapping_add(1);
        if self.path_epoch == 0 {
            self.node_matched.hard_clear();
            self.cand.fill(0);
            self.path_epoch = 1;
        }
    }

    /// Appends a leaf path to the reused path buffer.
    fn record_path(&mut self, path: impl IntoIterator<Item = NodeId>) {
        if self.paths.len() <= self.n_paths {
            self.paths.push(Vec::new());
        }
        let slot = &mut self.paths[self.n_paths];
        slot.clear();
        slot.extend(path);
        self.n_paths += 1;
    }
}

impl Default for FilterEngine {
    fn default() -> Self {
        FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline)
    }
}

impl AsRef<FilterEngine> for FilterEngine {
    fn as_ref(&self) -> &FilterEngine {
        self
    }
}

impl FilterEngine {
    /// Creates an engine with the given expression organization and
    /// attribute-filter mode.
    pub fn new(algorithm: Algorithm, attr_mode: AttrMode) -> Self {
        FilterEngine {
            algorithm,
            attr_mode,
            stage1: Stage1::default(),
            stage2: Stage2::default(),
            has_attr_checks: false,
            interner: Interner::new(),
            index: PredicateIndex::new(),
            n_subs: 0,
            flat: Vec::new(),
            trie: Trie::default(),
            postings: Postings::default(),
            postings_dirty: true,
            nested: Vec::new(),
            n_components: 0,
            locations: Vec::new(),
            compile: CompileOptions::default(),
            groups: Vec::new(),
            canon_index: HashMap::new(),
            sub_group: Vec::new(),
            covering: TermCovering::default(),
            flat_programs: PredPrograms::default(),
            removed: 0,
            prepared: false,
            garbage: 0,
            incremental_patches: 0,
            full_rebuilds: 0,
            dedup_hits: 0,
            compaction_override: None,
            scratch: MatchScratch::default(),
            limits: ParserLimits::default(),
        }
    }

    /// The configured expression organization.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured attribute-filter mode.
    pub fn attr_mode(&self) -> AttrMode {
        self.attr_mode
    }

    /// The configured stage-1 strategy.
    pub fn stage1(&self) -> Stage1 {
        self.stage1
    }

    /// Selects the stage-1 strategy. [`Stage1::Incremental`] is the
    /// default; [`Stage1::PerPath`] reproduces the paper's per-path
    /// evaluation (match sets are identical either way).
    pub fn set_stage1(&mut self, stage1: Stage1) {
        self.stage1 = stage1;
    }

    /// The configured stage-2 strategy.
    pub fn stage2(&self) -> Stage2 {
        self.stage2
    }

    /// Selects the stage-2 strategy. [`Stage2::Posting`] is the default;
    /// [`Stage2::Scan`] reproduces the scan-every-entry evaluation (match
    /// sets are identical either way).
    pub fn set_stage2(&mut self, stage2: Stage2) {
        self.stage2 = stage2;
    }

    /// The active subscription-set compilation switches.
    pub fn compile_options(&self) -> CompileOptions {
        self.compile
    }

    /// Selects the subscription-set compilation passes. Must be called
    /// before any subscription is added — the passes shape how
    /// subscriptions are stored, so flipping them mid-stream would leave
    /// the store half-compiled. Panics on a non-empty engine.
    pub fn set_compile_options(&mut self, options: CompileOptions) {
        assert!(
            self.n_subs == 0,
            "set_compile_options: choose compilation passes before adding subscriptions"
        );
        self.compile = options;
    }

    /// Effective-subscription accounting: registered single-path
    /// subscriptions vs canonical entries stored vs terminals covered by
    /// containment (as of the last prepare/compaction).
    pub fn subset_stats(&self) -> SubsetStats {
        let registered = self
            .locations
            .iter()
            .filter(|l| matches!(l, SubLocation::Flat(_) | SubLocation::Node(_)))
            .count() as u64;
        let canonical = if self.compile.dedup {
            self.groups.iter().filter(|g| g.members > 0).count() as u64
        } else {
            registered
        };
        SubsetStats {
            registered,
            canonical,
            covered: self.covering.n_covered,
        }
    }

    /// Number of live subscriptions (registered minus removed).
    pub fn len(&self) -> usize {
        (self.n_subs - self.removed) as usize
    }

    /// True if no live subscriptions exist.
    pub fn is_empty(&self) -> bool {
        self.n_subs == self.removed
    }

    /// Number of distinct predicates stored (Fig. 10 metric).
    pub fn distinct_predicates(&self) -> usize {
        self.index.len()
    }

    /// Approximate heap footprint of the matching index structures
    /// (posting slabs, packed trie arenas, flat entries, predicate
    /// index), in bytes. Dividing by [`Self::len`] gives the
    /// bytes-per-expression figure the compact-layout work optimizes.
    /// Builder-side structures (insert-time edge map, sink lists) are
    /// included so the number reflects what a resident engine costs, not
    /// just its hot columns.
    pub fn index_bytes(&self) -> usize {
        use std::mem::size_of;
        let flat_bytes: usize = self.flat.capacity() * size_of::<FlatExpr>()
            + self
                .flat
                .iter()
                .map(|e| e.preds.len() * size_of::<PredId>())
                .sum::<usize>();
        let builder_bytes = self.trie.nodes.capacity() * size_of::<TrieNode>()
            + self.trie.edges.len() * size_of::<((u32, PredId), u32)>();
        self.trie.packed.arena_bytes()
            + self.postings.slab_bytes()
            + flat_bytes
            + builder_bytes
            + self.locations.capacity() * size_of::<SubLocation>()
            + self.flat_programs.bytes()
            + self.covering.bytes()
            + self.index.approx_bytes()
    }

    #[doc(hidden)]
    /// Test hook: forces the internal scratch's epochs; see
    /// [`MatchScratch::force_epochs`].
    pub fn force_scratch_epochs(&mut self, doc_epoch: u32, path_epoch: u32) {
        self.scratch.force_epochs(doc_epoch, path_epoch);
    }

    /// Sets the per-document resource budget enforced by the streaming
    /// parse path (`match_bytes`), including matchers created afterwards.
    pub fn set_parser_limits(&mut self, limits: ParserLimits) {
        self.limits = limits;
    }

    /// The per-document resource budget of the streaming parse path.
    pub fn parser_limits(&self) -> &ParserLimits {
        &self.limits
    }

    /// Cumulative matching statistics of the internal (`&mut self`)
    /// matching API, plus the engine-level maintenance counters.
    /// [`Matcher`]s carry their own matching statistics.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.scratch.stats;
        s.incremental_patches = self.incremental_patches;
        s.full_rebuilds = self.full_rebuilds;
        s.dedup_hits = self.dedup_hits;
        s
    }

    /// Resets the statistics counters (including the maintenance
    /// counters).
    pub fn reset_stats(&mut self) {
        self.scratch.stats = EngineStats::default();
        self.incremental_patches = 0;
        self.full_rebuilds = 0;
        self.dedup_hits = 0;
    }

    /// `add`/`remove` operations applied as in-place index patches since
    /// construction (or the last [`Self::reset_stats`]).
    pub fn incremental_patches(&self) -> u64 {
        self.incremental_patches
    }

    /// Full index recompilations after the first [`Self::prepare`]
    /// (compactions included). Steady-state churn keeps this at zero.
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    #[doc(hidden)]
    /// Test hook: overrides the garbage threshold above which a patching
    /// operation triggers compaction (`Some(0)` compacts on every op;
    /// `None` restores the size-proportional default).
    pub fn force_compaction_threshold(&mut self, threshold: Option<usize>) {
        self.compaction_override = threshold;
    }

    /// Finishes construction after a batch of [`Self::add`] calls,
    /// preparing the internal organization for matching. Called
    /// automatically by the `&mut self` matching API; required before
    /// [`Self::matcher`] handles can be created.
    ///
    /// The first call compiles the packed index from the builder state.
    /// After that, `add`/`remove` patch the packed structures in place,
    /// so this is an O(1) no-op — amortized by occasional compactions
    /// when tombstone garbage crosses a size-proportional threshold.
    pub fn prepare(&mut self) {
        if self.prepared && !self.trie.dirty && !self.postings_dirty {
            return;
        }
        let was_prepared = self.prepared;
        self.trie.finalize();
        self.build_postings();
        self.compile_subset();
        self.postings_dirty = false;
        self.garbage = 0;
        if was_prepared {
            self.full_rebuilds += 1;
        }
        self.prepared = true;
    }

    /// True when `add`/`remove` can patch the packed structures directly:
    /// the index is compiled and no un-compiled mutation is pending.
    fn ready_for_patch(&self) -> bool {
        self.prepared && !self.trie.dirty && !self.postings_dirty
    }

    /// Garbage level above which a patch triggers [`Self::compact`].
    fn compaction_threshold(&self) -> usize {
        self.compaction_override.unwrap_or(
            (self.trie.packed.plain_subs.len()
                + self.trie.packed.child_pid.len()
                + self.trie.packed.chain_arena.len()
                + self.postings.entries.len())
                / 2
                + 4096,
        )
    }

    fn maybe_compact(&mut self) {
        if self.garbage > self.compaction_threshold() {
            self.compact();
        }
    }

    /// Recompiles the packed trie columns and posting lists from the
    /// builder state, reclaiming abandoned arena slots, tombstoned
    /// terminals, and dead posting entries.
    fn compact(&mut self) {
        self.trie.dirty = true;
        self.trie.finalize();
        self.build_postings();
        self.compile_subset();
        self.garbage = 0;
        self.full_rebuilds += 1;
    }

    /// Subscription-set compilation (runs after every full build): the
    /// predicate programs shadowing the entry stores, and the containment
    /// covering over trie terminals. Patches extend the programs
    /// incrementally; covering edges for patched-in terminals wait for
    /// the next compilation (they run uncovered in the meantime, which is
    /// sound).
    fn compile_subset(&mut self) {
        self.flat_programs.clear();
        self.covering.clear();
        if self.compile.programs && matches!(self.algorithm, Algorithm::Basic) {
            for expr in &self.flat {
                let filtered = expr.sinks.iter().any(|s| {
                    !matches!(
                        s,
                        Sink::Sub {
                            attr_check: None,
                            ..
                        }
                    )
                });
                self.flat_programs.push_chain(&expr.preds, filtered);
            }
        }
        if self.compile.covering
            && !matches!(self.algorithm, Algorithm::Basic)
            && self.trie.packed.n_terminals() > 0
        {
            self.build_covering();
        }
    }

    /// Builds the containment-covering edges: terminal V is covered by
    /// terminal U when V's whole chain occurs as a contiguous window of
    /// U's chain at offset ≥ 1. Offset-0 occurrences are trie prefixes —
    /// V is then an ancestor of U and prefix-covering propagation already
    /// resolves it — and a chain never covers itself (identical chains
    /// share one trie terminal). Detection runs Aho–Corasick over the
    /// predicate-id alphabet ([`CoveringIndex`]), O(total chain length +
    /// hits).
    fn build_covering(&mut self) {
        let p = &self.trie.packed;
        let nt = p.n_terminals();
        let chains: Vec<&[PredId]> = (0..nt as u32).map(|ti| p.chain(ti)).collect();
        let cov = CoveringIndex::build(&chains);
        // Per-coverer dedup stamp: a chain can occur at several offsets.
        let mut seen = vec![u32::MAX; nt];
        let mut covered_any = vec![false; nt];
        let mut span = Vec::with_capacity(nt);
        let mut arena: Vec<u32> = Vec::new();
        for ti in 0..nt {
            let start = arena.len() as u32;
            cov.contained_in_at(chains[ti], |pat, end| {
                let pi = pat as usize;
                if pi == ti {
                    return;
                }
                let offset = end + 1 - chains[pi].len();
                if offset == 0 {
                    return;
                }
                if seen[pi] == ti as u32 {
                    return;
                }
                seen[pi] = ti as u32;
                arena.push(pat);
                covered_any[pi] = true;
            });
            span.push((start, arena.len() as u32 - start));
        }
        self.covering.span = span;
        self.covering.arena = arena;
        self.covering.n_covered = covered_any.iter().filter(|&&c| c).count() as u64;
    }

    /// Rebuilds the posting lists from the current flat entries /
    /// trie terminals. O(total predicate occurrences over all entries).
    fn build_postings(&mut self) {
        let npreds = self.index.len();
        let mut required = std::mem::take(&mut self.postings.required);
        required.clear();
        // A chain may hold the same predicate at two levels (e.g. `b/c`
        // twice in one expression): posting entries are deduplicated so
        // one satisfied predicate bumps each entry's counter at most
        // once, and `required` counts *distinct* predicates.
        let mut distinct: Vec<PredId> = Vec::new();
        let mut pairs: Vec<(PredId, u32)> = Vec::new();
        {
            let mut push_entry = |ei: u32, preds: &[PredId], required: &mut Vec<u32>| {
                distinct.clear();
                distinct.extend_from_slice(preds);
                distinct.sort_unstable();
                distinct.dedup();
                debug_assert!(!distinct.is_empty(), "entries always carry predicates");
                for &pid in distinct.iter() {
                    pairs.push((pid, ei));
                }
                required.push(distinct.len() as u32);
            };
            match self.algorithm {
                Algorithm::Basic => {
                    for (ei, expr) in self.flat.iter().enumerate() {
                        if expr.sinks.is_empty() {
                            required.push(NEVER_CANDIDATE);
                        } else {
                            push_entry(ei as u32, &expr.preds, &mut required);
                        }
                    }
                }
                Algorithm::PrefixCovering | Algorithm::AccessPredicate => {
                    for ti in 0..self.trie.packed.n_terminals() {
                        push_entry(ti as u32, self.trie.packed.chain(ti as u32), &mut required);
                    }
                }
            }
        }
        // Counting sort of the (pid, entry) pairs into the arena slab
        // (stable, so each posting list keeps entry insertion order);
        // each span's `len` doubles as the fill cursor and ends at `cap`.
        let p = &mut self.postings;
        p.required = required;
        let mut counts = vec![0u32; npreds];
        for &(pid, _) in &pairs {
            counts[pid.index()] += 1;
        }
        p.pred_span.clear();
        let mut acc = 0u32;
        for &cap in &counts {
            p.pred_span.push(Span {
                start: acc,
                len: 0,
                cap,
            });
            acc += cap;
        }
        p.entries.clear();
        p.entries.resize(pairs.len(), 0);
        for &(pid, ei) in &pairs {
            let s = &mut p.pred_span[pid.index()];
            p.entries[(s.start + s.len) as usize] = ei;
            s.len += 1;
        }
        p.root_of.clear();
        p.root_of.resize(npreds, NO_ROOT);
        for (i, &pid) in self.trie.packed.root_pid.iter().enumerate() {
            p.root_of[pid.index()] = self.trie.packed.root_node[i];
        }
    }

    /// Creates a concurrent matching handle over this engine. Panics if
    /// subscriptions were added since the last [`Self::prepare`] (or
    /// `&mut self` match) — prepare first.
    pub fn matcher(&self) -> Matcher<'_> {
        assert!(
            !self.trie.dirty && !self.postings_dirty,
            "FilterEngine::matcher: call prepare() after adding or removing subscriptions"
        );
        Matcher {
            engine: self,
            scratch: MatchScratch::default(),
        }
    }

    /// Parses and registers an XPath expression.
    pub fn add_str(&mut self, src: &str) -> Result<SubId, Box<dyn std::error::Error>> {
        let expr = pxf_xpath::parse(src)?;
        Ok(self.add(&expr)?)
    }

    /// Registers a parsed expression, returning its subscription id.
    ///
    /// Insertion is constant-time in the number of subscriptions already in
    /// the system (the paper §6.1): encoding is linear in the expression's
    /// location steps and each predicate insert is an O(1) index probe.
    pub fn add(&mut self, expr: &XPathExpr) -> Result<SubId, AddError> {
        let sub = SubId(self.n_subs);
        // Once the packed index is compiled, new subscriptions patch it
        // in place; before the first prepare() they accumulate in the
        // builder state for the bulk compilation.
        let patch = self.ready_for_patch();
        if expr.has_nested_paths() {
            self.add_nested(expr, sub, patch)?;
            self.locations
                .push(SubLocation::Nested(self.nested.len() as u32 - 1));
            self.sub_group.push(NO_GROUP);
        } else if self.compile.dedup {
            self.add_deduped(expr, sub, patch)?;
        } else {
            let enc = encode_single_path(expr, &mut self.interner, self.attr_mode)?;
            let attr_check = match self.attr_mode {
                AttrMode::Inline => None,
                AttrMode::Postponed => AttrCheck::build(expr, &enc, &mut self.interner),
            };
            self.has_attr_checks |= attr_check.is_some();
            let preds: Box<[PredId]> = enc
                .preds
                .iter()
                .map(|p| self.index.insert(p.clone()))
                .collect();
            let location = self.insert_expr(preds, Sink::Sub { sub, attr_check }, patch);
            self.locations.push(location);
            self.sub_group.push(NO_GROUP);
        }
        self.n_subs += 1;
        if patch {
            debug_assert!(self.ready_for_patch());
            self.incremental_patches += 1;
            self.maybe_compact();
        } else {
            self.postings_dirty = true;
        }
        debug_assert_eq!(self.locations.len(), self.n_subs as usize);
        debug_assert_eq!(self.sub_group.len(), self.n_subs as usize);
        Ok(sub)
    }

    /// Registers a single-path subscription through the canonical-group
    /// store: structurally identical expressions (equal canonical normal
    /// form) share one entry. A duplicate add is an O(1) patch — no
    /// parse-tree encoding, no predicate-index traffic, just a sink
    /// attached to the existing entry; the group, not the member, owns
    /// the chain's predicate references.
    fn add_deduped(&mut self, expr: &XPathExpr, sub: SubId, patch: bool) -> Result<(), AddError> {
        let canon = expr.canonical();
        let key = canon.to_string();
        let hash = pxf_xpath::fnv1a(key.as_bytes());
        if let Some(gids) = self.canon_index.get(&hash) {
            let hit = gids.iter().copied().find(|&g| {
                self.groups[g as usize].members > 0 && *self.groups[g as usize].canon == *key
            });
            if let Some(gid) = hit {
                let location = self.groups[gid as usize].location;
                let attr_check = self.groups[gid as usize].attr_check.clone();
                self.groups[gid as usize].members += 1;
                self.attach_sink(location, Sink::Sub { sub, attr_check }, patch);
                self.locations.push(location);
                self.sub_group.push(gid);
                self.dedup_hits += 1;
                return Ok(());
            }
        }
        // First member: encode the *canonical* expression (the attribute
        // check's slot indices must refer to the steps actually encoded).
        let enc = encode_single_path(&canon, &mut self.interner, self.attr_mode)?;
        let attr_check = match self.attr_mode {
            AttrMode::Inline => None,
            AttrMode::Postponed => AttrCheck::build(&canon, &enc, &mut self.interner),
        };
        self.has_attr_checks |= attr_check.is_some();
        let preds: Box<[PredId]> = enc
            .preds
            .iter()
            .map(|p| self.index.insert(p.clone()))
            .collect();
        let chain = preds.clone();
        let location = self.insert_expr(
            preds,
            Sink::Sub {
                sub,
                attr_check: attr_check.clone(),
            },
            patch,
        );
        let gid = self.groups.len() as u32;
        self.groups.push(CanonGroup {
            canon: key.into_boxed_str(),
            chain,
            location,
            members: 1,
            attr_check,
        });
        self.canon_index.entry(hash).or_default().push(gid);
        self.locations.push(location);
        self.sub_group.push(gid);
        Ok(())
    }

    /// Attaches one more sink to an existing live entry (duplicate member
    /// of a canonical group). Flat entries need no posting work — the
    /// entry is already listed under every predicate of its chain; trie
    /// nodes mirror the sink into the packed columns when patching.
    fn attach_sink(&mut self, location: SubLocation, sink: Sink, patch: bool) {
        let plain_sub = match &sink {
            Sink::Sub {
                sub,
                attr_check: None,
            } => Some(sub.0),
            _ => None,
        };
        match location {
            SubLocation::Flat(ei) => {
                self.flat[ei as usize].sinks.push(sink);
                debug_assert!(
                    !patch || self.postings.required[ei as usize] != NEVER_CANDIDATE,
                    "attach targets a live entry"
                );
            }
            SubLocation::Node(n) => {
                self.trie.nodes[n as usize].sinks.push(sink);
                if patch {
                    let p = &mut self.trie.packed;
                    debug_assert_ne!(p.term_of[n as usize], NO_TERM, "attach targets a terminal");
                    p.sink_len[n as usize] += 1;
                    if let Some(s) = plain_sub {
                        grow_span(
                            &mut p.plain_subs,
                            &mut p.plain_span[n as usize],
                            s,
                            &mut self.garbage,
                        );
                    }
                } else {
                    self.trie.dirty = true;
                }
            }
            SubLocation::Nested(_) | SubLocation::Gone => {
                unreachable!("canonical groups hold flat or trie entries")
            }
        }
    }

    /// Removes a subscription. Returns false if the id was already removed
    /// (or never existed). Removal cost is independent of the number of
    /// subscriptions in the system — the sink is unlinked from its trie
    /// node or flat entry directly. Shared predicates stay in the index
    /// (they may serve other expressions; unreferenced predicates simply
    /// stop mattering).
    pub fn remove(&mut self, sub: SubId) -> bool {
        let Some(location) = self.locations.get(sub.0 as usize).copied() else {
            return false;
        };
        let patch = self.ready_for_patch();
        // Members of a canonical group do not own predicate-index
        // references — the group does, and releases them only when its
        // last member leaves (the bookkeeping at the end of this
        // function).
        let grouped = self
            .sub_group
            .get(sub.0 as usize)
            .is_some_and(|&g| g != NO_GROUP);
        let removed = match location {
            SubLocation::Gone => false,
            SubLocation::Flat(i) => {
                let entry = &mut self.flat[i as usize];
                let pos = entry
                    .sinks
                    .iter()
                    .position(|s| matches!(s, Sink::Sub { sub: s2, .. } if *s2 == sub));
                if let Some(pos) = pos {
                    entry.sinks.remove(pos);
                    let now_empty = entry.sinks.is_empty();
                    let preds: Vec<PredId> = entry.preds.to_vec();
                    if now_empty && patch {
                        // The posting entries of the dead expression stay
                        // in the lists; `required` at the never-candidate
                        // sentinel keeps counting from ever surfacing it.
                        let mut distinct = preds.clone();
                        distinct.sort_unstable();
                        distinct.dedup();
                        self.postings.required[i as usize] = NEVER_CANDIDATE;
                        self.garbage += distinct.len();
                    }
                    if !grouped {
                        for pid in preds {
                            self.index.release(pid);
                        }
                    }
                    true
                } else {
                    false
                }
            }
            SubLocation::Node(n) => {
                let sinks = &mut self.trie.nodes[n as usize].sinks;
                let pos = sinks
                    .iter()
                    .position(|s| matches!(s, Sink::Sub { sub: s2, .. } if *s2 == sub));
                if let Some(pos) = pos {
                    let was_plain = matches!(
                        &sinks[pos],
                        Sink::Sub {
                            attr_check: None,
                            ..
                        }
                    );
                    sinks.remove(pos);
                    let now_empty = sinks.is_empty();
                    if patch {
                        let p = &mut self.trie.packed;
                        p.sink_len[n as usize] -= 1;
                        if was_plain {
                            // Swap-remove the id inside the plain span;
                            // the freed slot stays within the span's
                            // capacity, so it is reusable, not garbage.
                            let span = &mut p.plain_span[n as usize];
                            let r = span.range();
                            let idx = p.plain_subs[r.clone()]
                                .iter()
                                .position(|&x| x == sub.0)
                                .expect("plain sink mirrored in the packed column");
                            p.plain_subs[r.start + idx] = p.plain_subs[r.end - 1];
                            span.len -= 1;
                        }
                        if now_empty {
                            // The node stops being a terminal: tombstone
                            // its terminal slot. The chain arena slice and
                            // the posting entries pointing at the dead
                            // terminal become garbage.
                            let ti = p.term_of[n as usize];
                            debug_assert_ne!(ti, NO_TERM, "terminal mirrored in term_of");
                            p.term_of[n as usize] = NO_TERM;
                            let s = p.term_chain_start[ti as usize] as usize;
                            let e = p.term_chain_start[ti as usize + 1] as usize;
                            let mut distinct: Vec<PredId> = p.chain_arena[s..e].to_vec();
                            distinct.sort_unstable();
                            distinct.dedup();
                            self.garbage += (e - s) + distinct.len();
                            self.postings.required[ti as usize] = NEVER_CANDIDATE;
                        }
                    } else {
                        // The packed sink columns (`sink_len`, the
                        // plain-sub arena) mirror the builder sink lists
                        // and must be recompiled at the next prepare().
                        self.trie.dirty = true;
                    }
                    // Release this subscription's reference on every
                    // predicate along the chain (one bump per add) —
                    // unless a canonical group owns the references.
                    if !grouped {
                        let mut cur = n;
                        loop {
                            let nd = &self.trie.nodes[cur as usize];
                            let (pid, parent) = (nd.pid, nd.parent);
                            self.index.release(pid);
                            if parent == NO_PARENT {
                                break;
                            }
                            cur = parent;
                        }
                    }
                    true
                } else {
                    false
                }
            }
            SubLocation::Nested(i) => {
                // Nested subscriptions tombstone their plan; component
                // expressions stay registered (and keep their predicate
                // references) but their recorded paths are simply never
                // combined.
                let ns = &mut self.nested[i as usize];
                if ns.live {
                    ns.live = false;
                    true
                } else {
                    false
                }
            }
        };
        if removed {
            self.locations[sub.0 as usize] = SubLocation::Gone;
            self.removed += 1;
            if grouped {
                let gid = std::mem::replace(&mut self.sub_group[sub.0 as usize], NO_GROUP);
                let g = &mut self.groups[gid as usize];
                g.members -= 1;
                if g.members == 0 {
                    // Last member: the group releases its chain's index
                    // references and leaves the canonical lookup, so a
                    // later re-add of the same canonical form starts a
                    // fresh group (the old entry is tombstoned).
                    let chain: Vec<PredId> = g.chain.to_vec();
                    let hash = pxf_xpath::fnv1a(g.canon.as_bytes());
                    for pid in chain {
                        self.index.release(pid);
                    }
                    if let Some(bucket) = self.canon_index.get_mut(&hash) {
                        if let Some(pos) = bucket.iter().position(|&g2| g2 == gid) {
                            bucket.swap_remove(pos);
                        }
                        if bucket.is_empty() {
                            self.canon_index.remove(&hash);
                        }
                    }
                }
            }
            if patch {
                debug_assert!(self.ready_for_patch());
                self.incremental_patches += 1;
                self.maybe_compact();
            } else {
                self.postings_dirty = true;
            }
        }
        removed
    }

    fn add_nested(&mut self, expr: &XPathExpr, sub: SubId, patch: bool) -> Result<(), AddError> {
        let plan = decompose(expr);
        let comp_base = self.n_components;
        // Validate every component before registering any of them.
        let mut encoded = Vec::with_capacity(plan.components.len());
        for comp in &plan.components {
            // Components are pre-filtered structurally; attribute filters
            // are applied exactly by the combination DP, so the skeleton is
            // always encoded without attribute constraints.
            let skeleton = comp.expr.structural_skeleton();
            encoded.push(encode_single_path(
                &skeleton,
                &mut self.interner,
                AttrMode::Postponed,
            )?);
        }
        for (ci, enc) in encoded.into_iter().enumerate() {
            let preds: Box<[PredId]> = enc
                .preds
                .iter()
                .map(|p| self.index.insert(p.clone()))
                .collect();
            self.insert_expr(
                preds,
                Sink::Component {
                    comp: comp_base + ci as u32,
                },
                patch,
            );
        }
        self.n_components += plan.components.len() as u32;
        self.nested.push(NestedSub {
            sub,
            plan,
            comp_base,
            live: true,
        });
        Ok(())
    }

    fn insert_expr(&mut self, preds: Box<[PredId]>, sink: Sink, patch: bool) -> SubLocation {
        match self.algorithm {
            Algorithm::Basic => {
                self.flat.push(FlatExpr {
                    preds,
                    sinks: vec![sink],
                });
                let ei = self.flat.len() as u32 - 1;
                if patch {
                    self.patch_flat_postings(ei);
                }
                SubLocation::Flat(ei)
            }
            Algorithm::PrefixCovering | Algorithm::AccessPredicate => {
                if patch {
                    SubLocation::Node(self.patch_trie_insert(&preds, sink))
                } else {
                    SubLocation::Node(self.trie.insert(&preds, sink))
                }
            }
        }
    }

    /// Incremental posting-list patch for a newly pushed flat entry
    /// (Basic organization): its `required` count appends and the entry
    /// joins the posting list of each distinct predicate in its chain.
    fn patch_flat_postings(&mut self, ei: u32) {
        self.postings.ensure(self.index.len());
        debug_assert_eq!(self.postings.required.len(), ei as usize);
        let mut distinct: Vec<PredId> = self.flat[ei as usize].preds.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        self.postings.required.push(distinct.len() as u32);
        for pid in distinct {
            grow_span(
                &mut self.postings.entries,
                &mut self.postings.pred_span[pid.index()],
                ei,
                &mut self.garbage,
            );
        }
        if self.compile.programs {
            // Keep the compiled programs aligned with the entry store.
            let expr = &self.flat[ei as usize];
            let filtered = expr.sinks.iter().any(|s| {
                !matches!(
                    s,
                    Sink::Sub {
                        attr_check: None,
                        ..
                    }
                )
            });
            debug_assert_eq!(self.flat_programs.len(), ei as usize);
            self.flat_programs.push_chain(&expr.preds, filtered);
        }
    }

    /// Incremental trie insert (PrefixCovering / AccessPredicate): walks
    /// or creates the predicate chain exactly like [`Trie::insert`],
    /// mirroring every new node into the packed columns (and the root /
    /// `pid→root` tables), attaches the sink, and — if the node was not a
    /// terminal yet — appends a new terminal with its chain and posting
    /// entries. Leaves no dirty flags behind: the packed view stays
    /// exactly what [`Trie::finalize`] + [`FilterEngine::build_postings`]
    /// would produce, up to span layout and terminal order.
    fn patch_trie_insert(&mut self, preds: &[PredId], sink: Sink) -> u32 {
        debug_assert!(!preds.is_empty());
        self.postings.ensure(self.index.len());
        let mut current: u32 = NO_PARENT;
        for &pid in preds {
            current = match self.trie.edges.get(&(current, pid)) {
                Some(&n) => n,
                None => {
                    let parent = current;
                    let depth = if parent == NO_PARENT {
                        1
                    } else {
                        self.trie.nodes[parent as usize].depth + 1
                    };
                    let n = self.trie.alloc(pid, parent, depth);
                    self.trie.edges.insert((parent, pid), n);
                    let p = &mut self.trie.packed;
                    debug_assert_eq!(p.pid.len(), n as usize);
                    p.pid.push(pid);
                    p.parent.push(parent);
                    p.sink_len.push(0);
                    p.plain_span.push(Span::default());
                    p.child_span.push(Span::default());
                    p.term_of.push(NO_TERM);
                    if parent == NO_PARENT {
                        // New access-predicate cluster: append to the root
                        // tables (scanned linearly, order-insensitive).
                        p.root_pid.push(pid);
                        p.root_node.push(n);
                        self.postings.root_of[pid.index()] = n;
                    } else {
                        grow_span2(
                            &mut p.child_pid,
                            &mut p.child_node,
                            &mut p.child_span[parent as usize],
                            pid,
                            n,
                            &mut self.garbage,
                        );
                    }
                    n
                }
            };
        }
        let n = current;
        let plain_sub = match &sink {
            Sink::Sub {
                sub,
                attr_check: None,
            } => Some(sub.0),
            _ => None,
        };
        self.trie.nodes[n as usize].sinks.push(sink);
        let p = &mut self.trie.packed;
        p.sink_len[n as usize] += 1;
        if let Some(s) = plain_sub {
            grow_span(
                &mut p.plain_subs,
                &mut p.plain_span[n as usize],
                s,
                &mut self.garbage,
            );
        }
        if p.term_of[n as usize] == NO_TERM {
            // First sink on this node: it becomes a (new) terminal.
            if p.term_chain_start.is_empty() {
                // An empty engine prepared with zero terminals never ran
                // the chain emission, so the leading sentinel is missing.
                p.term_chain_start.push(0);
            }
            let ti = p.term_node.len() as u32;
            let mut chain: Vec<PredId> = Vec::new();
            let mut cur = n;
            loop {
                chain.push(p.pid[cur as usize]);
                let parent = p.parent[cur as usize];
                if parent == NO_PARENT {
                    break;
                }
                cur = parent;
            }
            chain.reverse();
            p.term_node.push(n);
            p.chain_arena.extend_from_slice(&chain);
            p.term_chain_start.push(p.chain_arena.len() as u32);
            p.term_of[n as usize] = ti;
            // (The new terminal carries no covering edges until the next
            // full compilation; it runs uncovered, which is sound.)
            let mut distinct = chain;
            distinct.sort_unstable();
            distinct.dedup();
            self.postings.required.push(distinct.len() as u32);
            for pid in distinct {
                grow_span(
                    &mut self.postings.entries,
                    &mut self.postings.pred_span[pid.index()],
                    ti,
                    &mut self.garbage,
                );
            }
        }
        n
    }

    /// Filters a document: returns the ids of all matching subscriptions,
    /// in ascending order.
    pub fn match_document<D: DocAccess>(&mut self, doc: &D) -> Vec<SubId> {
        self.prepare();
        let mut scratch = std::mem::take(&mut self.scratch);
        let results = self.match_document_with(doc, &mut scratch);
        self.scratch = scratch;
        results
    }

    /// Parses and filters a document in one streaming pass over the raw
    /// bytes: [`PathDoc::parse`] records leaf paths as elements close, with
    /// no `Document` tree allocation, and matching runs over the flat
    /// store. Match sets are byte-identical to the tree-based path.
    pub fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        let doc = PathDoc::parse_with_limits(bytes, self.limits)?;
        Ok(self.match_document(&doc))
    }

    /// Filters a document using caller-provided scratch. The engine itself
    /// is not mutated, so any number of scratches may be used concurrently
    /// (see [`Self::matcher`]). Requires [`Self::prepare`].
    pub fn match_document_with<D: DocAccess>(
        &self,
        doc: &D,
        scratch: &mut MatchScratch,
    ) -> Vec<SubId> {
        debug_assert!(
            !self.trie.dirty && !self.postings_dirty,
            "prepare() before match_document_with"
        );
        let MatchScratch {
            publication,
            ctx,
            state,
            stats,
        } = scratch;
        state.advance_doc_epoch();
        state.results.clear();
        state.sub_matched.resize(self.n_subs as usize);
        state.node_matched.resize(self.trie.nodes.len());
        state.node_done.resize(self.trie.nodes.len());
        state.node_sinks_done.resize(self.trie.nodes.len());
        state
            .comp_paths
            .resize_with(self.n_components as usize, Vec::new);
        let has_nested = !self.nested.is_empty();
        for cp in &mut state.comp_paths {
            cp.clear();
        }
        state.active.clear();
        let n_entries = match self.algorithm {
            Algorithm::Basic => self.flat.len(),
            _ => self.trie.packed.n_terminals(),
        };
        match self.stage2 {
            // Posting mode derives per-path candidates from satisfied
            // predicates: no per-document O(registered entries) pass.
            Stage2::Posting => {
                if state.cand.len() < n_entries {
                    state.cand.resize(n_entries, 0);
                }
            }
            Stage2::Scan => state.active.extend(0..n_entries as u32),
        }
        state.n_paths = 0;

        stats.docs += 1;
        match self.stage1 {
            Stage1::PerPath => {
                self.stage1_per_path(doc, publication, ctx, state, stats, has_nested)
            }
            Stage1::Incremental => {
                self.stage1_incremental(doc, publication, ctx, state, stats, has_nested)
            }
        }

        let t2 = Instant::now();
        for ns in &self.nested {
            if !ns.live {
                continue;
            }
            let comp_paths =
                &state.comp_paths[ns.comp_base as usize..(ns.comp_base as usize + ns.plan.len())];
            // Cheap pre-check: every component must have matched somewhere.
            if comp_paths.iter().any(|c| c.is_empty()) {
                continue;
            }
            if combine(&ns.plan, doc, &state.paths[..state.n_paths], comp_paths) {
                state.sub_matched.set(ns.sub.0 as usize, state.doc_epoch);
            }
        }
        // The ascending bitmap scan yields the sorted result list directly
        // (no per-match pushes, no sort over the matched ids).
        let mut results = std::mem::take(&mut state.results);
        let epoch = state.doc_epoch;
        state
            .sub_matched
            .for_each_set(epoch, |i| results.push(SubId(i as u32)));
        stats.matches += results.len() as u64;
        stats.other_ns += t2.elapsed().as_nanos() as u64;
        results
    }

    /// Stage 1 as the paper formulates it: encode and evaluate every
    /// root-to-leaf path independently.
    fn stage1_per_path<D: DocAccess>(
        &self,
        doc: &D,
        publication: &mut Publication,
        ctx: &mut MatchContext,
        state: &mut DocState,
        stats: &mut EngineStats,
        record_paths: bool,
    ) {
        let mut path_idx: u32 = 0;
        doc.for_each_leaf_path(|path| {
            let t0 = Instant::now();
            publication.encode_readonly(doc, path, &self.interner);
            self.index.evaluate(publication, Some(doc), ctx);
            let t1 = Instant::now();
            stats.predicate_ns += (t1 - t0).as_nanos() as u64;

            state.advance_path_epoch();
            self.run_stage2(ctx, publication, doc, state, stats, path_idx);
            stats.expression_ns += t1.elapsed().as_nanos() as u64;
            if record_paths {
                state.record_path(path.iter().copied());
            }
            path_idx += 1;
        });
    }

    /// Incremental stage 1: one enter/leave traversal of the document.
    /// Each element's predicate contributions are computed once on enter
    /// (under a [`MatchContext`] mark) and rolled back on leave, so shared
    /// path prefixes are never re-evaluated; at a leaf only the
    /// length-dependent predicates run before stage 2.
    fn stage1_incremental<D: DocAccess>(
        &self,
        doc: &D,
        publication: &mut Publication,
        ctx: &mut MatchContext,
        state: &mut DocState,
        stats: &mut EngineStats,
        record_paths: bool,
    ) {
        let t0 = Instant::now();
        publication.begin_incremental();
        ctx.begin(self.index.len());
        state.ctx_marks.clear();
        // Skipping stage 2 for a duplicate tag-sequence path is sound only
        // when the match outcome is a function of the tag sequence alone:
        // no inline attribute predicates (stage-1 pairs would differ), no
        // postponed attribute re-checks (stage 2 consults document nodes),
        // and no nested plans (component sinks must record every path
        // index, including duplicates).
        let memo_on =
            self.nested.is_empty() && !self.has_attr_checks && !self.index.has_attr_predicates();
        state.memo.clear();
        state.memo_syms.clear();
        let mut driver = IncrementalDriver {
            engine: self,
            doc,
            publication,
            ctx,
            state,
            stats,
            record_paths,
            memo_on,
            path_idx: 0,
            expr_ns: 0,
        };
        doc.for_each_element(&mut driver);
        let expr_ns = driver.expr_ns;
        stats.expression_ns += expr_ns;
        stats.predicate_ns += (t0.elapsed().as_nanos() as u64).saturating_sub(expr_ns);
    }

    fn run_stage2<D: DocAccess>(
        &self,
        ctx: &MatchContext,
        publication: &Publication,
        doc: &D,
        state: &mut DocState,
        stats: &mut EngineStats,
        path_idx: u32,
    ) {
        match (self.algorithm, self.stage2) {
            (Algorithm::Basic, Stage2::Scan) => {
                self.stage2_flat(ctx, publication, doc, state, stats, path_idx)
            }
            (Algorithm::Basic, Stage2::Posting) => {
                self.stage2_flat_posting(ctx, publication, doc, state, stats, path_idx)
            }
            (Algorithm::PrefixCovering, Stage2::Scan) => {
                self.stage2_trie(ctx, publication, doc, state, stats, path_idx)
            }
            (Algorithm::PrefixCovering, Stage2::Posting) => {
                self.stage2_trie_posting(ctx, publication, doc, state, stats, path_idx)
            }
            (Algorithm::AccessPredicate, Stage2::Scan) => {
                self.stage2_dfs(ctx, publication, doc, state, stats, path_idx)
            }
            (Algorithm::AccessPredicate, Stage2::Posting) => {
                self.stage2_dfs_posting(ctx, publication, doc, state, stats, path_idx)
            }
        }
    }
}

/// The visitor driving incremental stage 1 (see
/// [`FilterEngine::stage1_incremental`]). Invariant: between any `enter`
/// and the matching `leave`, `publication` is exactly the encoding of the
/// root-to-element path and `ctx` holds exactly the contributions of the
/// elements on that path (plus nothing else) — `ctx_marks` carries one
/// rollback point per open element.
struct IncrementalDriver<'a, 'd, D: DocAccess> {
    engine: &'a FilterEngine,
    doc: &'d D,
    publication: &'a mut Publication,
    ctx: &'a mut MatchContext,
    state: &'a mut DocState,
    stats: &'a mut EngineStats,
    record_paths: bool,
    memo_on: bool,
    path_idx: u32,
    /// Stage-2 time accumulated at leaves; subtracted from the traversal
    /// total to attribute the remainder to stage 1.
    expr_ns: u64,
}

impl<D: DocAccess> IncrementalDriver<'_, '_, D> {
    /// Handles a leaf: length-dependent predicates under a nested mark,
    /// stage 2 (or a memoized skip), rollback.
    fn leaf(&mut self) {
        let path_idx = self.path_idx;
        self.path_idx += 1;
        if self.memo_on && self.probe_memo() {
            self.stats.memo_path_skips += 1;
        } else {
            let mark = self.ctx.push_mark();
            self.engine
                .index
                .eval_leaf(self.publication, Some(self.doc), self.ctx);
            let t1 = Instant::now();
            self.state.advance_path_epoch();
            self.engine.run_stage2(
                self.ctx,
                self.publication,
                self.doc,
                self.state,
                self.stats,
                path_idx,
            );
            self.expr_ns += t1.elapsed().as_nanos() as u64;
            self.ctx.pop_to_mark(mark);
        }
        if self.record_paths {
            self.state
                .record_path(self.publication.tuples.iter().map(|t| t.node));
        }
    }

    /// True if an identical tag-sequence path was already processed in
    /// this document. Unknown paths are registered. Hash collisions are
    /// detected by comparing the stored symbol sequence and fall back to
    /// running stage 2.
    fn probe_memo(&mut self) -> bool {
        let tuples = &self.publication.tuples;
        // FNV-1a over the tag symbols.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for t in tuples {
            h ^= t.tag.index() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // 0 marks empty slots in the open-addressed table; aliasing a real
        // hash onto 1 is sound because hits verify the symbol sequence.
        if h == 0 {
            h = 1;
        }
        if let Some((start, len)) = self.state.memo.get(h) {
            let seen = &self.state.memo_syms[start as usize..(start + len) as usize];
            return seen.len() == tuples.len() && seen.iter().zip(tuples).all(|(s, t)| *s == t.tag);
        }
        let start = self.state.memo_syms.len() as u32;
        self.state.memo_syms.extend(tuples.iter().map(|t| t.tag));
        self.state.memo.insert(h, (start, tuples.len() as u32));
        false
    }
}

impl<D: DocAccess> ElementVisitor for IncrementalDriver<'_, '_, D> {
    fn enter(&mut self, id: NodeId, is_leaf: bool) {
        let tag = self
            .engine
            .interner
            .get(self.doc.tag(id))
            .unwrap_or(Symbol::UNKNOWN);
        self.state.ctx_marks.push(self.ctx.push_mark());
        self.publication.push_path_element(tag, id);
        self.engine
            .index
            .eval_enter(self.publication, Some(self.doc), self.ctx);
        if is_leaf {
            self.leaf();
        }
    }

    fn leave(&mut self, _id: NodeId) {
        self.publication.pop_path_element();
        let mark = self.state.ctx_marks.pop().expect("mark stack in sync");
        self.ctx.pop_to_mark(mark);
    }
}

/// Stage-2 evaluation: one method per (organization, candidate-generation)
/// pair, plus the shared terminal/node machinery. These live on the engine
/// so they can reach the compiled subscription-set state (predicate
/// programs, containment covering) next to the entry stores; all mutable
/// per-document state stays in the caller-owned scratch.
impl FilterEngine {
    /// Executes the structural occurrence determination of flat entry
    /// `ei`: through its compiled program when one exists (slots resolved
    /// once, no per-probe dispatch), otherwise interpreted over the
    /// `PredId` chain.
    #[inline]
    fn determine_flat(&self, ei: u32, expr: &FlatExpr, ctx: &MatchContext, runs: &mut u64) -> bool {
        if (ei as usize) < self.flat_programs.len() {
            return self.flat_programs.execute(ei, ctx, runs);
        }
        if expr.preds.iter().any(|&pid| ctx.get(pid).is_empty()) {
            return false;
        }
        *runs += 1;
        determine_match_by(expr.preds.len(), |i| ctx.get(expr.preds[i]))
    }

    /// Stage 2 for the Basic organization: every active expression
    /// independently. Expressions whose subscriptions all matched the
    /// current document — and dead entries (every sink removed) — are
    /// compacted out of the active list (stop-after-first-match, §3.1).
    #[allow(clippy::too_many_arguments)]
    fn stage2_flat<D: DocAccess>(
        &self,
        ctx: &MatchContext,
        publication: &Publication,
        doc: &D,
        state: &mut DocState,
        stats: &mut EngineStats,
        path_idx: u32,
    ) {
        let mut active = std::mem::take(&mut state.active);
        let mut write = 0;
        for read in 0..active.len() {
            let ei = active[read];
            let expr = &self.flat[ei as usize];
            if expr.sinks.is_empty() {
                // Dead entry: drop it from the active list for this
                // document.
                continue;
            }
            if self.determine_flat(ei, expr, ctx, &mut stats.occurrence_runs) {
                self.resolve_flat_sinks(ei, expr, ctx, publication, doc, state, stats, path_idx);
            }
            let resolved = expr.sinks.iter().all(|s| match s {
                Sink::Sub { sub, .. } => state.sub_matched.test(sub.0 as usize, state.doc_epoch),
                Sink::Component { .. } => false,
            });
            if !resolved {
                active[write] = ei;
                write += 1;
            }
        }
        active.truncate(write);
        state.active = active;
    }

    /// Resolves the sinks of a structurally matched flat entry. When the
    /// compiled program pre-resolved the entry as filter-free (every sink
    /// a plain subscription), resolution is a direct bitmap-marking sweep;
    /// otherwise each sink dispatches through [`process_sink`].
    #[allow(clippy::too_many_arguments)]
    fn resolve_flat_sinks<D: DocAccess>(
        &self,
        ei: u32,
        expr: &FlatExpr,
        ctx: &MatchContext,
        publication: &Publication,
        doc: &D,
        state: &mut DocState,
        stats: &mut EngineStats,
        path_idx: u32,
    ) {
        if (ei as usize) < self.flat_programs.len() && !self.flat_programs.needs_filter(ei) {
            for sink in &expr.sinks {
                if let Sink::Sub { sub, .. } = sink {
                    state.sub_matched.set(sub.0 as usize, state.doc_epoch);
                }
            }
            return;
        }
        for sink in &expr.sinks {
            process_sink(
                sink,
                &expr.preds,
                ctx,
                publication,
                doc,
                state,
                stats,
                path_idx,
            );
        }
    }

    /// Stage 2 for the `basic-pc` organization: active terminals evaluated
    /// longest-first per cluster with Algorithm 1, plus prefix-covering
    /// propagation (a match marks every prefix expression matched).
    #[allow(clippy::too_many_arguments)]
    fn stage2_trie<D: DocAccess>(
        &self,
        ctx: &MatchContext,
        publication: &Publication,
        doc: &D,
        state: &mut DocState,
        stats: &mut EngineStats,
        path_idx: u32,
    ) {
        let mut active = std::mem::take(&mut state.active);
        let mut write = 0;
        let mut read = 0;
        while read < active.len() {
            let ti = active[read];
            read += 1;
            let node = self.trie.packed.term_node[ti as usize];
            // Containment covering (or an earlier posting pass) may have
            // resolved every sink of this node already: skip evaluation.
            if !state.node_sinks_done.test(node as usize, state.doc_epoch) {
                self.eval_terminal(ti, ctx, publication, doc, state, stats, path_idx);
            }
            // Stop-after-first-match: drop the terminal from the active
            // list once every subscription it resolves has matched this
            // document.
            if !self.terminal_resolved(node, state) {
                active[write] = ti;
                write += 1;
            }
        }
        active.truncate(write);
        state.active = active;
    }

    /// Evaluates one trie terminal on the current path: occurrence
    /// determination interpreted over its packed predicate chain (already
    /// slot-resolved in the SoA arena, so a compiled program would only
    /// add an indirection), skipped when covering propagation
    /// already marked the node matched, then the propagation walk marking
    /// this node and every ancestor matched and resolving their sinks
    /// (§4.2). A first-time structural match additionally resolves the
    /// terminals this one covers by containment.
    #[allow(clippy::too_many_arguments)]
    fn eval_terminal<D: DocAccess>(
        &self,
        ti: u32,
        ctx: &MatchContext,
        publication: &Publication,
        doc: &D,
        state: &mut DocState,
        stats: &mut EngineStats,
        path_idx: u32,
    ) {
        let trie = &self.trie;
        let term_node = trie.packed.term_node[ti as usize];
        let chain = trie.packed.chain(ti);
        let node = term_node as usize;
        let evaluate = !state.node_matched.test(node, state.path_epoch);
        // Already known matched on this path via covering propagation?
        // Then its sinks were already processed.
        let mut matched_here = !evaluate;
        if evaluate && !chain.iter().any(|&pid| ctx.get(pid).is_empty()) {
            stats.occurrence_runs += 1;
            matched_here = determine_match_by(chain.len(), |i| ctx.get(chain[i]));
        }
        if matched_here && !state.node_matched.test(node, state.path_epoch) {
            // Mark this node and every ancestor (prefix expressions) as
            // structurally matched on this path, resolving their sinks.
            let mut cur = term_node;
            let mut depth = chain.len();
            loop {
                if !state.node_matched.test(cur as usize, state.path_epoch) {
                    state.node_matched.set(cur as usize, state.path_epoch);
                    let n_sinks = trie.packed.sink_len[cur as usize];
                    if cur != term_node && n_sinks != 0 {
                        stats.pc_propagations += 1;
                    }
                    let plain = trie.packed.plain_subs(cur);
                    if plain.len() as u32 == n_sinks {
                        // All sinks plain: one sweep over the packed id
                        // column resolves them.
                        for &sub in plain {
                            state.sub_matched.set(sub as usize, state.doc_epoch);
                        }
                    } else {
                        for sink in &trie.nodes[cur as usize].sinks {
                            process_sink(
                                sink,
                                &chain[..depth],
                                ctx,
                                publication,
                                doc,
                                state,
                                stats,
                                path_idx,
                            );
                        }
                    }
                }
                let parent = trie.packed.parent[cur as usize];
                if parent == NO_PARENT {
                    break;
                }
                cur = parent;
                depth -= 1;
            }
            // Containment covering: this terminal's structural match
            // carries to every terminal whose chain is a window of this
            // chain.
            self.resolve_covers(ti, state, stats);
        }
    }

    /// Resolves the terminals covered (by containment) by a structurally
    /// matched coverer `ti`: their chains occur as contiguous windows of
    /// the coverer's chain, so the coverer's occurrence combination
    /// restricts to a witness for each of them — no determination run of
    /// their own. Only all-plain-sink terminals take the shortcut: sinks
    /// with postponed attribute checks re-determine against document
    /// nodes, which a structural witness cannot subsume.
    fn resolve_covers(&self, ti: u32, state: &mut DocState, stats: &mut EngineStats) {
        for &cti in self.covering.covered_by(ti) {
            let node = self.trie.packed.term_node[cti as usize] as usize;
            if state.node_sinks_done.test(node, state.doc_epoch) {
                continue;
            }
            let n_sinks = self.trie.packed.sink_len[node];
            if n_sinks == 0 {
                // Tombstoned since the covering was built.
                continue;
            }
            let plain = self.trie.packed.plain_subs(node as u32);
            if plain.len() as u32 == n_sinks {
                for &sub in plain {
                    state.sub_matched.set(sub as usize, state.doc_epoch);
                }
                state.node_sinks_done.set(node, state.doc_epoch);
                stats.covered_skips += 1;
            }
        }
    }

    /// True when every subscription sink of the node has matched the
    /// current document (component sinks never resolve: they must record
    /// every path).
    fn terminal_resolved(&self, node: u32, state: &DocState) -> bool {
        let trie = &self.trie;
        let plain = trie.packed.plain_subs(node);
        if plain.len() as u32 == trie.packed.sink_len[node as usize] {
            return plain
                .iter()
                .all(|&sub| state.sub_matched.test(sub as usize, state.doc_epoch));
        }
        trie.nodes[node as usize].sinks.iter().all(|s| match s {
            Sink::Sub { sub, .. } => state.sub_matched.test(sub.0 as usize, state.doc_epoch),
            Sink::Component { .. } => false,
        })
    }

    /// Stage 2 for the `basic-pc-ap` organization: clusters are ruled out
    /// whole when their access predicate has no matches (paper §4.2.2); the
    /// surviving clusters are evaluated by a depth-first walk of the
    /// expression trie (paper Fig. 2) that forward-propagates the feasible
    /// occurrence set. Because the occurrence constraints form a chain
    /// (`o2[i−1] = o1[i]`), a node is reachable with a non-empty feasible set
    /// iff Algorithm 1 would report a match for the expression ending there —
    /// forward propagation is exact and needs no backtracking, and every
    /// shared predicate prefix is evaluated exactly once per path.
    ///
    /// Occurrence numbers are tracked in a 128-bit set; paths deeper than 127
    /// elements (which could alias bits) fall back to the `basic-pc`
    /// evaluation for that path.
    #[allow(clippy::too_many_arguments)]
    fn stage2_dfs<D: DocAccess>(
        &self,
        ctx: &MatchContext,
        publication: &Publication,
        doc: &D,
        state: &mut DocState,
        stats: &mut EngineStats,
        path_idx: u32,
    ) {
        if publication.length >= 128 {
            self.stage2_trie(ctx, publication, doc, state, stats, path_idx);
            return;
        }
        let packed = &self.trie.packed;
        for (i, &pid) in packed.root_pid.iter().enumerate() {
            let root = packed.root_node[i];
            if state.node_done.test(root as usize, state.doc_epoch) {
                continue;
            }
            let pairs = ctx.get(pid);
            if pairs.is_empty() {
                // Access predicate unsatisfied: the entire cluster is
                // ruled out without touching its expressions.
                continue;
            }
            let mut f: u128 = 0;
            for &(_, o2) in pairs {
                f |= 1u128 << o2;
            }
            self.dfs_node(root, f, ctx, publication, doc, state, stats, path_idx);
        }
    }

    /// Visits one trie node reached with feasible occurrence set `f_in`
    /// (non-empty): resolves its sinks (and, for terminals, the terminals
    /// they cover by containment), recurses into children whose predicate
    /// chains on, and returns whether the whole subtree is now resolved
    /// for this document.
    #[allow(clippy::too_many_arguments)]
    fn dfs_node<D: DocAccess>(
        &self,
        n: u32,
        f_in: u128,
        ctx: &MatchContext,
        publication: &Publication,
        doc: &D,
        state: &mut DocState,
        stats: &mut EngineStats,
        path_idx: u32,
    ) -> bool {
        debug_assert_ne!(f_in, 0);
        stats.occurrence_runs += 1;
        let trie = &self.trie;
        let packed = &trie.packed;
        let has_sinks = packed.sink_len[n as usize] != 0;
        if has_sinks && !state.node_sinks_done.test(n as usize, state.doc_epoch) {
            let plain = packed.plain_subs(n);
            if plain.len() as u32 == packed.sink_len[n as usize] {
                // Every sink is a plain subscription: resolution is one
                // bitmap-marking sweep over the packed id column (4 bytes
                // per sink, no enum dispatch), and the node is then fully
                // resolved for this document.
                for &sub in plain {
                    state.sub_matched.set(sub as usize, state.doc_epoch);
                }
                state.node_sinks_done.set(n as usize, state.doc_epoch);
            } else {
                let sinks = &trie.nodes[n as usize].sinks;
                // Selection-postponed attribute checks need the predicate
                // chain of this node; collect it (into a reused buffer)
                // only when some sink asks.
                let mut chain = std::mem::take(&mut state.chain_buf);
                chain.clear();
                if sinks.iter().any(|s| {
                    matches!(
                        s,
                        Sink::Sub {
                            attr_check: Some(_),
                            ..
                        }
                    )
                }) {
                    let mut cur = n;
                    loop {
                        chain.push(packed.pid[cur as usize]);
                        let parent = packed.parent[cur as usize];
                        if parent == NO_PARENT {
                            break;
                        }
                        cur = parent;
                    }
                    chain.reverse();
                }
                for sink in sinks {
                    process_sink(sink, &chain, ctx, publication, doc, state, stats, path_idx);
                }
                state.chain_buf = chain;
                if sinks.iter().all(|s| match s {
                    Sink::Sub { sub, .. } => {
                        state.sub_matched.test(sub.0 as usize, state.doc_epoch)
                    }
                    Sink::Component { .. } => false,
                }) {
                    state.node_sinks_done.set(n as usize, state.doc_epoch);
                }
            }
            // The chain to this node matched structurally: resolve the
            // terminals it covers by containment.
            let ti = packed.term_of[n as usize];
            if ti != NO_TERM {
                self.resolve_covers(ti, state, stats);
            }
        }
        let mut all_done = !has_sinks || state.node_sinks_done.test(n as usize, state.doc_epoch);
        let (child_pids, child_nodes) = packed.children(n);
        for (&cpid, &child) in child_pids.iter().zip(child_nodes) {
            if state.node_done.test(child as usize, state.doc_epoch) {
                continue;
            }
            let mut f: u128 = 0;
            for &(o1, o2) in ctx.get(cpid) {
                if f_in & (1u128 << o1) != 0 {
                    f |= 1u128 << o2;
                }
            }
            let done = if f != 0 {
                self.dfs_node(child, f, ctx, publication, doc, state, stats, path_idx)
            } else {
                false
            };
            if !done {
                all_done = false;
            }
        }
        if all_done {
            state.node_done.set(n as usize, state.doc_epoch);
        }
        all_done
    }

    /// Builds the current path's stage-2 candidate list from the satisfied
    /// predicates' posting lists by counting: each satisfied predicate bumps
    /// the per-entry counter of every entry in its posting list; an entry
    /// whose counter reaches its distinct-predicate count has its *entire*
    /// chain satisfied and enters `cand_buf`. Counters are path-epoch-stamped
    /// (no per-path clearing), so the whole pass costs exactly the sum of the
    /// satisfied predicates' posting-list lengths — independent of how many
    /// expressions are registered.
    fn build_candidates(&self, ctx: &MatchContext, state: &mut DocState, stats: &mut EngineStats) {
        let postings = &self.postings;
        state.cand_buf.clear();
        // Counter slots pack `(path_epoch << 32) | count` into one u64: a
        // stale slot is recognized by its high half and restarted at 1
        // with a single store — one load/store per bump, no separate
        // epoch array.
        let tag = (state.path_epoch as u64) << 32;
        for &pid in ctx.matched() {
            let list = postings.of(pid.index());
            for &ei in list {
                let e = ei as usize;
                let slot = state.cand[e];
                let slot = if slot & 0xffff_ffff_0000_0000 == tag {
                    slot + 1
                } else {
                    tag | 1
                };
                state.cand[e] = slot;
                if slot as u32 == postings.required[e] {
                    state.cand_buf.push(ei);
                }
            }
            stats.posting_bumps += list.len() as u64;
        }
        stats.stage2_candidates += state.cand_buf.len() as u64;
    }

    /// Posting-driven stage 2 for the Basic organization: only
    /// expressions whose full predicate set matched this path are
    /// visited; no scan over the registered list.
    #[allow(clippy::too_many_arguments)]
    fn stage2_flat_posting<D: DocAccess>(
        &self,
        ctx: &MatchContext,
        publication: &Publication,
        doc: &D,
        state: &mut DocState,
        stats: &mut EngineStats,
        path_idx: u32,
    ) {
        self.build_candidates(ctx, state, stats);
        let cand = std::mem::take(&mut state.cand_buf);
        for &ei in &cand {
            let expr = &self.flat[ei as usize];
            // Stop-after-first-match (§3.1): an entry all of whose
            // subscriptions already matched this document is skipped
            // without re-determination (the scan formulation compacts it
            // out of the active list). Dead entries never surface —
            // their `required` is the never-candidate sentinel.
            let resolved = expr.sinks.iter().all(|s| match s {
                Sink::Sub { sub, .. } => state.sub_matched.test(sub.0 as usize, state.doc_epoch),
                Sink::Component { .. } => false,
            });
            if resolved {
                continue;
            }
            if self.determine_flat(ei, expr, ctx, &mut stats.occurrence_runs) {
                self.resolve_flat_sinks(ei, expr, ctx, publication, doc, state, stats, path_idx);
            }
        }
        state.cand_buf = cand;
    }

    /// Posting-driven stage 2 for the `basic-pc` organization: candidate
    /// terminals (full chain satisfied) evaluated in terminal order —
    /// which [`Trie::finalize`] sorted longest-first per cluster — so
    /// covering propagation fires exactly as in the scan formulation.
    #[allow(clippy::too_many_arguments)]
    fn stage2_trie_posting<D: DocAccess>(
        &self,
        ctx: &MatchContext,
        publication: &Publication,
        doc: &D,
        state: &mut DocState,
        stats: &mut EngineStats,
        path_idx: u32,
    ) {
        self.build_candidates(ctx, state, stats);
        let mut cand = std::mem::take(&mut state.cand_buf);
        // Candidates surface in satisfied-predicate order; restore the
        // terminal-list order (ascending index) for longest-first
        // evaluation.
        cand.sort_unstable();
        for &ti in &cand {
            let node = self.trie.packed.term_node[ti as usize];
            // Stop-after-first-match: once every sink of this node
            // matched the document (or containment covering resolved
            // them), a doc-epoch stamp turns all later visits into an
            // O(1) skip (the scan formulation drops it from the active
            // list).
            if state.node_sinks_done.test(node as usize, state.doc_epoch) {
                continue;
            }
            self.eval_terminal(ti, ctx, publication, doc, state, stats, path_idx);
            if self.terminal_resolved(node, state) {
                state.node_sinks_done.set(node as usize, state.doc_epoch);
            }
        }
        state.cand_buf = cand;
    }

    /// Posting-driven stage 2 for the `basic-pc-ap` organization: instead
    /// of iterating every cluster root to find the ones whose access
    /// predicate matched, probe the dense `pid → root` map once per
    /// *satisfied* predicate — unmatched clusters are never even looked
    /// at. The per-path cost is one array probe per satisfied predicate
    /// plus the DFS over the reachable (satisfied-access-predicate)
    /// clusters.
    #[allow(clippy::too_many_arguments)]
    fn stage2_dfs_posting<D: DocAccess>(
        &self,
        ctx: &MatchContext,
        publication: &Publication,
        doc: &D,
        state: &mut DocState,
        stats: &mut EngineStats,
        path_idx: u32,
    ) {
        if publication.length >= 128 {
            self.stage2_trie_posting(ctx, publication, doc, state, stats, path_idx);
            return;
        }
        // Probe in whichever direction is cheaper for this path: the
        // satisfied predicates (output-sensitive — wins when few
        // predicates hold against a large registered alphabet) or the
        // root table (bounded by the distinct first components, wins on
        // deep paths that satisfy many predicates). Both visit exactly
        // the clusters whose access predicate holds, in an order that
        // cannot affect results (clusters are disjoint), and
        // `ap_root_probes` counts those clusters either way.
        let packed = &self.trie.packed;
        if packed.root_pid.len() <= ctx.matched().len() {
            for (i, &pid) in packed.root_pid.iter().enumerate() {
                let root = packed.root_node[i];
                let pairs = ctx.get(pid);
                if pairs.is_empty() {
                    continue;
                }
                stats.ap_root_probes += 1;
                if state.node_done.test(root as usize, state.doc_epoch) {
                    continue;
                }
                let mut f: u128 = 0;
                for &(_, o2) in pairs {
                    f |= 1u128 << o2;
                }
                self.dfs_node(root, f, ctx, publication, doc, state, stats, path_idx);
            }
            return;
        }
        for &pid in ctx.matched() {
            let root = self.postings.root_of[pid.index()];
            if root == NO_ROOT {
                continue;
            }
            stats.ap_root_probes += 1;
            if state.node_done.test(root as usize, state.doc_epoch) {
                continue;
            }
            let pairs = ctx.get(pid);
            debug_assert!(
                !pairs.is_empty(),
                "matched() lists only satisfied predicates"
            );
            let mut f: u128 = 0;
            for &(_, o2) in pairs {
                f |= 1u128 << o2;
            }
            self.dfs_node(root, f, ctx, publication, doc, state, stats, path_idx);
        }
    }
}

/// Resolves a structural match of an expression (on the current path) into
/// subscription results or component path records, applying postponed
/// attribute checks where present.
#[allow(clippy::too_many_arguments)]
fn process_sink<D: DocAccess>(
    sink: &Sink,
    preds: &[PredId],
    ctx: &MatchContext,
    publication: &Publication,
    doc: &D,
    state: &mut DocState,
    stats: &mut EngineStats,
    path_idx: u32,
) {
    match sink {
        Sink::Sub { sub, attr_check } => {
            if state.sub_matched.test(sub.0 as usize, state.doc_epoch) {
                return;
            }
            if let Some(check) = attr_check {
                // Selection postponed: repeat the occurrence determination
                // admitting only pairs whose nodes pass the attribute
                // filters (paper §5). Each level's pairs are filtered once
                // up front (admissibility does not depend on the search
                // state), then the plain determination runs on the
                // filtered lists.
                stats.occurrence_runs += 1;
                if state.sp_bufs.len() < preds.len() {
                    state.sp_bufs.resize_with(preds.len(), Vec::new);
                }
                for (level, &pid) in preds.iter().enumerate() {
                    let buf = &mut state.sp_bufs[level];
                    buf.clear();
                    for &pair in ctx.get(pid) {
                        if check.admit(level, pair, publication, doc) {
                            buf.push(pair);
                        }
                    }
                    if buf.is_empty() {
                        return;
                    }
                }
                let bufs = &state.sp_bufs;
                if !determine_match_by(preds.len(), |i| bufs[i].as_slice()) {
                    return;
                }
            }
            // Marking the bit is the whole result record: the final
            // ascending bitmap scan emits the sorted id list.
            state.sub_matched.set(sub.0 as usize, state.doc_epoch);
        }
        Sink::Component { comp } => {
            let cp = &mut state.comp_paths[*comp as usize];
            if cp.last() != Some(&path_idx) {
                cp.push(path_idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::matches_document;
    use pxf_xml::Document;
    use pxf_xpath::parse;

    const ALGOS: [Algorithm; 3] = [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ];

    fn doc(xml: &str) -> Document {
        Document::parse(xml.as_bytes()).unwrap()
    }

    /// Every (algorithm, attr-mode) combination must agree with the
    /// reference oracle on this expression/document catalog.
    #[test]
    fn engines_agree_with_oracle() {
        let exprs = [
            "/a/b/b",
            "a",
            "a/a/b/c",
            "/a/*/*/b",
            "/a/b/*/*",
            "/*/a/b",
            "/*/*/*/*",
            "a/b/*/*",
            "*/*/a/*/b",
            "a/*/*/b/c",
            "*/*/*/*",
            "/a//b/c",
            "/*/b//c/*",
            "a/b//c",
            "*/a/*/b//c/*/*",
            "a//b/c",
            "c//b//a",
            "a/c/*/a//c",
            "a//c/*/a/c",
            "//b",
            "/a",
            "b/c",
        ];
        let docs = [
            "<a><b><b/></b></a>",
            "<a><b><c><a><b><c/></b></a></c></b></a>",
            "<x><y><z/></y></x>",
            "<a><c><x><a><q><c/></q></a></x></c></a>",
            "<a><b/><b><c/></b><d><e><f/></e></d></a>",
            "<r><a><b/></a><a><a><b><c/></b></a></a></r>",
        ];
        for algo in ALGOS {
            for mode in [AttrMode::Inline, AttrMode::Postponed] {
                let mut engine = FilterEngine::new(algo, mode);
                let subs: Vec<SubId> = exprs
                    .iter()
                    .map(|e| engine.add(&parse(e).unwrap()).unwrap())
                    .collect();
                for d in docs {
                    let document = doc(d);
                    let matched = engine.match_document(&document);
                    for (e, s) in exprs.iter().zip(&subs) {
                        let expected = matches_document(&parse(e).unwrap(), &document);
                        assert_eq!(
                            matched.contains(s),
                            expected,
                            "{algo:?}/{mode:?}: {e} over {d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn attribute_modes_agree() {
        let exprs = [
            "/a/b[@x = 1]",
            "/a/b[@x >= 2]",
            "a[@y = \"hi\"]//c",
            "/a[@x]/b",
            "/a/b[@x = 1][@y = 2]",
            "*/b[@x != 1]",
        ];
        let docs = [
            r#"<a><b x="1"/></a>"#,
            r#"<a><b x="2" y="2"/></a>"#,
            r#"<a y="hi"><q><c/></q></a>"#,
            r#"<a x="0"><b x="1" y="2"/></a>"#,
            r#"<a><b/></a>"#,
        ];
        for algo in ALGOS {
            let mut inline = FilterEngine::new(algo, AttrMode::Inline);
            let mut postponed = FilterEngine::new(algo, AttrMode::Postponed);
            for e in exprs {
                inline.add(&parse(e).unwrap()).unwrap();
                postponed.add(&parse(e).unwrap()).unwrap();
            }
            for d in docs {
                let document = doc(d);
                assert_eq!(
                    inline.match_document(&document),
                    postponed.match_document(&document),
                    "{algo:?} over {d}"
                );
                // And both agree with the oracle.
                let matched = inline.match_document(&document);
                for (i, e) in exprs.iter().enumerate() {
                    assert_eq!(
                        matched.contains(&SubId(i as u32)),
                        matches_document(&parse(e).unwrap(), &document),
                        "{algo:?}/{e} over {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_subscriptions_all_reported() {
        for algo in ALGOS {
            let mut engine = FilterEngine::new(algo, AttrMode::Inline);
            let s1 = engine.add(&parse("/a/b").unwrap()).unwrap();
            let s2 = engine.add(&parse("/a/b").unwrap()).unwrap();
            let s3 = engine.add(&parse("/a/c").unwrap()).unwrap();
            let matched = engine.match_document(&doc("<a><b/></a>"));
            assert_eq!(matched, vec![s1, s2], "{algo:?}");
            assert!(!matched.contains(&s3));
        }
    }

    #[test]
    fn prefix_covering_propagates() {
        let mut engine = FilterEngine::new(Algorithm::PrefixCovering, AttrMode::Inline);
        let short = engine.add(&parse("/a/b").unwrap()).unwrap();
        let long = engine.add(&parse("/a/b/c/d").unwrap()).unwrap();
        let matched = engine.match_document(&doc("<a><b><c><d/></c></b></a>"));
        assert_eq!(matched, vec![short, long]);
        let stats = engine.stats();
        // The short expression is a predicate-prefix of the long one: it
        // must have been resolved by propagation, not by its own run.
        assert!(stats.pc_propagations >= 1, "stats: {stats:?}");
    }

    #[test]
    fn access_predicate_probes_only_satisfied_clusters() {
        let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
        engine.add(&parse("/zzz/yyy").unwrap()).unwrap();
        engine.add(&parse("/zzz/xxx").unwrap()).unwrap();
        engine.add(&parse("/a/b").unwrap()).unwrap();
        let matched = engine.match_document(&doc("<a><b/></a>"));
        assert_eq!(matched, vec![SubId(2)]);
        let stats = engine.stats();
        // The two /zzz expressions share one cluster whose access
        // predicate never matches: only the /a cluster is probed.
        assert_eq!(stats.ap_root_probes, 1, "stats: {stats:?}");
    }

    /// The posting-driven stage 2 (default) and the scan formulation
    /// produce identical match sets over the engines_agree catalog.
    #[test]
    fn stage2_modes_agree() {
        let exprs = ["/a/b/b", "a/a/b/c", "/a//b/c", "a//b/c", "//b", "b/c"];
        let docs = [
            "<a><b><b/></b></a>",
            "<a><b><c><a><b><c/></b></a></c></b></a>",
            "<a><b/><b><c/></b><d><e><f/></e></d></a>",
        ];
        for algo in ALGOS {
            for mode in [AttrMode::Inline, AttrMode::Postponed] {
                let mut posting = FilterEngine::new(algo, mode);
                let mut scan = FilterEngine::new(algo, mode);
                scan.set_stage2(Stage2::Scan);
                assert_eq!(posting.stage2(), Stage2::Posting);
                for e in exprs {
                    posting.add(&parse(e).unwrap()).unwrap();
                    scan.add(&parse(e).unwrap()).unwrap();
                }
                for d in docs {
                    let document = doc(d);
                    assert_eq!(
                        posting.match_document(&document),
                        scan.match_document(&document),
                        "{algo:?}/{mode:?} over {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn nested_subscriptions_through_engine() {
        for algo in ALGOS {
            let mut engine = FilterEngine::new(algo, AttrMode::Inline);
            let both = engine.add(&parse("//a[b][c]").unwrap()).unwrap();
            let deep = engine.add(&parse("/a[b[c]]").unwrap()).unwrap();
            let paper = engine.add(&parse("/a[*/c[d]/e]//c[d]/e").unwrap()).unwrap();
            let plain = engine.add(&parse("/r//a").unwrap()).unwrap();

            let d1 = doc("<r><a><b/><c/></a></r>");
            assert_eq!(engine.match_document(&d1), vec![both, plain], "{algo:?}");

            let d2 = doc("<r><a><b/></a><a><c/></a></r>");
            assert_eq!(engine.match_document(&d2), vec![plain], "{algo:?}");

            let d3 = doc("<a><b><c/></b></a>");
            assert_eq!(engine.match_document(&d3), vec![deep], "{algo:?}");

            let d4 = doc("<a><x><c><d/><e/></c></x><y><c><d/><e/></c></y></a>");
            assert_eq!(engine.match_document(&d4), vec![paper], "{algo:?}");
        }
    }

    #[test]
    fn repeated_documents_are_independent() {
        let mut engine = FilterEngine::default();
        let s = engine.add(&parse("/a/b").unwrap()).unwrap();
        assert_eq!(engine.match_document(&doc("<a><b/></a>")), vec![s]);
        assert!(engine.match_document(&doc("<x/>")).is_empty());
        assert_eq!(engine.match_document(&doc("<a><b/></a>")), vec![s]);
    }

    #[test]
    fn adding_after_matching_works() {
        let mut engine = FilterEngine::default();
        let s1 = engine.add(&parse("/a").unwrap()).unwrap();
        assert_eq!(engine.match_document(&doc("<a/>")), vec![s1]);
        let s2 = engine.add(&parse("/a/b").unwrap()).unwrap();
        assert_eq!(engine.match_document(&doc("<a><b/></a>")), vec![s1, s2]);
    }

    #[test]
    fn distinct_predicate_sharing() {
        let mut engine = FilterEngine::default();
        engine.add(&parse("/a/b/c/d").unwrap()).unwrap();
        let n1 = engine.distinct_predicates();
        // b/c occurs inside: shares (d(p_b,p_c), =, 1).
        engine.add(&parse("b/c").unwrap()).unwrap();
        let n2 = engine.distinct_predicates();
        assert_eq!(n1, 4);
        assert_eq!(n2, 4, "b/c must reuse the stored predicate");
        engine.add(&parse("b//c").unwrap()).unwrap();
        assert_eq!(engine.distinct_predicates(), 5);
    }

    #[test]
    fn stats_accumulate() {
        let mut engine = FilterEngine::default();
        engine.add(&parse("/a/b").unwrap()).unwrap();
        engine.match_document(&doc("<a><b/></a>"));
        engine.match_document(&doc("<a><b/></a>"));
        let stats = engine.stats();
        assert_eq!(stats.docs, 2);
        assert_eq!(stats.matches, 2);
        assert!(stats.occurrence_runs >= 2);
        engine.reset_stats();
        assert_eq!(engine.stats().docs, 0);
    }

    #[test]
    fn empty_engine_matches_nothing() {
        let mut engine = FilterEngine::default();
        assert!(engine.is_empty());
        assert!(engine.match_document(&doc("<a/>")).is_empty());
    }

    #[test]
    fn add_str_reports_parse_errors() {
        let mut engine = FilterEngine::default();
        assert!(engine.add_str("/a[").is_err());
        assert!(engine.add_str("/a/*[@x = 1]").is_err());
    }

    /// Postponed attribute filters on a prefix expression are still checked
    /// when the match arrives via covering propagation.
    #[test]
    fn postponed_attrs_checked_under_propagation() {
        let mut engine = FilterEngine::new(Algorithm::PrefixCovering, AttrMode::Postponed);
        let filtered = engine.add(&parse("/a/b[@x = 9]").unwrap()).unwrap();
        let longer = engine.add(&parse("/a/b/c").unwrap()).unwrap();
        // The structural prefix /a/b matches via propagation from /a/b/c,
        // but the attribute filter x=9 fails.
        let matched = engine.match_document(&doc(r#"<a><b x="1"><c/></b></a>"#));
        assert_eq!(matched, vec![longer]);
        let matched = engine.match_document(&doc(r#"<a><b x="9"><c/></b></a>"#));
        assert_eq!(matched, vec![filtered, longer]);
    }
}

#[cfg(test)]
mod removal_tests {
    use super::*;
    use pxf_xml::Document;
    use pxf_xpath::parse;

    fn doc(xml: &str) -> Document {
        Document::parse(xml.as_bytes()).unwrap()
    }

    const ALGOS: [Algorithm; 3] = [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ];

    #[test]
    fn removed_subscriptions_stop_matching() {
        for algo in ALGOS {
            let mut engine = FilterEngine::new(algo, AttrMode::Inline);
            let s1 = engine.add(&parse("/a/b").unwrap()).unwrap();
            let s2 = engine.add(&parse("/a/b").unwrap()).unwrap(); // duplicate
            let s3 = engine.add(&parse("//b").unwrap()).unwrap();
            let d = doc("<a><b/></a>");
            assert_eq!(engine.match_document(&d), vec![s1, s2, s3], "{algo:?}");
            assert!(engine.remove(s1));
            assert_eq!(engine.match_document(&d), vec![s2, s3], "{algo:?}");
            assert!(!engine.remove(s1), "double remove must return false");
            assert_eq!(engine.len(), 2);
            assert!(engine.remove(s2));
            assert!(engine.remove(s3));
            assert!(engine.is_empty());
            assert!(engine.match_document(&d).is_empty(), "{algo:?}");
        }
    }

    #[test]
    fn removal_keeps_other_subscriptions_intact() {
        for algo in ALGOS {
            let mut engine = FilterEngine::new(algo, AttrMode::Postponed);
            let subs: Vec<SubId> = ["/a/b", "/a/b/c", "/a", "a/b[@x = 1]", "//c"]
                .iter()
                .map(|s| engine.add(&parse(s).unwrap()).unwrap())
                .collect();
            let d = doc(r#"<a><b x="1"><c/></b></a>"#);
            assert_eq!(engine.match_document(&d), subs, "{algo:?}");
            // Remove the middle of the prefix chain.
            assert!(engine.remove(subs[0]));
            let expected: Vec<SubId> = subs[1..].to_vec();
            assert_eq!(engine.match_document(&d), expected, "{algo:?}");
        }
    }

    #[test]
    fn nested_subscription_removal() {
        for algo in ALGOS {
            let mut engine = FilterEngine::new(algo, AttrMode::Inline);
            let tree = engine.add(&parse("/a[b]/c").unwrap()).unwrap();
            let plain = engine.add(&parse("/a/c").unwrap()).unwrap();
            let d = doc("<a><b/><c/></a>");
            assert_eq!(engine.match_document(&d), vec![tree, plain]);
            assert!(engine.remove(tree));
            assert_eq!(engine.match_document(&d), vec![plain]);
            assert!(!engine.remove(tree));
        }
    }

    #[test]
    fn add_after_remove_allocates_fresh_ids() {
        let mut engine = FilterEngine::default();
        let s1 = engine.add(&parse("/a").unwrap()).unwrap();
        engine.remove(s1);
        let s2 = engine.add(&parse("/b").unwrap()).unwrap();
        assert_ne!(s1, s2);
        let d = doc("<b/>");
        assert_eq!(engine.match_document(&d), vec![s2]);
    }

    #[test]
    fn remove_unknown_id_is_noop() {
        let mut engine = FilterEngine::default();
        assert!(!engine.remove(SubId(42)));
    }
}
