//! Mapping XPath expressions to ordered sets of predicates (paper §3.2).
//!
//! The encoding records the position of the first non-wildcarded location
//! step and the relative position between every two adjacent tags — just
//! enough information to uniquely represent each XPE while maximizing
//! predicate sharing between expressions:
//!
//! * the first tagged step yields an **absolute** predicate — `=` for
//!   absolute expressions without a `//` before the tag, `≥` otherwise; for
//!   relative expressions it is emitted only when it carries information
//!   (leading wildcards, or a single-tag expression with no other
//!   predicates),
//! * every pair of adjacent tagged steps yields a **relative** predicate
//!   whose value is the step distance — `=` when only `/` lies between
//!   them, `≥` when some `//` does,
//! * trailing wildcards yield an **end-of-path** predicate,
//! * an expression of only wildcards collapses to a single
//!   **length-of-expression** predicate.

use pxf_predicate::{AttrConstraint, PosOp, Predicate, TagVar};
use pxf_xml::Interner;
use pxf_xpath::{Axis, Step, XPathExpr};
use std::fmt;

/// Error produced when an expression cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Attribute filters can only be attached to named steps: the paper's
    /// attribute predicates ride on tag variables, and a wildcard step has
    /// none.
    AttrFilterOnWildcard,
    /// The expression contains nested path filters; decompose it first
    /// (see [`crate::nested`]).
    NestedPath,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::AttrFilterOnWildcard => {
                write!(f, "attribute filters on wildcard steps are not supported")
            }
            EncodeError::NestedPath => write!(
                f,
                "expression contains nested path filters; decompose before encoding"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

/// How attribute filters are handled during encoding (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttrMode {
    /// *Inline*: attribute predicates are attached to the tag variables of
    /// the positional predicates and evaluated during predicate matching.
    Inline,
    /// *Selection postponed*: positional predicates are encoded without
    /// attribute constraints; attribute filters are re-checked only for
    /// structurally matched expressions.
    #[default]
    Postponed,
}

/// The ordered predicate encoding of a single-path XPE, plus the mapping
/// from predicate tag slots back to location steps (needed by the
/// selection-postponed attribute check).
#[derive(Debug, Clone)]
pub struct EncodedPath {
    /// The ordered predicates.
    pub preds: Vec<Predicate>,
    /// For each predicate, the 0-based step indices its (first, second) tag
    /// variables refer to. `None` for length predicates.
    pub slots: Vec<(Option<usize>, Option<usize>)>,
}

/// Encodes a single-path XPE (no nested path filters) into its ordered
/// predicate sequence.
pub fn encode_single_path(
    expr: &XPathExpr,
    interner: &mut Interner,
    mode: AttrMode,
) -> Result<EncodedPath, EncodeError> {
    let steps = &expr.steps;
    let n = steps.len();
    debug_assert!(n > 0);
    for step in steps {
        if step.path_filters().next().is_some() {
            return Err(EncodeError::NestedPath);
        }
        if step.test.is_wildcard() && step.attr_filters().next().is_some() {
            return Err(EncodeError::AttrFilterOnWildcard);
        }
    }

    let tagged: Vec<usize> = steps
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.test.is_wildcard())
        .map(|(i, _)| i)
        .collect();

    let mut preds = Vec::with_capacity(tagged.len() + 1);
    let mut slots = Vec::with_capacity(tagged.len() + 1);

    if tagged.is_empty() {
        // Only wildcards: the expression constrains nothing but the path
        // length (s7, s11 — absolute and relative collapse to the same
        // predicate, which is exactly the paper's matching semantic).
        preds.push(Predicate::length(n as u32));
        slots.push((None, None));
        return Ok(EncodedPath { preds, slots });
    }

    // In inline mode a step's attribute filters are attached to exactly one
    // tag variable — the first predicate slot that references the step
    // (paper §5: "the attribute predicate can be attached to any tag name
    // variable"). Attaching once keeps the *other* predicates referencing
    // the same tag identical across expressions, preserving sharing.
    let mut attached = vec![false; n];
    let mut tag_var = |step_idx: usize, interner: &mut Interner| -> TagVar {
        let step: &Step = &steps[step_idx];
        let sym = interner.intern(step.test.tag().expect("tagged step"));
        if mode == AttrMode::Inline && !attached[step_idx] {
            attached[step_idx] = true;
            let attrs: Vec<AttrConstraint> = step
                .attr_filters()
                .map(|f| AttrConstraint {
                    name: f.name.as_str().into(),
                    constraint: f.constraint.clone(),
                })
                .collect();
            if !attrs.is_empty() {
                return TagVar::with_attrs(sym, attrs);
            }
        }
        TagVar::plain(sym)
    };

    let first = tagged[0];
    let m1 = (first + 1) as u32;
    // A `//` anywhere up to and including the first tagged step makes its
    // position a lower bound rather than exact.
    let desc_before = steps[..=first].iter().any(|s| s.axis == Axis::Descendant);

    let trailing = n - 1 - *tagged.last().unwrap();
    let will_emit_others = tagged.len() > 1 || trailing > 0;

    if expr.absolute {
        let op = if desc_before { PosOp::Ge } else { PosOp::Eq };
        preds.push(Predicate::Absolute {
            tag: tag_var(first, interner),
            op,
            value: m1,
        });
        slots.push((Some(first), Some(first)));
    } else if m1 > 1 || !will_emit_others {
        // Relative expressions: `(p_t1, ≥, 1)` is vacuous whenever other
        // predicates reference t1 (s3, s8), so it is only emitted for
        // leading wildcards (s9) or bare single-tag expressions (s2).
        preds.push(Predicate::Absolute {
            tag: tag_var(first, interner),
            op: PosOp::Ge,
            value: m1,
        });
        slots.push((Some(first), Some(first)));
    } else if mode == AttrMode::Inline && steps[first].attr_filters().next().is_some() {
        // Inline mode must still surface the first tag's attribute filters
        // even when the positional predicate would be vacuous: emit the
        // (p_t1, ≥, 1) predicate carrying them. Without this the filter on
        // the first step of e.g. `a[@x=1]/b` would be silently dropped.
        preds.push(Predicate::Absolute {
            tag: tag_var(first, interner),
            op: PosOp::Ge,
            value: m1,
        });
        slots.push((Some(first), Some(first)));
    }

    for w in tagged.windows(2) {
        let (i, j) = (w[0], w[1]);
        let gap = (j - i) as u32;
        let desc_between = steps[i + 1..=j].iter().any(|s| s.axis == Axis::Descendant);
        let op = if desc_between { PosOp::Ge } else { PosOp::Eq };
        preds.push(Predicate::Relative {
            from: tag_var(i, interner),
            to: tag_var(j, interner),
            op,
            value: gap,
        });
        slots.push((Some(i), Some(j)));
    }

    if trailing > 0 {
        let last = *tagged.last().unwrap();
        preds.push(Predicate::EndOfPath {
            tag: tag_var(last, interner),
            value: trailing as u32,
        });
        slots.push((Some(last), Some(last)));
    }

    Ok(EncodedPath { preds, slots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxf_xpath::parse;

    fn encode_str(src: &str) -> String {
        let expr = parse(src).unwrap();
        let mut interner = Interner::new();
        let enc = encode_single_path(&expr, &mut interner, AttrMode::Postponed).unwrap();
        enc.preds
            .iter()
            .map(|p| p.to_notation(&interner))
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    fn encode_str_inline(src: &str) -> String {
        let expr = parse(src).unwrap();
        let mut interner = Interner::new();
        let enc = encode_single_path(&expr, &mut interner, AttrMode::Inline).unwrap();
        enc.preds
            .iter()
            .map(|p| p.to_notation(&interner))
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Paper §3.2 "Simple XPEs": s1–s3.
    #[test]
    fn simple_xpes() {
        assert_eq!(
            encode_str("/a/b/b"),
            "(p_a, =, 1) -> (d(p_a, p_b), =, 1) -> (d(p_b, p_b), =, 1)"
        );
        assert_eq!(encode_str("a"), "(p_a, >=, 1)");
        assert_eq!(
            encode_str("a/a/b/c"),
            "(d(p_a, p_a), =, 1) -> (d(p_a, p_b), =, 1) -> (d(p_b, p_c), =, 1)"
        );
    }

    /// Paper §3.2 "Wildcards in XPEs": s4–s11.
    #[test]
    fn wildcard_xpes() {
        assert_eq!(encode_str("/a/*/*/b"), "(p_a, =, 1) -> (d(p_a, p_b), =, 3)");
        assert_eq!(
            encode_str("/a/b/*/*"),
            "(p_a, =, 1) -> (d(p_a, p_b), =, 1) -> (p_b-|, >=, 2)"
        );
        assert_eq!(encode_str("/*/a/b"), "(p_a, =, 2) -> (d(p_a, p_b), =, 1)");
        assert_eq!(encode_str("/*/*/*/*"), "(length, >=, 4)");
        assert_eq!(
            encode_str("a/b/*/*"),
            "(d(p_a, p_b), =, 1) -> (p_b-|, >=, 2)"
        );
        assert_eq!(
            encode_str("*/*/a/*/b"),
            "(p_a, >=, 3) -> (d(p_a, p_b), =, 2)"
        );
        assert_eq!(
            encode_str("a/*/*/b/c"),
            "(d(p_a, p_b), =, 3) -> (d(p_b, p_c), =, 1)"
        );
        assert_eq!(encode_str("*/*/*/*"), "(length, >=, 4)");
    }

    /// Paper §3.2 "Descendant operator in XPEs": s12–s15.
    #[test]
    fn descendant_xpes() {
        assert_eq!(
            encode_str("/a//b/c"),
            "(p_a, =, 1) -> (d(p_a, p_b), >=, 1) -> (d(p_b, p_c), =, 1)"
        );
        assert_eq!(
            encode_str("/*/b//c/*"),
            "(p_b, =, 2) -> (d(p_b, p_c), >=, 1) -> (p_c-|, >=, 1)"
        );
        assert_eq!(
            encode_str("a/b//c"),
            "(d(p_a, p_b), =, 1) -> (d(p_b, p_c), >=, 1)"
        );
        assert_eq!(
            encode_str("*/a/*/b//c/*/*"),
            "(p_a, >=, 2) -> (d(p_a, p_b), =, 2) -> (d(p_b, p_c), >=, 1) -> (p_c-|, >=, 2)"
        );
    }

    /// Paper §3.2 order-sensitivity example: a/c/*/a//c vs a//c/*/a/c.
    #[test]
    fn order_sensitive_encodings() {
        assert_eq!(
            encode_str("a/c/*/a//c"),
            "(d(p_a, p_c), =, 1) -> (d(p_c, p_a), =, 2) -> (d(p_a, p_c), >=, 1)"
        );
        assert_eq!(
            encode_str("a//c/*/a/c"),
            "(d(p_a, p_c), >=, 1) -> (d(p_c, p_a), =, 2) -> (d(p_a, p_c), =, 1)"
        );
    }

    /// Leading `//` on absolute expressions makes the first predicate ≥.
    #[test]
    fn leading_descendant_absolute() {
        assert_eq!(encode_str("//a/b"), "(p_a, >=, 1) -> (d(p_a, p_b), =, 1)");
        assert_eq!(encode_str("/*//a"), "(p_a, >=, 2)");
        assert_eq!(encode_str("//a"), "(p_a, >=, 1)");
    }

    /// Mixed wildcard + descendant between tags: value counts steps, op ≥.
    #[test]
    fn wildcard_and_descendant_between_tags() {
        assert_eq!(encode_str("a/*//b"), "(d(p_a, p_b), >=, 2)");
        assert_eq!(encode_str("/a//*/b"), "(p_a, =, 1) -> (d(p_a, p_b), >=, 2)");
    }

    /// Relative single tag with trailing wildcards needs no first predicate.
    #[test]
    fn relative_trailing_only() {
        assert_eq!(encode_str("a/*/*"), "(p_a-|, >=, 2)");
        assert_eq!(encode_str("*/a"), "(p_a, >=, 2)");
    }

    /// Trailing `//*` wildcards still produce an end-of-path predicate.
    #[test]
    fn trailing_descendant_wildcards() {
        assert_eq!(
            encode_str("/a/b//*"),
            "(p_a, =, 1) -> (d(p_a, p_b), =, 1) -> (p_b-|, >=, 1)"
        );
    }

    /// Paper §5 attribute predicate example: /*/t1[@x = 3].
    #[test]
    fn inline_attribute_encoding() {
        assert_eq!(
            encode_str_inline("/*/t1[@x = 3]"),
            "(p_t1([x, =, 3]), =, 2)"
        );
        // Postponed mode strips the filter from the predicate.
        assert_eq!(encode_str("/*/t1[@x = 3]"), "(p_t1, =, 2)");
    }

    /// Inline mode keeps the filter on a first step whose positional
    /// predicate would otherwise be omitted.
    #[test]
    fn inline_attribute_on_first_relative_step() {
        assert_eq!(
            encode_str_inline("a[@x = 1]/b"),
            "(p_a([x, =, 1]), >=, 1) -> (d(p_a, p_b), =, 1)"
        );
        // Without a filter, the vacuous first predicate is omitted.
        assert_eq!(encode_str_inline("a/b"), "(d(p_a, p_b), =, 1)");
    }

    #[test]
    fn slots_map_predicates_to_steps() {
        let expr = parse("*/a/*/b//c/*/*").unwrap();
        let mut interner = Interner::new();
        let enc = encode_single_path(&expr, &mut interner, AttrMode::Postponed).unwrap();
        assert_eq!(
            enc.slots,
            vec![
                (Some(1), Some(1)), // (p_a, ≥, 2)
                (Some(1), Some(3)), // (d(p_a,p_b), =, 2)
                (Some(3), Some(4)), // (d(p_b,p_c), ≥, 1)
                (Some(4), Some(4)), // (p_c⊣, ≥, 2)
            ]
        );
    }

    #[test]
    fn errors() {
        let mut interner = Interner::new();
        let nested = parse("/a[b]/c").unwrap();
        assert_eq!(
            encode_single_path(&nested, &mut interner, AttrMode::Postponed).unwrap_err(),
            EncodeError::NestedPath
        );
        let wild_attr = parse("/a/*[@x = 1]").unwrap();
        assert_eq!(
            encode_single_path(&wild_attr, &mut interner, AttrMode::Postponed).unwrap_err(),
            EncodeError::AttrFilterOnWildcard
        );
    }

    #[test]
    fn shared_predicates_encode_identically() {
        // a/b inside longer expressions maps to the same predicate.
        let mut interner = Interner::new();
        let e1 = parse("/x/a/b").unwrap();
        let e2 = parse("a/b//q").unwrap();
        let p1 = encode_single_path(&e1, &mut interner, AttrMode::Postponed).unwrap();
        let p2 = encode_single_path(&e2, &mut interner, AttrMode::Postponed).unwrap();
        assert_eq!(p1.preds[2], p2.preds[0]); // (d(p_a,p_b), =, 1)
    }
}
