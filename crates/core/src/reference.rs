//! Reference matcher: a direct, deliberately simple implementation of the
//! XPath matching semantics used as a test oracle.
//!
//! The paper proves (Appendix A) that its predicate encoding matches a
//! document path iff the XPath expression does; this module implements "the
//! XPath expression does" side directly — a DP over document paths for
//! single-path expressions and a recursive tree-pattern matcher for
//! expressions with nested path filters. It is O(steps × nodes) and used
//! only for testing and for the nested-path combination stage, never on the
//! hot filtering path.

use pxf_xml::{DocAccess, Document, NodeId};
use pxf_xpath::{Axis, NodeTest, Step, XPathExpr};

/// Read-only view of one document path for the path matcher.
pub trait PathView {
    /// Path length.
    fn len(&self) -> usize;

    /// True when the path has no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Tag name at 1-based position `pos`.
    fn tag(&self, pos: usize) -> &str;
    /// Attribute value at 1-based position `pos`.
    fn attr(&self, pos: usize, name: &str) -> Option<&str>;
}

/// A path view over a plain tag sequence (no attributes).
pub struct TagsView<'a>(pub &'a [&'a str]);

impl PathView for TagsView<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn tag(&self, pos: usize) -> &str {
        self.0[pos - 1]
    }
    fn attr(&self, _pos: usize, _name: &str) -> Option<&str> {
        None
    }
}

/// A path view over document nodes (any [`DocAccess`] store).
pub struct DocPathView<'a, D: DocAccess = Document> {
    /// The document the nodes belong to.
    pub doc: &'a D,
    /// Root-to-leaf node ids.
    pub nodes: &'a [NodeId],
}

impl<D: DocAccess> PathView for DocPathView<'_, D> {
    fn len(&self) -> usize {
        self.nodes.len()
    }
    fn tag(&self, pos: usize) -> &str {
        self.doc.tag(self.nodes[pos - 1])
    }
    fn attr(&self, pos: usize, name: &str) -> Option<&str> {
        self.doc.value_of(self.nodes[pos - 1], name)
    }
}

fn step_matches_at<V: PathView>(step: &Step, path: &V, pos: usize) -> bool {
    let test_ok = match &step.test {
        NodeTest::Wildcard => true,
        NodeTest::Tag(t) => path.tag(pos) == t,
    };
    test_ok
        && step
            .attr_filters()
            .all(|f| f.matches(path.attr(pos, &f.name)))
}

/// True iff the single-path expression matches the document path — i.e. the
/// expression's result node set on this path is non-empty (paper §3.1).
///
/// Nested path filters are ignored by this function (use
/// [`matches_document`] for tree patterns); attribute filters are honored.
pub fn matches_path<V: PathView>(expr: &XPathExpr, path: &V) -> bool {
    let n = path.len();
    if n == 0 {
        return false;
    }
    // can[pos] after step i: step i can match at position pos.
    // Work with a frontier of admissible positions per step.
    let mut frontier: Vec<usize> = Vec::new();
    for (i, step) in expr.steps.iter().enumerate() {
        let mut next: Vec<usize> = Vec::new();
        if i == 0 {
            let positions: Box<dyn Iterator<Item = usize>> = if expr.absolute {
                match step.axis {
                    // `/t`: the root only; `//t`: any position.
                    Axis::Child => Box::new(std::iter::once(1)),
                    Axis::Descendant => Box::new(1..=n),
                }
            } else {
                // Relative expressions may start anywhere.
                Box::new(1..=n)
            };
            for pos in positions {
                if step_matches_at(step, path, pos) {
                    next.push(pos);
                }
            }
        } else {
            for &prev in &frontier {
                let candidates: Box<dyn Iterator<Item = usize>> = match step.axis {
                    Axis::Child => Box::new(std::iter::once(prev + 1)),
                    Axis::Descendant => Box::new(prev + 1..=n),
                };
                for pos in candidates {
                    if pos <= n && step_matches_at(step, path, pos) && !next.contains(&pos) {
                        next.push(pos);
                    }
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        frontier = next;
    }
    true
}

/// Enumerates, for each step, the set of positions reachable in *some*
/// complete match of the expression on the path. Returns `None` when the
/// expression does not match at all.
pub fn match_positions<V: PathView>(expr: &XPathExpr, path: &V) -> Option<Vec<Vec<usize>>> {
    let n = path.len();
    let k = expr.steps.len();
    if n == 0 {
        return None;
    }
    // forward[i] = positions where step i can match given steps 0..i.
    let mut forward: Vec<Vec<usize>> = Vec::with_capacity(k);
    for (i, step) in expr.steps.iter().enumerate() {
        let mut cur = Vec::new();
        if i == 0 {
            let positions: Box<dyn Iterator<Item = usize>> = if expr.absolute {
                match step.axis {
                    Axis::Child => Box::new(std::iter::once(1)),
                    Axis::Descendant => Box::new(1..=n),
                }
            } else {
                Box::new(1..=n)
            };
            for pos in positions {
                if step_matches_at(step, path, pos) {
                    cur.push(pos);
                }
            }
        } else {
            for &prev in &forward[i - 1] {
                let candidates: Box<dyn Iterator<Item = usize>> = match step.axis {
                    Axis::Child => Box::new(std::iter::once(prev + 1)),
                    Axis::Descendant => Box::new(prev + 1..=n),
                };
                for pos in candidates {
                    if pos <= n && step_matches_at(step, path, pos) && !cur.contains(&pos) {
                        cur.push(pos);
                    }
                }
            }
        }
        if cur.is_empty() {
            return None;
        }
        forward.push(cur);
    }
    // Backward prune: keep only positions that extend to a full match.
    for i in (0..k.saturating_sub(1)).rev() {
        let (head, tail) = forward.split_at_mut(i + 1);
        let next = &tail[0];
        let step_axis = expr.steps[i + 1].axis;
        head[i].retain(|&pos| match step_axis {
            Axis::Child => next.contains(&(pos + 1)),
            Axis::Descendant => next.iter().any(|&q| q > pos),
        });
        if head[i].is_empty() {
            return None;
        }
    }
    Some(forward)
}

/// Full tree-pattern semantics: true iff the expression (possibly with
/// nested path filters) selects a non-empty node set in the document.
pub fn matches_document(expr: &XPathExpr, doc: &Document) -> bool {
    if doc.is_empty() {
        return false;
    }
    if expr.absolute {
        match expr.steps[0].axis {
            Axis::Child => match_steps_at(expr, 0, doc, doc.root()),
            Axis::Descendant => doc
                .elements()
                .any(|(id, _)| match_steps_at(expr, 0, doc, id)),
        }
    } else {
        doc.elements()
            .any(|(id, _)| match_steps_at(expr, 0, doc, id))
    }
}

/// Does `steps[idx..]` match starting with `node` bound to step `idx`?
fn match_steps_at(expr: &XPathExpr, idx: usize, doc: &Document, node: NodeId) -> bool {
    let step = &expr.steps[idx];
    let element = doc.node(node);
    match &step.test {
        NodeTest::Tag(t) if element.tag != *t => return false,
        _ => {}
    }
    if !step
        .attr_filters()
        .all(|f| f.matches(element.value_of(&f.name)))
    {
        return false;
    }
    // Nested path filters: each must match relative to this node.
    for nested in step.path_filters() {
        if !matches_relative_at(nested, doc, node) {
            return false;
        }
    }
    if idx + 1 == expr.steps.len() {
        return true;
    }
    let next_axis = expr.steps[idx + 1].axis;
    match next_axis {
        Axis::Child => element
            .children
            .iter()
            .any(|&c| match_steps_at(expr, idx + 1, doc, c)),
        Axis::Descendant => descendants(doc, node).any(|d| match_steps_at(expr, idx + 1, doc, d)),
    }
}

/// Does the relative expression match in the context of `node` (i.e. its
/// first step binds to a child — or descendant, per its axis — of `node`)?
fn matches_relative_at(expr: &XPathExpr, doc: &Document, node: NodeId) -> bool {
    debug_assert!(!expr.absolute, "nested path filters are relative");
    match expr.steps[0].axis {
        // First step of a relative filter binds to a child of the context
        // node (the parser only produces Child here; Descendant is handled
        // for completeness).
        Axis::Child => doc
            .node(node)
            .children
            .iter()
            .any(|&c| match_steps_at(expr, 0, doc, c)),
        Axis::Descendant => descendants(doc, node).any(|d| match_steps_at(expr, 0, doc, d)),
    }
}

/// Iterator over all strict descendants of a node.
fn descendants<'a>(doc: &'a Document, node: NodeId) -> impl Iterator<Item = NodeId> + 'a {
    let mut stack: Vec<NodeId> = doc.node(node).children.clone();
    std::iter::from_fn(move || {
        let next = stack.pop()?;
        stack.extend_from_slice(&doc.node(next).children);
        Some(next)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxf_xpath::parse;

    fn mp(expr: &str, tags: &[&str]) -> bool {
        matches_path(&parse(expr).unwrap(), &TagsView(tags))
    }

    #[test]
    fn absolute_paths() {
        assert!(mp("/a/b", &["a", "b"]));
        assert!(mp("/a/b", &["a", "b", "c"])); // b is an interior match
        assert!(!mp("/a/b", &["x", "b"]));
        assert!(!mp("/b", &["a", "b"]));
        assert!(!mp("/a/b", &["a"]));
    }

    #[test]
    fn relative_paths() {
        assert!(mp("b/c", &["a", "b", "c"]));
        assert!(mp("a", &["x", "a", "y"]));
        assert!(!mp("c/b", &["a", "b", "c"]));
    }

    #[test]
    fn wildcards() {
        assert!(mp("/*/b", &["a", "b"]));
        assert!(mp("/a/*/*", &["a", "x", "y"]));
        assert!(mp("/a/*/*", &["a", "x", "y", "z"]));
        assert!(!mp("/a/*/*", &["a", "x"]));
        assert!(mp("*/*/*", &["p", "q", "r"]));
        assert!(!mp("*/*/*/*", &["p", "q", "r"]));
    }

    #[test]
    fn descendant_operator() {
        assert!(mp("/a//c", &["a", "b", "c"]));
        assert!(mp("/a//c", &["a", "c"])); // // includes direct child
        assert!(!mp("/a//c", &["c", "a"]));
        assert!(mp("a//b/c", &["a", "b", "c", "a", "b", "c"]));
        assert!(!mp("c//b//a", &["a", "b", "c", "a", "b", "c"]));
        assert!(mp("//b", &["a", "b"]));
    }

    #[test]
    fn repeated_tags() {
        // The paper's order-sensitivity example.
        assert!(mp("a/c/*/a//c", &["a", "c", "x", "a", "y", "c"]));
        assert!(!mp("a//c/*/a/c", &["a", "c", "x", "a", "y", "c"]));
        assert!(mp("a//c/*/a/c", &["a", "y", "c", "x", "a", "c"]));
    }

    #[test]
    fn match_positions_enumerates() {
        let expr = parse("a//b").unwrap();
        let tags = ["a", "b", "x", "b"];
        let positions = match_positions(&expr, &TagsView(&tags)).unwrap();
        assert_eq!(positions[0], vec![1]);
        assert_eq!(positions[1], vec![2, 4]);
        // Positions that cannot extend to full matches are pruned.
        let expr = parse("a/b/c").unwrap();
        let tags = ["a", "b", "a", "b", "c"];
        let positions = match_positions(&expr, &TagsView(&tags)).unwrap();
        assert_eq!(positions[0], vec![3]);
        assert_eq!(positions[1], vec![4]);
        assert_eq!(positions[2], vec![5]);
        assert!(match_positions(&parse("z").unwrap(), &TagsView(&tags)).is_none());
    }

    #[test]
    fn attribute_filters() {
        let doc = Document::parse(b"<a><b x=\"5\"/><b x=\"1\"/></a>").unwrap();
        let paths = doc.leaf_paths();
        let view1 = DocPathView {
            doc: &doc,
            nodes: &paths[0],
        };
        let view2 = DocPathView {
            doc: &doc,
            nodes: &paths[1],
        };
        let expr = parse("/a/b[@x >= 3]").unwrap();
        assert!(matches_path(&expr, &view1));
        assert!(!matches_path(&expr, &view2));
    }

    #[test]
    fn tree_pattern_semantics() {
        // /a[b]/c: needs an a with both a b child and a c child.
        let expr = parse("/a[b]/c").unwrap();
        let both = Document::parse(b"<a><b/><c/></a>").unwrap();
        let only_c = Document::parse(b"<a><c/></a>").unwrap();
        let only_b = Document::parse(b"<a><b/></a>").unwrap();
        assert!(matches_document(&expr, &both));
        assert!(!matches_document(&expr, &only_c));
        assert!(!matches_document(&expr, &only_b));
    }

    #[test]
    fn tree_pattern_requires_single_node() {
        // //a[b][c]: one a node must have both children.
        let expr = parse("//a[b][c]").unwrap();
        let split = Document::parse(b"<r><a><b/></a><a><c/></a></r>").unwrap();
        let joined = Document::parse(b"<r><a><b/><c/></a></r>").unwrap();
        assert!(!matches_document(&expr, &split));
        assert!(matches_document(&expr, &joined));
    }

    #[test]
    fn nested_paper_example() {
        // s: /a[*/c[d]/e]//c[d]/e  (paper Fig. 3).
        let expr = parse("/a[*/c[d]/e]//c[d]/e").unwrap();
        // Build a document satisfying both branches:
        // a → x → c(d, e)  satisfies the filter;
        // a → … → c(d, e)  satisfies the main path.
        let doc = Document::parse(b"<a><x><c><d/><e/></c></x><y><c><d/><e/></c></y></a>").unwrap();
        assert!(matches_document(&expr, &doc));
        // Remove the d under the main-path c: filter [d] on main c fails …
        let doc2 = Document::parse(b"<a><x><c><d/><e/></c></x><y><c><e/></c></y></a>").unwrap();
        // … but the x-branch c still satisfies the main path //c[d]/e.
        assert!(matches_document(&expr, &doc2));
        // Remove the filter branch entirely: no */c[d]/e under a.
        let doc3 = Document::parse(b"<a><y><c><e/></c></y></a>").unwrap();
        assert!(!matches_document(&expr, &doc3));
    }

    #[test]
    fn single_path_and_tree_agree_on_plain_expressions() {
        let docs = [
            "<a><b><c/></b></a>",
            "<a><b/><b><c/><d/></b></a>",
            "<x><a><b><c/></b></a></x>",
        ];
        let exprs = ["/a/b", "a/b/c", "//c", "*/b", "/a//c", "b//d", "/*/*"];
        for d in docs {
            let doc = Document::parse(d.as_bytes()).unwrap();
            for e in exprs {
                let expr = parse(e).unwrap();
                let by_paths = doc.leaf_paths().iter().any(|p| {
                    matches_path(
                        &expr,
                        &DocPathView {
                            doc: &doc,
                            nodes: p,
                        },
                    )
                });
                assert_eq!(
                    by_paths,
                    matches_document(&expr, &doc),
                    "disagreement on {e} over {d}"
                );
            }
        }
    }
}
