//! Flat predicate programs: the compiled form of stage-2 chain execution.
//!
//! Stage 2 determines, per candidate expression, whether a chained
//! occurrence combination exists across the expression's predicate lists
//! (Algorithm 1). The interpreted form walks the expression's `PredId`
//! chain through [`MatchContext::get`] on every backtracking probe — each
//! probe re-runs the slot bounds check and list-epoch test, and for trie
//! terminals re-derives the chain slice from the packed arena.
//!
//! A [`PredPrograms`] store compiles every entry (flat expression or trie
//! terminal) into a contiguous run of pre-resolved dispatch slots in one
//! shared op array. Execution resolves each slot to its pair list exactly
//! once up front — merging Algorithm 1's empty-list pre-scan (lines 2–6)
//! with the load — and then backtracks over the pinned slices with no
//! per-probe indirection. Entries whose sinks carry postponed attribute
//! checks are flagged at compile time (`needs_filter`), pre-resolving the
//! fast-path/filtered-path dispatch that the interpreted loop re-derives
//! from sink inspection per document.
//!
//! Programs are compiled at `prepare()`/compaction and extended in O(chain
//! length) by the incremental patch path, mirroring the entry stores they
//! shadow (flat entry order, packed-trie terminal order).

use crate::occurrence::determine_match_by;
use pxf_predicate::{MatchContext, PredId};

/// Expressions at most this deep execute with a stack-pinned slice array;
/// deeper ones take one heap allocation. Mirrors the occurrence module's
/// stack budget.
const STACK_LEVELS: usize = 16;

/// Compiled predicate programs for one entry store (the flat expression
/// table or the packed trie's terminal table), indexed by entry id.
#[derive(Debug, Default, Clone)]
pub(crate) struct PredPrograms {
    /// CSR offsets into `ops`: entry `e` owns `ops[starts[e]..starts[e+1]]`.
    /// Always non-empty (leading 0), so `len() == starts.len() - 1`.
    starts: Vec<u32>,
    /// Pre-resolved dispatch slots, contiguous per entry.
    ops: Vec<PredId>,
    /// Per entry: true when its sinks carry postponed attribute checks, so
    /// structure-only execution cannot resolve it and the caller must take
    /// the filtered path.
    filtered: Vec<bool>,
}

impl PredPrograms {
    /// Drops all programs (prelude to a full recompile).
    pub(crate) fn clear(&mut self) {
        self.starts.clear();
        self.ops.clear();
        self.filtered.clear();
    }

    /// Number of compiled entries.
    pub(crate) fn len(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// Appends the program for the next entry id and returns that id.
    /// Callers push in entry-id order so programs stay aligned with the
    /// store they shadow.
    pub(crate) fn push_chain(&mut self, chain: &[PredId], needs_filter: bool) -> u32 {
        if self.starts.is_empty() {
            self.starts.push(0);
        }
        self.ops.extend_from_slice(chain);
        self.starts.push(self.ops.len() as u32);
        self.filtered.push(needs_filter);
        (self.starts.len() - 2) as u32
    }

    /// True when `entry` cannot be resolved by structure-only execution
    /// (its sinks re-determine with attribute admissibility).
    #[inline]
    pub(crate) fn needs_filter(&self, entry: u32) -> bool {
        self.filtered[entry as usize]
    }

    /// Approximate heap footprint in bytes.
    pub(crate) fn bytes(&self) -> usize {
        self.starts.len() * 4 + self.ops.len() * 4 + self.filtered.len()
    }

    /// Executes program `entry` against the current publication: resolves
    /// every slot once (early-exiting on an empty list, Algorithm 1 lines
    /// 2–6), then runs occurrence determination over the pinned slices.
    /// `runs` is bumped only when the preload completes and the search
    /// actually runs — the same accounting as the interpreted path, which
    /// pre-scans for empty lists before counting an occurrence run.
    #[inline]
    pub(crate) fn execute(&self, entry: u32, ctx: &MatchContext, runs: &mut u64) -> bool {
        let e = entry as usize;
        let ops = &self.ops[self.starts[e] as usize..self.starts[e + 1] as usize];
        let n = ops.len();
        if n == 0 {
            return false;
        }
        // Fail-fast pre-scan before touching any slot storage: in scan
        // mode the overwhelmingly common outcome is an empty list on the
        // first slot or two, and initializing the slot array up front
        // costs more than the whole rejected probe.
        for &pid in ops {
            if ctx.get(pid).is_empty() {
                return false;
            }
        }
        *runs += 1;
        if n <= STACK_LEVELS {
            let mut lists: [&[(u16, u16)]; STACK_LEVELS] = [&[]; STACK_LEVELS];
            for (slot, &pid) in lists.iter_mut().zip(ops) {
                *slot = ctx.get(pid);
            }
            determine_match_by(n, |i| lists[i])
        } else {
            let lists: Vec<&[(u16, u16)]> = ops.iter().map(|&pid| ctx.get(pid)).collect();
            determine_match_by(n, |i| lists[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(lists: &[(PredId, &[(u16, u16)])], npreds: usize) -> MatchContext {
        let mut ctx = MatchContext::new();
        ctx.begin(npreds);
        for &(pid, pairs) in lists {
            for &pair in pairs {
                ctx.push(pid, pair);
            }
        }
        ctx
    }

    #[test]
    fn executes_like_the_interpreter() {
        let (a, b, c) = (PredId(0), PredId(1), PredId(2));
        let mut progs = PredPrograms::default();
        assert_eq!(progs.push_chain(&[a, b], false), 0);
        assert_eq!(progs.push_chain(&[a, b, c], true), 1);
        assert_eq!(progs.len(), 2);
        assert!(progs.needs_filter(1));
        assert!(!progs.needs_filter(0));

        // a:(1,2) chains to b:(2,3); c only has (9,9) which does not chain.
        let ctx = ctx_with(&[(a, &[(5, 5), (1, 2)]), (b, &[(2, 3)]), (c, &[(9, 9)])], 3);
        let mut runs = 0u64;
        assert!(progs.execute(0, &ctx, &mut runs));
        assert!(!progs.execute(1, &ctx, &mut runs));
        assert_eq!(runs, 2, "both preloads complete, both searches run");

        let chains: [&[PredId]; 2] = [&[a, b], &[a, b, c]];
        for (e, chain) in chains.iter().enumerate() {
            assert_eq!(
                progs.execute(e as u32, &ctx, &mut runs),
                determine_match_by(chain.len(), |i| ctx.get(chain[i])),
            );
        }
    }

    #[test]
    fn empty_list_and_stale_epoch_reject() {
        let a = PredId(0);
        let b = PredId(1);
        let mut progs = PredPrograms::default();
        progs.push_chain(&[a, b], false);

        // b never pushed: empty list ⇒ no match, and no run counted (the
        // interpreted path's empty pre-scan doesn't count one either).
        let mut runs = 0u64;
        let ctx = ctx_with(&[(a, &[(1, 1)])], 2);
        assert!(!progs.execute(0, &ctx, &mut runs));
        assert_eq!(runs, 0);

        // A new publication invalidates previous pushes.
        let mut ctx = ctx_with(&[(a, &[(1, 1)]), (b, &[(1, 1)])], 2);
        assert!(progs.execute(0, &ctx, &mut runs));
        assert_eq!(runs, 1);
        ctx.begin(2);
        assert!(!progs.execute(0, &ctx, &mut runs));
        assert_eq!(runs, 1);
    }

    #[test]
    fn deep_chain_takes_heap_path() {
        let n = STACK_LEVELS + 4;
        let chain: Vec<PredId> = (0..n as u32).map(PredId).collect();
        let mut progs = PredPrograms::default();
        progs.push_chain(&chain, false);
        let mut ctx = MatchContext::new();
        ctx.begin(n);
        for (i, &pid) in chain.iter().enumerate() {
            ctx.push(pid, (i as u16, i as u16 + 1));
        }
        let mut runs = 0u64;
        assert!(progs.execute(0, &ctx, &mut runs));
        // Break the chain in the middle.
        ctx.begin(n);
        for (i, &pid) in chain.iter().enumerate() {
            let first = if i == n / 2 { 99 } else { i as u16 };
            ctx.push(pid, (first, i as u16 + 1));
        }
        assert!(!progs.execute(0, &ctx, &mut runs));
        assert_eq!(runs, 2, "all lists non-empty: both searches ran");
    }

    #[test]
    fn clear_resets() {
        let mut progs = PredPrograms::default();
        progs.push_chain(&[PredId(0)], false);
        assert_eq!(progs.len(), 1);
        assert!(progs.bytes() > 0);
        progs.clear();
        assert_eq!(progs.len(), 0);
        progs.push_chain(&[PredId(1)], true);
        assert_eq!(progs.len(), 1);
        assert!(progs.needs_filter(0));
    }
}
