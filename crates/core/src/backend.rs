//! The unified filtering-backend interface.
//!
//! Every matching engine in the workspace — the predicate engine
//! ([`FilterEngine`]) and the baselines (YFilter, Index-Filter, XFilter) —
//! follows the same lifecycle: register XPath subscriptions, prepare, then
//! filter a stream of documents. [`FilterBackend`] captures that lifecycle
//! so harnesses, the CLI, examples, and cross-engine tests can drive any
//! engine through one object-safe interface instead of hand-rolled
//! per-engine dispatch.
//!
//! [`FilterBackend::match_bytes`] is the streaming entry point: a backend
//! goes from raw document bytes to a match set in a single parse pass
//! (via [`pxf_xml::PathDoc`] or an equivalent event replay), with no
//! [`pxf_xml::Document`] tree allocation. Implementations must return
//! byte-identical match sets through both entry points.

use crate::engine::{AddError, FilterEngine, SubId};
use pxf_xml::{Document, ParserLimits, XmlError};
use pxf_xpath::XPathExpr;

use crate::engine::EngineStats;

/// Error adding a subscription to a backend (unsupported construct,
/// capacity, …). Wraps the engine-specific error as a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError(pub String);

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BackendError {}

impl From<AddError> for BackendError {
    fn from(e: AddError) -> Self {
        BackendError(e.to_string())
    }
}

/// A filtering engine behind a uniform, object-safe interface.
///
/// Lifecycle: [`add`](Self::add) subscriptions, optionally
/// [`prepare`](Self::prepare) (also invoked implicitly by matching), then
/// match documents — either pre-parsed trees via
/// [`match_document`](Self::match_document) or raw bytes via the
/// single-pass [`match_bytes`](Self::match_bytes). Subscription ids are
/// assigned in registration order by every backend, so the same workload
/// produces comparable id sets across engines.
pub trait FilterBackend {
    /// Registers a parsed XPath expression, returning its subscription id.
    fn add(&mut self, expr: &XPathExpr) -> Result<SubId, BackendError>;

    /// Finishes construction after a batch of adds. Optional: matching
    /// entry points prepare implicitly.
    fn prepare(&mut self) {}

    /// Unregisters a subscription by id; later documents stop reporting
    /// it. Returns `false` if the id is unknown, already removed, or the
    /// backend does not support removal (the default).
    fn remove(&mut self, _sub: SubId) -> bool {
        false
    }

    /// Filters a parsed document: ids of all matching subscriptions,
    /// ascending.
    fn match_document(&mut self, doc: &Document) -> Vec<SubId>;

    /// Parses and filters raw document bytes in one streaming pass,
    /// without building a [`Document`] tree. Match sets are identical to
    /// [`Self::match_document`] on the parsed equivalent.
    fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError>;

    /// Sets the per-document resource budget enforced by
    /// [`match_bytes`](Self::match_bytes). The default implementation
    /// ignores the limits; every in-workspace backend overrides it.
    fn set_parser_limits(&mut self, _limits: ParserLimits) {}

    /// Parses and registers an expression (convenience).
    fn add_str(&mut self, src: &str) -> Result<SubId, BackendError> {
        let expr = pxf_xpath::parse(src).map_err(|e| BackendError(e.to_string()))?;
        self.add(&expr)
    }

    /// Resets matching statistics counters, where the backend keeps any.
    fn reset_stats(&mut self) {}

    /// Matching statistics since the last reset, for backends that track
    /// the paper's stage breakdown. `None` for baselines that don't.
    fn stats(&self) -> Option<EngineStats> {
        None
    }

    /// Number of distinct predicates stored (the paper's Fig. 10 metric);
    /// 0 for backends without a predicate index.
    fn distinct_predicates(&self) -> usize {
        0
    }

    /// Approximate heap footprint of the backend's index structures in
    /// bytes (arenas, slabs, posting lists — not per-document scratch);
    /// 0 for backends that don't account for it.
    fn index_bytes(&self) -> usize {
        0
    }
}

impl FilterBackend for FilterEngine {
    fn add(&mut self, expr: &XPathExpr) -> Result<SubId, BackendError> {
        Ok(FilterEngine::add(self, expr)?)
    }

    fn prepare(&mut self) {
        FilterEngine::prepare(self);
    }

    fn remove(&mut self, sub: SubId) -> bool {
        FilterEngine::remove(self, sub)
    }

    fn match_document(&mut self, doc: &Document) -> Vec<SubId> {
        FilterEngine::match_document(self, doc)
    }

    fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        FilterEngine::match_bytes(self, bytes)
    }

    fn set_parser_limits(&mut self, limits: ParserLimits) {
        FilterEngine::set_parser_limits(self, limits);
    }

    fn reset_stats(&mut self) {
        FilterEngine::reset_stats(self);
    }

    fn stats(&self) -> Option<EngineStats> {
        Some(FilterEngine::stats(self))
    }

    fn distinct_predicates(&self) -> usize {
        FilterEngine::distinct_predicates(self)
    }

    fn index_bytes(&self) -> usize {
        FilterEngine::index_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_dispatch() {
        let mut backend: Box<dyn FilterBackend> = Box::<FilterEngine>::default();
        let a = backend.add_str("/a/b").unwrap();
        let b = backend.add_str("//c").unwrap();
        backend.prepare();
        let bytes = b"<a><b><c/></b></a>";
        let doc = Document::parse(bytes).unwrap();
        assert_eq!(backend.match_document(&doc), vec![a, b]);
        assert_eq!(backend.match_bytes(bytes).unwrap(), vec![a, b]);
        assert!(backend.match_bytes(b"<oops>").is_err());
        assert!(backend.stats().is_some());
        assert!(backend.distinct_predicates() > 0);
    }

    #[test]
    fn limits_apply_through_the_trait() {
        let mut backend: Box<dyn FilterBackend> = Box::<FilterEngine>::default();
        backend.add_str("/a").unwrap();
        backend.prepare();
        backend.set_parser_limits(ParserLimits {
            max_depth: 2,
            ..ParserLimits::default()
        });
        assert!(backend.match_bytes(b"<a><b/></a>").is_ok());
        let err = backend.match_bytes(b"<a><b><c/></b></a>").unwrap_err();
        assert!(err.is_limit());
    }

    #[test]
    fn add_errors_surface_as_backend_errors() {
        let mut backend: Box<dyn FilterBackend> = Box::<FilterEngine>::default();
        assert!(backend.add_str("not an xpath [[[").is_err());
    }
}
