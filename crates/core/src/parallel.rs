//! Concurrent document filtering against a shared engine.
//!
//! A [`FilterEngine`] is immutable during matching
//! (scratch state lives in per-matcher [`MatchScratch`](crate::MatchScratch)
//! buffers), so one subscription base can serve any number of threads — the
//! deployment shape of the paper's motivating scenario, where a broker
//! filters a high-rate document stream against millions of standing
//! subscriptions.

use crate::engine::{FilterEngine, SubId};
use pxf_xml::Document;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-document outcome of [`filter_batch_bytes`]: the match set, or the
/// parse error for that document.
pub type ByteFilterResult = Result<Vec<SubId>, pxf_xml::XmlError>;

/// Filters a batch of documents across `threads` worker threads, returning
/// per-document match sets in input order.
///
/// The engine must be prepared ([`FilterEngine::prepare`]) — it is borrowed
/// immutably. With `threads == 1` this degenerates to a sequential loop
/// (no threads are spawned).
///
/// ```
/// use pxf_core::{parallel, FilterEngine};
/// use pxf_xml::Document;
///
/// let mut engine = FilterEngine::default();
/// let s = engine.add_str("/a/b").unwrap();
/// engine.prepare();
/// let docs = vec![
///     Document::parse(b"<a><b/></a>").unwrap(),
///     Document::parse(b"<x/>").unwrap(),
/// ];
/// let results = parallel::filter_batch(&engine, &docs, 4);
/// assert_eq!(results, vec![vec![s], vec![]]);
/// ```
pub fn filter_batch(engine: &FilterEngine, docs: &[Document], threads: usize) -> Vec<Vec<SubId>> {
    let threads = threads.max(1).min(docs.len().max(1));
    if threads == 1 {
        let mut matcher = engine.matcher();
        return docs.iter().map(|d| matcher.match_document(d)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Vec<SubId>> = vec![Vec::new(); docs.len()];
    // Hand each worker a disjoint set of result slots via raw indices:
    // simplest safe formulation is collecting (index, result) pairs per
    // worker and scattering afterwards.
    let mut per_worker: Vec<Vec<(usize, Vec<SubId>)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut matcher = engine.matcher();
                let mut out: Vec<(usize, Vec<SubId>)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= docs.len() {
                        return out;
                    }
                    out.push((i, matcher.match_document(&docs[i])));
                }
            }));
        }
        for h in handles {
            per_worker.push(h.join().expect("worker panicked"));
        }
    });
    for chunk in per_worker {
        for (i, r) in chunk {
            results[i] = r;
        }
    }
    results
}

/// Filters raw serialized documents (parse + match per document, the
/// paper's total-filter-time unit of work) across worker threads.
///
/// Each document takes the streaming path ([`Matcher::match_bytes`]): one
/// pass over the bytes into a flat path store, no `Document` tree. With
/// `threads == 1` this degenerates to a sequential loop (no threads are
/// spawned), mirroring [`filter_batch`].
pub fn filter_batch_bytes(
    engine: &FilterEngine,
    docs: &[Vec<u8>],
    threads: usize,
) -> Vec<ByteFilterResult> {
    let threads = threads.max(1).min(docs.len().max(1));
    if threads == 1 {
        let mut matcher = engine.matcher();
        return docs.iter().map(|d| matcher.match_bytes(d)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, ByteFilterResult)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut matcher = engine.matcher();
                let mut out = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= docs.len() {
                        return out;
                    }
                    out.push((i, matcher.match_bytes(&docs[i])));
                }
            }));
        }
        for h in handles {
            per_worker.push(h.join().expect("worker panicked"));
        }
    });
    let mut results: Vec<ByteFilterResult> = (0..docs.len()).map(|_| Ok(Vec::new())).collect();
    for chunk in per_worker {
        for (i, r) in chunk {
            results[i] = r;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, AttrMode};

    fn sample_engine() -> (FilterEngine, Vec<SubId>) {
        let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
        let ids = vec![
            engine.add_str("/a/b").unwrap(),
            engine.add_str("//c").unwrap(),
            engine.add_str("a/*/d").unwrap(),
        ];
        engine.prepare();
        (engine, ids)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (engine, _) = sample_engine();
        let docs: Vec<Document> = [
            "<a><b/></a>",
            "<a><x><c/></x></a>",
            "<a><q><d/></q></a>",
            "<z/>",
            "<a><b><c/></b></a>",
        ]
        .iter()
        .cycle()
        .take(50)
        .map(|s| Document::parse(s.as_bytes()).unwrap())
        .collect();
        let sequential = filter_batch(&engine, &docs, 1);
        for threads in [2, 4, 8] {
            assert_eq!(filter_batch(&engine, &docs, threads), sequential);
        }
    }

    #[test]
    fn bytes_variant_reports_parse_errors() {
        let (engine, ids) = sample_engine();
        let docs = vec![b"<a><b/></a>".to_vec(), b"<broken".to_vec()];
        let results = filter_batch_bytes(&engine, &docs, 2);
        assert_eq!(results[0].as_ref().unwrap(), &vec![ids[0]]);
        assert!(results[1].is_err());
    }

    #[test]
    fn bytes_variant_agrees_with_tree_path_across_thread_counts() {
        let (engine, _) = sample_engine();
        let sources = [
            "<a><b/></a>",
            "<a><x><c/></x></a>",
            "<a><q><d/></q></a>",
            "<z/>",
            "<a><b><c/></b></a>",
        ];
        let bytes: Vec<Vec<u8>> = sources
            .iter()
            .cycle()
            .take(50)
            .map(|s| s.as_bytes().to_vec())
            .collect();
        let docs: Vec<Document> = bytes.iter().map(|b| Document::parse(b).unwrap()).collect();
        let tree = filter_batch(&engine, &docs, 1);
        for threads in [1, 2, 4] {
            let streamed = filter_batch_bytes(&engine, &bytes, threads);
            let streamed: Vec<Vec<SubId>> = streamed.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(streamed, tree, "threads={threads}");
        }
    }

    #[test]
    fn matcher_requires_prepare() {
        let mut engine = FilterEngine::default();
        engine.add_str("/a").unwrap();
        let result = std::panic::catch_unwind(|| {
            let _ = engine.matcher();
        });
        assert!(result.is_err(), "matcher() must panic before prepare()");
        engine.prepare();
        let mut m = engine.matcher();
        let doc = Document::parse(b"<a/>").unwrap();
        assert_eq!(m.match_document(&doc).len(), 1);
    }

    #[test]
    fn independent_matchers_have_independent_stats() {
        let (engine, _) = sample_engine();
        let doc = Document::parse(b"<a><b/></a>").unwrap();
        let mut m1 = engine.matcher();
        let mut m2 = engine.matcher();
        m1.match_document(&doc);
        m1.match_document(&doc);
        m2.match_document(&doc);
        assert_eq!(m1.stats().docs, 2);
        assert_eq!(m2.stats().docs, 1);
    }
}
