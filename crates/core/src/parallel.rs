//! Concurrent document filtering against a shared engine, with per-document
//! fault isolation.
//!
//! A [`FilterEngine`] is immutable during matching
//! (scratch state lives in per-matcher [`MatchScratch`](crate::MatchScratch)
//! buffers), so one subscription base can serve any number of threads — the
//! deployment shape of the paper's motivating scenario, where a broker
//! filters a high-rate document stream against millions of standing
//! subscriptions.
//!
//! Hostile or malformed documents must not take the batch down: each
//! document's parse + match is isolated, so a parse error — or even a
//! panic inside the matcher — becomes a per-document [`DocError`] entry in
//! the result vector while every other document completes normally. A
//! worker whose matcher panics discards that matcher (its scratch state
//! may be mid-document) and continues with a fresh one.

use crate::engine::{FilterEngine, Matcher, SubId};
use crate::sharded::{ShardedEngine, ShardedMatcher};
use pxf_xml::{Document, XmlError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A per-thread matching handle usable by the batch driver: both
/// [`Matcher`] (one engine) and [`ShardedMatcher`] (expression-sharded)
/// qualify, so the document axis here composes with the expression axis
/// of [`crate::sharded`].
pub trait BatchMatcher {
    /// Filters a parsed document (ids ascending).
    fn match_document(&mut self, doc: &Document) -> Vec<SubId>;
    /// Parses and filters raw bytes in one streaming pass.
    fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError>;
}

impl BatchMatcher for Matcher<'_> {
    fn match_document(&mut self, doc: &Document) -> Vec<SubId> {
        Matcher::match_document(self, doc)
    }
    fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        Matcher::match_bytes(self, bytes)
    }
}

impl BatchMatcher for ShardedMatcher<'_> {
    fn match_document(&mut self, doc: &Document) -> Vec<SubId> {
        ShardedMatcher::match_document(self, doc)
    }
    fn match_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SubId>, XmlError> {
        ShardedMatcher::match_bytes(self, bytes)
    }
}

/// A prepared, immutable subscription base that can mint any number of
/// independent per-thread matchers.
pub trait MatcherSource: Sync {
    /// The matcher type handed to each worker.
    type Matcher<'a>: BatchMatcher
    where
        Self: 'a;
    /// Creates a fresh matcher over this source.
    fn matcher(&self) -> Self::Matcher<'_>;
}

impl MatcherSource for FilterEngine {
    type Matcher<'a> = Matcher<'a>;
    fn matcher(&self) -> Matcher<'_> {
        FilterEngine::matcher(self)
    }
}

impl MatcherSource for ShardedEngine {
    type Matcher<'a> = ShardedMatcher<'a>;
    fn matcher(&self) -> ShardedMatcher<'_> {
        ShardedEngine::matcher(self)
    }
}

/// Why one document of a batch produced no match set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// The document failed to parse (syntax error or resource-limit
    /// violation — see [`XmlError::is_limit`]).
    Parse(XmlError),
    /// Matching this document panicked; the worker recovered with a fresh
    /// matcher and the rest of the batch was unaffected.
    Panicked(String),
}

impl std::fmt::Display for DocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DocError::Parse(e) => e.fmt(f),
            DocError::Panicked(msg) => write!(f, "matcher panicked: {msg}"),
        }
    }
}

impl std::error::Error for DocError {}

impl From<XmlError> for DocError {
    fn from(e: XmlError) -> Self {
        DocError::Parse(e)
    }
}

/// Per-document outcome of a batch filter call: the match set, or what
/// went wrong for that document alone.
pub type DocFilterResult = Result<Vec<SubId>, DocError>;

/// Per-document outcome of [`filter_batch_bytes`] (alias kept for the
/// streaming entry point's historical name).
pub type ByteFilterResult = DocFilterResult;

/// Summary of a batch run: how many documents matched cleanly and how many
/// were rejected or recovered from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Documents in the batch.
    pub total: usize,
    /// Documents that parsed and matched normally.
    pub ok: usize,
    /// Documents rejected with a parse error (malformed or over limits).
    pub parse_errors: usize,
    /// Documents whose matcher panicked.
    pub panics: usize,
}

impl BatchReport {
    /// Tallies a result vector.
    pub fn from_results(results: &[DocFilterResult]) -> Self {
        let mut report = BatchReport {
            total: results.len(),
            ..BatchReport::default()
        };
        for r in results {
            match r {
                Ok(_) => report.ok += 1,
                Err(DocError::Parse(_)) => report.parse_errors += 1,
                Err(DocError::Panicked(_)) => report.panics += 1,
            }
        }
        report
    }

    /// Documents the batch recovered from (errored but did not stop the
    /// batch): everything that is not `ok`.
    pub fn recovered(&self) -> usize {
        self.parse_errors + self.panics
    }
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} documents: {} ok, {} parse errors, {} panics recovered",
            self.total, self.ok, self.parse_errors, self.panics
        )
    }
}

/// Extracts a readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Reusable batch-driver scratch: the per-worker result staging buffers
/// that [`run_isolated`] previously allocated on every call. A caller
/// looping over batches holds one `BatchScratch` and passes it to the
/// `*_with` entry points, so the staging vectors keep their capacity
/// across batches.
#[derive(Debug, Default)]
pub struct BatchScratch {
    per_worker: Vec<Vec<(usize, DocFilterResult)>>,
}

impl BatchScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs `work` on worker threads over the documents `0..n`, isolating each
/// document: a panic becomes a per-document [`DocError::Panicked`] entry
/// and the worker continues with a fresh matcher. Per-worker staging
/// buffers are borrowed from `scratch` and returned with their capacity
/// intact.
fn run_isolated<E, F>(
    engine: &E,
    n: usize,
    threads: usize,
    scratch: &mut BatchScratch,
    work: F,
) -> Vec<DocFilterResult>
where
    E: MatcherSource,
    F: for<'e> Fn(&mut E::Matcher<'e>, usize) -> DocFilterResult + Sync,
{
    let one_doc = |matcher: &mut E::Matcher<'_>, i: usize| -> DocFilterResult {
        // The matcher's scratch is left in an unspecified state if `work`
        // panics mid-document, so the caller must discard it afterwards.
        match catch_unwind(AssertUnwindSafe(|| work(matcher, i))) {
            Ok(result) => result,
            Err(payload) => Err(DocError::Panicked(panic_message(payload))),
        }
    };
    if threads == 1 {
        let mut matcher = engine.matcher();
        return (0..n)
            .map(|i| {
                let r = one_doc(&mut matcher, i);
                if matches!(r, Err(DocError::Panicked(_))) {
                    matcher = engine.matcher();
                }
                r
            })
            .collect();
    }
    if scratch.per_worker.len() < threads {
        scratch.per_worker.resize_with(threads, Vec::new);
    }
    // A worker that died outside the isolated region last batch leaves
    // entries staged; drop them before reuse so they cannot alias this
    // batch's document indices.
    for chunk in &mut scratch.per_worker {
        chunk.clear();
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for chunk in scratch.per_worker.iter_mut().take(threads) {
            let next = &next;
            let one_doc = &one_doc;
            handles.push(scope.spawn(move || {
                let mut matcher = engine.matcher();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let r = one_doc(&mut matcher, i);
                    if matches!(r, Err(DocError::Panicked(_))) {
                        matcher = engine.matcher();
                    }
                    chunk.push((i, r));
                }
            }));
        }
        for h in handles {
            // Workers catch per-document panics, so join only fails on a
            // panic outside the isolated region; its claimed documents
            // keep their "worker lost" placeholder below.
            let _ = h.join();
        }
    });
    let mut results: Vec<DocFilterResult> = (0..n)
        .map(|_| {
            Err(DocError::Panicked(
                "worker terminated before reporting".into(),
            ))
        })
        .collect();
    for chunk in &mut scratch.per_worker {
        for (i, r) in chunk.drain(..) {
            results[i] = r;
        }
    }
    results
}

/// Resolves a user-facing thread count: `0` means one worker per
/// available core ([`std::thread::available_parallelism`], falling back
/// to 1 if the parallelism cannot be queried); any count is capped at the
/// number of documents (spawning idle workers is pointless).
fn effective_threads(threads: usize, n_docs: usize) -> usize {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    threads.min(n_docs.max(1))
}

/// Filters a batch of parsed documents across `threads` worker threads,
/// returning per-document outcomes in input order.
///
/// The engine must be prepared ([`FilterEngine::prepare`]) — it is borrowed
/// immutably. With `threads == 1` this degenerates to a sequential loop
/// (no threads are spawned); `threads == 0` means "use every available
/// core" ([`std::thread::available_parallelism`]). A panic while matching
/// one document yields a [`DocError::Panicked`] entry for that document
/// only.
///
/// ```
/// use pxf_core::{parallel, FilterEngine};
/// use pxf_xml::Document;
///
/// let mut engine = FilterEngine::default();
/// let s = engine.add_str("/a/b").unwrap();
/// engine.prepare();
/// let docs = vec![
///     Document::parse(b"<a><b/></a>").unwrap(),
///     Document::parse(b"<x/>").unwrap(),
/// ];
/// let results = parallel::filter_batch(&engine, &docs, 4);
/// assert_eq!(results[0].as_ref().unwrap(), &vec![s]);
/// assert!(results[1].as_ref().unwrap().is_empty());
/// ```
pub fn filter_batch<E: MatcherSource>(
    engine: &E,
    docs: &[Document],
    threads: usize,
) -> Vec<DocFilterResult> {
    filter_batch_with(engine, docs, threads, &mut BatchScratch::new())
}

/// [`filter_batch`] with caller-held [`BatchScratch`]: a loop over many
/// batches reuses the per-worker staging buffers instead of reallocating
/// them every call.
pub fn filter_batch_with<E: MatcherSource>(
    engine: &E,
    docs: &[Document],
    threads: usize,
    scratch: &mut BatchScratch,
) -> Vec<DocFilterResult> {
    let threads = effective_threads(threads, docs.len());
    run_isolated(engine, docs.len(), threads, scratch, |matcher, i| {
        Ok(matcher.match_document(&docs[i]))
    })
}

/// Filters raw serialized documents (parse + match per document, the
/// paper's total-filter-time unit of work) across worker threads.
///
/// Each document takes the streaming path ([`Matcher::match_bytes`]): one
/// pass over the bytes into a flat path store, no `Document` tree. Parse
/// errors — including [`ParserLimits`](pxf_xml::ParserLimits) violations —
/// and matcher panics are isolated per document. With `threads == 1` this
/// degenerates to a sequential loop (no threads are spawned), and
/// `threads == 0` uses every available core, mirroring [`filter_batch`].
///
/// [`Matcher::match_bytes`]: crate::Matcher::match_bytes
pub fn filter_batch_bytes<E: MatcherSource>(
    engine: &E,
    docs: &[Vec<u8>],
    threads: usize,
) -> Vec<ByteFilterResult> {
    filter_batch_bytes_with(engine, docs, threads, &mut BatchScratch::new())
}

/// [`filter_batch_bytes`] with caller-held [`BatchScratch`] (see
/// [`filter_batch_with`]).
pub fn filter_batch_bytes_with<E: MatcherSource>(
    engine: &E,
    docs: &[Vec<u8>],
    threads: usize,
    scratch: &mut BatchScratch,
) -> Vec<ByteFilterResult> {
    let threads = effective_threads(threads, docs.len());
    run_isolated(engine, docs.len(), threads, scratch, |matcher, i| {
        matcher.match_bytes(&docs[i]).map_err(DocError::from)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, AttrMode};

    fn sample_engine() -> (FilterEngine, Vec<SubId>) {
        let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
        let ids = vec![
            engine.add_str("/a/b").unwrap(),
            engine.add_str("//c").unwrap(),
            engine.add_str("a/*/d").unwrap(),
        ];
        engine.prepare();
        (engine, ids)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (engine, _) = sample_engine();
        let docs: Vec<Document> = [
            "<a><b/></a>",
            "<a><x><c/></x></a>",
            "<a><q><d/></q></a>",
            "<z/>",
            "<a><b><c/></b></a>",
        ]
        .iter()
        .cycle()
        .take(50)
        .map(|s| Document::parse(s.as_bytes()).unwrap())
        .collect();
        let sequential = filter_batch(&engine, &docs, 1);
        assert!(sequential.iter().all(|r| r.is_ok()));
        for threads in [2, 4, 8] {
            assert_eq!(filter_batch(&engine, &docs, threads), sequential);
        }
        // 0 = one worker per available core.
        assert_eq!(filter_batch(&engine, &docs, 0), sequential);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(effective_threads(0, 1000), cores.min(1000));
        assert_eq!(effective_threads(0, 1), 1); // capped at the doc count
        assert_eq!(effective_threads(3, 2), 2);
        assert_eq!(effective_threads(3, 0), 1); // empty batch still needs 1
    }

    #[test]
    fn bytes_variant_reports_parse_errors() {
        let (engine, ids) = sample_engine();
        let docs = vec![b"<a><b/></a>".to_vec(), b"<broken".to_vec()];
        let results = filter_batch_bytes(&engine, &docs, 2);
        assert_eq!(results[0].as_ref().unwrap(), &vec![ids[0]]);
        assert!(matches!(results[1], Err(DocError::Parse(_))));
        let report = BatchReport::from_results(&results);
        assert_eq!((report.total, report.ok, report.parse_errors), (2, 1, 1));
        assert_eq!(report.recovered(), 1);
    }

    #[test]
    fn bytes_variant_agrees_with_tree_path_across_thread_counts() {
        let (engine, _) = sample_engine();
        let sources = [
            "<a><b/></a>",
            "<a><x><c/></x></a>",
            "<a><q><d/></q></a>",
            "<z/>",
            "<a><b><c/></b></a>",
        ];
        let bytes: Vec<Vec<u8>> = sources
            .iter()
            .cycle()
            .take(50)
            .map(|s| s.as_bytes().to_vec())
            .collect();
        let docs: Vec<Document> = bytes.iter().map(|b| Document::parse(b).unwrap()).collect();
        let tree: Vec<Vec<SubId>> = filter_batch(&engine, &docs, 1)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        for threads in [1, 2, 4] {
            let streamed = filter_batch_bytes(&engine, &bytes, threads);
            let streamed: Vec<Vec<SubId>> = streamed.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(streamed, tree, "threads={threads}");
        }
    }

    #[test]
    fn engine_limits_are_enforced_on_the_batch_path() {
        let (mut engine, ids) = sample_engine();
        engine.set_parser_limits(pxf_xml::ParserLimits {
            max_depth: 3,
            ..pxf_xml::ParserLimits::default()
        });
        let docs = vec![
            b"<a><b/></a>".to_vec(),
            b"<a><x><c><d/></c></x></a>".to_vec(), // depth 4: over budget
        ];
        for threads in [1, 2] {
            let results = filter_batch_bytes(&engine, &docs, threads);
            assert_eq!(results[0].as_ref().unwrap(), &vec![ids[0]]);
            match &results[1] {
                Err(DocError::Parse(e)) => assert!(e.is_limit()),
                other => panic!("expected a limit error, got {other:?}"),
            }
        }
    }

    #[test]
    fn sharded_engine_drives_the_batch_path() {
        let (engine, _) = sample_engine();
        let mut sharded =
            crate::ShardedEngine::new(3, Algorithm::AccessPredicate, AttrMode::Inline);
        for e in ["/a/b", "//c", "a/*/d"] {
            sharded.add_str(e).unwrap();
        }
        sharded.prepare();
        let bytes: Vec<Vec<u8>> = [
            "<a><b/></a>",
            "<a><x><c/></x></a>",
            "<a><q><d/></q></a>",
            "<z/>",
        ]
        .iter()
        .cycle()
        .take(40)
        .map(|s| s.as_bytes().to_vec())
        .collect();
        let want = filter_batch_bytes(&engine, &bytes, 1);
        for threads in [1, 2, 4] {
            assert_eq!(filter_batch_bytes(&sharded, &bytes, threads), want);
        }
    }

    #[test]
    fn batch_scratch_is_reusable_across_batches() {
        let (engine, _) = sample_engine();
        let mut scratch = BatchScratch::new();
        let big: Vec<Vec<u8>> = (0..32).map(|_| b"<a><b/></a>".to_vec()).collect();
        let small = vec![b"<a><x><c/></x></a>".to_vec(), b"<broken".to_vec()];
        for _ in 0..3 {
            let r = filter_batch_bytes_with(&engine, &big, 4, &mut scratch);
            assert_eq!(r.len(), 32);
            assert!(r.iter().all(|x| x.is_ok()));
            // A smaller batch (fewer workers) right after must not see
            // stale staged entries from the bigger one.
            let r = filter_batch_bytes_with(&engine, &small, 2, &mut scratch);
            assert_eq!(r.len(), 2);
            assert!(r[0].is_ok());
            assert!(matches!(r[1], Err(DocError::Parse(_))));
        }
    }

    #[test]
    fn matcher_requires_prepare() {
        let mut engine = FilterEngine::default();
        engine.add_str("/a").unwrap();
        let result = std::panic::catch_unwind(|| {
            let _ = engine.matcher();
        });
        assert!(result.is_err(), "matcher() must panic before prepare()");
        engine.prepare();
        let mut m = engine.matcher();
        let doc = Document::parse(b"<a/>").unwrap();
        assert_eq!(m.match_document(&doc).len(), 1);
    }

    #[test]
    fn independent_matchers_have_independent_stats() {
        let (engine, _) = sample_engine();
        let doc = Document::parse(b"<a><b/></a>").unwrap();
        let mut m1 = engine.matcher();
        let mut m2 = engine.matcher();
        m1.match_document(&doc);
        m1.match_document(&doc);
        m2.match_document(&doc);
        assert_eq!(m1.stats().docs, 2);
        assert_eq!(m2.stats().docs, 1);
    }
}
