//! Tests for the paper-notation renderer and the engine's statistics
//! surface (the instrumentation behind Fig. 10).

use pxf_core::encode::{encode_single_path, AttrMode};
use pxf_core::{Algorithm, FilterEngine, Stage1};
use pxf_xml::{Document, Interner};
use pxf_xpath::parse;

fn notation(src: &str, mode: AttrMode) -> String {
    let expr = parse(src).unwrap();
    let mut interner = Interner::new();
    let enc = encode_single_path(&expr, &mut interner, mode).unwrap();
    enc.preds
        .iter()
        .map(|p| p.to_notation(&interner))
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[test]
fn notation_covers_every_predicate_type() {
    assert_eq!(notation("/*/*/*", AttrMode::Postponed), "(length, >=, 3)");
    assert_eq!(
        notation("/a//b/*", AttrMode::Postponed),
        "(p_a, =, 1) -> (d(p_a, p_b), >=, 1) -> (p_b-|, >=, 1)"
    );
    assert_eq!(notation("*/x", AttrMode::Postponed), "(p_x, >=, 2)");
}

#[test]
fn notation_renders_attribute_constraints() {
    assert_eq!(
        notation("/a[@k = \"v\"]", AttrMode::Inline),
        "(p_a([k, =, \"v\"]), =, 1)"
    );
    assert_eq!(notation("/a[@k]", AttrMode::Inline), "(p_a([k]), =, 1)");
    // Multiple constraints are rendered sorted by name.
    assert_eq!(
        notation("/a[@z = 1][@b >= 2]", AttrMode::Inline),
        "(p_a([b, >=, 2], [z, =, 1]), =, 1)"
    );
}

#[test]
fn notation_renders_text_filters() {
    assert_eq!(
        notation("/a[text() = \"w\"]", AttrMode::Inline),
        "(p_a([text(), =, \"w\"]), =, 1)"
    );
}

#[test]
fn stats_breakdown_composes() {
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, pxf_core::AttrMode::Inline);
    for src in ["/a/b", "/a//c", "a/b/c", "/a/*", "//c[@x = 1]"] {
        engine.add(&parse(src).unwrap()).unwrap();
    }
    let doc = Document::parse(b"<a><b><c x=\"1\"/></b><b/></a>").unwrap();
    for _ in 0..20 {
        engine.match_document(&doc);
    }
    let s = engine.stats();
    assert_eq!(s.docs, 20);
    assert_eq!(s.matches, 20 * 5);
    assert!(s.predicate_ns > 0);
    assert!(s.expression_ns > 0);
    assert!(s.occurrence_runs > 0);
    // Counters are cumulative and monotone.
    engine.match_document(&doc);
    let s2 = engine.stats();
    assert!(s2.docs == 21 && s2.matches == 21 * 5);
    assert!(s2.predicate_ns >= s.predicate_ns);
    assert!(s2.expression_ns >= s.expression_ns);
}

#[test]
fn distinct_predicates_is_fig10_metric() {
    // Duplicate-heavy adds barely move the distinct predicate count — the
    // sublinearity Fig. 10 reports.
    let mut engine = FilterEngine::default();
    for _ in 0..1000 {
        engine.add(&parse("/a/b/c").unwrap()).unwrap();
        engine.add(&parse("/a/b//d").unwrap()).unwrap();
    }
    assert_eq!(engine.len(), 2000);
    assert_eq!(engine.distinct_predicates(), 4); // p_a, d(a,b), d(b,c), d(b,≥d)
}

#[test]
fn ap_root_probes_touch_only_satisfied_clusters() {
    // The document has two identical leaf paths (a/b). The incremental
    // default memoizes the duplicate, so only one path runs stage 2; the
    // per-path oracle evaluates both. Of the three clusters only /a/b's
    // access predicate is satisfied, so exactly one root is probed per
    // evaluated path — the dead clusters are never even looked at (the
    // retired `ap_cluster_skips` counted skipping them one by one).
    for (stage1, probes, memo) in [(Stage1::Incremental, 1, 1), (Stage1::PerPath, 2, 0)] {
        let mut engine = FilterEngine::new(Algorithm::AccessPredicate, pxf_core::AttrMode::Inline);
        engine.set_stage1(stage1);
        // Three clusters: two can never match the document below.
        engine.add(&parse("/nope1/x").unwrap()).unwrap();
        engine.add(&parse("/nope2/y").unwrap()).unwrap();
        engine.add(&parse("/a/b").unwrap()).unwrap();
        let doc = Document::parse(b"<a><b/><b/></a>").unwrap();
        engine.match_document(&doc);
        let s = engine.stats();
        assert_eq!(s.ap_root_probes, probes, "{stage1:?}: {s:?}");
        assert_eq!(s.memo_path_skips, memo, "{stage1:?}: {s:?}");
    }
}

#[test]
fn posting_candidates_bound_occurrence_runs() {
    // Inline mode, no postponed re-checks: every occurrence determination
    // is triggered by a posting-generated candidate, and covering
    // propagation can only resolve candidates *without* a run — so
    // `stage2_candidates >= occurrence_runs`, and every candidate costs
    // at least one posting bump.
    for algo in [Algorithm::Basic, Algorithm::PrefixCovering] {
        let mut engine = FilterEngine::new(algo, pxf_core::AttrMode::Inline);
        for src in ["/a/b", "/a/b/c", "/a//c", "a/b", "//b", "/zzz/q"] {
            engine.add(&parse(src).unwrap()).unwrap();
        }
        let doc = Document::parse(b"<a><b><c/></b><b/></a>").unwrap();
        engine.match_document(&doc);
        let s = engine.stats();
        assert!(s.stage2_candidates > 0, "{algo:?}: {s:?}");
        assert!(s.stage2_candidates >= s.occurrence_runs, "{algo:?}: {s:?}");
        assert!(s.posting_bumps >= s.stage2_candidates, "{algo:?}: {s:?}");
    }
}
