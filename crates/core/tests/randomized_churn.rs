//! Seeded randomized churn property suite: random interleavings of
//! add / remove / match, applied to a *live* engine that patches its
//! index in place, must be indistinguishable from a fresh engine
//! rebuilt from the surviving subscription set — across every
//! algorithm, both stage-1 modes, both stage-2 strategies, and both
//! document stores (tree and streaming byte path).
//!
//! The incremental paths under test: posting-list spans patched per
//! add/remove, packed-trie column appends with tombstoned terminals,
//! predicate reference counting with slot reclamation, and the
//! `pid → root` table maintenance — all equivalence-checked against the
//! rebuild-from-scratch engine as oracle after every batch of ops.

use pxf_core::{Algorithm, AttrMode, FilterEngine, ShardedEngine, Stage1, Stage2, SubId};
use pxf_rng::Rng;
use pxf_xml::Document;
use pxf_xpath::XPathExpr;

const TAGS: [&str; 4] = ["a", "b", "c", "d"];

/// Random expression source covering the index's dispatch arms: plain
/// steps, wildcards, attribute filters (equality, existence, ranges),
/// and occasional nested path filters.
fn arb_expr_src(rng: &mut Rng) -> String {
    let n_steps = rng.gen_range(1..5usize);
    let mut src = String::new();
    if rng.gen_bool(0.5) {
        src.push('/');
    }
    for i in 0..n_steps {
        if i > 0 || src == "/" {
            if rng.gen_bool(0.35) && i != 0 {
                src.push_str("//");
            } else if i > 0 {
                src.push('/');
            }
        }
        if rng.gen_bool(0.2) && i > 0 {
            src.push('*');
            continue;
        }
        src.push_str(TAGS[rng.gen_range(0..TAGS.len())]);
        // Attribute filters exercise the attr-range columns and buckets.
        if rng.gen_bool(0.3) {
            match rng.gen_range(0..4u32) {
                0 => src.push_str("[@k = \"1\"]"),
                1 => src.push_str("[@m]"),
                2 => src.push_str(&format!("[@n >= {}]", rng.gen_range(1..4u32))),
                _ => src.push_str(&format!("[@n <= {}]", rng.gen_range(1..4u32))),
            }
        }
        // Nested path filters exercise the NestedSub live-flag path.
        if rng.gen_bool(0.1) {
            src.push_str(&format!("[{}/{}]", TAGS[rng.gen_range(0..2usize)], TAGS[2]));
        }
    }
    if src.is_empty() || src == "/" {
        src = "/a".into();
    }
    src
}

fn arb_expr(rng: &mut Rng) -> XPathExpr {
    loop {
        if let Ok(e) = pxf_xpath::parse(&arb_expr_src(rng)) {
            return e;
        }
    }
}

fn arb_doc_xml(rng: &mut Rng, depth: usize) -> String {
    let tag = TAGS[rng.gen_range(0..TAGS.len())];
    let attr = match rng.gen_range(0..5u32) {
        0 => " k=\"1\"".to_string(),
        1 => " m=\"x\"".to_string(),
        2 => format!(" n=\"{}\"", rng.gen_range(0..5u32)),
        _ => String::new(),
    };
    let n_children = if depth == 0 {
        0
    } else {
        rng.gen_range(0..3usize)
    };
    if n_children == 0 {
        return format!("<{tag}{attr}/>");
    }
    let children: String = (0..n_children)
        .map(|_| arb_doc_xml(rng, depth - 1))
        .collect();
    format!("<{tag}{attr}>{children}</{tag}>")
}

fn mode_grid() -> Vec<(Algorithm, Stage1, Stage2)> {
    let mut out = Vec::new();
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        for s1 in [Stage1::Incremental, Stage1::PerPath] {
            for s2 in [Stage2::Posting, Stage2::Scan] {
                out.push((algo, s1, s2));
            }
        }
    }
    out
}

/// One random op script: initial adds, then batches of interleaved
/// adds/removes, with the document set to check after every batch.
struct Script {
    attr_mode: AttrMode,
    initial: Vec<XPathExpr>,
    /// Per batch: (new exprs to add, indices into the live-id order to
    /// remove — resolved against the current live set at run time).
    batches: Vec<(Vec<XPathExpr>, Vec<usize>)>,
    docs: Vec<String>,
}

fn arb_script(rng: &mut Rng) -> Script {
    let attr_mode = if rng.gen_bool(0.5) {
        AttrMode::Inline
    } else {
        AttrMode::Postponed
    };
    let initial = (0..rng.gen_range(3..9usize))
        .map(|_| arb_expr(rng))
        .collect();
    let batches = (0..rng.gen_range(2..5usize))
        .map(|_| {
            let adds = (0..rng.gen_range(0..4usize))
                .map(|_| arb_expr(rng))
                .collect();
            let removes = (0..rng.gen_range(0..3usize))
                .map(|_| rng.gen_range(0..1usize << 16))
                .collect();
            (adds, removes)
        })
        .collect();
    let docs = (0..rng.gen_range(1..4usize))
        .map(|_| arb_doc_xml(rng, 4))
        .collect();
    Script {
        attr_mode,
        initial,
        batches,
        docs,
    }
}

/// Runs the script against a live engine in one mode, checking both
/// stores against the survivor oracle after every batch. Returns the
/// number of incremental patches the live engine performed.
fn run_script(script: &Script, algo: Algorithm, s1: Stage1, s2: Stage2) -> u64 {
    let ctx = format!("{algo:?} {s1:?} {s2:?} {:?}", script.attr_mode);
    let mut engine = FilterEngine::new(algo, script.attr_mode);
    engine.set_stage1(s1);
    engine.set_stage2(s2);
    // SubId → live expression (None once removed).
    let mut subs: Vec<Option<XPathExpr>> = Vec::new();
    for e in &script.initial {
        let id = engine.add(e).unwrap();
        assert_eq!(id.0 as usize, subs.len());
        subs.push(Some(e.clone()));
    }
    let docs: Vec<Document> = script
        .docs
        .iter()
        .map(|s| Document::parse(s.as_bytes()).unwrap())
        .collect();
    // First match triggers the bulk prepare; everything after it must
    // patch in place (checked by the caller via the returned counter).
    let _ = engine.match_document(&docs[0]);

    for (batch_no, (adds, removes)) in script.batches.iter().enumerate() {
        for e in adds {
            let id = engine.add(e).unwrap();
            assert_eq!(id.0 as usize, subs.len(), "{ctx}");
            subs.push(Some(e.clone()));
        }
        for &pick in removes {
            let live: Vec<usize> = (0..subs.len()).filter(|&i| subs[i].is_some()).collect();
            if live.is_empty() {
                continue;
            }
            let victim = live[pick % live.len()];
            assert!(engine.remove(SubId(victim as u32)), "{ctx}");
            subs[victim] = None;
            // Double-remove must be rejected without corrupting state.
            assert!(!engine.remove(SubId(victim as u32)), "{ctx}");
        }

        // Oracle: fresh engine over the surviving set, same mode.
        let mut oracle = FilterEngine::new(algo, script.attr_mode);
        oracle.set_stage1(s1);
        oracle.set_stage2(s2);
        let mut kept_orig: Vec<u32> = Vec::new();
        for (i, e) in subs.iter().enumerate() {
            if let Some(e) = e {
                oracle.add(e).unwrap();
                kept_orig.push(i as u32);
            }
        }
        for (src, doc) in script.docs.iter().zip(&docs) {
            let want: Vec<u32> = oracle
                .match_document(doc)
                .iter()
                .map(|s| kept_orig[s.0 as usize])
                .collect();
            let got: Vec<u32> = engine.match_document(doc).iter().map(|s| s.0).collect();
            assert_eq!(got, want, "{ctx}, batch {batch_no}, tree store, doc {src}");
            let streamed: Vec<u32> = engine
                .match_bytes(src.as_bytes())
                .unwrap()
                .iter()
                .map(|s| s.0)
                .collect();
            assert_eq!(
                streamed, want,
                "{ctx}, batch {batch_no}, byte store, doc {src}"
            );
        }
    }
    engine.incremental_patches()
}

#[test]
fn churn_equals_rebuild_across_all_modes() {
    let mut rng = Rng::seed_from_u64(0x7c41);
    let grid = mode_grid();
    let mut total_patches = 0u64;
    for _ in 0..24 {
        let script = arb_script(&mut rng);
        for &(algo, s1, s2) in &grid {
            total_patches += run_script(&script, algo, s1, s2);
        }
    }
    assert!(
        total_patches > 0,
        "steady-state churn never took the incremental patch path"
    );
}

/// The same churn scripts driven through a sharded engine: removal must
/// route to the shard the round-robin placement put the subscription on.
#[test]
fn sharded_churn_equals_rebuild() {
    let mut rng = Rng::seed_from_u64(0x7c42);
    for _ in 0..24 {
        let script = arb_script(&mut rng);
        for n_shards in [2usize, 3] {
            let ctx = format!("{n_shards} shards {:?}", script.attr_mode);
            let mut engine =
                ShardedEngine::new(n_shards, Algorithm::AccessPredicate, script.attr_mode);
            let mut subs: Vec<Option<XPathExpr>> = Vec::new();
            for e in &script.initial {
                engine.add(e).unwrap();
                subs.push(Some(e.clone()));
            }
            let docs: Vec<Document> = script
                .docs
                .iter()
                .map(|s| Document::parse(s.as_bytes()).unwrap())
                .collect();
            let _ = engine.match_document(&docs[0]);
            for (adds, removes) in &script.batches {
                for e in adds {
                    engine.add(e).unwrap();
                    subs.push(Some(e.clone()));
                }
                for &pick in removes {
                    let live: Vec<usize> = (0..subs.len()).filter(|&i| subs[i].is_some()).collect();
                    if live.is_empty() {
                        continue;
                    }
                    let victim = live[pick % live.len()];
                    assert!(engine.remove(SubId(victim as u32)), "{ctx}");
                    subs[victim] = None;
                    assert!(!engine.remove(SubId(victim as u32)), "{ctx}");
                }
                let mut oracle = FilterEngine::new(Algorithm::AccessPredicate, script.attr_mode);
                let mut kept_orig: Vec<u32> = Vec::new();
                for (i, e) in subs.iter().enumerate() {
                    if let Some(e) = e {
                        oracle.add(e).unwrap();
                        kept_orig.push(i as u32);
                    }
                }
                for (src, doc) in script.docs.iter().zip(&docs) {
                    let want: Vec<u32> = oracle
                        .match_document(doc)
                        .iter()
                        .map(|s| kept_orig[s.0 as usize])
                        .collect();
                    let got: Vec<u32> = engine.match_document(doc).iter().map(|s| s.0).collect();
                    assert_eq!(got, want, "{ctx}, doc {src}");
                }
            }
        }
    }
}
