//! Concurrency soak: one writer thread applies continuous add/remove
//! churn through a [`SnapshotPublisher`] while matcher threads filter
//! documents off `Arc` snapshots. Checked invariants:
//!
//! * a subscription is never reported by a snapshot whose epoch is at or
//!   after the publication that removed it (no resurrection),
//! * matching the same document twice against one pinned snapshot gives
//!   identical results (snapshots are immutable — no torn reads),
//! * epochs observed through a handle never go backwards,
//! * steady-state churn performs zero full index rebuilds.
//!
//! Iteration counts are bounded for CI; the writer publishes every few
//! ops so reclamation races (recycle vs deep-clone fallback) are hit.

use pxf_core::{
    Algorithm, AttrMode, FilterEngine, ShardedEngine, ShardedPublisher, SnapshotPublisher, SubId,
};
use pxf_rng::Rng;
use pxf_xml::Document;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

const EXPR_POOL: [&str; 10] = [
    "/a/b",
    "//c",
    "a/*/d",
    "//b[@k = \"1\"]",
    "/a//c/d",
    "//a//b",
    "/a[b/c]",
    "//b[@m]",
    "//d[@n >= 2]",
    "/a",
];

const DOC_POOL: [&str; 5] = [
    "<a><b k=\"1\"><c/></b><b/></a>",
    "<a><x><c><d/></c></x><b m=\"2\"/></a>",
    "<a><b><c/></b><b><c/></b><d n=\"3\"/></a>",
    "<z><a><b/></a></z>",
    "<a><c><d/></c></a>",
];

/// Writer loop: random add/remove, publish every few ops, recording the
/// epoch at which each removal became visible.
fn churn_writer(
    publisher: &mut SnapshotPublisher,
    removed_at: &Mutex<HashMap<u32, u64>>,
    iters: usize,
    seed: u64,
) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut live: Vec<SubId> = Vec::new();
    for i in 0..iters {
        if live.is_empty() || rng.gen_bool(0.55) {
            let src = EXPR_POOL[rng.gen_range(0..EXPR_POOL.len())];
            live.push(publisher.add_str(src).unwrap());
        } else {
            let victim = live.swap_remove(rng.gen_range(0..live.len()));
            assert!(publisher.remove(victim));
            let epoch = publisher.publish();
            // Recorded only after the publish that excludes the victim
            // returned, so any snapshot at `epoch` or later must not
            // report it.
            removed_at.lock().unwrap().insert(victim.0, epoch);
            continue;
        }
        if i % 3 == 0 {
            publisher.publish();
        }
    }
    publisher.publish();
}

#[test]
fn concurrent_churn_soak() {
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    for src in EXPR_POOL {
        engine.add_str(src).unwrap();
    }
    let mut publisher = SnapshotPublisher::new(engine);
    let handle = publisher.handle();
    let removed_at: Mutex<HashMap<u32, u64>> = Mutex::new(HashMap::new());
    let done = AtomicBool::new(false);
    let docs: Vec<Document> = DOC_POOL
        .iter()
        .map(|s| Document::parse(s.as_bytes()).unwrap())
        .collect();

    std::thread::scope(|scope| {
        let removed_at = &removed_at;
        let done = &done;
        let docs = &docs;
        for t in 0..3usize {
            let handle = handle.clone();
            scope.spawn(move || {
                let mut rng = Rng::seed_from_u64(0x50a0 + t as u64);
                let mut last_epoch = 0u64;
                let mut rounds = 0usize;
                while !done.load(Ordering::Acquire) || rounds < 10 {
                    rounds += 1;
                    let snap = handle.load();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch went backwards: {} -> {}",
                        last_epoch,
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    std::thread::yield_now();
                    let mut matcher = snap.matcher();
                    let doc = &docs[rng.gen_range(0..docs.len())];
                    let first = matcher.match_document(doc);
                    // Immutable snapshot: a re-match must be identical
                    // even while the writer churns and republishes.
                    assert_eq!(first, matcher.match_document(doc), "torn read");
                    let removed = removed_at.lock().unwrap();
                    for sub in &first {
                        if let Some(&epoch) = removed.get(&sub.0) {
                            assert!(
                                epoch > snap.epoch(),
                                "sub {} removed at epoch {epoch} reported by \
                                 snapshot epoch {}",
                                sub.0,
                                snap.epoch()
                            );
                        }
                    }
                }
            });
        }
        churn_writer(&mut publisher, removed_at, 240, 0x50aa);
        done.store(true, Ordering::Release);
    });

    assert_eq!(
        publisher.engine().full_rebuilds(),
        0,
        "steady-state churn must not trigger full rebuilds"
    );
    assert!(publisher.engine().incremental_patches() > 0);

    // Post-soak sanity: the final snapshot agrees with a from-scratch
    // rebuild of the surviving subscription set.
    let snap = handle.load();
    for doc in &docs {
        let got = snap.matcher().match_document(doc);
        for sub in &got {
            assert!(!removed_at.lock().unwrap().contains_key(&sub.0));
        }
    }
}

/// The same soak shape through the sharded publisher: per-shard snapshot
/// swaps composed into one epoch, matched via [`ShardedSnapshot`]
/// matchers holding the composite `Arc`.
///
/// [`ShardedSnapshot`]: pxf_core::ShardedSnapshot
#[test]
fn sharded_concurrent_churn_soak() {
    let mut engine = ShardedEngine::new(3, Algorithm::AccessPredicate, AttrMode::Inline);
    for src in EXPR_POOL {
        engine.add_str(src).unwrap();
    }
    let mut publisher = ShardedPublisher::new(engine);
    let handle = publisher.handle();
    let removed_at: Mutex<HashMap<u32, u64>> = Mutex::new(HashMap::new());
    let done = AtomicBool::new(false);
    let docs: Vec<Document> = DOC_POOL
        .iter()
        .map(|s| Document::parse(s.as_bytes()).unwrap())
        .collect();

    std::thread::scope(|scope| {
        let removed_at = &removed_at;
        let done = &done;
        let docs = &docs;
        for t in 0..2usize {
            let handle = handle.clone();
            scope.spawn(move || {
                let mut rng = Rng::seed_from_u64(0x5a30 + t as u64);
                let mut rounds = 0usize;
                while !done.load(Ordering::Acquire) || rounds < 10 {
                    rounds += 1;
                    let snap = handle.load();
                    std::thread::yield_now();
                    let mut matcher = snap.matcher();
                    let doc = &docs[rng.gen_range(0..docs.len())];
                    let first = matcher.match_document(doc);
                    assert_eq!(first, matcher.match_document(doc), "torn read");
                    let removed = removed_at.lock().unwrap();
                    for sub in &first {
                        if let Some(&epoch) = removed.get(&sub.0) {
                            assert!(epoch > snap.epoch());
                        }
                    }
                }
            });
        }
        // Writer: same policy as the single-engine soak, inlined because
        // the sharded publisher routes by global id.
        let mut rng = Rng::seed_from_u64(0x5a3a);
        let mut live: Vec<SubId> = Vec::new();
        for i in 0..120usize {
            if live.is_empty() || rng.gen_bool(0.55) {
                let src = EXPR_POOL[rng.gen_range(0..EXPR_POOL.len())];
                live.push(publisher.add_str(src).unwrap());
            } else {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                assert!(publisher.remove(victim));
                let epoch = publisher.publish();
                removed_at.lock().unwrap().insert(victim.0, epoch);
                continue;
            }
            if i % 3 == 0 {
                publisher.publish();
            }
        }
        publisher.publish();
        done.store(true, Ordering::Release);
    });

    for engine in publisher.engines() {
        assert_eq!(engine.full_rebuilds(), 0);
    }
}
