//! The paper's Appendix A theorem as a property: an XPath expression
//! matches a document path iff its predicate encoding matches the path's
//! publication encoding.

use proptest::prelude::*;
use pxf_core::encode::{encode_single_path, AttrMode};
use pxf_core::occurrence::{determine_match, for_each_combination};
use pxf_core::reference::{matches_path, TagsView};
use pxf_predicate::{MatchContext, PredicateIndex, Publication};
use pxf_xml::Interner;
use pxf_xpath::{Axis, NodeTest, Step, XPathExpr};

const TAGS: [&str; 4] = ["a", "b", "c", "d"];

fn arb_expr() -> impl Strategy<Value = XPathExpr> {
    (
        any::<bool>(),
        proptest::collection::vec(
            (
                prop_oneof![Just(Axis::Child), Just(Axis::Descendant)],
                prop_oneof![
                    3 => (0..TAGS.len()).prop_map(|i| NodeTest::Tag(TAGS[i].to_string())),
                    1 => Just(NodeTest::Wildcard),
                ],
            ),
            1..7,
        ),
    )
        .prop_map(|(absolute, steps)| {
            let mut steps: Vec<Step> = steps
                .into_iter()
                .map(|(axis, test)| Step {
                    axis,
                    test,
                    filters: Vec::new(),
                })
                .collect();
            if !absolute {
                steps[0].axis = Axis::Child;
            }
            XPathExpr { absolute, steps }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Theorem A.1: s matches e  ⇔  s' matches e'.
    #[test]
    fn encoding_theorem(
        expr in arb_expr(),
        path in proptest::collection::vec(0..TAGS.len(), 1..10),
    ) {
        let tags: Vec<&str> = path.iter().map(|&i| TAGS[i]).collect();

        // Left side: direct XPath path semantics.
        let direct = matches_path(&expr, &TagsView(&tags));

        // Right side: predicate encoding + predicate matching + occurrence
        // determination.
        let mut interner = Interner::new();
        let enc = encode_single_path(&expr, &mut interner, AttrMode::Postponed).unwrap();
        let mut index = PredicateIndex::new();
        let pids: Vec<_> = enc.preds.iter().map(|p| index.insert(p.clone())).collect();
        let publication = Publication::from_tags(&tags, &mut interner);
        let mut ctx = MatchContext::new();
        index.evaluate(&publication, None, &mut ctx);
        let lists: Vec<&[(u16, u16)]> = pids.iter().map(|&p| ctx.get(p)).collect();
        let encoded = determine_match(&lists);

        prop_assert_eq!(
            direct, encoded,
            "expr={} path={:?} preds={:?}",
            expr.to_string(), tags,
            enc.preds.iter().map(|p| p.to_notation(&interner)).collect::<Vec<_>>()
        );
    }

    /// Occurrence determination agrees with exhaustive combination
    /// enumeration (match ⇔ at least one full combination exists).
    #[test]
    fn determination_agrees_with_enumeration(
        lists in proptest::collection::vec(
            proptest::collection::vec((1u16..4, 1u16..4), 0..5),
            1..5,
        ),
    ) {
        let refs: Vec<&[(u16, u16)]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut any = false;
        for_each_combination(&refs, |_| {
            any = true;
            false
        });
        prop_assert_eq!(determine_match(&refs), any);
    }
}
