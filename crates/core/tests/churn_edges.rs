//! Deterministic edge cases for the incremental index maintenance
//! paths: tombstone exhaustion (remove everything, then re-add),
//! duplicate-heavy `plain_subs` terminals, the compaction threshold,
//! and shard routing of removals.

use pxf_core::{
    Algorithm, AttrMode, FilterBackend, FilterEngine, ShardedEngine, Stage1, Stage2, SubId,
};
use pxf_xml::Document;

const EXPRS: [&str; 8] = [
    "/a/b",
    "//c",
    "a/*/d",
    "//b[@k = \"1\"]",
    "/a//c/d",
    "//a//b",
    "/a[b/c]",
    "//b[@m]",
];

const DOC: &str = "<a><b k=\"1\" m=\"2\"><c/></b><b><c><d/></c></b></a>";

fn engine_with(exprs: &[&str], algo: Algorithm) -> FilterEngine {
    let mut engine = FilterEngine::new(algo, AttrMode::Inline);
    for e in exprs {
        engine.add_str(e).unwrap();
    }
    engine.prepare();
    engine
}

fn match_ids(engine: &mut FilterEngine, doc: &Document) -> Vec<u32> {
    engine.match_document(doc).iter().map(|s| s.0).collect()
}

/// Removing every subscription must leave a fully-tombstoned but valid
/// index (empty match sets, no panics), and re-adding afterwards must
/// restore matching — all without a rebuild.
#[test]
fn remove_all_then_readd() {
    let doc = Document::parse(DOC.as_bytes()).unwrap();
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        let mut engine = engine_with(&EXPRS, algo);
        assert!(!match_ids(&mut engine, &doc).is_empty());
        for i in 0..EXPRS.len() {
            assert!(engine.remove(SubId(i as u32)), "{algo:?} sub {i}");
        }
        assert!(match_ids(&mut engine, &doc).is_empty(), "{algo:?}");
        assert!(
            engine.match_bytes(DOC.as_bytes()).unwrap().is_empty(),
            "{algo:?}"
        );
        // Re-add the same expressions; they get fresh ids after the dead
        // block and must match exactly like a fresh engine.
        let readded: Vec<SubId> = EXPRS.iter().map(|e| engine.add_str(e).unwrap()).collect();
        let mut oracle = engine_with(&EXPRS, algo);
        let want = match_ids(&mut oracle, &doc);
        let got = match_ids(&mut engine, &doc);
        let remapped: Vec<u32> = want.iter().map(|&i| readded[i as usize].0).collect();
        assert_eq!(got, remapped, "{algo:?}");
        assert_eq!(engine.full_rebuilds(), 0, "{algo:?}");
        assert!(engine.incremental_patches() > 0, "{algo:?}");
    }
}

/// Many subscriptions sharing one expression pile up in the same trie
/// terminal's `plain_subs` span. Removing an arbitrary subset must
/// delist exactly those ids while the duplicates keep matching.
#[test]
fn duplicate_heavy_terminal_removal() {
    let doc = Document::parse(DOC.as_bytes()).unwrap();
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        let mut engine = FilterEngine::new(algo, AttrMode::Inline);
        for _ in 0..50 {
            engine.add_str("/a/b").unwrap();
        }
        engine.prepare();
        assert_eq!(match_ids(&mut engine, &doc).len(), 50, "{algo:?}");
        // Remove every third duplicate, including both ends of the span.
        let mut removed = Vec::new();
        for i in (0..50u32).step_by(3) {
            assert!(engine.remove(SubId(i)), "{algo:?}");
            removed.push(i);
        }
        assert!(engine.remove(SubId(49)), "{algo:?}");
        removed.push(49);
        let want: Vec<u32> = (0..50u32).filter(|i| !removed.contains(i)).collect();
        assert_eq!(match_ids(&mut engine, &doc), want, "{algo:?}");
        // Removing the rest empties the terminal entirely.
        for i in want {
            assert!(engine.remove(SubId(i)), "{algo:?}");
        }
        assert!(match_ids(&mut engine, &doc).is_empty(), "{algo:?}");
        assert_eq!(engine.full_rebuilds(), 0, "{algo:?}");
    }
}

/// With the compaction threshold forced low, enough removals must
/// trigger a compacting rebuild (counted in `full_rebuilds`) and the
/// compacted index must keep matching correctly.
#[test]
fn forced_compaction_reclaims_and_preserves_matches() {
    let doc = Document::parse(DOC.as_bytes()).unwrap();
    let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    engine.force_compaction_threshold(Some(4));
    let mut subs = Vec::new();
    for _ in 0..10 {
        for e in EXPRS {
            subs.push(engine.add_str(e).unwrap());
        }
    }
    engine.prepare();
    // Remove most of the population; the garbage counter crosses the
    // forced threshold and compaction kicks in.
    for (i, sub) in subs.iter().enumerate() {
        if i % 10 != 0 {
            assert!(engine.remove(*sub));
        }
    }
    let got = match_ids(&mut engine, &doc);
    assert!(engine.full_rebuilds() > 0, "threshold 4 never compacted");
    // Oracle over the survivors (every 10th add).
    let mut oracle = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
    let mut kept_orig = Vec::new();
    for (i, sub) in subs.iter().enumerate() {
        if i % 10 == 0 {
            oracle.add_str(EXPRS[i % EXPRS.len()]).unwrap();
            kept_orig.push(sub.0);
        }
    }
    let want: Vec<u32> = oracle
        .match_document(&doc)
        .iter()
        .map(|s| kept_orig[s.0 as usize])
        .collect();
    assert_eq!(got, want);
    // Post-compaction churn goes back to patching in place.
    let patches_after_compact = engine.incremental_patches();
    engine.add_str("/a/b").unwrap();
    let _ = engine.match_document(&doc);
    assert!(engine.incremental_patches() > patches_after_compact);
}

/// Steady-state churn with the default threshold never rebuilds: the
/// `full_rebuilds` counter stays at zero across many add/remove/match
/// rounds (the regression this PR's fix targets — `remove()` used to
/// mark the whole trie dirty).
#[test]
fn steady_state_churn_never_rebuilds() {
    let doc = Document::parse(DOC.as_bytes()).unwrap();
    for s1 in [Stage1::Incremental, Stage1::PerPath] {
        for s2 in [Stage2::Posting, Stage2::Scan] {
            let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
            engine.set_stage1(s1);
            engine.set_stage2(s2);
            for e in EXPRS {
                engine.add_str(e).unwrap();
            }
            let _ = engine.match_document(&doc);
            for round in 0..40 {
                let id = engine.add_str(EXPRS[round % EXPRS.len()]).unwrap();
                let _ = engine.match_document(&doc);
                assert!(engine.remove(id));
                let _ = engine.match_document(&doc);
            }
            assert_eq!(engine.full_rebuilds(), 0, "{s1:?} {s2:?}");
            assert!(engine.incremental_patches() >= 80, "{s1:?} {s2:?}");
        }
    }
}

/// Round-robin placement: global id `g` lives on shard `g % n` as local
/// id `g / n`. Removal must route there — removing a sub must not
/// disturb same-local-id subscriptions on sibling shards.
#[test]
fn sharded_removal_routes_to_owning_shard() {
    let doc = Document::parse(DOC.as_bytes()).unwrap();
    for n_shards in [2usize, 3, 4] {
        let mut engine = ShardedEngine::new(n_shards, Algorithm::AccessPredicate, AttrMode::Inline);
        // Same expression everywhere: every shard's local id 0..k maps
        // to a distinct global id, so a routing mistake (wrong shard,
        // same local id) still removes a *valid* subscription — only the
        // match set reveals which one died.
        let subs: Vec<SubId> = (0..n_shards * 4)
            .map(|_| engine.add_str("/a/b").unwrap())
            .collect();
        engine.prepare();
        // Remove one global id per shard, all with different local ids.
        let mut gone = Vec::new();
        for s in 0..n_shards {
            let global = (s * n_shards + s) % subs.len();
            assert!(engine.remove(SubId(global as u32)), "{n_shards} shards");
            gone.push(global as u32);
        }
        let want: Vec<u32> = subs
            .iter()
            .map(|s| s.0)
            .filter(|g| !gone.contains(g))
            .collect();
        let got: Vec<u32> = engine.match_document(&doc).iter().map(|s| s.0).collect();
        assert_eq!(got, want, "{n_shards} shards");
        // Unknown / already-removed ids are rejected on every shard.
        for &g in &gone {
            assert!(!engine.remove(SubId(g)), "{n_shards} shards");
        }
        assert!(!engine.remove(SubId(subs.len() as u32 + 7)));
    }
}

/// Removal through the object-safe backend interface behaves like the
/// inherent method, and the default implementation refuses.
#[test]
fn backend_remove_dispatch() {
    struct NoRemove;
    impl FilterBackend for NoRemove {
        fn add(&mut self, _expr: &pxf_xpath::XPathExpr) -> Result<SubId, pxf_core::BackendError> {
            Ok(SubId(0))
        }
        fn match_document(&mut self, _doc: &Document) -> Vec<SubId> {
            Vec::new()
        }
        fn match_bytes(&mut self, _bytes: &[u8]) -> Result<Vec<SubId>, pxf_xml::XmlError> {
            Ok(Vec::new())
        }
    }
    assert!(!NoRemove.remove(SubId(0)));

    let mut backend: Box<dyn FilterBackend> = Box::<FilterEngine>::default();
    let a = backend.add_str("/a/b").unwrap();
    let b = backend.add_str("//c").unwrap();
    backend.prepare();
    let doc = Document::parse(DOC.as_bytes()).unwrap();
    assert_eq!(backend.match_document(&doc), vec![a, b]);
    assert!(backend.remove(a));
    assert!(!backend.remove(a));
    assert_eq!(backend.match_document(&doc), vec![b]);
}
