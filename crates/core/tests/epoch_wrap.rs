//! Epoch-wrap soak: the engine stamps per-document and per-path scratch
//! structures (epoch bitmaps, packed candidate slots, memo entries) with
//! `u32` epochs and relies on a hard clear at the wrap point — a word
//! stamped 2³² epochs ago must never read as current. Matching 2³²
//! documents is not a practical test, so this suite plants stamps at low
//! epochs, forces the epochs to just below `u32::MAX` via the `#[doc
//! (hidden)]` test hooks, and drives matching through the wrap: if any
//! structure skipped its hard clear, the stale low-epoch stamps would
//! collide with the restarted epochs and corrupt the match sets.

use pxf_core::{Algorithm, AttrMode, FilterEngine, MatchScratch, Stage1, Stage2, SubId};
use pxf_xml::Document;

const EXPRS: [&str; 8] = [
    "/a/b",
    "//c",
    "a/*/d",
    "//b[@k = \"1\"]",
    "/a//c/d",
    "//a//b",
    "/a[b/c]",
    "//b[@m]",
];

/// Repeated tags (duplicate-path memo), attributes, multiple leaf paths.
const DOCS: [&str; 5] = [
    "<a><b k=\"1\"><c/></b><b/></a>",
    "<a><x><c><d/></c></x><b m=\"2\"/></a>",
    "<a><b><c/></b><b><c/></b><q><d/></q></a>",
    "<z><a><b/></a></z>",
    "<a/>",
];

fn build(algo: Algorithm, mode: AttrMode, s1: Stage1, s2: Stage2) -> FilterEngine {
    let mut engine = FilterEngine::new(algo, mode);
    engine.set_stage1(s1);
    engine.set_stage2(s2);
    for e in EXPRS {
        engine.add_str(e).unwrap();
    }
    engine.prepare();
    engine
}

fn all_modes() -> Vec<(Algorithm, AttrMode, Stage1, Stage2)> {
    let mut out = Vec::new();
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        for mode in [AttrMode::Inline, AttrMode::Postponed] {
            for s1 in [Stage1::Incremental, Stage1::PerPath] {
                for s2 in [Stage2::Posting, Stage2::Scan] {
                    out.push((algo, mode, s1, s2));
                }
            }
        }
    }
    out
}

/// Drives the engine's internal scratch through both epoch wraps and
/// asserts the match sets never change.
#[test]
fn doc_and_path_epoch_wrap_preserves_match_sets() {
    let docs: Vec<Document> = DOCS
        .iter()
        .map(|s| Document::parse(s.as_bytes()).unwrap())
        .collect();
    for (algo, mode, s1, s2) in all_modes() {
        let ctx = format!("{algo:?} {mode:?} {s1:?} {s2:?}");
        let mut engine = build(algo, mode, s1, s2);
        // Plant stamps and candidate slots at low epochs (1, 2, …).
        let baseline: Vec<Vec<SubId>> = docs.iter().map(|d| engine.match_document(d)).collect();
        // Jump to just below the wrap point; the next few documents and
        // leaf paths cross u32::MAX → 1, re-entering the epoch range the
        // stale stamps were planted at.
        engine.force_scratch_epochs(u32::MAX - 2, u32::MAX - 3);
        for pass in 0..4 {
            for (doc, want) in docs.iter().zip(&baseline) {
                assert_eq!(
                    engine.match_document(doc),
                    *want,
                    "{ctx}, pass {pass}, doc {}",
                    doc.to_xml()
                );
            }
        }
    }
}

/// Same soak through the public concurrent-matcher scratch, with the
/// epochs observed to actually wrap (restart at small values).
#[test]
fn matcher_scratch_wraps_and_restarts() {
    let docs: Vec<Document> = DOCS
        .iter()
        .map(|s| Document::parse(s.as_bytes()).unwrap())
        .collect();
    for (algo, mode, s1, s2) in all_modes() {
        let ctx = format!("{algo:?} {mode:?} {s1:?} {s2:?}");
        let engine = build(algo, mode, s1, s2);
        let mut scratch = MatchScratch::new();
        let baseline: Vec<Vec<SubId>> = docs
            .iter()
            .map(|d| engine.match_document_with(d, &mut scratch))
            .collect();
        scratch.force_epochs(u32::MAX - 2, u32::MAX - 3);
        for pass in 0..4 {
            for (doc, want) in docs.iter().zip(&baseline) {
                assert_eq!(
                    engine.match_document_with(doc, &mut scratch),
                    *want,
                    "{ctx}, pass {pass}, doc {}",
                    doc.to_xml()
                );
            }
        }
        let (doc_epoch, path_epoch) = scratch.epochs();
        // 20 documents and ≥ 20 leaf paths crossed the forced start
        // points, so both epochs must have wrapped and restarted low —
        // and, per the hard-clear discipline, never landed on 0.
        assert!(
            (1..1000).contains(&doc_epoch),
            "{ctx}: doc epoch {doc_epoch}"
        );
        assert!(
            (1..1000).contains(&path_epoch),
            "{ctx}: path epoch {path_epoch}"
        );
    }
}

/// Churn across the wrap: subscriptions are removed and re-added while
/// the scratch epochs cross `u32::MAX`, so in-place index patches (trie
/// tombstones, posting-span rewrites, predicate slot reclamation) land
/// on structures whose epoch words are about to restart. After every
/// churn step the live engine must agree with a fresh oracle over the
/// surviving set — a stale stamp surviving the wrap, or a patch
/// resurrecting one, would desynchronize them.
#[test]
fn churn_between_wraps_matches_oracle() {
    let docs: Vec<Document> = DOCS
        .iter()
        .map(|s| Document::parse(s.as_bytes()).unwrap())
        .collect();
    for (algo, mode, s1, s2) in all_modes() {
        let ctx = format!("{algo:?} {mode:?} {s1:?} {s2:?}");
        let mut engine = build(algo, mode, s1, s2);
        let mut live: Vec<Option<&str>> = EXPRS.iter().map(|e| Some(*e)).collect();
        // Plant low-epoch stamps, then park just below the wrap point.
        for doc in &docs {
            let _ = engine.match_document(doc);
        }
        engine.force_scratch_epochs(u32::MAX - 2, u32::MAX - 3);
        for step in 0..6 {
            // Alternate removals and re-adds so the set keeps changing
            // while the epochs cross the wrap.
            let victim = step % EXPRS.len();
            if live[victim].is_some() {
                assert!(engine.remove(SubId(victim as u32)), "{ctx}");
                live[victim] = None;
            } else {
                let id = engine.add_str(EXPRS[victim]).unwrap();
                live.push(None);
                live[id.0 as usize] = Some(EXPRS[victim]);
            }
            let mut oracle = FilterEngine::new(algo, mode);
            oracle.set_stage1(s1);
            oracle.set_stage2(s2);
            let mut kept_orig: Vec<u32> = Vec::new();
            for (i, e) in live.iter().enumerate() {
                if let Some(e) = e {
                    oracle.add_str(e).unwrap();
                    kept_orig.push(i as u32);
                }
            }
            for doc in &docs {
                let want: Vec<u32> = oracle
                    .match_document(doc)
                    .iter()
                    .map(|s| kept_orig[s.0 as usize])
                    .collect();
                let got: Vec<u32> = engine.match_document(doc).iter().map(|s| s.0).collect();
                assert_eq!(got, want, "{ctx}, step {step}, doc {}", doc.to_xml());
            }
        }
        // Steady-state churn across the wrap stayed incremental.
        assert_eq!(engine.full_rebuilds(), 0, "{ctx}");
        assert!(engine.incremental_patches() > 0, "{ctx}");
    }
}

/// The wrap must also be invisible mid-stream on the byte path (parse +
/// match per document), where the path store is rebuilt every call.
#[test]
fn byte_path_survives_the_wrap() {
    for (algo, mode, s1, s2) in all_modes() {
        let ctx = format!("{algo:?} {mode:?} {s1:?} {s2:?}");
        let mut engine = build(algo, mode, s1, s2);
        let baseline: Vec<Vec<SubId>> = DOCS
            .iter()
            .map(|s| engine.match_bytes(s.as_bytes()).unwrap())
            .collect();
        engine.force_scratch_epochs(u32::MAX - 1, u32::MAX - 1);
        for pass in 0..4 {
            for (src, want) in DOCS.iter().zip(&baseline) {
                assert_eq!(
                    engine.match_bytes(src.as_bytes()).unwrap(),
                    *want,
                    "{ctx}, pass {pass}, doc {src}"
                );
            }
        }
    }
}
