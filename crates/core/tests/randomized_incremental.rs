//! Properties of incremental stage 1 (seeded randomized sweeps, in-tree
//! PRNG):
//!
//! 1. At every leaf, the incrementally maintained [`MatchContext`] holds
//!    exactly what a from-scratch [`PredicateIndex::evaluate`] of that
//!    root-to-leaf path produces — same matched predicates, same
//!    occurrence-pair lists.
//! 2. The engine's match sets are identical under every
//!    `Stage1::{Incremental,PerPath}` × `Stage2::{Posting,Scan}`
//!    combination — in particular the posting-driven stage 2 (default)
//!    against the `PerPath` + flat-scan formulation the paper describes —
//!    for every algorithm × attribute mode × document store, and agree
//!    with the reference oracle.
//!
//! Workloads include repeated-tag documents (exercising occurrence
//! numbers and the duplicate-path memo), mixed content, and attribute
//! filters (inline and selection-postponed).

use pxf_core::encode::encode_single_path;
use pxf_core::reference::matches_document;
use pxf_core::{Algorithm, AttrMode, FilterEngine, ShardedEngine, Stage1, Stage2};
use pxf_predicate::{CtxMark, MatchContext, PredicateIndex, Publication};
use pxf_rng::Rng;
use pxf_xml::{
    DocAccess, Document, DocumentBuilder, ElementVisitor, Interner, NodeId, PathDoc, Symbol,
};
use pxf_xpath::{AttrFilter, AttrValue, Axis, NodeTest, Step, StepFilter, XPathExpr};

const TAGS: [&str; 4] = ["a", "b", "c", "d"];
const ATTRS: [&str; 2] = ["k", "m"];

/// A random single-path or tree-pattern expression. Attribute filters are
/// attached only to tagged steps (attribute filters on wildcards do not
/// encode); nested path filters only when `allow_nested`.
fn arb_expr(rng: &mut Rng, allow_nested: bool) -> XPathExpr {
    let absolute = rng.gen_bool(0.5);
    let n_steps = rng.gen_range(1..5usize);
    let mut steps: Vec<Step> = (0..n_steps)
        .map(|_| {
            let axis = if rng.gen_bool(0.5) {
                Axis::Child
            } else {
                Axis::Descendant
            };
            let test = if rng.gen_bool(0.25) {
                NodeTest::Wildcard
            } else {
                NodeTest::Tag(TAGS[rng.gen_range(0..TAGS.len())].to_string())
            };
            let mut filters = Vec::new();
            if !test.is_wildcard() {
                if rng.gen_bool(0.2) {
                    let name = ATTRS[rng.gen_range(0..ATTRS.len())];
                    let filter = if rng.gen_bool(0.5) {
                        AttrFilter::eq(name, AttrValue::Int(rng.gen_range(0..3) as i64))
                    } else {
                        // Bare existence test.
                        AttrFilter {
                            name: name.to_string(),
                            constraint: None,
                        }
                    };
                    filters.push(StepFilter::Attribute(filter));
                }
                if allow_nested && rng.gen_bool(0.1) {
                    // Nested path filters are relative by construction
                    // (`[b//c]`), matching what the parser produces.
                    let mut nested = arb_expr(rng, false);
                    nested.absolute = false;
                    nested.steps[0].axis = Axis::Child;
                    filters.push(StepFilter::Path(nested));
                }
            }
            Step {
                axis,
                test,
                filters,
            }
        })
        .collect();
    if !absolute {
        steps[0].axis = Axis::Child;
    }
    XPathExpr { absolute, steps }
}

#[derive(Debug, Clone)]
struct Tree {
    tag: usize,
    attrs: Vec<(usize, u8)>,
    text: bool,
    children: Vec<Tree>,
}

/// Random tree over a pool of `n_tags` tags (small pools produce
/// repeated-tag paths); elements occasionally carry attributes and text.
fn arb_tree(rng: &mut Rng, depth: usize, n_tags: usize) -> Tree {
    let n_children = if depth == 0 {
        0
    } else {
        rng.gen_range(0..3usize)
    };
    let attrs = if rng.gen_bool(0.3) {
        vec![(rng.gen_range(0..ATTRS.len()), rng.gen_range(0..3) as u8)]
    } else {
        Vec::new()
    };
    Tree {
        tag: rng.gen_range(0..n_tags),
        attrs,
        text: rng.gen_bool(0.2),
        children: (0..n_children)
            .map(|_| arb_tree(rng, depth - 1, n_tags))
            .collect(),
    }
}

fn build_doc(tree: &Tree) -> Document {
    fn emit(t: &Tree, b: &mut DocumentBuilder) {
        b.start(TAGS[t.tag]);
        for &(name, value) in &t.attrs {
            b.attr(ATTRS[name], &value.to_string());
        }
        if t.text {
            b.text("w");
        }
        for c in &t.children {
            emit(c, b);
        }
        b.end();
    }
    let mut b = DocumentBuilder::new();
    emit(tree, &mut b);
    b.finish().unwrap()
}

/// Drives `eval_enter`/`eval_leaf` with marks over one document and, at
/// every leaf, checks the context against a from-scratch per-path
/// `evaluate` of the same path.
struct CtxChecker<'a> {
    doc: &'a Document,
    interner: &'a Interner,
    index: &'a PredicateIndex,
    publication: Publication,
    ctx: MatchContext,
    marks: Vec<CtxMark>,
    oracle_pub: Publication,
    oracle_ctx: MatchContext,
    leaves_checked: usize,
}

impl CtxChecker<'_> {
    /// Sorted `(pid, sorted pair list)` snapshot — pair order within a
    /// list is not significant (occurrence determination is
    /// order-insensitive), and the incremental evaluation produces
    /// relative pairs in a different order than the batch one.
    fn snapshot(ctx: &MatchContext) -> Vec<(usize, Vec<(u16, u16)>)> {
        let mut snap: Vec<(usize, Vec<(u16, u16)>)> = ctx
            .matched()
            .iter()
            .map(|&pid| {
                let mut pairs = ctx.get(pid).to_vec();
                pairs.sort_unstable();
                (pid.index(), pairs)
            })
            .collect();
        snap.sort_unstable();
        snap
    }
}

impl ElementVisitor for CtxChecker<'_> {
    fn enter(&mut self, id: NodeId, is_leaf: bool) {
        let tag = self
            .interner
            .get(self.doc.tag(id))
            .unwrap_or(Symbol::UNKNOWN);
        self.marks.push(self.ctx.push_mark());
        self.publication.push_path_element(tag, id);
        self.index
            .eval_enter(&self.publication, Some(self.doc), &mut self.ctx);
        if is_leaf {
            let leaf_mark = self.ctx.push_mark();
            self.index
                .eval_leaf(&self.publication, Some(self.doc), &mut self.ctx);

            let path: Vec<NodeId> = self.publication.tuples.iter().map(|t| t.node).collect();
            self.oracle_pub
                .encode_readonly(self.doc, &path, self.interner);
            self.index
                .evaluate(&self.oracle_pub, Some(self.doc), &mut self.oracle_ctx);

            assert_eq!(
                Self::snapshot(&self.ctx),
                Self::snapshot(&self.oracle_ctx),
                "context mismatch on path {path:?} of {}",
                self.doc.to_xml()
            );
            self.leaves_checked += 1;
            self.ctx.pop_to_mark(leaf_mark);
        }
    }

    fn leave(&mut self, _id: NodeId) {
        self.publication.pop_path_element();
        self.ctx.pop_to_mark(self.marks.pop().expect("mark stack"));
    }
}

/// Property 1: incremental context == per-path context at every leaf.
#[test]
fn incremental_ctx_equals_per_path_evaluate() {
    let mut rng = Rng::seed_from_u64(0x1c51);
    let mut total_leaves = 0usize;
    for round in 0..256 {
        let mut interner = Interner::new();
        let mut index = PredicateIndex::new();
        // Inline mode so attribute constraints become index-side
        // predicates (the attr side-lists of eval_enter/eval_leaf).
        for _ in 0..rng.gen_range(1..8usize) {
            let expr = arb_expr(&mut rng, false);
            let enc = encode_single_path(&expr, &mut interner, pxf_core::encode::AttrMode::Inline)
                .expect("single-path expressions encode");
            for pred in enc.preds {
                index.insert(pred);
            }
        }
        let n_tags = rng.gen_range(2..=TAGS.len());
        let doc = build_doc(&arb_tree(&mut rng, 4, n_tags));
        let mut checker = CtxChecker {
            doc: &doc,
            interner: &interner,
            index: &index,
            publication: Publication::new(),
            ctx: MatchContext::new(),
            marks: Vec::new(),
            oracle_pub: Publication::new(),
            oracle_ctx: MatchContext::new(),
            leaves_checked: 0,
        };
        checker.publication.begin_incremental();
        checker.ctx.begin(index.len());
        doc.for_each_element(&mut checker);
        assert_eq!(checker.leaves_checked, doc.leaf_count(), "round {round}");
        assert!(checker.marks.is_empty());
        total_leaves += checker.leaves_checked;
    }
    assert!(total_leaves > 256, "sweep exercised real documents");
}

/// Property 3 (expression sharding): a [`ShardedEngine`] with 1, 2, or 4
/// shards reports exactly the match set of an unsharded engine over the
/// same subscriptions — the round-robin distribution, local→global id
/// mapping, and k-way merge are invisible — and both agree with the
/// reference oracle. Checked through the tree store and the flat
/// streaming store.
#[test]
fn sharded_engines_agree_with_single_shard_oracle() {
    let mut rng = Rng::seed_from_u64(0x1c53);
    for round in 0..64 {
        let exprs: Vec<XPathExpr> = (0..rng.gen_range(1..10usize))
            .map(|_| arb_expr(&mut rng, true))
            .collect();
        let n_tags = rng.gen_range(2..=TAGS.len());
        let trees: Vec<Tree> = (0..rng.gen_range(1..3usize))
            .map(|_| arb_tree(&mut rng, 4, n_tags))
            .collect();
        let mut single = FilterEngine::default();
        for e in &exprs {
            single.add(e).unwrap();
        }
        let mut sharded: Vec<ShardedEngine> = [1usize, 2, 4]
            .iter()
            .map(|&n| {
                let mut engine =
                    ShardedEngine::new(n, Algorithm::AccessPredicate, AttrMode::Inline);
                for e in &exprs {
                    engine.add(e).unwrap();
                }
                engine.prepare();
                engine
            })
            .collect();
        for tree in &trees {
            let doc = build_doc(tree);
            let flat = PathDoc::parse(doc.to_xml().as_bytes()).unwrap();
            let oracle: Vec<u32> = exprs
                .iter()
                .enumerate()
                .filter(|(_, e)| matches_document(e, &doc))
                .map(|(i, _)| i as u32)
                .collect();
            let want: Vec<u32> = single.match_document(&doc).iter().map(|s| s.0).collect();
            assert_eq!(want, oracle, "round {round}: unsharded vs reference");
            for engine in &mut sharded {
                let n = engine.n_shards();
                let got: Vec<u32> = engine.match_document(&doc).iter().map(|s| s.0).collect();
                assert_eq!(got, oracle, "round {round}, {n} shards on {}", doc.to_xml());
                let via_flat: Vec<u32> = engine.match_document(&flat).iter().map(|s| s.0).collect();
                assert_eq!(
                    via_flat, oracle,
                    "round {round}, {n} shards, streaming store"
                );
            }
        }
    }
}

/// Property 2: identical match sets for both stage-1 evaluators × both
/// stage-2 strategies across every algorithm × attribute mode × document
/// store, agreeing with the reference oracle. `PerPath` + `Scan` is the
/// paper's formulation (the oracle the posting-driven default must
/// match).
#[test]
fn stage1_modes_agree_everywhere() {
    let mut rng = Rng::seed_from_u64(0x1c52);
    for round in 0..128 {
        let exprs: Vec<XPathExpr> = (0..rng.gen_range(1..8usize))
            .map(|_| arb_expr(&mut rng, true))
            .collect();
        let n_tags = rng.gen_range(2..=TAGS.len());
        let trees: Vec<Tree> = (0..rng.gen_range(1..4usize))
            .map(|_| arb_tree(&mut rng, 4, n_tags))
            .collect();
        for tree in &trees {
            let doc = build_doc(tree);
            let flat = PathDoc::parse(doc.to_xml().as_bytes()).unwrap();
            let oracle: Vec<u32> = exprs
                .iter()
                .enumerate()
                .filter(|(_, e)| matches_document(e, &doc))
                .map(|(i, _)| i as u32)
                .collect();
            for algo in [
                Algorithm::Basic,
                Algorithm::PrefixCovering,
                Algorithm::AccessPredicate,
            ] {
                for mode in [AttrMode::Inline, AttrMode::Postponed] {
                    for stage1 in [Stage1::Incremental, Stage1::PerPath] {
                        for stage2 in [Stage2::Posting, Stage2::Scan] {
                            let mut engine = FilterEngine::new(algo, mode);
                            engine.set_stage1(stage1);
                            engine.set_stage2(stage2);
                            for e in &exprs {
                                engine.add(e).unwrap();
                            }
                            let ctx =
                                format!("round {round} {algo:?} {mode:?} {stage1:?} {stage2:?}");
                            let got: Vec<u32> =
                                engine.match_document(&doc).iter().map(|s| s.0).collect();
                            assert_eq!(got, oracle, "{ctx} vs oracle on {}", doc.to_xml());
                            let via_flat: Vec<u32> =
                                engine.match_document(&flat).iter().map(|s| s.0).collect();
                            assert_eq!(via_flat, oracle, "{ctx} streaming store");
                        }
                    }
                }
            }
        }
    }
}
