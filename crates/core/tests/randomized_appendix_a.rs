//! The paper's Appendix A theorem as a property: an XPath expression
//! matches a document path iff its predicate encoding matches the path's
//! publication encoding. Seeded randomized sweep (in-tree PRNG).

use pxf_core::encode::{encode_single_path, AttrMode};
use pxf_core::occurrence::{determine_match, for_each_combination};
use pxf_core::reference::{matches_path, TagsView};
use pxf_predicate::{MatchContext, PredicateIndex, Publication};
use pxf_rng::Rng;
use pxf_xml::Interner;
use pxf_xpath::{Axis, NodeTest, Step, XPathExpr};

const TAGS: [&str; 4] = ["a", "b", "c", "d"];

fn arb_expr(rng: &mut Rng) -> XPathExpr {
    let absolute = rng.gen_bool(0.5);
    let n_steps = rng.gen_range(1..7usize);
    let mut steps: Vec<Step> = (0..n_steps)
        .map(|_| {
            let axis = if rng.gen_bool(0.5) {
                Axis::Child
            } else {
                Axis::Descendant
            };
            let test = if rng.gen_bool(0.25) {
                NodeTest::Wildcard
            } else {
                NodeTest::Tag(TAGS[rng.gen_range(0..TAGS.len())].to_string())
            };
            Step {
                axis,
                test,
                filters: Vec::new(),
            }
        })
        .collect();
    if !absolute {
        steps[0].axis = Axis::Child;
    }
    XPathExpr { absolute, steps }
}

/// Theorem A.1: s matches e  ⇔  s' matches e'.
#[test]
fn encoding_theorem() {
    let mut rng = Rng::seed_from_u64(0xa1);
    for _ in 0..4096 {
        let expr = arb_expr(&mut rng);
        let tags: Vec<&str> = (0..rng.gen_range(1..10usize))
            .map(|_| TAGS[rng.gen_range(0..TAGS.len())])
            .collect();

        // Left side: direct XPath path semantics.
        let direct = matches_path(&expr, &TagsView(&tags));

        // Right side: predicate encoding + predicate matching + occurrence
        // determination.
        let mut interner = Interner::new();
        let enc = encode_single_path(&expr, &mut interner, AttrMode::Postponed).unwrap();
        let mut index = PredicateIndex::new();
        let pids: Vec<_> = enc.preds.iter().map(|p| index.insert(p.clone())).collect();
        let publication = Publication::from_tags(&tags, &mut interner);
        let mut ctx = MatchContext::new();
        index.evaluate(&publication, None::<&pxf_xml::Document>, &mut ctx);
        let lists: Vec<&[(u16, u16)]> = pids.iter().map(|&p| ctx.get(p)).collect();
        let encoded = determine_match(&lists);

        assert_eq!(
            direct,
            encoded,
            "expr={} path={:?} preds={:?}",
            expr,
            tags,
            enc.preds
                .iter()
                .map(|p| p.to_notation(&interner))
                .collect::<Vec<_>>()
        );
    }
}

/// Occurrence determination agrees with exhaustive combination
/// enumeration (match ⇔ at least one full combination exists).
#[test]
fn determination_agrees_with_enumeration() {
    let mut rng = Rng::seed_from_u64(0xa2);
    for _ in 0..4096 {
        let lists: Vec<Vec<(u16, u16)>> = (0..rng.gen_range(1..5usize))
            .map(|_| {
                (0..rng.gen_range(0..5usize))
                    .map(|_| (rng.gen_range(1..4u16), rng.gen_range(1..4u16)))
                    .collect()
            })
            .collect();
        let refs: Vec<&[(u16, u16)]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut any = false;
        for_each_combination(&refs, |_| {
            any = true;
            false
        });
        assert_eq!(determine_match(&refs), any, "{lists:?}");
    }
}
