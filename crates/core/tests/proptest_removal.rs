//! Property: removing subscriptions is equivalent to never having added
//! them, under random interleavings of adds, removals, and matches.

use proptest::prelude::*;
use pxf_core::{Algorithm, AttrMode, FilterEngine, SubId};
use pxf_xml::{Document, DocumentBuilder};
use pxf_xpath::{Axis, NodeTest, Step, XPathExpr};

const TAGS: [&str; 4] = ["a", "b", "c", "d"];

fn arb_expr() -> impl Strategy<Value = XPathExpr> {
    (
        any::<bool>(),
        proptest::collection::vec(
            (
                prop_oneof![Just(Axis::Child), Just(Axis::Descendant)],
                prop_oneof![
                    3 => (0..TAGS.len()).prop_map(|i| NodeTest::Tag(TAGS[i].to_string())),
                    1 => Just(NodeTest::Wildcard),
                ],
            ),
            1..5,
        ),
    )
        .prop_map(|(absolute, steps)| {
            let mut steps: Vec<Step> = steps
                .into_iter()
                .map(|(axis, test)| Step {
                    axis,
                    test,
                    filters: Vec::new(),
                })
                .collect();
            if !absolute {
                steps[0].axis = Axis::Child;
            }
            XPathExpr { absolute, steps }
        })
}

#[derive(Debug, Clone)]
struct Tree {
    tag: usize,
    children: Vec<Tree>,
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = (0..TAGS.len()).prop_map(|tag| Tree {
        tag,
        children: Vec::new(),
    });
    leaf.prop_recursive(4, 16, 3, |inner| {
        (0..TAGS.len(), proptest::collection::vec(inner, 0..3))
            .prop_map(|(tag, children)| Tree { tag, children })
    })
}

fn build_doc(tree: &Tree) -> Document {
    fn emit(t: &Tree, b: &mut DocumentBuilder) {
        b.start(TAGS[t.tag]);
        for c in &t.children {
            emit(c, b);
        }
        b.end();
    }
    let mut b = DocumentBuilder::new();
    emit(tree, &mut b);
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn removal_is_equivalent_to_absence(
        exprs in proptest::collection::vec(arb_expr(), 2..10),
        remove_mask in proptest::collection::vec(any::<bool>(), 2..10),
        trees in proptest::collection::vec(arb_tree(), 1..4),
        match_between in any::<bool>(),
    ) {
        for algo in [Algorithm::Basic, Algorithm::PrefixCovering, Algorithm::AccessPredicate] {
            let mut full = FilterEngine::new(algo, AttrMode::Inline);
            for e in &exprs {
                full.add(e).unwrap();
            }
            if match_between {
                // Interleave a match before removal: engine state (epochs,
                // active lists) must not leak into post-removal results.
                let doc = build_doc(&trees[0]);
                let _ = full.match_document(&doc);
            }
            let mut kept_orig: Vec<u32> = Vec::new();
            let mut survivor = FilterEngine::new(algo, AttrMode::Inline);
            for (i, e) in exprs.iter().enumerate() {
                let removed = remove_mask.get(i).copied().unwrap_or(false);
                if removed {
                    prop_assert!(full.remove(SubId(i as u32)));
                } else {
                    survivor.add(e).unwrap();
                    kept_orig.push(i as u32);
                }
            }
            for tree in &trees {
                let doc = build_doc(tree);
                let got: Vec<u32> = full.match_document(&doc).iter().map(|s| s.0).collect();
                let expected: Vec<u32> = survivor
                    .match_document(&doc)
                    .iter()
                    .map(|s| kept_orig[s.0 as usize])
                    .collect();
                prop_assert_eq!(&got, &expected, "{:?}", algo);
            }
        }
    }

    /// A prepared engine gives identical results through `&mut self`
    /// matching and through any number of `Matcher` handles.
    #[test]
    fn matcher_handles_agree_with_mut_api(
        exprs in proptest::collection::vec(arb_expr(), 1..8),
        trees in proptest::collection::vec(arb_tree(), 1..4),
    ) {
        let mut engine = FilterEngine::default();
        for e in &exprs {
            engine.add(e).unwrap();
        }
        let docs: Vec<Document> = trees.iter().map(build_doc).collect();
        let sequential: Vec<_> = docs.iter().map(|d| engine.match_document(d)).collect();
        engine.prepare();
        let mut m1 = engine.matcher();
        let mut m2 = engine.matcher();
        // Interleave the two handles in opposite orders.
        for (d, expected) in docs.iter().zip(&sequential) {
            prop_assert_eq!(&m1.match_document(d), expected);
        }
        for (d, expected) in docs.iter().zip(&sequential).rev() {
            prop_assert_eq!(&m2.match_document(d), expected);
        }
    }
}
