//! Seeded property suite for subscription-set compilation: the compiled
//! engine (hash-dedup + containment covering + flat predicate programs,
//! the default [`CompileOptions`]) must produce match sets identical to
//! the uncompiled oracle ([`CompileOptions::none()`]) on every document —
//! across all three organizations, both attribute modes, and both
//! stage-2 strategies — including under churn that exercises the
//! compiled structures' patch paths: removing one subscriber of a
//! deduped canonical entry, and removing a coverer whose covered
//! expressions must keep matching standalone.

use pxf_core::{Algorithm, AttrMode, CompileOptions, FilterEngine, Stage2, SubId};
use pxf_rng::Rng;
use pxf_xml::Document;
use pxf_xpath::XPathExpr;

const TAGS: [&str; 4] = ["a", "b", "c", "d"];

/// Random expression source: plain steps, wildcards, descendant axes,
/// attribute filters, occasional nested paths — the full dispatch
/// surface of the compiler's eligibility checks.
fn arb_expr_src(rng: &mut Rng) -> String {
    let n_steps = rng.gen_range(1..5usize);
    let mut src = String::new();
    if rng.gen_bool(0.5) {
        src.push('/');
    }
    for i in 0..n_steps {
        if i > 0 || src == "/" {
            if rng.gen_bool(0.35) && i != 0 {
                src.push_str("//");
            } else if i > 0 {
                src.push('/');
            }
        }
        if rng.gen_bool(0.2) && i > 0 {
            src.push('*');
            continue;
        }
        src.push_str(TAGS[rng.gen_range(0..TAGS.len())]);
        if rng.gen_bool(0.25) {
            match rng.gen_range(0..3u32) {
                0 => src.push_str("[@k = \"1\"]"),
                1 => src.push_str("[@m]"),
                _ => src.push_str(&format!("[@n >= {}]", rng.gen_range(1..4u32))),
            }
        }
        if rng.gen_bool(0.08) {
            src.push_str(&format!("[{}/{}]", TAGS[rng.gen_range(0..2usize)], TAGS[2]));
        }
    }
    if src.is_empty() || src == "/" {
        src = "/a".into();
    }
    src
}

fn arb_expr(rng: &mut Rng) -> XPathExpr {
    loop {
        if let Ok(e) = pxf_xpath::parse(&arb_expr_src(rng)) {
            return e;
        }
    }
}

/// A duplicate-heavy expression population: fresh expressions mixed with
/// verbatim copies (dedup targets) and relative sub-windows of earlier
/// expressions (containment-covering targets).
fn arb_exprs_with_dups(rng: &mut Rng, count: usize) -> Vec<XPathExpr> {
    let mut out: Vec<XPathExpr> = Vec::with_capacity(count);
    while out.len() < count {
        let e = if !out.is_empty() && rng.gen_bool(0.35) {
            out[rng.gen_range(0..out.len())].clone()
        } else if !out.is_empty() && rng.gen_bool(0.25) {
            derive_contained(rng, &out).unwrap_or_else(|| arb_expr(rng))
        } else {
            arb_expr(rng)
        };
        out.push(e);
    }
    out
}

/// A relative window of a random earlier expression (the generated
/// coverage mirrors `pxf-workload`'s `containment_rate`).
fn derive_contained(rng: &mut Rng, pool: &[XPathExpr]) -> Option<XPathExpr> {
    for _ in 0..8 {
        let base = &pool[rng.gen_range(0..pool.len())];
        let n = base.steps.len();
        if n < 3 || base.has_nested_paths() {
            continue;
        }
        let len = rng.gen_range(2..n);
        let start = rng.gen_range(0..=n - len);
        let window = &base.steps[start..start + len];
        if window[0].test.tag().is_none() || !window[0].filters.is_empty() {
            continue;
        }
        let mut steps = window.to_vec();
        steps[0].axis = pxf_xpath::Axis::Child;
        return Some(XPathExpr {
            absolute: false,
            steps,
        });
    }
    None
}

fn arb_doc_xml(rng: &mut Rng, depth: usize) -> String {
    let tag = TAGS[rng.gen_range(0..TAGS.len())];
    let attr = match rng.gen_range(0..5u32) {
        0 => " k=\"1\"".to_string(),
        1 => " m=\"x\"".to_string(),
        2 => format!(" n=\"{}\"", rng.gen_range(0..5u32)),
        _ => String::new(),
    };
    let n_children = if depth == 0 {
        0
    } else {
        rng.gen_range(0..3usize)
    };
    if n_children == 0 {
        return format!("<{tag}{attr}/>");
    }
    let children: String = (0..n_children)
        .map(|_| arb_doc_xml(rng, depth - 1))
        .collect();
    format!("<{tag}{attr}>{children}</{tag}>")
}

fn mode_grid() -> Vec<(Algorithm, AttrMode, Stage2)> {
    let mut out = Vec::new();
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        for attr in [AttrMode::Inline, AttrMode::Postponed] {
            for s2 in [Stage2::Posting, Stage2::Scan] {
                out.push((algo, attr, s2));
            }
        }
    }
    out
}

fn engine_with(
    algo: Algorithm,
    attr: AttrMode,
    s2: Stage2,
    options: CompileOptions,
    exprs: &[XPathExpr],
) -> FilterEngine {
    let mut engine = FilterEngine::new(algo, attr);
    engine.set_compile_options(options);
    engine.set_stage2(s2);
    for e in exprs {
        engine.add(e).unwrap();
    }
    engine
}

/// Static equivalence: on duplicate-heavy populations, the compiled
/// engine and the uncompiled oracle return byte-identical match sets
/// (same ids, same ascending order) through both document stores.
#[test]
fn compiled_engine_matches_uncompiled_oracle() {
    let mut rng = Rng::seed_from_u64(0x5c01);
    let grid = mode_grid();
    let mut dedup_seen = false;
    for _ in 0..40 {
        let count = rng.gen_range(4..16usize);
        let exprs = arb_exprs_with_dups(&mut rng, count);
        let docs: Vec<String> = (0..rng.gen_range(1..4usize))
            .map(|_| arb_doc_xml(&mut rng, 4))
            .collect();
        for &(algo, attr, s2) in &grid {
            let ctx = format!("{algo:?} {attr:?} {s2:?}");
            let mut compiled = engine_with(algo, attr, s2, CompileOptions::default(), &exprs);
            let mut oracle = engine_with(algo, attr, s2, CompileOptions::none(), &exprs);
            dedup_seen |= compiled.subset_stats().canonical < compiled.subset_stats().registered;
            for src in &docs {
                let doc = Document::parse(src.as_bytes()).unwrap();
                let want = oracle.match_document(&doc);
                let got = compiled.match_document(&doc);
                assert_eq!(got, want, "{ctx}, tree store, doc {src}");
                let streamed = compiled.match_bytes(src.as_bytes()).unwrap();
                assert_eq!(streamed, want, "{ctx}, byte store, doc {src}");
            }
        }
    }
    assert!(dedup_seen, "the sweep never produced a deduped population");
}

/// Churn battery: random interleavings of duplicate-heavy adds and
/// removals against a prepared compiled engine must stay equivalent to
/// the uncompiled oracle rebuilt from the survivors — with every
/// mutation taking the O(1)/incremental patch path (zero full rebuilds).
#[test]
fn dedup_churn_battery_patches_in_place() {
    let mut rng = Rng::seed_from_u64(0x5c02);
    let grid = mode_grid();
    for round in 0..16 {
        let initial_count = rng.gen_range(6..14usize);
        let initial = arb_exprs_with_dups(&mut rng, initial_count);
        let batches: Vec<(Vec<XPathExpr>, Vec<usize>)> = (0..rng.gen_range(2..4usize))
            .map(|_| {
                let add_count = rng.gen_range(0..4usize);
                let adds = arb_exprs_with_dups(&mut rng, add_count);
                let removes = (0..rng.gen_range(0..3usize))
                    .map(|_| rng.gen_range(0..1usize << 16))
                    .collect();
                (adds, removes)
            })
            .collect();
        let docs: Vec<String> = (0..rng.gen_range(1..3usize))
            .map(|_| arb_doc_xml(&mut rng, 4))
            .collect();
        for &(algo, attr, s2) in &grid {
            let ctx = format!("round {round}, {algo:?} {attr:?} {s2:?}");
            let mut engine = engine_with(algo, attr, s2, CompileOptions::default(), &initial);
            let mut subs: Vec<Option<XPathExpr>> = initial.iter().cloned().map(Some).collect();
            // First match triggers the bulk prepare; everything after
            // must patch in place.
            let first = Document::parse(docs[0].as_bytes()).unwrap();
            let _ = engine.match_document(&first);
            for (adds, removes) in &batches {
                for e in adds {
                    let id = engine.add(e).unwrap();
                    assert_eq!(id.0 as usize, subs.len(), "{ctx}");
                    subs.push(Some(e.clone()));
                }
                for &pick in removes {
                    let live: Vec<usize> = (0..subs.len()).filter(|&i| subs[i].is_some()).collect();
                    if live.is_empty() {
                        continue;
                    }
                    let victim = live[pick % live.len()];
                    assert!(engine.remove(SubId(victim as u32)), "{ctx}");
                    subs[victim] = None;
                    assert!(!engine.remove(SubId(victim as u32)), "{ctx}");
                }
                let mut oracle = FilterEngine::new(algo, attr);
                oracle.set_compile_options(CompileOptions::none());
                oracle.set_stage2(s2);
                let mut kept_orig: Vec<u32> = Vec::new();
                for (i, e) in subs.iter().enumerate() {
                    if let Some(e) = e {
                        oracle.add(e).unwrap();
                        kept_orig.push(i as u32);
                    }
                }
                for src in &docs {
                    let doc = Document::parse(src.as_bytes()).unwrap();
                    let want: Vec<u32> = oracle
                        .match_document(&doc)
                        .iter()
                        .map(|s| kept_orig[s.0 as usize])
                        .collect();
                    let got: Vec<u32> = engine.match_document(&doc).iter().map(|s| s.0).collect();
                    assert_eq!(got, want, "{ctx}, doc {src}");
                }
            }
            assert_eq!(
                engine.full_rebuilds(),
                0,
                "{ctx}: dedup-aware churn must never trigger a full rebuild"
            );
        }
    }
}

/// Removing one subscriber of a deduped canonical entry is an O(1)
/// detach: the surviving subscribers keep matching, the removed one
/// stops, and no index traffic (rebuild) happens.
#[test]
fn removing_one_deduped_subscriber_keeps_the_rest() {
    for algo in [
        Algorithm::Basic,
        Algorithm::PrefixCovering,
        Algorithm::AccessPredicate,
    ] {
        let mut engine = FilterEngine::new(algo, AttrMode::Inline);
        let expr = pxf_xpath::parse("/a/b").unwrap();
        let ids: Vec<SubId> = (0..3).map(|_| engine.add(&expr).unwrap()).collect();
        let stats = engine.subset_stats();
        assert_eq!((stats.registered, stats.canonical), (3, 1), "{algo:?}");

        let doc = Document::parse(b"<a><b/></a>").unwrap();
        assert_eq!(engine.match_document(&doc), ids, "{algo:?}");
        assert!(engine.remove(ids[1]), "{algo:?}");
        assert_eq!(
            engine.match_document(&doc),
            vec![ids[0], ids[2]],
            "{algo:?}"
        );
        assert_eq!(engine.full_rebuilds(), 0, "{algo:?}");
        // Removing the rest empties the group and releases its chain.
        assert!(engine.remove(ids[0]) && engine.remove(ids[2]), "{algo:?}");
        assert!(engine.match_document(&doc).is_empty(), "{algo:?}");
        // A re-registration after the group died starts a fresh group.
        let again = engine.add(&expr).unwrap();
        assert_eq!(engine.match_document(&doc), vec![again], "{algo:?}");
    }
}

/// Removing a coverer reinstates its covered set: expressions that were
/// being resolved through another terminal's structural match must keep
/// matching standalone once the coverer is gone — without a rebuild.
#[test]
fn removing_a_coverer_reinstates_covered_expressions() {
    for algo in [Algorithm::PrefixCovering, Algorithm::AccessPredicate] {
        let mut engine = FilterEngine::new(algo, AttrMode::Inline);
        let coverer = engine.add_str("/a/b/c/d").unwrap();
        let covered = engine.add_str("b/c").unwrap();
        let doc = Document::parse(b"<a><b><c><d/></c></b></a>").unwrap();
        assert_eq!(
            engine.match_document(&doc),
            vec![coverer, covered],
            "{algo:?}"
        );
        let skips_before = engine.stats().covered_skips;

        assert!(engine.remove(coverer), "{algo:?}");
        assert_eq!(
            engine.match_document(&doc),
            vec![covered],
            "{algo:?}: covered expression must survive its coverer"
        );
        assert_eq!(engine.full_rebuilds(), 0, "{algo:?}");
        let _ = skips_before; // covering may or may not fire pre-removal
                              // depending on evaluation order; survival is
                              // the property under test.

        // The covered expression also matches documents the coverer
        // never would have.
        let other = Document::parse(b"<d><b><c/></b></d>").unwrap();
        assert_eq!(engine.match_document(&other), vec![covered], "{algo:?}");
    }
}

/// The covering fast path actually fires: a covered all-plain terminal
/// evaluated after its coverer's match is resolved without its own
/// occurrence run, visible as a nonzero `covered_skips` counter.
#[test]
fn covered_skips_counter_fires_on_covered_terminals() {
    let mut engine = FilterEngine::new(Algorithm::PrefixCovering, AttrMode::Inline);
    let coverer = engine.add_str("/a/b/c/d").unwrap();
    let covered = engine.add_str("b/c").unwrap();
    let doc = Document::parse(b"<a><b><c><d/></c></b></a>").unwrap();
    assert_eq!(engine.match_document(&doc), vec![coverer, covered]);
    let stats = engine.stats();
    assert!(
        stats.covered_skips > 0,
        "covered terminal was evaluated standalone (skips = {})",
        stats.covered_skips
    );
}
