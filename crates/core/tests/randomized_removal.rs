//! Property: removing subscriptions is equivalent to never having added
//! them, under random interleavings of adds, removals, and matches.
//! Seeded randomized sweep (in-tree PRNG).

use pxf_core::{Algorithm, AttrMode, FilterEngine, SubId};
use pxf_rng::Rng;
use pxf_xml::{Document, DocumentBuilder};
use pxf_xpath::{Axis, NodeTest, Step, XPathExpr};

const TAGS: [&str; 4] = ["a", "b", "c", "d"];

fn arb_expr(rng: &mut Rng) -> XPathExpr {
    let absolute = rng.gen_bool(0.5);
    let n_steps = rng.gen_range(1..5usize);
    let mut steps: Vec<Step> = (0..n_steps)
        .map(|_| {
            let axis = if rng.gen_bool(0.5) {
                Axis::Child
            } else {
                Axis::Descendant
            };
            let test = if rng.gen_bool(0.25) {
                NodeTest::Wildcard
            } else {
                NodeTest::Tag(TAGS[rng.gen_range(0..TAGS.len())].to_string())
            };
            Step {
                axis,
                test,
                filters: Vec::new(),
            }
        })
        .collect();
    if !absolute {
        steps[0].axis = Axis::Child;
    }
    XPathExpr { absolute, steps }
}

#[derive(Debug, Clone)]
struct Tree {
    tag: usize,
    children: Vec<Tree>,
}

fn arb_tree(rng: &mut Rng, depth: usize) -> Tree {
    let n_children = if depth == 0 {
        0
    } else {
        rng.gen_range(0..3usize)
    };
    Tree {
        tag: rng.gen_range(0..TAGS.len()),
        children: (0..n_children).map(|_| arb_tree(rng, depth - 1)).collect(),
    }
}

fn build_doc(tree: &Tree) -> Document {
    fn emit(t: &Tree, b: &mut DocumentBuilder) {
        b.start(TAGS[t.tag]);
        for c in &t.children {
            emit(c, b);
        }
        b.end();
    }
    let mut b = DocumentBuilder::new();
    emit(tree, &mut b);
    b.finish().unwrap()
}

#[test]
fn removal_is_equivalent_to_absence() {
    let mut rng = Rng::seed_from_u64(0x4e40);
    for _ in 0..256 {
        let exprs: Vec<XPathExpr> = (0..rng.gen_range(2..10usize))
            .map(|_| arb_expr(&mut rng))
            .collect();
        let remove_mask: Vec<bool> = (0..exprs.len()).map(|_| rng.gen_bool(0.5)).collect();
        let trees: Vec<Tree> = (0..rng.gen_range(1..4usize))
            .map(|_| arb_tree(&mut rng, 4))
            .collect();
        let match_between = rng.gen_bool(0.5);
        for algo in [
            Algorithm::Basic,
            Algorithm::PrefixCovering,
            Algorithm::AccessPredicate,
        ] {
            let mut full = FilterEngine::new(algo, AttrMode::Inline);
            for e in &exprs {
                full.add(e).unwrap();
            }
            if match_between {
                // Interleave a match before removal: engine state (epochs,
                // active lists) must not leak into post-removal results.
                let doc = build_doc(&trees[0]);
                let _ = full.match_document(&doc);
            }
            let mut kept_orig: Vec<u32> = Vec::new();
            let mut survivor = FilterEngine::new(algo, AttrMode::Inline);
            for (i, e) in exprs.iter().enumerate() {
                if remove_mask[i] {
                    assert!(full.remove(SubId(i as u32)));
                } else {
                    survivor.add(e).unwrap();
                    kept_orig.push(i as u32);
                }
            }
            for tree in &trees {
                let doc = build_doc(tree);
                let got: Vec<u32> = full.match_document(&doc).iter().map(|s| s.0).collect();
                let expected: Vec<u32> = survivor
                    .match_document(&doc)
                    .iter()
                    .map(|s| kept_orig[s.0 as usize])
                    .collect();
                assert_eq!(&got, &expected, "{algo:?}");
            }
        }
    }
}

/// A prepared engine gives identical results through `&mut self` matching
/// and through any number of `Matcher` handles.
#[test]
fn matcher_handles_agree_with_mut_api() {
    let mut rng = Rng::seed_from_u64(0x4e41);
    for _ in 0..256 {
        let exprs: Vec<XPathExpr> = (0..rng.gen_range(1..8usize))
            .map(|_| arb_expr(&mut rng))
            .collect();
        let trees: Vec<Tree> = (0..rng.gen_range(1..4usize))
            .map(|_| arb_tree(&mut rng, 4))
            .collect();
        let mut engine = FilterEngine::default();
        for e in &exprs {
            engine.add(e).unwrap();
        }
        let docs: Vec<Document> = trees.iter().map(build_doc).collect();
        let sequential: Vec<_> = docs.iter().map(|d| engine.match_document(d)).collect();
        engine.prepare();
        let mut m1 = engine.matcher();
        let mut m2 = engine.matcher();
        // Interleave the two handles in opposite orders.
        for (d, expected) in docs.iter().zip(&sequential) {
            assert_eq!(&m1.match_document(d), expected);
        }
        for (d, expected) in docs.iter().zip(&sequential).rev() {
            assert_eq!(&m2.match_document(d), expected);
        }
    }
}
