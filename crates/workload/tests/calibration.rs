//! Statistical guardrails on the calibrated workload regimes: if the
//! generators drift, the evaluation's premise (low-match NITF vs
//! high-match PSD, paper §6.1) silently breaks — these tests pin the
//! regimes with loose bounds.

use pxf_workload::{Regime, XPathGenerator, XmlGenerator};
use pxf_xpath::{Axis, NodeTest};

/// Counts, for a workload and documents, the fraction of (expression,
/// document) pairs that match, using a simple direct matcher (kept local
/// so this crate stays independent of pxf-core).
fn match_rate(regime: &Regime, n_exprs: usize, n_docs: usize) -> f64 {
    let mut params = regime.xpath.clone();
    params.count = n_exprs;
    let exprs = XPathGenerator::new(&regime.dtd, params).generate();
    let docs = XmlGenerator::new(&regime.dtd, regime.xml.clone()).generate_batch(n_docs);
    let mut hits = 0usize;
    for doc in &docs {
        let paths = doc.leaf_paths();
        let tag_paths: Vec<Vec<&str>> = paths
            .iter()
            .map(|p| p.iter().map(|&n| doc.node(n).tag.as_str()).collect())
            .collect();
        for expr in &exprs {
            if tag_paths.iter().any(|tags| path_matches(expr, tags)) {
                hits += 1;
            }
        }
    }
    hits as f64 / (exprs.len() * docs.len()) as f64
}

/// Frontier DP over a tag path (structural only — regime expressions carry
/// no filters by default).
fn path_matches(expr: &pxf_xpath::XPathExpr, tags: &[&str]) -> bool {
    let n = tags.len();
    let step_ok = |step: &pxf_xpath::Step, pos: usize| match &step.test {
        NodeTest::Tag(t) => tags[pos - 1] == t,
        NodeTest::Wildcard => true,
    };
    let mut frontier: Vec<usize> = Vec::new();
    for (i, step) in expr.steps.iter().enumerate() {
        let mut next = Vec::new();
        if i == 0 {
            let all: Vec<usize> = if expr.absolute && step.axis == Axis::Child {
                vec![1]
            } else {
                (1..=n).collect()
            };
            for pos in all {
                if step_ok(step, pos) {
                    next.push(pos);
                }
            }
        } else {
            for &prev in &frontier {
                match step.axis {
                    Axis::Child => {
                        if prev < n && step_ok(step, prev + 1) && !next.contains(&(prev + 1)) {
                            next.push(prev + 1);
                        }
                    }
                    Axis::Descendant => {
                        for pos in prev + 1..=n {
                            if step_ok(step, pos) && !next.contains(&pos) {
                                next.push(pos);
                            }
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        frontier = next;
    }
    true
}

#[test]
fn nitf_regime_is_low_match() {
    let rate = match_rate(&Regime::nitf(), 600, 15);
    assert!(
        (0.01..0.20).contains(&rate),
        "NITF match rate drifted to {:.1}% (paper regime ≈6%)",
        rate * 100.0
    );
}

#[test]
fn psd_regime_is_high_match() {
    let rate = match_rate(&Regime::psd(), 600, 15);
    assert!(
        (0.55..0.95).contains(&rate),
        "PSD match rate drifted to {:.1}% (paper regime ≈75%)",
        rate * 100.0
    );
}

#[test]
fn regimes_are_separated() {
    let nitf = match_rate(&Regime::nitf(), 400, 10);
    let psd = match_rate(&Regime::psd(), 400, 10);
    assert!(
        psd > nitf * 4.0,
        "regimes too close: NITF {:.1}%, PSD {:.1}%",
        nitf * 100.0,
        psd * 100.0
    );
}

#[test]
fn document_shapes_are_paperlike() {
    // Paper: ~140 tags per document on average, levels 6–10.
    for (regime, lo, hi) in [(Regime::nitf(), 40.0, 400.0), (Regime::psd(), 80.0, 500.0)] {
        let docs = XmlGenerator::new(&regime.dtd, regime.xml.clone()).generate_batch(30);
        let avg = docs.iter().map(|d| d.len() as f64).sum::<f64>() / docs.len() as f64;
        assert!(
            (lo..hi).contains(&avg),
            "{}: avg tags {avg:.0} outside [{lo}, {hi}]",
            regime.name
        );
        let max_depth = docs.iter().map(|d| d.max_depth()).max().unwrap();
        assert!(max_depth as usize <= regime.xml.max_levels);
    }
}
