//! Seeded fault injection over serialized XML documents.
//!
//! Hostile-input testing needs documents that are *plausibly* broken —
//! structurally close to real traffic, damaged in the ways a buggy or
//! adversarial publisher damages them — rather than uniformly random
//! bytes, which any parser rejects in the first few bytes. A
//! [`FaultInjector`] takes well-formed serialized documents (typically
//! from [`XmlGenerator`](crate::XmlGenerator)) and applies one seeded
//! [`Mutation`] per document: truncation mid-token, end-tag swaps,
//! attribute corruption, nesting-depth amplification, or entity-reference
//! injection. Everything is deterministic given the seed, so failures
//! reproduce exactly.
//!
//! Mutations are *attempts*: a tag-swap on a single-element document or an
//! entity injection into a text-free document may leave the bytes
//! well-formed. Consumers that need guaranteed-broken documents should
//! check with a parse, or use [`FaultInjector::corrupt_fraction`] which
//! only counts a document as mutated when its bytes actually changed.

use pxf_rng::Rng;

/// The kinds of damage [`FaultInjector`] can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Cut the document off at a random interior byte (mid-tag, mid-text,
    /// mid-attribute — wherever the cut lands).
    Truncate,
    /// Rewrite the name inside one end tag so it no longer matches its
    /// start tag.
    TagSwap,
    /// Damage an attribute region: delete a quote, drop the `=`, or
    /// duplicate the attribute name.
    AttrCorrupt,
    /// Wrap the document in a deep stack of synthetic elements to blow
    /// nesting-depth budgets.
    DepthBomb,
    /// Splice entity references — undefined ones, or a run designed to
    /// trip expansion budgets — into character data.
    EntityInject,
}

impl Mutation {
    /// All mutation kinds, in the order the injector cycles through them.
    pub const ALL: [Mutation; 5] = [
        Mutation::Truncate,
        Mutation::TagSwap,
        Mutation::AttrCorrupt,
        Mutation::DepthBomb,
        Mutation::EntityInject,
    ];
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Mutation::Truncate => "truncate",
            Mutation::TagSwap => "tag-swap",
            Mutation::AttrCorrupt => "attr-corrupt",
            Mutation::DepthBomb => "depth-bomb",
            Mutation::EntityInject => "entity-inject",
        })
    }
}

/// Applies seeded mutations to serialized documents.
///
/// ```
/// use pxf_workload::{FaultInjector, Mutation};
///
/// let mut inj = FaultInjector::new(7);
/// let (bytes, kind) = inj.mutate(b"<a><b x=\"1\">text</b></a>");
/// assert!(Mutation::ALL.contains(&kind));
/// // Same seed, same damage.
/// assert_eq!(FaultInjector::new(7).mutate(b"<a><b x=\"1\">text</b></a>").0, bytes);
/// ```
#[derive(Debug)]
pub struct FaultInjector {
    rng: Rng,
}

impl FaultInjector {
    /// Creates an injector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Damages one document with a randomly chosen mutation kind.
    /// Returns the mutated bytes and the kind applied.
    pub fn mutate(&mut self, doc: &[u8]) -> (Vec<u8>, Mutation) {
        let kind = *self.rng.choose(&Mutation::ALL);
        (self.apply(doc, kind), kind)
    }

    /// Damages one document with a specific mutation kind.
    pub fn mutate_with(&mut self, doc: &[u8], kind: Mutation) -> Vec<u8> {
        self.apply(doc, kind)
    }

    /// Mutates roughly `fraction` of `docs` in place (each chosen document
    /// gets one mutation), returning the indices whose bytes actually
    /// changed. Selection is per-document Bernoulli, so the exact count
    /// varies with the seed.
    pub fn corrupt_fraction(&mut self, docs: &mut [Vec<u8>], fraction: f64) -> Vec<usize> {
        let mut mutated = Vec::new();
        for (i, doc) in docs.iter_mut().enumerate() {
            if !self.rng.gen_bool(fraction) {
                continue;
            }
            let (bytes, _) = self.mutate(doc);
            if bytes != *doc {
                *doc = bytes;
                mutated.push(i);
            }
        }
        mutated
    }

    fn apply(&mut self, doc: &[u8], kind: Mutation) -> Vec<u8> {
        match kind {
            Mutation::Truncate => self.truncate(doc),
            Mutation::TagSwap => self.tag_swap(doc),
            Mutation::AttrCorrupt => self.attr_corrupt(doc),
            Mutation::DepthBomb => self.depth_bomb(doc),
            Mutation::EntityInject => self.entity_inject(doc),
        }
    }

    fn truncate(&mut self, doc: &[u8]) -> Vec<u8> {
        if doc.len() < 2 {
            return doc.to_vec();
        }
        // Cut strictly inside the document so something is always lost.
        let cut = 1 + self.rng.gen_index(doc.len() - 1);
        doc[..cut].to_vec()
    }

    fn tag_swap(&mut self, doc: &[u8]) -> Vec<u8> {
        // Collect `</` positions and rename one end tag's first letter.
        let ends: Vec<usize> = doc
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w == b"</")
            .map(|(i, _)| i)
            .collect();
        if ends.is_empty() {
            return doc.to_vec();
        }
        let pos = *self.rng.choose(&ends);
        let mut out = doc.to_vec();
        let name_at = pos + 2;
        if let Some(b) = out.get_mut(name_at) {
            // Rotate within a–z so the result is still a valid name char.
            if b.is_ascii_alphabetic() {
                *b = if *b == b'z' || *b == b'Z' {
                    *b - 1
                } else {
                    *b + 1
                };
            } else {
                *b = b'q';
            }
        }
        out
    }

    fn attr_corrupt(&mut self, doc: &[u8]) -> Vec<u8> {
        // Quote positions inside tags are where attribute syntax lives.
        let quotes: Vec<usize> = doc
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'"')
            .map(|(i, _)| i)
            .collect();
        if quotes.is_empty() {
            return doc.to_vec();
        }
        let pos = *self.rng.choose(&quotes);
        let mut out = doc.to_vec();
        match self.rng.gen_index(3) {
            // Delete the quote: unterminated / malformed value.
            0 => {
                out.remove(pos);
            }
            // Replace the quote with a space: value spills into the tag.
            1 => out[pos] = b' ',
            // Damage the `=` before an opening quote, if there is one.
            _ => {
                if pos > 0 && out[pos - 1] == b'=' {
                    out[pos - 1] = b' ';
                } else {
                    out.remove(pos);
                }
            }
        }
        out
    }

    fn depth_bomb(&mut self, doc: &[u8]) -> Vec<u8> {
        // Wrap in enough synthetic elements to exceed any plausible depth
        // budget (default limit is 256; strict is 64).
        let layers = 300 + self.rng.gen_index(200);
        let mut out = Vec::with_capacity(doc.len() + layers * 7);
        for _ in 0..layers {
            out.extend_from_slice(b"<z>");
        }
        out.extend_from_slice(doc);
        for _ in 0..layers {
            out.extend_from_slice(b"</z>");
        }
        out
    }

    fn entity_inject(&mut self, doc: &[u8]) -> Vec<u8> {
        // Splice after a `>` so we land in character data, not inside a
        // tag; inject either an undefined entity or an expansion flood.
        let spots: Vec<usize> = doc
            .iter()
            .enumerate()
            .filter(|(i, &b)| b == b'>' && *i + 1 < doc.len())
            .map(|(i, _)| i + 1)
            .collect();
        if spots.is_empty() {
            return doc.to_vec();
        }
        let pos = *self.rng.choose(&spots);
        let payload: Vec<u8> = if self.rng.gen_bool(0.5) {
            b"&undefined;".to_vec()
        } else {
            b"&amp;".repeat(64)
        };
        let mut out = Vec::with_capacity(doc.len() + payload.len());
        out.extend_from_slice(&doc[..pos]);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&doc[pos..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Regime, XmlGenerator};

    fn sample_docs(n: usize) -> Vec<Vec<u8>> {
        let regime = Regime::nitf();
        let mut gen = XmlGenerator::new(&regime.dtd, regime.xml.clone());
        (0..n)
            .map(|_| gen.generate().to_xml().into_bytes())
            .collect()
    }

    #[test]
    fn mutations_are_deterministic() {
        let docs = sample_docs(20);
        let run = |seed| -> Vec<(Vec<u8>, Mutation)> {
            let mut inj = FaultInjector::new(seed);
            docs.iter().map(|d| inj.mutate(d)).collect()
        };
        assert_eq!(run(1234), run(1234));
        assert_ne!(run(1234), run(5678));
    }

    #[test]
    fn every_mutation_kind_damages_a_typical_document() {
        let doc = b"<a><b x=\"1\">text</b><c><d/></c></a>";
        let mut inj = FaultInjector::new(9);
        for kind in Mutation::ALL {
            let out = inj.mutate_with(doc, kind);
            assert_ne!(out, doc.to_vec(), "{kind} left the document untouched");
        }
    }

    #[test]
    fn depth_bomb_exceeds_default_depth_limit() {
        let mut inj = FaultInjector::new(3);
        let out = inj.mutate_with(b"<a/>", Mutation::DepthBomb);
        let err = pxf_xml::Document::parse(&out).unwrap_err();
        assert!(matches!(
            err.kind,
            pxf_xml::XmlErrorKind::DepthLimitExceeded(_)
        ));
    }

    #[test]
    fn corrupt_fraction_reports_changed_indices() {
        let mut docs = sample_docs(100);
        let originals = docs.clone();
        let mut inj = FaultInjector::new(77);
        let mutated = inj.corrupt_fraction(&mut docs, 0.1);
        // Bernoulli(0.1) over 100 docs: loose bounds, deterministic seed.
        assert!(
            !mutated.is_empty() && mutated.len() < 30,
            "{}",
            mutated.len()
        );
        for (i, (orig, now)) in originals.iter().zip(&docs).enumerate() {
            if mutated.contains(&i) {
                assert_ne!(orig, now, "doc {i} reported mutated but unchanged");
            } else {
                assert_eq!(orig, now, "doc {i} changed but not reported");
            }
        }
    }

    #[test]
    fn most_mutations_break_parsing() {
        // Not a hard guarantee per document, but across a corpus the
        // injector must be overwhelmingly effective at breaking parses.
        let docs = sample_docs(50);
        let mut inj = FaultInjector::new(11);
        let broken = docs
            .iter()
            .filter(|d| {
                let (m, _) = inj.mutate(d);
                pxf_xml::Document::parse(&m).is_err()
            })
            .count();
        assert!(broken >= 35, "only {broken}/50 mutations broke the parse");
    }
}
