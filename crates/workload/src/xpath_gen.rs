//! DTD-driven XPath workload generator, parameter-compatible with the
//! generator of Diao et al. used by the paper (§6.1): number of
//! expressions, distinct flag (D), maximum length (L), wildcard
//! probability (W), descendant probability (DO), and attribute filters per
//! path (§6.4); plus an optional nested-path probability for the engine's
//! tree-pattern extension.

use crate::dtd::{AttrKind, Dtd};
use pxf_rng::Rng;
use pxf_xpath::{AttrFilter, AttrValue, Axis, CmpOp, NodeTest, Step, StepFilter, XPathExpr};
use std::collections::HashSet;

/// Parameters of the XPath generator.
#[derive(Debug, Clone)]
pub struct XPathParams {
    /// Number of expressions to generate.
    pub count: usize,
    /// D: require distinct expressions (retry duplicates).
    pub distinct: bool,
    /// Minimum number of location steps (expression lengths are uniform
    /// in `min_depth..=max_depth`).
    pub min_depth: usize,
    /// L: maximum number of location steps.
    pub max_depth: usize,
    /// W: probability that a location step is `*`.
    pub wildcard_prob: f64,
    /// DO: probability that a location step uses `//`.
    pub descendant_prob: f64,
    /// Number of attribute filters attached to each expression (0–2 in the
    /// paper's Fig. 9 workloads). Filters land on steps whose element
    /// declares attributes; expressions without such steps get fewer.
    pub attr_filters: usize,
    /// Probability that an expression carries one nested path filter
    /// (0 in all paper workloads; exercise of the §5 extension).
    pub nested_prob: f64,
    /// Probability that an expression is *relative* (starts at an
    /// arbitrary element instead of the document root). 0 in the paper
    /// workloads (the Diao generator emits root-anchored queries); used by
    /// the covering analysis, where relative expressions create
    /// contained-expression covering opportunities.
    pub relative_prob: f64,
    /// Probability that an expression is a verbatim copy of an earlier
    /// expression in the same workload (requires `distinct: false`).
    /// Models real subscription populations, where popular queries are
    /// registered by many subscribers — the target of the subscription-set
    /// dedup compiler.
    pub dup_rate: f64,
    /// Probability that an expression is *derived* from an earlier one as
    /// a relative sub-path (a contiguous tagged window of the base's
    /// steps), so the base structurally contains it. Exercises the
    /// containment-covering compiler.
    pub containment_rate: f64,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for XPathParams {
    fn default() -> Self {
        // The paper's defaults: L=6, W=0.2, DO=0.2, distinct.
        XPathParams {
            count: 1000,
            distinct: true,
            min_depth: 1,
            max_depth: 6,
            wildcard_prob: 0.2,
            descendant_prob: 0.2,
            attr_filters: 0,
            nested_prob: 0.0,
            relative_prob: 0.0,
            dup_rate: 0.0,
            containment_rate: 0.0,
            seed: 42,
        }
    }
}

/// Generates an XPath workload over a DTD.
pub struct XPathGenerator<'d> {
    dtd: &'d Dtd,
    params: XPathParams,
    rng: Rng,
}

impl<'d> XPathGenerator<'d> {
    /// Creates a generator for a DTD.
    pub fn new(dtd: &'d Dtd, params: XPathParams) -> Self {
        let rng = Rng::seed_from_u64(params.seed);
        XPathGenerator { dtd, params, rng }
    }

    /// Generates the workload. With `distinct`, duplicates are retried (up
    /// to a bounded number of attempts — a small DTD may not admit `count`
    /// distinct expressions, in which case fewer are returned).
    pub fn generate(&mut self) -> Vec<XPathExpr> {
        let mut out: Vec<XPathExpr> = Vec::with_capacity(self.params.count);
        let mut seen: HashSet<String> = HashSet::new();
        let max_attempts = self.params.count.saturating_mul(50).max(1000);
        let mut attempts = 0;
        while out.len() < self.params.count && attempts < max_attempts {
            attempts += 1;
            let expr = if !out.is_empty()
                && self.params.dup_rate > 0.0
                && self.rng.gen_bool(self.params.dup_rate)
            {
                // Re-register an earlier expression verbatim (a popular
                // query acquiring another subscriber).
                out[self.rng.gen_range(0..out.len())].clone()
            } else if !out.is_empty()
                && self.params.containment_rate > 0.0
                && self.rng.gen_bool(self.params.containment_rate)
            {
                self.derive_contained(&out)
                    .unwrap_or_else(|| self.generate_one())
            } else {
                self.generate_one()
            };
            if self.params.distinct {
                let key = expr.to_string();
                if !seen.insert(key) {
                    continue;
                }
            }
            out.push(expr);
        }
        out
    }

    /// Derives an expression structurally contained in one already in the
    /// workload: a contiguous window of a base expression's steps, emitted
    /// as a relative expression, so the base's chain carries the derived
    /// chain as an interior sub-chain (the covering compiler's target
    /// shape). Returns `None` when no sampled base admits a usable window.
    fn derive_contained(&mut self, pool: &[XPathExpr]) -> Option<XPathExpr> {
        for _ in 0..8 {
            let base = &pool[self.rng.gen_range(0..pool.len())];
            let n = base.steps.len();
            if n < 3 || base.has_nested_paths() {
                continue;
            }
            let len = self.rng.gen_range(2..n);
            let start = self.rng.gen_range(0..=n - len);
            let window = &base.steps[start..start + len];
            // The window must open on a bare tagged step: a wildcard head
            // canonicalizes away, and a filtered head would change the
            // derived expression's selectivity relative to the base.
            if !matches!(window[0].test, NodeTest::Tag(_)) || !window[0].filters.is_empty() {
                continue;
            }
            let mut steps: Vec<Step> = window.to_vec();
            steps[0].axis = Axis::Child;
            return Some(XPathExpr {
                absolute: false,
                steps,
            });
        }
        None
    }

    /// Generates one expression.
    pub fn generate_one(&mut self) -> XPathExpr {
        let target_len = self
            .rng
            .gen_range(self.params.min_depth.max(1)..=self.params.max_depth);
        let relative =
            self.params.relative_prob > 0.0 && self.rng.gen_bool(self.params.relative_prob);
        let start = if relative {
            // Any element with children (so a multi-step walk is possible).
            let candidates: Vec<usize> = (0..self.dtd.len())
                .filter(|&e| !self.dtd.elements[e].children.is_empty())
                .collect();
            candidates[self.rng.gen_range(0..candidates.len())]
        } else {
            self.dtd.root
        };
        let steps = self.walk(start, target_len, true);
        let mut expr = XPathExpr {
            absolute: !relative,
            steps,
        };
        if relative {
            // Relative expressions start with a child-axis step.
            expr.steps[0].axis = pxf_xpath::Axis::Child;
        }
        self.attach_attr_filters(&mut expr);
        if self.params.nested_prob > 0.0 && self.rng.gen_bool(self.params.nested_prob) {
            self.attach_nested_filter(&mut expr);
        }
        expr
    }

    /// Walks the DTD from `start`, producing up to `len` steps. `from_root`
    /// selects whether the first step is the start element itself (the
    /// generator of Diao et al. emits root-anchored queries).
    fn walk(&mut self, start: usize, len: usize, from_root: bool) -> Vec<Step> {
        let dtd = self.dtd;
        let mut steps = Vec::with_capacity(len);
        let mut cur = start;
        for i in 0..len {
            let (axis, element) = if i == 0 && from_root {
                // First step: the root element; `//` with probability DO.
                let axis = if self.rng.gen_bool(self.params.descendant_prob) {
                    Axis::Descendant
                } else {
                    Axis::Child
                };
                (axis, cur)
            } else {
                let children = &dtd.elements[cur].children;
                if children.is_empty() {
                    break;
                }
                if self.rng.gen_bool(self.params.descendant_prob) {
                    // `//`: jump one or two levels down the DTD graph.
                    let child = children[self.rng.gen_range(0..children.len())];
                    let grand = &dtd.elements[child].children;
                    let target = if !grand.is_empty() && self.rng.gen_bool(0.5) {
                        grand[self.rng.gen_range(0..grand.len())]
                    } else {
                        child
                    };
                    (Axis::Descendant, target)
                } else {
                    let child = children[self.rng.gen_range(0..children.len())];
                    (Axis::Child, child)
                }
            };
            let test = if self.rng.gen_bool(self.params.wildcard_prob) {
                NodeTest::Wildcard
            } else {
                NodeTest::Tag(dtd.elements[element].name.to_string())
            };
            steps.push(Step {
                axis,
                test,
                filters: Vec::new(),
            });
            cur = element;
        }
        steps
    }

    /// Attaches up to `attr_filters` attribute filters to random tagged
    /// steps whose elements declare attributes.
    fn attach_attr_filters(&mut self, expr: &mut XPathExpr) {
        if self.params.attr_filters == 0 {
            return;
        }
        let dtd = self.dtd;
        let candidates: Vec<usize> = expr
            .steps
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.test
                    .tag()
                    .and_then(|t| dtd.element(t))
                    .map(|e| !dtd.elements[e].attributes.is_empty())
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return;
        }
        for _ in 0..self.params.attr_filters {
            let step_idx = candidates[self.rng.gen_range(0..candidates.len())];
            let element = dtd
                .element(expr.steps[step_idx].test.tag().unwrap())
                .unwrap();
            let decls = &dtd.elements[element].attributes;
            let decl = &decls[self.rng.gen_range(0..decls.len())];
            let filter = match &decl.kind {
                AttrKind::Int { max } => {
                    let op = match self.rng.gen_range(0..4) {
                        0 => CmpOp::Eq,
                        1 => CmpOp::Ge,
                        2 => CmpOp::Le,
                        _ => CmpOp::Gt,
                    };
                    AttrFilter {
                        name: decl.name.to_string(),
                        constraint: Some((op, AttrValue::Int(self.rng.gen_range(0..*max)))),
                    }
                }
                AttrKind::Enum(values) => AttrFilter {
                    name: decl.name.to_string(),
                    constraint: Some((
                        CmpOp::Eq,
                        AttrValue::Str(values[self.rng.gen_range(0..values.len())].to_string()),
                    )),
                },
            };
            expr.steps[step_idx]
                .filters
                .push(StepFilter::Attribute(filter));
        }
    }

    /// Attaches one nested path filter to a random tagged, non-leaf step.
    fn attach_nested_filter(&mut self, expr: &mut XPathExpr) {
        let dtd = self.dtd;
        let candidates: Vec<(usize, usize)> = expr
            .steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let e = s.test.tag().and_then(|t| dtd.element(t))?;
                (!dtd.elements[e].children.is_empty()).then_some((i, e))
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        let (step_idx, element) = candidates[self.rng.gen_range(0..candidates.len())];
        let children = &dtd.elements[element].children;
        let child = children[self.rng.gen_range(0..children.len())];
        let len = self.rng.gen_range(1..=2usize);
        let mut steps = vec![Step {
            axis: Axis::Child,
            test: NodeTest::Tag(dtd.elements[child].name.to_string()),
            filters: Vec::new(),
        }];
        steps.extend(self.walk(child, len, false).into_iter().take(len - 1));
        let nested = XPathExpr {
            absolute: false,
            steps,
        };
        expr.steps[step_idx].filters.push(StepFilter::Path(nested));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let dtd = Dtd::psd();
        let params = XPathParams {
            count: 50,
            ..Default::default()
        };
        let a = XPathGenerator::new(&dtd, params.clone()).generate();
        let b = XPathGenerator::new(&dtd, params).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_workload_has_no_duplicates() {
        let dtd = Dtd::nitf();
        let params = XPathParams {
            count: 500,
            distinct: true,
            ..Default::default()
        };
        let exprs = XPathGenerator::new(&dtd, params).generate();
        assert_eq!(exprs.len(), 500);
        let rendered: HashSet<String> = exprs.iter().map(|e| e.to_string()).collect();
        assert_eq!(rendered.len(), 500);
    }

    #[test]
    fn non_distinct_workload_repeats() {
        let dtd = Dtd::psd();
        let params = XPathParams {
            count: 2000,
            distinct: false,
            max_depth: 3,
            ..Default::default()
        };
        let exprs = XPathGenerator::new(&dtd, params).generate();
        assert_eq!(exprs.len(), 2000);
        let rendered: HashSet<String> = exprs.iter().map(|e| e.to_string()).collect();
        assert!(rendered.len() < 2000, "expected duplicates");
    }

    #[test]
    fn respects_max_depth() {
        let dtd = Dtd::nitf();
        let params = XPathParams {
            count: 200,
            max_depth: 4,
            ..Default::default()
        };
        for e in XPathGenerator::new(&dtd, params).generate() {
            assert!(e.len() <= 4);
            assert!(!e.is_empty());
        }
    }

    #[test]
    fn probabilities_zero_and_high() {
        let dtd = Dtd::nitf();
        let none = XPathGenerator::new(
            &dtd,
            XPathParams {
                count: 100,
                wildcard_prob: 0.0,
                descendant_prob: 0.0,
                ..Default::default()
            },
        )
        .generate();
        for e in &none {
            assert!(!e.has_descendant());
            assert!(e.steps.iter().all(|s| !s.test.is_wildcard()));
        }
        let all = XPathGenerator::new(
            &dtd,
            XPathParams {
                count: 100,
                wildcard_prob: 0.9,
                descendant_prob: 0.9,
                distinct: false,
                ..Default::default()
            },
        )
        .generate();
        let wildcards: usize = all
            .iter()
            .flat_map(|e| &e.steps)
            .filter(|s| s.test.is_wildcard())
            .count();
        let steps: usize = all.iter().map(|e| e.len()).sum();
        assert!(wildcards as f64 > steps as f64 * 0.7);
    }

    #[test]
    fn attr_filters_attached() {
        let dtd = Dtd::nitf();
        let exprs = XPathGenerator::new(
            &dtd,
            XPathParams {
                count: 200,
                attr_filters: 1,
                wildcard_prob: 0.0,
                ..Default::default()
            },
        )
        .generate();
        let with = exprs.iter().filter(|e| e.has_attr_filters()).count();
        // Every all-tag expression over NITF has attribute-bearing steps.
        assert!(with > 150, "got {with}");
    }

    #[test]
    fn generated_expressions_reparse() {
        let dtd = Dtd::nitf();
        let exprs = XPathGenerator::new(
            &dtd,
            XPathParams {
                count: 300,
                attr_filters: 2,
                nested_prob: 0.3,
                ..Default::default()
            },
        )
        .generate();
        for e in exprs {
            let s = e.to_string();
            let re = pxf_xpath::parse(&s).unwrap_or_else(|err| panic!("{s}: {err}"));
            assert_eq!(re, e, "{s}");
        }
    }

    #[test]
    fn dup_rate_repeats_expressions() {
        let dtd = Dtd::nitf();
        let exprs = XPathGenerator::new(
            &dtd,
            XPathParams {
                count: 1000,
                distinct: false,
                dup_rate: 0.4,
                ..Default::default()
            },
        )
        .generate();
        assert_eq!(exprs.len(), 1000);
        let rendered: HashSet<String> = exprs.iter().map(|e| e.to_string()).collect();
        // ~40% of emissions are copies; the canonical pool is much smaller
        // than the workload.
        assert!(
            rendered.len() < 700,
            "expected heavy duplication, got {} distinct",
            rendered.len()
        );
    }

    #[test]
    fn containment_rate_derives_relative_subpaths() {
        let dtd = Dtd::nitf();
        let exprs = XPathGenerator::new(
            &dtd,
            XPathParams {
                count: 500,
                distinct: false,
                min_depth: 4,
                containment_rate: 0.5,
                ..Default::default()
            },
        )
        .generate();
        assert_eq!(exprs.len(), 500);
        let relative = exprs.iter().filter(|e| !e.absolute).count();
        assert!(relative > 100, "got {relative} derived expressions");
        // Every derived expression is a step window of some earlier one.
        for e in exprs.iter().filter(|e| !e.absolute) {
            assert!(e.steps.len() >= 2);
            assert_eq!(e.steps[0].axis, Axis::Child);
            let found = exprs.iter().any(|base| {
                base.steps
                    .windows(e.steps.len())
                    .any(|w| w[1..] == e.steps[1..] && w[0].test == e.steps[0].test)
            });
            assert!(found, "{e} has no containing base");
        }
        // Derived expressions still round-trip through the parser.
        for e in &exprs {
            let s = e.to_string();
            assert_eq!(&pxf_xpath::parse(&s).unwrap(), e, "{s}");
        }
    }

    #[test]
    fn nested_filters_generated() {
        let dtd = Dtd::psd();
        let exprs = XPathGenerator::new(
            &dtd,
            XPathParams {
                count: 200,
                nested_prob: 1.0,
                wildcard_prob: 0.0,
                ..Default::default()
            },
        )
        .generate();
        let nested = exprs.iter().filter(|e| e.has_nested_paths()).count();
        assert!(nested > 100, "got {nested}");
    }
}
