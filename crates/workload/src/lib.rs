//! Workload generation for XML/XPath filtering experiments.
//!
//! Reproduces the experimental substrate of *Predicate-based Filtering of
//! XPath Expressions* (§6.1): DTD models standing in for the NITF and PSD
//! DTDs ([`Dtd::nitf`], [`Dtd::psd`]), a Diao-style XPath generator
//! ([`XPathGenerator`], parameters D / L / W / DO / filters-per-path), and
//! an IBM-style XML document generator ([`XmlGenerator`], max-levels and
//! max-repeats). [`FaultInjector`] damages generated documents in seeded,
//! reproducible ways (truncation, tag swaps, attribute corruption, depth
//! bombs, entity injection) for hostile-input testing. All generation is
//! deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use pxf_workload::{Dtd, XPathGenerator, XPathParams, XmlGenerator, XmlParams};
//!
//! let dtd = Dtd::psd();
//! let exprs = XPathGenerator::new(&dtd, XPathParams { count: 100, ..Default::default() }).generate();
//! let docs = XmlGenerator::new(&dtd, XmlParams::default()).generate_batch(5);
//! assert_eq!(exprs.len(), 100);
//! assert_eq!(docs.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtd;
mod fault;
mod presets;
mod xml_gen;
mod xpath_gen;

pub use dtd::{AttrDecl, AttrKind, Dtd, ElementDecl};
pub use fault::{FaultInjector, Mutation};
pub use presets::Regime;
pub use xml_gen::{XmlGenerator, XmlParams};
pub use xpath_gen::{XPathGenerator, XPathParams};
