//! DTD-driven XML document generator, parameter-compatible with the IBM
//! XML Generator used by the paper (§6.1): maximum tree levels (varied 6–10
//! in the experiments, consistent with the maximum XPE length) and maximum
//! repeats per child slot, with random attribute values.

use crate::dtd::{AttrKind, Dtd};
use pxf_rng::Rng;
use pxf_xml::{Document, DocumentBuilder};

/// Parameters of the XML generator.
#[derive(Debug, Clone)]
pub struct XmlParams {
    /// Maximum tree depth (root = level 1). The paper varies this 6–10.
    pub max_levels: usize,
    /// Minimum number of child slots per non-leaf element.
    pub min_fanout: usize,
    /// Maximum number of child slots per non-leaf element (the IBM
    /// generator's max-repeats knob).
    pub max_fanout: usize,
    /// Zipf skew of child-type selection: each slot draws a child type
    /// with weight ∝ 1/(rank+1)^skew over the element's declared children
    /// (0 = uniform). Real document corpora skew heavily toward a few hot
    /// elements while the schema stays wide; a positive skew over the wide
    /// NITF-like DTD is what produces the paper's low-match regime, while
    /// uniform draws over the narrow PSD-like DTD produce its high-match
    /// regime.
    pub child_skew: f64,
    /// Probability that a declared attribute is emitted on an element.
    pub attr_prob: f64,
    /// Probability that a leaf element carries character data (0 in the
    /// paper's workloads, which filter on structure and attributes only;
    /// enable to exercise `[text() op v]` content filters).
    pub text_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XmlParams {
    fn default() -> Self {
        XmlParams {
            max_levels: 8,
            min_fanout: 1,
            max_fanout: 3,
            child_skew: 0.0,
            attr_prob: 0.7,
            text_prob: 0.0,
            seed: 7,
        }
    }
}

/// Generates random documents conforming to a DTD.
pub struct XmlGenerator<'d> {
    dtd: &'d Dtd,
    params: XmlParams,
    rng: Rng,
}

impl<'d> XmlGenerator<'d> {
    /// Creates a generator for a DTD.
    pub fn new(dtd: &'d Dtd, params: XmlParams) -> Self {
        let rng = Rng::seed_from_u64(params.seed);
        XmlGenerator { dtd, params, rng }
    }

    /// Generates one document.
    pub fn generate(&mut self) -> Document {
        let mut builder = DocumentBuilder::new();
        self.emit(self.dtd.root, 1, &mut builder);
        builder
            .finish()
            .expect("generator emits balanced documents")
    }

    /// Generates a batch of documents (the paper uses 500 per DTD).
    pub fn generate_batch(&mut self, count: usize) -> Vec<Document> {
        (0..count).map(|_| self.generate()).collect()
    }

    /// Draws a child index with weight ∝ 1/(rank+1)^skew.
    fn pick_child(&mut self, n: usize) -> usize {
        if self.params.child_skew == 0.0 || n == 1 {
            return self.rng.gen_range(0..n);
        }
        let skew = self.params.child_skew;
        let total: f64 = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(skew)).sum();
        let mut x = self.rng.gen_range(0.0..total);
        for r in 0..n {
            let w = 1.0 / ((r + 1) as f64).powf(skew);
            if x < w {
                return r;
            }
            x -= w;
        }
        n - 1
    }

    fn emit(&mut self, element: usize, level: usize, builder: &mut DocumentBuilder) {
        let dtd = self.dtd;
        let decl = &dtd.elements[element];
        builder.start(decl.name);
        for attr in &decl.attributes {
            if self.rng.gen_bool(self.params.attr_prob) {
                let value = match &attr.kind {
                    AttrKind::Int { max } => self.rng.gen_range(0..*max).to_string(),
                    AttrKind::Enum(values) => {
                        values[self.rng.gen_range(0..values.len())].to_string()
                    }
                };
                builder.attr(attr.name, &value);
            }
        }
        if (decl.children.is_empty() || level >= self.params.max_levels)
            && self.params.text_prob > 0.0
            && self.rng.gen_bool(self.params.text_prob)
        {
            const WORDS: [&str; 8] = [
                "alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "theta",
            ];
            let word = WORDS[self.rng.gen_range(0..WORDS.len())];
            let n = self.rng.gen_range(0..100);
            builder.text(&format!("{word} {n}"));
        }
        if level < self.params.max_levels && !decl.children.is_empty() {
            let slots = self
                .rng
                .gen_range(self.params.min_fanout.max(1)..=self.params.max_fanout.max(1));
            let children = decl.children.clone();
            for _ in 0..slots {
                let child = children[self.pick_child(children.len())];
                self.emit(child, level + 1, builder);
            }
        }
        builder.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let dtd = Dtd::nitf();
        let a = XmlGenerator::new(&dtd, XmlParams::default()).generate();
        let b = XmlGenerator::new(&dtd, XmlParams::default()).generate();
        assert_eq!(a.to_xml(), b.to_xml());
    }

    #[test]
    fn respects_max_levels() {
        let dtd = Dtd::nitf();
        for levels in [2, 6, 10] {
            let mut g = XmlGenerator::new(
                &dtd,
                XmlParams {
                    max_levels: levels,
                    ..Default::default()
                },
            );
            for _ in 0..10 {
                let d = g.generate();
                assert!(d.max_depth() as usize <= levels);
            }
        }
    }

    #[test]
    fn conforms_to_dtd() {
        for dtd in [Dtd::nitf(), Dtd::psd()] {
            let mut g = XmlGenerator::new(&dtd, XmlParams::default());
            let d = g.generate();
            assert_eq!(d.node(d.root()).tag, dtd.elements[dtd.root].name);
            for (_, e) in d.elements() {
                let decl = dtd.element(&e.tag).expect("undeclared element");
                for c in &e.children {
                    let child = dtd.element(&d.node(*c).tag).unwrap();
                    assert!(
                        dtd.elements[decl].children.contains(&child),
                        "{} may not contain {}",
                        e.tag,
                        d.node(*c).tag
                    );
                }
                for a in &e.attrs {
                    assert!(
                        dtd.elements[decl]
                            .attributes
                            .iter()
                            .any(|d| d.name == a.name),
                        "{} has no attribute {}",
                        e.tag,
                        a.name
                    );
                }
            }
        }
    }

    #[test]
    fn roundtrips_through_parser() {
        let dtd = Dtd::psd();
        let mut g = XmlGenerator::new(&dtd, XmlParams::default());
        for _ in 0..5 {
            let d = g.generate();
            let text = d.to_xml();
            let re = Document::parse(text.as_bytes()).unwrap();
            assert_eq!(d, re);
        }
    }

    #[test]
    fn document_sizes_are_paperlike() {
        // The paper reports ~140 tags and ~8.8 KB per document on average.
        // Exact numbers depend on the substitute DTDs; assert sane ranges.
        let dtd = Dtd::nitf();
        let mut g = XmlGenerator::new(&dtd, XmlParams::default());
        let docs = g.generate_batch(50);
        let avg_tags: f64 = docs.iter().map(|d| d.len() as f64).sum::<f64>() / docs.len() as f64;
        assert!((20.0..2000.0).contains(&avg_tags), "avg tags = {avg_tags}");
    }
}

#[cfg(test)]
mod text_tests {
    use super::*;

    #[test]
    fn text_generation_is_opt_in() {
        let dtd = Dtd::psd();
        let off = XmlGenerator::new(&dtd, XmlParams::default()).generate();
        assert!(off.elements().all(|(_, e)| e.text.is_empty()));
        let on = XmlGenerator::new(
            &dtd,
            XmlParams {
                text_prob: 1.0,
                ..Default::default()
            },
        )
        .generate();
        let with_text = on.elements().filter(|(_, e)| !e.text.is_empty()).count();
        assert!(with_text > 0);
        // Text only on leaves.
        for (_, e) in on.elements() {
            if !e.text.is_empty() {
                assert!(e.children.is_empty());
            }
        }
    }
}
