//! Canonical experiment configurations reproducing the paper's two
//! workload regimes (§6.1).
//!
//! The knob values below were calibrated (see EXPERIMENTS.md) so that the
//! generated workloads land in the regimes the paper reports:
//!
//! * **NITF**: ≈6% of expressions matched per document, ≈140 tags per
//!   document (measured here: ≈7%, ≈134 tags);
//! * **PSD**: ≈75% matched (measured here: ≈73%, ≈206 tags).

use crate::dtd::Dtd;
use crate::xml_gen::XmlParams;
use crate::xpath_gen::XPathParams;

/// A fully specified workload regime: DTD plus generator parameters.
#[derive(Debug, Clone)]
pub struct Regime {
    /// Regime name ("nitf" / "psd").
    pub name: &'static str,
    /// The DTD.
    pub dtd: Dtd,
    /// XPath generator parameters (count left at its default; set it per
    /// experiment).
    pub xpath: XPathParams,
    /// XML generator parameters.
    pub xml: XmlParams,
}

impl Regime {
    /// The low-match regime (the paper's NITF workload): wide DTD, skewed
    /// documents, selective expressions.
    pub fn nitf() -> Regime {
        Regime {
            name: "nitf",
            dtd: Dtd::nitf(),
            xpath: XPathParams {
                min_depth: 4,
                max_depth: 6,
                wildcard_prob: 0.2,
                descendant_prob: 0.2,
                ..Default::default()
            },
            xml: XmlParams {
                max_levels: 9,
                min_fanout: 1,
                max_fanout: 6,
                child_skew: 3.0,
                ..Default::default()
            },
        }
    }

    /// The expression-count scaling regime (stage-2 scaling experiments):
    /// the NITF low-match shape with duplicate expressions allowed, so
    /// the per-document match *fraction* stays fixed while the expression
    /// count sweeps from thousands to millions — expressions are sampled
    /// i.i.d. from the same distribution at every count (the
    /// distinct-expression retry of the other regimes shifts selectivity
    /// as the pool is exhausted at large counts).
    pub fn scaling() -> Regime {
        let mut regime = Regime::nitf();
        regime.name = "nitf-scaling";
        regime.xpath.distinct = false;
        regime
    }

    /// The duplicate-heavy regime (subscription-set compilation
    /// experiments): the NITF shape with ≈35% verbatim re-registrations
    /// and ≈25% derived contained sub-paths, modeling a subscriber
    /// population where popular queries recur and broad queries subsume
    /// narrow ones. The dedup/covering compiler's effective-N reduction
    /// is measured on this regime.
    pub fn duplicates() -> Regime {
        let mut regime = Regime::nitf();
        regime.name = "nitf-dup";
        regime.xpath.distinct = false;
        regime.xpath.dup_rate = 0.35;
        regime.xpath.containment_rate = 0.25;
        regime
    }

    /// The high-match regime (the paper's PSD workload): narrow DTD,
    /// broad-coverage documents.
    pub fn psd() -> Regime {
        Regime {
            name: "psd",
            dtd: Dtd::psd(),
            xpath: XPathParams {
                min_depth: 2,
                max_depth: 6,
                wildcard_prob: 0.2,
                descendant_prob: 0.2,
                ..Default::default()
            },
            xml: XmlParams {
                max_levels: 8,
                min_fanout: 3,
                max_fanout: 6,
                child_skew: 0.0,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_construct() {
        let n = Regime::nitf();
        assert_eq!(n.dtd.name, "nitf");
        assert_eq!(n.xpath.max_depth, 6);
        let p = Regime::psd();
        assert_eq!(p.dtd.name, "psd");
        assert_eq!(p.xml.child_skew, 0.0);
        let s = Regime::scaling();
        assert_eq!(s.name, "nitf-scaling");
        assert_eq!(s.dtd.name, "nitf");
        assert!(!s.xpath.distinct, "scaling sweeps sample i.i.d.");
        let d = Regime::duplicates();
        assert_eq!(d.name, "nitf-dup");
        assert!(!d.xpath.distinct);
        assert!(d.xpath.dup_rate > 0.0 && d.xpath.containment_rate > 0.0);
    }
}
