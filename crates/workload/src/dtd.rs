//! DTD models for workload generation.
//!
//! The paper's experiments use the NITF (News Industry Text Format) DTD and
//! the PSD (Protein Sequence Database) DTD. The original DTD files are not
//! redistributable here, so this module ships hand-written models that
//! mirror the two *regimes* the evaluation depends on:
//!
//! * **NITF-like** — a wide vocabulary (~110 elements, generous fanout,
//!   many attributes). Random expressions rarely align with the branches a
//!   particular document instantiates → low match percentage (the paper
//!   reports ≈6%).
//! * **PSD-like** — a narrow vocabulary (~45 elements, small fanout, few
//!   attributes). Documents cover most of the schema → high match
//!   percentage (the paper reports ≈75%).

use std::collections::HashMap;

/// An attribute declaration: name plus a value domain used by the
/// generators.
#[derive(Debug, Clone)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: &'static str,
    /// Value domain.
    pub kind: AttrKind,
}

/// Value domain of a generated attribute.
#[derive(Debug, Clone)]
pub enum AttrKind {
    /// Integers in `0..max` (exclusive).
    Int {
        /// Exclusive upper bound.
        max: i64,
    },
    /// One of a fixed set of strings.
    Enum(&'static [&'static str]),
}

/// One element declaration.
#[derive(Debug, Clone)]
pub struct ElementDecl {
    /// Element name.
    pub name: &'static str,
    /// Indices of allowed child elements.
    pub children: Vec<usize>,
    /// Declared attributes.
    pub attributes: Vec<AttrDecl>,
}

/// A document type definition: a named element graph with a root.
#[derive(Debug, Clone)]
pub struct Dtd {
    /// Human-readable name ("nitf", "psd").
    pub name: &'static str,
    /// Index of the root element.
    pub root: usize,
    /// Element declarations.
    pub elements: Vec<ElementDecl>,
    by_name: HashMap<&'static str, usize>,
}

impl Dtd {
    /// Builds a DTD from `(name, children, attrs)` rows. Children named but
    /// never declared become implicit leaf elements.
    fn build(name: &'static str, rows: &[(&'static str, &[&'static str], &[AttrDecl])]) -> Dtd {
        let mut by_name: HashMap<&'static str, usize> = HashMap::new();
        let mut elements: Vec<ElementDecl> = Vec::new();
        let intern = |n: &'static str,
                      elements: &mut Vec<ElementDecl>,
                      by_name: &mut HashMap<&'static str, usize>| {
            *by_name.entry(n).or_insert_with(|| {
                elements.push(ElementDecl {
                    name: n,
                    children: Vec::new(),
                    attributes: Vec::new(),
                });
                elements.len() - 1
            })
        };
        for (n, children, attrs) in rows {
            let id = intern(n, &mut elements, &mut by_name);
            elements[id].attributes = attrs.to_vec();
            let child_ids: Vec<usize> = children
                .iter()
                .map(|c| intern(c, &mut elements, &mut by_name))
                .collect();
            elements[id].children = child_ids;
        }
        Dtd {
            name,
            root: 0,
            elements,
            by_name,
        }
    }

    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Number of declared elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// A DTD always has at least a root element.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The NITF-like DTD (wide, attribute-rich; low-match regime).
    pub fn nitf() -> Dtd {
        use AttrKind::*;
        const MT: &[AttrDecl] = &[];
        fn a(name: &'static str, kind: AttrKind) -> AttrDecl {
            AttrDecl { name, kind }
        }
        let id_attr = || a("id", Int { max: 1000 });
        let class_attr = || {
            a(
                "class",
                Enum(&["lead", "main", "side", "brief", "update", "wrap"]),
            )
        };
        let rows: &[(&'static str, &[&'static str], &[AttrDecl])] = &[
            (
                "nitf",
                &["head", "body"],
                &[
                    a("version", Int { max: 5 }),
                    a("change.date", Int { max: 30 }),
                ],
            ),
            (
                "head",
                &[
                    "title",
                    "meta",
                    "tobject",
                    "iim",
                    "docdata",
                    "pubdata",
                    "revision-history",
                ],
                MT,
            ),
            ("title", &[], MT),
            (
                "meta",
                &[],
                &[
                    a("name", Enum(&["author", "desk", "slug", "priority"])),
                    a("content", Int { max: 100 }),
                ],
            ),
            (
                "tobject",
                &["tobject.property", "tobject.subject"],
                &[a(
                    "tobject.type",
                    Enum(&["news", "analysis", "feature", "opinion"]),
                )],
            ),
            ("tobject.property", &[], MT),
            (
                "tobject.subject",
                &[],
                &[
                    a("tobject.subject.code", Int { max: 20000 }),
                    a(
                        "tobject.subject.type",
                        Enum(&["sports", "politics", "finance", "weather", "culture"]),
                    ),
                ],
            ),
            ("iim", &["ds"], &[a("ver", Int { max: 5 })]),
            (
                "ds",
                &[],
                &[a("num", Int { max: 100 }), a("value", Int { max: 1000 })],
            ),
            (
                "docdata",
                &[
                    "doc-id",
                    "urgency",
                    "date.issue",
                    "date.release",
                    "date.expire",
                    "doc-scope",
                    "series",
                    "ed-msg",
                    "du-key",
                    "doc.copyright",
                    "doc.rights",
                    "key-list",
                    "identified-content",
                ],
                MT,
            ),
            (
                "doc-id",
                &[],
                &[
                    a("id-string", Int { max: 100000 }),
                    a("regsrc", Enum(&["AP", "Reuters", "AFP", "DPA"])),
                ],
            ),
            ("urgency", &[], &[a("ed-urg", Int { max: 9 })]),
            ("date.issue", &[], &[a("norm", Int { max: 20351231 })]),
            ("date.release", &[], &[a("norm", Int { max: 20351231 })]),
            ("date.expire", &[], &[a("norm", Int { max: 20351231 })]),
            (
                "doc-scope",
                &[],
                &[a(
                    "scope",
                    Enum(&["local", "regional", "national", "international"]),
                )],
            ),
            (
                "series",
                &[],
                &[
                    a("series.name", Int { max: 500 }),
                    a("series.part", Int { max: 30 }),
                ],
            ),
            ("ed-msg", &[], &[a("info", Int { max: 1000 })]),
            (
                "du-key",
                &[],
                &[
                    a("key", Int { max: 10000 }),
                    a("generation", Int { max: 10 }),
                ],
            ),
            (
                "doc.copyright",
                &[],
                &[
                    a("year", Int { max: 2035 }),
                    a("holder", Enum(&["AP", "Reuters", "AFP", "NYT", "WSJ"])),
                ],
            ),
            (
                "doc.rights",
                &[],
                &[
                    a("owner", Enum(&["AP", "Reuters", "AFP", "NYT"])),
                    a("startdate", Int { max: 20351231 }),
                ],
            ),
            ("key-list", &["keyword"], MT),
            ("keyword", &[], &[a("key", Int { max: 5000 })]),
            (
                "identified-content",
                &[
                    "person",
                    "org",
                    "location",
                    "event",
                    "function",
                    "object.title",
                    "virtloc",
                    "classifier",
                ],
                MT,
            ),
            (
                "classifier",
                &[],
                &[
                    a("type", Enum(&["subject", "genre", "audience"])),
                    a("value", Int { max: 300 }),
                ],
            ),
            (
                "pubdata",
                &[],
                &[
                    a("type", Enum(&["print", "web", "broadcast"])),
                    a(
                        "position.section",
                        Enum(&["front", "sports", "business", "world"]),
                    ),
                    a("item-length", Int { max: 5000 }),
                ],
            ),
            (
                "revision-history",
                &[],
                &[
                    a("name", Enum(&["editor-a", "editor-b", "editor-c"])),
                    a("function", Enum(&["created", "edited", "reviewed"])),
                    a("norm", Int { max: 20351231 }),
                ],
            ),
            ("body", &["body.head", "body.content", "body.end"], MT),
            (
                "body.head",
                &[
                    "hedline",
                    "note",
                    "rights",
                    "byline",
                    "distributor",
                    "dateline",
                    "abstract",
                    "series",
                ],
                MT,
            ),
            ("hedline", &["hl1", "hl2"], MT),
            ("hl1", &[], &[id_attr()]),
            ("hl2", &[], &[id_attr()]),
            (
                "note",
                &["body.content"],
                &[
                    a(
                        "noteclass",
                        Enum(&["editorsnote", "correction", "clarification"]),
                    ),
                    a("type", Enum(&["std", "pa", "npa"])),
                ],
            ),
            (
                "rights",
                &[
                    "rights.owner",
                    "rights.startdate",
                    "rights.enddate",
                    "rights.agent",
                    "rights.geography",
                    "rights.type",
                    "rights.limitations",
                ],
                MT,
            ),
            ("rights.owner", &[], &[a("contact", Int { max: 1000 })]),
            ("rights.startdate", &[], &[a("norm", Int { max: 20351231 })]),
            ("rights.enddate", &[], &[a("norm", Int { max: 20351231 })]),
            ("rights.agent", &[], &[a("contact", Int { max: 1000 })]),
            (
                "rights.geography",
                &[],
                &[a("location", Enum(&["us", "eu", "asia", "world"]))],
            ),
            (
                "rights.type",
                &[],
                &[a("type", Enum(&["reprint", "broadcast", "web"]))],
            ),
            ("rights.limitations", &[], MT),
            ("byline", &["person", "byttl", "location", "virtloc"], MT),
            ("byttl", &[], MT),
            ("distributor", &["org"], MT),
            ("dateline", &["location", "story.date"], MT),
            ("story.date", &[], &[a("norm", Int { max: 20351231 })]),
            ("abstract", &["p"], MT),
            (
                "body.content",
                &[
                    "block", "p", "media", "table", "ol", "ul", "hr", "pre", "fn", "bq",
                ],
                MT,
            ),
            (
                "block",
                &[
                    "p",
                    "media",
                    "table",
                    "ol",
                    "ul",
                    "hr",
                    "note",
                    "bq",
                    "datasource",
                    "copyrite",
                ],
                &[id_attr(), class_attr()],
            ),
            (
                "p",
                &[
                    "em",
                    "strong",
                    "a",
                    "br",
                    "q",
                    "person",
                    "location",
                    "org",
                    "money",
                    "num",
                    "chron",
                    "event",
                    "function",
                    "object.title",
                    "virtloc",
                    "copyrite",
                    "pronounce",
                    "alt-code",
                ],
                &[
                    a("lede", Enum(&["true", "false"])),
                    a("summary", Enum(&["true", "false"])),
                    a("optional-text", Enum(&["true", "false"])),
                ],
            ),
            ("em", &[], MT),
            ("strong", &[], MT),
            (
                "a",
                &[],
                &[a("href", Int { max: 100000 }), a("name", Int { max: 1000 })],
            ),
            ("br", &[], MT),
            (
                "q",
                &["person", "org"],
                &[a("quote-source", Int { max: 1000 })],
            ),
            (
                "person",
                &["name.given", "name.family", "function", "alt-code"],
                &[
                    a("idsrc", Enum(&["local", "wiki", "iptc"])),
                    a("value", Int { max: 100000 }),
                ],
            ),
            ("name.given", &[], MT),
            ("name.family", &[], MT),
            (
                "location",
                &[
                    "sublocation",
                    "city",
                    "state",
                    "region",
                    "country",
                    "alt-code",
                ],
                &[
                    a("location-code", Int { max: 10000 }),
                    a("code-source", Enum(&["iso", "iptc"])),
                ],
            ),
            ("sublocation", &[], MT),
            ("city", &[], MT),
            ("state", &[], MT),
            ("region", &[], MT),
            (
                "country",
                &[],
                &[a(
                    "iso-cc",
                    Enum(&["us", "gb", "de", "fr", "jp", "cn", "br", "in"]),
                )],
            ),
            (
                "org",
                &["alt-code"],
                &[
                    a("idsrc", Enum(&["nasdaq", "nyse", "local"])),
                    a("value", Int { max: 100000 }),
                ],
            ),
            (
                "money",
                &[],
                &[a("unit", Enum(&["usd", "eur", "gbp", "jpy"]))],
            ),
            (
                "num",
                &[],
                &[
                    a("units", Enum(&["percent", "absolute", "ratio"])),
                    a("decimals", Int { max: 6 }),
                ],
            ),
            ("chron", &[], &[a("norm", Int { max: 20351231 })]),
            (
                "event",
                &["alt-code"],
                &[
                    a("idsrc", Enum(&["local", "iptc"])),
                    a("value", Int { max: 10000 }),
                ],
            ),
            (
                "function",
                &[],
                &[
                    a("idsrc", Enum(&["local", "iptc"])),
                    a("value", Int { max: 1000 }),
                ],
            ),
            ("object.title", &[], &[id_attr()]),
            ("virtloc", &[], &[id_attr(), class_attr()]),
            ("copyrite", &["copyrite.year", "copyrite.holder"], MT),
            ("copyrite.year", &[], MT),
            ("copyrite.holder", &[], MT),
            (
                "pronounce",
                &[],
                &[
                    a("guide", Int { max: 1000 }),
                    a("phonetic", Int { max: 1000 }),
                ],
            ),
            (
                "alt-code",
                &[],
                &[
                    a("idsrc", Enum(&["iptc", "local", "wiki"])),
                    a("value", Int { max: 100000 }),
                ],
            ),
            (
                "media",
                &[
                    "media-reference",
                    "media-metadata",
                    "media-object",
                    "media-caption",
                    "media-producer",
                ],
                &[
                    a("media-type", Enum(&["image", "video", "audio", "graphic"])),
                    class_attr(),
                ],
            ),
            (
                "media-reference",
                &[],
                &[
                    a("source", Int { max: 100000 }),
                    a(
                        "mime-type",
                        Enum(&["image/jpeg", "image/png", "video/mp4", "audio/mp3"]),
                    ),
                    a("coding", Enum(&["base64", "binary"])),
                    a("time", Int { max: 86400 }),
                    a("height", Int { max: 4096 }),
                    a("width", Int { max: 4096 }),
                ],
            ),
            (
                "media-metadata",
                &[],
                &[
                    a("name", Enum(&["camera", "shutter", "iso", "gps"])),
                    a("value", Int { max: 100000 }),
                ],
            ),
            (
                "media-object",
                &[],
                &[a("encoding", Enum(&["base64", "binary"]))],
            ),
            ("media-caption", &["p"], MT),
            ("media-producer", &["person", "org"], MT),
            (
                "table",
                &[
                    "caption", "tr", "col", "colgroup", "thead", "tbody", "tfoot",
                ],
                &[
                    a("frame", Enum(&["box", "void", "above", "below"])),
                    a("cellpadding", Int { max: 20 }),
                    a("cellspacing", Int { max: 20 }),
                    a("width", Int { max: 1600 }),
                ],
            ),
            ("caption", &["em", "strong"], MT),
            (
                "col",
                &[],
                &[a("span", Int { max: 10 }), a("width", Int { max: 400 })],
            ),
            ("colgroup", &["col"], &[a("span", Int { max: 10 })]),
            ("thead", &["tr"], MT),
            ("tbody", &["tr"], MT),
            ("tfoot", &["tr"], MT),
            (
                "tr",
                &["td", "th"],
                &[a("align", Enum(&["left", "center", "right"]))],
            ),
            (
                "td",
                &["p", "em", "strong", "num", "money"],
                &[
                    a("colspan", Int { max: 8 }),
                    a("rowspan", Int { max: 8 }),
                    a("align", Enum(&["left", "center", "right"])),
                ],
            ),
            (
                "th",
                &["em", "strong"],
                &[
                    a("colspan", Int { max: 8 }),
                    a("align", Enum(&["left", "center", "right"])),
                ],
            ),
            ("ol", &["li"], &[a("seqnum", Int { max: 100 })]),
            ("ul", &["li"], MT),
            ("li", &["p", "em", "strong", "a", "num", "money"], MT),
            ("hr", &[], MT),
            ("pre", &[], MT),
            ("fn", &["p"], MT),
            (
                "bq",
                &["block", "credit"],
                &[
                    a("nowrap", Enum(&["nowrap", "wrap"])),
                    a("quote-source", Int { max: 1000 }),
                ],
            ),
            ("credit", &["person", "org"], MT),
            ("datasource", &[], MT),
            ("body.end", &["tagline", "bibliography"], MT),
            (
                "tagline",
                &["person", "org", "a"],
                &[a("type", Enum(&["std", "pa"]))],
            ),
            ("bibliography", &[], MT),
        ];
        Dtd::build("nitf", rows)
    }

    /// The PSD-like DTD (narrow, recursive; high-match regime).
    pub fn psd() -> Dtd {
        use AttrKind::*;
        const MT: &[AttrDecl] = &[];
        fn a(name: &'static str, kind: AttrKind) -> AttrDecl {
            AttrDecl { name, kind }
        }
        let rows: &[(&'static str, &[&'static str], &[AttrDecl])] = &[
            ("ProteinDatabase", &["ProteinEntry"], MT),
            (
                "ProteinEntry",
                &[
                    "header",
                    "protein",
                    "organism",
                    "reference",
                    "genetics",
                    "complex",
                    "function",
                    "classification",
                    "keywords",
                    "feature",
                    "summary",
                    "sequence",
                ],
                &[a("id", Int { max: 100000 })],
            ),
            (
                "header",
                &[
                    "uid",
                    "accession",
                    "created_date",
                    "seq-rev_date",
                    "txt-rev_date",
                ],
                MT,
            ),
            ("uid", &[], MT),
            ("accession", &[], MT),
            ("created_date", &[], MT),
            ("seq-rev_date", &[], MT),
            ("txt-rev_date", &[], MT),
            (
                "protein",
                &["name", "description", "superfamily", "contains"],
                MT,
            ),
            ("name", &[], MT),
            ("description", &[], MT),
            ("superfamily", &[], MT),
            ("contains", &["name"], MT),
            (
                "organism",
                &["source", "common", "formal_domain", "organelle", "variety"],
                MT,
            ),
            ("source", &[], &[a("src", Enum(&["nat", "syn", "rec"]))]),
            ("common", &[], MT),
            ("formal_domain", &[], MT),
            ("organelle", &[], MT),
            ("variety", &[], MT),
            ("reference", &["refinfo", "accinfo"], MT),
            (
                "refinfo",
                &[
                    "authors", "citation", "title", "volume", "year", "pages", "xrefs", "note",
                ],
                &[a("refid", Int { max: 10000 })],
            ),
            ("authors", &["author"], MT),
            ("author", &[], MT),
            (
                "citation",
                &[],
                &[a(
                    "type",
                    Enum(&["journal", "book", "submission", "patent"]),
                )],
            ),
            ("title", &[], MT),
            ("volume", &[], MT),
            ("year", &[], &[a("value", Int { max: 2035 })]),
            ("pages", &[], MT),
            ("xrefs", &["xref"], MT),
            ("xref", &["db", "uid"], MT),
            ("db", &[], MT),
            ("note", &[], MT),
            (
                "accinfo",
                &["mol-type", "seq-spec"],
                &[a("acc", Int { max: 100000 })],
            ),
            ("mol-type", &[], MT),
            (
                "genetics",
                &["gene", "gene-map", "genome", "codon_usage", "introns"],
                MT,
            ),
            ("gene", &[], MT),
            ("gene-map", &[], MT),
            ("genome", &[], MT),
            ("codon_usage", &[], MT),
            ("introns", &[], MT),
            ("complex", &[], MT),
            ("function", &["description", "pathway"], MT),
            ("pathway", &[], MT),
            ("classification", &["superfamily", "family"], MT),
            ("family", &[], MT),
            ("keywords", &["keyword"], MT),
            ("keyword", &[], MT),
            (
                "feature",
                &["feature-type", "description", "status", "seq-spec"],
                MT,
            ),
            (
                "feature-type",
                &[],
                &[a(
                    "type",
                    Enum(&[
                        "active-site",
                        "binding-site",
                        "modified-site",
                        "domain",
                        "disulfide",
                    ]),
                )],
            ),
            (
                "status",
                &[],
                &[a("value", Enum(&["predicted", "experimental", "absent"]))],
            ),
            (
                "seq-spec",
                &[],
                &[a("from", Int { max: 5000 }), a("to", Int { max: 5000 })],
            ),
            ("summary", &["length", "type"], MT),
            ("length", &[], &[a("value", Int { max: 5000 })]),
            ("type", &[], MT),
            ("sequence", &[], MT),
        ];
        Dtd::build("psd", rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nitf_shape() {
        let d = Dtd::nitf();
        assert!(d.len() >= 100, "NITF-like should be wide, got {}", d.len());
        assert_eq!(d.elements[d.root].name, "nitf");
        // Attribute-rich: many elements declare attributes.
        let with_attrs = d
            .elements
            .iter()
            .filter(|e| !e.attributes.is_empty())
            .count();
        assert!(with_attrs >= 40, "got {with_attrs}");
    }

    #[test]
    fn psd_shape() {
        let d = Dtd::psd();
        assert!(d.len() >= 40 && d.len() <= 70, "got {}", d.len());
        assert_eq!(d.elements[d.root].name, "ProteinDatabase");
        // Few attributes compared to NITF.
        let with_attrs = d
            .elements
            .iter()
            .filter(|e| !e.attributes.is_empty())
            .count();
        assert!(with_attrs <= 15, "got {with_attrs}");
    }

    #[test]
    fn children_resolve() {
        for d in [Dtd::nitf(), Dtd::psd()] {
            for e in &d.elements {
                for &c in &e.children {
                    assert!(c < d.len());
                }
            }
            assert_eq!(d.element(d.elements[d.root].name), Some(d.root));
        }
    }

    #[test]
    fn reachability_from_root() {
        // Every element should be reachable from the root (the generators
        // walk from the root).
        for d in [Dtd::nitf(), Dtd::psd()] {
            let mut seen = vec![false; d.len()];
            let mut stack = vec![d.root];
            while let Some(e) = stack.pop() {
                if std::mem::replace(&mut seen[e], true) {
                    continue;
                }
                stack.extend(d.elements[e].children.iter().copied());
            }
            let unreachable: Vec<&str> = d
                .elements
                .iter()
                .enumerate()
                .filter(|(i, _)| !seen[*i])
                .map(|(_, e)| e.name)
                .collect();
            assert!(unreachable.is_empty(), "{}: {unreachable:?}", d.name);
        }
    }
}
