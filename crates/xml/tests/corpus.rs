//! Regression corpus of pathological inputs.
//!
//! Every file under `tests/corpus/` is a checked-in hostile document with
//! a pinned verdict: either the exact [`XmlErrorKind`] it must be rejected
//! with (under stated limits), or proof that a hostile-*looking* document
//! still parses (`ok_` prefix). The corpus freezes past parser behavior so
//! hardening work can't silently regress — new pathological cases found in
//! the wild get a file and a manifest row here.

use pxf_xml::{Document, ParserLimits, PathDoc, XmlErrorKind};

/// Which limit profile a corpus entry is checked under.
#[derive(Clone, Copy)]
enum Profile {
    Default,
    Strict,
}

impl Profile {
    fn limits(self) -> ParserLimits {
        match self {
            Profile::Default => ParserLimits::default(),
            Profile::Strict => ParserLimits::strict(),
        }
    }
}

/// Expected rejection for each malformed corpus file.
fn manifest() -> Vec<(&'static str, Profile, XmlErrorKind)> {
    use XmlErrorKind::*;
    vec![
        (
            "depth_bomb.xml",
            Profile::Default,
            DepthLimitExceeded(ParserLimits::default().max_depth),
        ),
        (
            "depth_bomb_strict.xml",
            Profile::Strict,
            DepthLimitExceeded(ParserLimits::strict().max_depth),
        ),
        (
            "entity_bomb.xml",
            Profile::Strict,
            EntityExpansionLimit(ParserLimits::strict().max_entity_expansions),
        ),
        (
            "unterminated_cdata.xml",
            Profile::Default,
            Unterminated("CDATA section"),
        ),
        (
            "unterminated_comment.xml",
            Profile::Default,
            Unterminated("comment"),
        ),
        (
            "unterminated_doctype.xml",
            Profile::Default,
            Unterminated("DOCTYPE declaration"),
        ),
        (
            "unterminated_start_tag.xml",
            Profile::Default,
            Unterminated("start tag"),
        ),
        (
            "unterminated_attr_value.xml",
            Profile::Default,
            Unterminated("attribute value"),
        ),
        (
            "attr_flood.xml",
            Profile::Strict,
            TooManyAttributes(ParserLimits::strict().max_attributes),
        ),
        (
            "long_name.xml",
            Profile::Strict,
            NameTooLong(ParserLimits::strict().max_name_len),
        ),
        ("multiple_roots.xml", Profile::Default, MultipleRoots),
        (
            "mismatched_end.xml",
            Profile::Default,
            MismatchedEndTag {
                expected: "b".into(),
                found: "a".into(),
            },
        ),
        (
            "truncated_tree.xml",
            Profile::Default,
            UnexpectedEof("c".into()),
        ),
        (
            "unknown_entity.xml",
            Profile::Default,
            UnknownEntity("nosuch".into()),
        ),
    ]
}

fn read(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn malformed_corpus_is_rejected_with_the_pinned_kind() {
    for (name, profile, expected) in manifest() {
        let bytes = read(name);
        let err = Document::parse_with_limits(&bytes, profile.limits())
            .err()
            .unwrap_or_else(|| panic!("{name}: expected a parse error"));
        assert_eq!(err.kind, expected, "{name}");
        assert!(
            err.pos <= bytes.len(),
            "{name}: error position {} outside the {}-byte document",
            err.pos,
            bytes.len()
        );
        // The streaming store must reject identically.
        let flat = PathDoc::parse_with_limits(&bytes, profile.limits())
            .err()
            .unwrap_or_else(|| panic!("{name}: PathDoc accepted what Document rejected"));
        assert_eq!(flat.kind, err.kind, "{name}: tree/streaming disagree");
        assert_eq!(flat.pos, err.pos, "{name}: tree/streaming positions differ");
    }
}

#[test]
fn hostile_looking_but_wellformed_corpus_parses() {
    for name in [
        "ok_mixed_tail.xml",
        "ok_nasty_text.xml",
        "ok_deep_but_legal.xml",
    ] {
        let bytes = read(name);
        for profile in [Profile::Default, Profile::Strict] {
            let doc = Document::parse_with_limits(&bytes, profile.limits());
            assert!(doc.is_ok(), "{name}: {:?}", doc.err());
        }
    }
}

#[test]
fn every_corpus_file_is_in_a_manifest() {
    // A corpus file nobody asserts on is dead weight — fail fast when one
    // is added without a manifest row.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let known: Vec<String> = manifest()
        .iter()
        .map(|(n, _, _)| n.to_string())
        .chain(
            [
                "ok_mixed_tail.xml",
                "ok_nasty_text.xml",
                "ok_deep_but_legal.xml",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .collect();
    for entry in std::fs::read_dir(dir).expect("corpus dir") {
        let name = entry.expect("dir entry").file_name().into_string().unwrap();
        assert!(
            known.contains(&name),
            "corpus file {name} has no manifest row"
        );
    }
}
