//! Robustness: the XML reader must never panic; documents built through
//! the builder must serialize and re-parse to the same tree; leaf-path
//! extraction invariants. Seeded randomized sweeps (in-tree PRNG).

use pxf_rng::Rng;
use pxf_xml::{Document, DocumentBuilder, Reader};

#[test]
fn reader_never_panics_on_arbitrary_bytes() {
    let mut rng = Rng::seed_from_u64(0xbeef);
    for _ in 0..1024 {
        let len = rng.gen_range(0..200usize);
        let input: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        let mut r = Reader::new(&input);
        for _ in 0..300 {
            match r.next_event() {
                Ok(pxf_xml::Event::Eof) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
}

#[test]
fn xmlish_text_never_panics() {
    let alphabet: Vec<char> = "<>/abc \"='!-[]&;#x0123456789".chars().collect();
    let mut rng = Rng::seed_from_u64(0xcafe);
    for _ in 0..2048 {
        let len = rng.gen_range(0..120usize);
        let input: String = (0..len).map(|_| *rng.choose(&alphabet)).collect();
        let _ = Document::parse(input.as_bytes());
    }
}

#[derive(Debug, Clone)]
struct Tree {
    tag: usize,
    attrs: Vec<(usize, String)>,
    text: String,
    children: Vec<Tree>,
}

/// Random tree over a tiny alphabet; attribute values and text include
/// characters requiring entity escaping.
fn arb_tree(rng: &mut Rng, depth: usize) -> Tree {
    let nasty: Vec<char> = "abcdefghij<&\"".chars().collect();
    let text_len = rng.gen_range(0..7usize);
    let attrs = (0..rng.gen_range(0..3usize))
        .map(|_| {
            let len = rng.gen_range(0..7usize);
            let value: String = (0..len).map(|_| *rng.choose(&nasty)).collect();
            (rng.gen_range(0..3usize), value)
        })
        .collect();
    let n_children = if depth == 0 {
        0
    } else {
        rng.gen_range(0..3usize)
    };
    Tree {
        tag: rng.gen_range(0..4usize),
        attrs,
        text: (0..text_len).map(|_| *rng.choose(&nasty)).collect(),
        children: (0..n_children).map(|_| arb_tree(rng, depth - 1)).collect(),
    }
}

fn build(t: &Tree, b: &mut DocumentBuilder) {
    const TAGS: [&str; 4] = ["a", "b", "c", "d"];
    const ATTRS: [&str; 3] = ["x", "y", "z"];
    b.start(TAGS[t.tag]);
    for (i, (name, value)) in t.attrs.iter().enumerate() {
        if t.attrs[..i].iter().all(|(n, _)| n != name) {
            b.attr(ATTRS[*name], value);
        }
    }
    if !t.text.is_empty() {
        b.text(&t.text);
    }
    for c in &t.children {
        build(c, b);
    }
    b.end();
}

fn build_doc(t: &Tree) -> Document {
    let mut b = DocumentBuilder::new();
    build(t, &mut b);
    b.finish().unwrap()
}

#[test]
fn serialization_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xf00d);
    for _ in 0..512 {
        let doc = build_doc(&arb_tree(&mut rng, 4));
        let reparsed = Document::parse(doc.to_xml().as_bytes()).unwrap();
        assert_eq!(doc, reparsed);
    }
}

#[test]
fn leaf_path_invariants() {
    let mut rng = Rng::seed_from_u64(0xd00d);
    for _ in 0..512 {
        let doc = build_doc(&arb_tree(&mut rng, 4));
        let paths = doc.leaf_paths();
        assert_eq!(paths.len(), doc.leaf_count());
        for p in &paths {
            assert_eq!(p[0], doc.root());
            for w in p.windows(2) {
                assert_eq!(doc.node(w[1]).parent, Some(w[0]));
            }
            assert!(doc.node(*p.last().unwrap()).children.is_empty());
        }
    }
}

/// Differential test for the document-stream boundary scanner: N built
/// documents concatenated with assorted separators stream back as the
/// same N documents.
#[test]
fn document_stream_splits_concatenations() {
    let mut rng = Rng::seed_from_u64(0xabcd);
    for _ in 0..256 {
        let n = rng.gen_range(1..6usize);
        let docs: Vec<Document> = (0..n).map(|_| build_doc(&arb_tree(&mut rng, 3))).collect();
        let mut wire = Vec::new();
        for d in &docs {
            match rng.gen_range(0..4usize) {
                0 => {}
                1 => wire.extend_from_slice(b"\n  \n"),
                2 => wire.extend_from_slice(b"<!-- sep -->"),
                _ => wire.extend_from_slice(b"<?pi data?>\t"),
            }
            wire.extend_from_slice(d.to_xml().as_bytes());
        }
        let streamed: Vec<Document> = pxf_xml::DocumentStream::new(&wire[..])
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(&streamed, &docs);
    }
}
