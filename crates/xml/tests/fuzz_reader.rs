//! Seeded fuzz-style robustness suite for the parsing stack.
//!
//! Thousands of deterministic (`pxf-rng`) mutated byte strings are pushed
//! through [`Reader`], [`Document::parse`], [`PathDoc::parse`], and
//! [`DocumentStream`]. The properties under test are uniform: parsing
//! never panics, always terminates (bounded event counts stand in for a
//! wall clock — the parsers are strictly forward-moving), and every error
//! carries a byte position inside the input. The fixed seeds make any
//! failure reproducible from the test name alone.

use pxf_rng::Rng;
use pxf_xml::{Document, DocumentStream, Event, ParserLimits, PathDoc, Reader};

/// Seed shared by the whole suite; bump to explore a different corpus.
const SEED: u64 = 0x5eed_f00d;

/// XML-flavored byte soup: heavy on markup delimiters so mutations land
/// in structurally interesting places, but with arbitrary bytes mixed in.
fn arb_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    const FLAVOR: &[u8] = b"<>/=\"'&;![]-?ab c\t\n";
    let len = rng.gen_index(max_len + 1);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.85) {
                *rng.choose(FLAVOR)
            } else {
                rng.gen_range(0u64..256) as u8
            }
        })
        .collect()
}

/// A small well-formed document to use as a mutation base.
fn arb_doc(rng: &mut Rng) -> Vec<u8> {
    let mut out = Vec::new();
    fn emit(rng: &mut Rng, out: &mut Vec<u8>, depth: usize) {
        let tag = *rng.choose(&["a", "bb", "ccc"]);
        out.extend_from_slice(b"<");
        out.extend_from_slice(tag.as_bytes());
        if rng.gen_bool(0.4) {
            out.extend_from_slice(format!(" x=\"{}\"", rng.gen_range(0u64..10)).as_bytes());
        }
        if depth < 4 && rng.gen_bool(0.6) {
            out.push(b'>');
            for _ in 0..rng.gen_index(3) {
                emit(rng, out, depth + 1);
            }
            if rng.gen_bool(0.3) {
                out.extend_from_slice(b"text &amp; more");
            }
            out.extend_from_slice(b"</");
            out.extend_from_slice(tag.as_bytes());
            out.push(b'>');
        } else {
            out.extend_from_slice(b"/>");
        }
    }
    emit(rng, &mut out, 0);
    out
}

/// Flips, inserts, deletes, or splices a few bytes of a valid document.
fn mutate(rng: &mut Rng, base: &[u8]) -> Vec<u8> {
    let mut out = base.to_vec();
    for _ in 0..1 + rng.gen_index(4) {
        if out.is_empty() {
            break;
        }
        let pos = rng.gen_index(out.len());
        match rng.gen_index(4) {
            0 => out[pos] = rng.gen_range(0u64..256) as u8,
            1 => {
                out.remove(pos);
            }
            2 => out.insert(pos, *rng.choose(b"<>/=\"&;!")),
            _ => {
                let splice = arb_bytes(rng, 8);
                out.splice(pos..pos, splice);
            }
        }
    }
    out
}

/// Drives the pull parser to completion (or error), bounding the event
/// count: the reader consumes input monotonically, so events are at most
/// ~len + 1, and exceeding that proves a non-termination bug.
fn drain_reader(input: &[u8], limits: ParserLimits) -> Result<usize, pxf_xml::XmlError> {
    let mut reader = Reader::with_limits(input, limits);
    let cap = 2 * input.len() + 16;
    for events in 0.. {
        assert!(events <= cap, "reader produced over {cap} events — stuck?");
        match reader.next_event()? {
            Event::Eof => return Ok(events),
            _ => continue,
        }
    }
    unreachable!()
}

#[test]
fn random_byte_soup_never_panics_and_errors_stay_in_bounds() {
    let mut rng = Rng::seed_from_u64(SEED);
    for case in 0..4_000 {
        let input = arb_bytes(&mut rng, 200);
        for limits in [ParserLimits::default(), ParserLimits::strict()] {
            if let Err(e) = drain_reader(&input, limits) {
                assert!(
                    e.pos <= input.len(),
                    "case {case}: error position {} outside input of {} bytes: {e}",
                    e.pos,
                    input.len()
                );
            }
        }
    }
}

#[test]
fn mutated_documents_never_panic_any_parser() {
    let mut rng = Rng::seed_from_u64(SEED ^ 1);
    for case in 0..3_000 {
        let base = arb_doc(&mut rng);
        let input = mutate(&mut rng, &base);
        let _ = drain_reader(&input, ParserLimits::default());
        let tree = Document::parse(&input);
        let flat = PathDoc::parse(&input);
        // The two parsers see identical event streams, so they must agree
        // on accept/reject for every input.
        assert_eq!(
            tree.is_ok(),
            flat.is_ok(),
            "case {case}: tree={tree:?} flat={flat:?} input={:?}",
            String::from_utf8_lossy(&input)
        );
        if let Err(e) = tree {
            assert!(e.pos <= input.len(), "case {case}: {e} out of bounds");
        }
    }
}

#[test]
fn strict_limits_never_panic_on_mutated_documents() {
    let mut rng = Rng::seed_from_u64(SEED ^ 2);
    for _ in 0..2_000 {
        let base = arb_doc(&mut rng);
        let input = mutate(&mut rng, &base);
        if let Err(e) = PathDoc::parse_with_limits(&input, ParserLimits::strict()) {
            assert!(e.pos <= input.len());
        }
    }
}

#[test]
fn document_stream_survives_random_concatenations() {
    let mut rng = Rng::seed_from_u64(SEED ^ 3);
    for case in 0..400 {
        // A wire of documents, some mutated, glued with random whitespace.
        let mut wire = Vec::new();
        let mut docs = 0usize;
        for _ in 0..1 + rng.gen_index(6) {
            let doc = arb_doc(&mut rng);
            if rng.gen_bool(0.3) {
                wire.extend_from_slice(&mutate(&mut rng, &doc));
            } else {
                wire.extend_from_slice(&doc);
            }
            docs += 1;
            for _ in 0..rng.gen_index(3) {
                wire.push(*rng.choose(b" \t\n"));
            }
        }
        let stream = DocumentStream::new(wire.as_slice());
        // Termination bound: each item consumes input or trips the
        // consecutive-failure cap, so items can't exceed bytes + cap.
        let cap = wire.len() + 100;
        let mut items = 0usize;
        for item in stream {
            items += 1;
            assert!(items <= cap, "case {case}: stream of {docs} docs stuck");
            if let Err(e) = item {
                assert!(e.pos <= wire.len(), "case {case}: {e} out of bounds");
            }
        }
    }
}
