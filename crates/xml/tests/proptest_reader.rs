//! Robustness: the XML reader must never panic; documents built through
//! the builder must serialize and re-parse to the same tree; leaf-path
//! extraction invariants.

use proptest::prelude::*;
use pxf_xml::{Document, DocumentBuilder, Reader};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes never panic the reader.
    #[test]
    fn reader_never_panics(input in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut r = Reader::new(&input);
        for _ in 0..300 {
            match r.next_event() {
                Ok(pxf_xml::Event::Eof) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    /// XML-ish text never panics.
    #[test]
    fn xmlish_never_panics(input in "[<>/a-c \"='!\\-\\[\\]&;#x0-9]{0,120}") {
        let _ = Document::parse(input.as_bytes());
    }
}

#[derive(Debug, Clone)]
struct Tree {
    tag: u8,
    attrs: Vec<(u8, String)>,
    text: String,
    children: Vec<Tree>,
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = (0u8..4, proptest::collection::vec((0u8..3, "[a-z<&\"]{0,6}"), 0..2), "[a-z<&]{0,6}")
        .prop_map(|(tag, attrs, text)| Tree { tag, attrs, text, children: Vec::new() });
    leaf.prop_recursive(4, 20, 3, |inner| {
        (
            0u8..4,
            proptest::collection::vec((0u8..3, "[a-z<&\"]{0,6}"), 0..2),
            "[a-z<&]{0,6}",
            proptest::collection::vec(inner, 0..3),
        )
            .prop_map(|(tag, attrs, text, children)| Tree { tag, attrs, text, children })
    })
}

fn build(t: &Tree, b: &mut DocumentBuilder) {
    const TAGS: [&str; 4] = ["a", "b", "c", "d"];
    const ATTRS: [&str; 3] = ["x", "y", "z"];
    b.start(TAGS[t.tag as usize]);
    for (i, (name, value)) in t.attrs.iter().enumerate() {
        if t.attrs[..i].iter().all(|(n, _)| n != name) {
            b.attr(ATTRS[*name as usize], value);
        }
    }
    if !t.text.is_empty() {
        b.text(&t.text);
    }
    for c in &t.children {
        build(c, b);
    }
    b.end();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serialize → parse is the identity on built documents (entity
    /// escaping round-trips arbitrary attribute/text content).
    #[test]
    fn serialization_roundtrip(tree in arb_tree()) {
        let mut b = DocumentBuilder::new();
        build(&tree, &mut b);
        let doc = b.finish().unwrap();
        let reparsed = Document::parse(doc.to_xml().as_bytes()).unwrap();
        prop_assert_eq!(doc, reparsed);
    }

    /// Leaf-path invariants: every leaf appears in exactly one path; paths
    /// start at the root and follow parent links.
    #[test]
    fn leaf_path_invariants(tree in arb_tree()) {
        let mut b = DocumentBuilder::new();
        build(&tree, &mut b);
        let doc = b.finish().unwrap();
        let paths = doc.leaf_paths();
        prop_assert_eq!(paths.len(), doc.leaf_count());
        for p in &paths {
            prop_assert_eq!(p[0], doc.root());
            for w in p.windows(2) {
                prop_assert_eq!(doc.node(w[1]).parent, Some(w[0]));
            }
            prop_assert!(doc.node(*p.last().unwrap()).children.is_empty());
        }
    }
}

// Differential test for the document-stream boundary scanner: N built
// documents concatenated with assorted separators stream back as the
// same N documents.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn document_stream_splits_concatenations(
        trees in proptest::collection::vec(arb_tree(), 1..6),
        separators in proptest::collection::vec(0usize..4, 1..6),
    ) {
        let docs: Vec<Document> = trees
            .iter()
            .map(|t| {
                let mut b = DocumentBuilder::new();
                build(t, &mut b);
                b.finish().unwrap()
            })
            .collect();
        let mut wire = Vec::new();
        for (i, d) in docs.iter().enumerate() {
            let sep = separators[i % separators.len()];
            match sep {
                0 => {}
                1 => wire.extend_from_slice(b"\n  \n"),
                2 => wire.extend_from_slice(b"<!-- sep -->"),
                _ => wire.extend_from_slice(b"<?pi data?>\t"),
            }
            wire.extend_from_slice(d.to_xml().as_bytes());
        }
        let streamed: Vec<Document> = pxf_xml::DocumentStream::new(&wire[..])
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(&streamed, &docs);
    }
}
