//! A small streaming (SAX-style) XML pull parser.
//!
//! The parser covers the XML subset needed for filtering workloads: element
//! structure, attributes, character data, CDATA sections, comments,
//! processing instructions, the XML declaration, a DOCTYPE prolog (skipped),
//! and the five predefined entities plus numeric character references. It
//! reports errors with byte offsets and checks tag balance.

use std::fmt;

/// An attribute on a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (qualified, prefixes are kept verbatim).
    pub name: String,
    /// Decoded attribute value.
    pub value: String,
}

/// A parsing event produced by [`Reader::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v">` or `<name/>` (the latter sets `self_closing` and is
    /// *not* followed by a matching [`Event::End`]).
    Start {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
        /// True for `<name/>`.
        self_closing: bool,
    },
    /// `</name>`.
    End {
        /// Element name.
        name: String,
    },
    /// Character data between tags (entity-decoded). Whitespace-only runs are
    /// suppressed.
    Text(String),
    /// End of input.
    Eof,
}

/// Error produced while parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset at which the error occurred.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Streaming pull parser over a byte slice.
///
/// ```
/// use pxf_xml::{Event, Reader};
/// let mut r = Reader::new(b"<a x=\"1\"><b/>hi</a>");
/// assert!(matches!(r.next_event().unwrap(), Event::Start { ref name, .. } if name == "a"));
/// assert!(matches!(r.next_event().unwrap(), Event::Start { self_closing: true, .. }));
/// assert!(matches!(r.next_event().unwrap(), Event::Text(ref t) if t == "hi"));
/// assert!(matches!(r.next_event().unwrap(), Event::End { .. }));
/// assert!(matches!(r.next_event().unwrap(), Event::Eof));
/// ```
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
    /// Open-tag stack for balance checking.
    stack: Vec<String>,
    done: bool,
    seen_root: bool,
}

impl<'a> Reader<'a> {
    /// Creates a reader over raw document bytes.
    pub fn new(input: &'a [u8]) -> Self {
        Reader {
            input,
            pos: 0,
            stack: Vec::with_capacity(16),
            done: false,
            seen_root: false,
        }
    }

    fn error(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Advances past `needle`, erroring if the input ends first.
    fn skip_until(&mut self, needle: &[u8], what: &str) -> Result<(), XmlError> {
        while self.pos < self.input.len() {
            if self.starts_with(needle) {
                self.pos += needle.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.error(format!("unterminated {what}")))
    }

    /// Returns the next event, or an error on malformed input.
    pub fn next_event(&mut self) -> Result<Event, XmlError> {
        loop {
            if self.done {
                return Ok(Event::Eof);
            }
            if self.pos >= self.input.len() {
                if let Some(open) = self.stack.last() {
                    return Err(self.error(format!("unexpected end of input: <{open}> not closed")));
                }
                self.done = true;
                return Ok(Event::Eof);
            }
            if self.peek() == Some(b'<') {
                if self.starts_with(b"<!--") {
                    self.pos += 4;
                    self.skip_until(b"-->", "comment")?;
                    continue;
                }
                if self.starts_with(b"<![CDATA[") {
                    self.pos += 9;
                    let start = self.pos;
                    self.skip_until(b"]]>", "CDATA section")?;
                    let text = &self.input[start..self.pos - 3];
                    if self.stack.is_empty() {
                        return Err(self.error("CDATA outside of root element"));
                    }
                    if !text.iter().all(u8::is_ascii_whitespace) {
                        let s = std::str::from_utf8(text)
                            .map_err(|_| self.error("invalid UTF-8 in CDATA"))?;
                        return Ok(Event::Text(s.to_string()));
                    }
                    continue;
                }
                if self.starts_with(b"<!DOCTYPE") || self.starts_with(b"<!doctype") {
                    self.skip_doctype()?;
                    continue;
                }
                if self.starts_with(b"<?") {
                    self.pos += 2;
                    self.skip_until(b"?>", "processing instruction")?;
                    continue;
                }
                if self.starts_with(b"</") {
                    return self.parse_end_tag();
                }
                return self.parse_start_tag();
            }
            // Character data.
            let start = self.pos;
            while self.pos < self.input.len() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            let raw = &self.input[start..self.pos];
            if raw.iter().all(u8::is_ascii_whitespace) {
                continue;
            }
            if self.stack.is_empty() {
                return Err(XmlError {
                    pos: start,
                    message: "character data outside of root element".into(),
                });
            }
            let decoded = decode_entities(raw, start)?;
            return Ok(Event::Text(decoded));
        }
    }

    /// Skips a DOCTYPE declaration, including an internal subset in `[...]`.
    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        self.pos += 9; // "<!DOCTYPE"
        let mut depth = 0usize;
        while self.pos < self.input.len() {
            match self.input[self.pos] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(self.error("unterminated DOCTYPE declaration"))
    }

    fn parse_start_tag(&mut self) -> Result<Event, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        if self.seen_root && self.stack.is_empty() {
            return Err(self.error("document has more than one root element"));
        }
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    self.seen_root = true;
                    self.stack.push(name.clone());
                    return Ok(Event::Start {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.error("expected '>' after '/' in empty-element tag"));
                    }
                    self.pos += 1;
                    self.seen_root = true;
                    return Ok(Event::Start {
                        name,
                        attributes,
                        self_closing: true,
                    });
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(
                            self.error(format!("expected '=' after attribute name '{attr_name}'"))
                        );
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.error("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let vstart = self.pos;
                    while self.pos < self.input.len() && self.input[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.input.len() {
                        return Err(self.error("unterminated attribute value"));
                    }
                    let value = decode_entities(&self.input[vstart..self.pos], vstart)?;
                    self.pos += 1;
                    if attributes.iter().any(|a: &Attribute| a.name == attr_name) {
                        return Err(self.error(format!("duplicate attribute '{attr_name}'")));
                    }
                    attributes.push(Attribute {
                        name: attr_name,
                        value,
                    });
                }
                None => return Err(self.error("unterminated start tag")),
            }
        }
    }

    fn parse_end_tag(&mut self) -> Result<Event, XmlError> {
        self.pos += 2; // "</"
        let name = self.parse_name()?;
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return Err(self.error("expected '>' in end tag"));
        }
        self.pos += 1;
        match self.stack.pop() {
            Some(open) if open == name => Ok(Event::End { name }),
            Some(open) => Err(self.error(format!(
                "mismatched end tag: expected </{open}>, found </{name}>"
            ))),
            None => Err(self.error(format!("end tag </{name}> with no open element"))),
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => self.pos += 1,
            _ => return Err(self.error("expected a name")),
        }
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map(|s| s.to_string())
            .map_err(|_| self.error("invalid UTF-8 in name"))
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.') || b >= 0x80
}

/// Decodes the five predefined entities and numeric character references.
fn decode_entities(raw: &[u8], base: usize) -> Result<String, XmlError> {
    let s = std::str::from_utf8(raw).map_err(|_| XmlError {
        pos: base,
        message: "invalid UTF-8 in character data".into(),
    })?;
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or_else(|| XmlError {
            pos: base + amp,
            message: "unterminated entity reference".into(),
        })?;
        let ent = &after[..semi];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with('#') => {
                let code = if let Some(hex) = ent.strip_prefix("#x").or(ent.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()
                } else {
                    ent[1..].parse::<u32>().ok()
                };
                let c = code.and_then(char::from_u32).ok_or_else(|| XmlError {
                    pos: base + amp,
                    message: format!("invalid character reference '&{ent};'"),
                })?;
                out.push(c);
            }
            _ => {
                return Err(XmlError {
                    pos: base + amp,
                    message: format!("unknown entity '&{ent};'"),
                })
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<Event>, XmlError> {
        let mut r = Reader::new(input.as_bytes());
        let mut out = Vec::new();
        loop {
            let e = r.next_event()?;
            let eof = e == Event::Eof;
            out.push(e);
            if eof {
                return Ok(out);
            }
        }
    }

    #[test]
    fn basic_document() {
        let ev = events("<a><b>text</b><c/></a>").unwrap();
        assert_eq!(ev.len(), 7);
        assert!(matches!(&ev[0], Event::Start { name, .. } if name == "a"));
        assert!(matches!(&ev[2], Event::Text(t) if t == "text"));
        assert!(matches!(&ev[4], Event::Start { name, self_closing: true, .. } if name == "c"));
    }

    #[test]
    fn attributes_parsed() {
        let ev = events(r#"<a x="1" y='two'/>"#).unwrap();
        match &ev[0] {
            Event::Start { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].name, "x");
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].value, "two");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entities_decoded() {
        let ev = events("<a>&lt;hi&gt; &amp; &#65;&#x42;</a>").unwrap();
        assert!(matches!(&ev[1], Event::Text(t) if t == "<hi> & AB"));
        let ev = events(r#"<a v="&quot;q&apos;"/>"#).unwrap();
        match &ev[0] {
            Event::Start { attributes, .. } => assert_eq!(attributes[0].value, "\"q'"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prolog_comments_cdata() {
        let src = r#"<?xml version="1.0"?>
            <!DOCTYPE a [<!ELEMENT a (b)>]>
            <!-- top comment -->
            <a><!-- inner --><![CDATA[raw <stuff> & more]]></a>"#;
        let ev = events(src).unwrap();
        assert!(matches!(&ev[0], Event::Start { name, .. } if name == "a"));
        assert!(matches!(&ev[1], Event::Text(t) if t == "raw <stuff> & more"));
    }

    #[test]
    fn whitespace_text_suppressed() {
        let ev = events("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(ev.len(), 4); // start a, start b, end a, eof
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(events("<a><b></a></b>").is_err());
        assert!(events("<a>").is_err());
        assert!(events("</a>").is_err());
    }

    #[test]
    fn multiple_roots_rejected() {
        assert!(events("<a/><b/>").is_err());
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(events("hello<a/>").is_err());
        assert!(events("<a/>tail").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(events(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "<a",
            "<a x>",
            "<a x=>",
            "<a x=1>",
            "<a x=\"1>",
            "<1a/>",
            "<a>&bogus;</a>",
            "<a>&#xZZ;</a>",
            "<a>&unterminated</a>",
            "<!-- never closed",
            "<a><![CDATA[x</a>",
        ] {
            assert!(events(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn error_positions() {
        let err = events("<a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched end tag"));
        assert!(err.pos > 0);
    }

    #[test]
    fn namespaced_names_pass_through() {
        let ev = events("<ns:a ns:x=\"1\"><ns:b/></ns:a>").unwrap();
        assert!(matches!(&ev[0], Event::Start { name, .. } if name == "ns:a"));
    }
}
